#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/topk.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "shard/coordinator.h"
#include "store/convert.h"
#include "store/store.h"
#include "store/writer.h"

namespace halk::store {
namespace {

using query::StructureId;

/// Concurrency suite (TSan CI job, label `concurrent`): many threads
/// scanning one shared mmap-backed store. The mapping is immutable, so the
/// only way this can fail is a data race in the scan/metrics plumbing —
/// exactly what TSan is pointed at.
class StoreConcurrentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 192;
    opt.num_relations = 6;
    opt.num_triples = 1100;
    opt.seed = 29;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 9;
    model_ = new core::HalkModel(config, nullptr);

    dir_ = new std::string(testing::TempDir() + "/store_concurrent_snap");
    ASSERT_TRUE(WriteModelSnapshot(*model_, *dir_, /*num_shards=*/4).ok());
    auto store = EmbeddingStore::Open(*dir_, {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = store->release();
    auto served = OpenServingModel(*store_, nullptr);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    served_ = served->release();
  }
  static void TearDownTestSuite() {
    delete served_;
    delete store_;
    delete model_;
    delete dataset_;
    delete dir_;
    served_ = nullptr;
    store_ = nullptr;
    model_ = nullptr;
    dataset_ = nullptr;
    dir_ = nullptr;
  }

  static kg::Dataset* dataset_;
  static core::HalkModel* model_;
  static std::string* dir_;
  static EmbeddingStore* store_;
  static core::HalkModel* served_;
};

kg::Dataset* StoreConcurrentTest::dataset_ = nullptr;
core::HalkModel* StoreConcurrentTest::model_ = nullptr;
std::string* StoreConcurrentTest::dir_ = nullptr;
EmbeddingStore* StoreConcurrentTest::store_ = nullptr;
core::HalkModel* StoreConcurrentTest::served_ = nullptr;

TEST_F(StoreConcurrentTest, ParallelScansOverOneMappingStayExact) {
  // Embed once up front (EmbedQueries builds autograd state and is not
  // meant for concurrent use); the scan path under test is const.
  query::QuerySampler sampler(&dataset_->train, 41);
  std::vector<query::GroundedQuery> pool =
      sampler.SampleMany(StructureId::k2i, 6).ValueOrDie();
  std::vector<core::EmbeddingBatch> embeddings;
  std::vector<std::vector<core::ScoredEntity>> expected;
  for (const query::GroundedQuery& q : pool) {
    std::vector<const query::QueryGraph*> single = {&q.graph};
    embeddings.push_back(served_->EmbedQueries(single));
    core::TopKAccumulator acc(10);
    served_->AccumulateTopKRange({{&embeddings.back(), 0}}, 0,
                                 served_->config().num_entities, &acc,
                                 nullptr);
    expected.push_back(acc.Take());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const size_t idx = static_cast<size_t>(t + i) % pool.size();
        core::TopKAccumulator acc(10);
        core::ScanStats stats;
        served_->AccumulateTopKRange({{&embeddings[idx], 0}}, 0,
                                     served_->config().num_entities, &acc,
                                     &stats);
        if (acc.Take() != expected[idx] ||
            stats.column_blocks_scanned <= 0) {
          mismatches.fetch_add(1);
        }
        // Residency probes race benignly with other readers' page faults;
        // they must still be safe to call mid-scan.
        store_->UpdateResidencyMetrics();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Pinned shard workers (ShardOptions::pin_threads) scanning the store
// concurrently return the exact in-RAM ranking — the bench configuration,
// under TSan.
TEST_F(StoreConcurrentTest, PinnedShardedServingOverStoreIsExact) {
  core::Evaluator evaluator(model_);
  shard::ShardOptions options;
  options.num_shards = 4;
  options.replication = 1;
  options.pin_threads = true;
  shard::ShardCoordinator coordinator(served_, options);

  query::QuerySampler sampler(&dataset_->train, 53);
  std::vector<query::GroundedQuery> pool =
      sampler.SampleMany(StructureId::k2p, 6).ValueOrDie();
  std::vector<std::vector<int64_t>> expected;
  for (const query::GroundedQuery& q : pool) {
    expected.push_back(evaluator.TopK(q.graph, 10));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        const size_t idx = static_cast<size_t>(t * 10 + i) % pool.size();
        shard::ShardedTopK top = coordinator.TopK(pool[idx].graph, 10);
        std::vector<int64_t> entities;
        for (const core::ScoredEntity& s : top.entries) {
          entities.push_back(s.entity);
        }
        if (!top.ok() || entities != expected[idx]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace halk::store
