#include "store/store.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/distance.h"
#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/topk.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/metrics.h"
#include "shard/coordinator.h"
#include "store/convert.h"
#include "store/format.h"
#include "store/shard_file.h"
#include "store/snapshot.h"
#include "store/writer.h"

namespace halk::store {
namespace {

using query::StructureId;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Deterministic row value so every test can recompute what any (entity,
/// dimension) cell must hold.
float Cell(int64_t entity, int64_t j) {
  return 0.25f * static_cast<float>(entity) - 0.5f * static_cast<float>(j);
}

/// Writes one shard file of Cell() rows for global ids [begin, end).
void WriteTestShardFile(const std::string& path, uint32_t dim, int64_t begin,
                        int64_t end, uint32_t rows_per_group) {
  ShardFileWriter writer(path, dim, begin, end, rows_per_group);
  std::vector<float> row(dim);
  for (int64_t e = begin; e < end; ++e) {
    for (int64_t j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] = Cell(e, j);
    }
    ASSERT_TRUE(writer.Append(row.data(), 1).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
}

void FlipByteAt(const std::string& path, long offset) {
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, offset, SEEK_SET), 0);
  int c = fgetc(f);
  ASSERT_EQ(fseek(f, offset, SEEK_SET), 0);
  fputc(c ^ 0x5a, f);
  fclose(f);
}

TEST(ShardFileTest, RoundTripWithPartialTailGroup) {
  const std::string path = TempPath("roundtrip.halkstore");
  const uint32_t dim = 6;
  const int64_t begin = 100;
  const int64_t end = 1100;  // 1000 rows: 15 full groups of 64 + tail of 40
  WriteTestShardFile(path, dim, begin, end, /*rows_per_group=*/64);

  MappedShardFile::OpenOptions options;
  options.verify_checksums = true;
  auto opened = MappedShardFile::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MappedShardFile& file = **opened;
  EXPECT_EQ(file.entity_begin(), begin);
  EXPECT_EQ(file.entity_end(), end);
  EXPECT_EQ(file.header().dim, dim);
  EXPECT_EQ(file.header().num_groups, 16u);
  EXPECT_EQ(file.GroupRows(15), 40);

  std::vector<float> row(dim);
  for (int64_t e = begin; e < end; ++e) {
    file.CopyRow(e, row.data());
    for (int64_t j = 0; j < dim; ++j) {
      ASSERT_EQ(row[static_cast<size_t>(j)], Cell(e, j))
          << "entity " << e << " dim " << j;
    }
  }
  EXPECT_TRUE(file.VerifyChecksums().ok());
  std::remove(path.c_str());
}

TEST(ShardFileTest, RejectsRowCountMismatch) {
  const std::string path = TempPath("rowcount.halkstore");
  std::vector<float> rows(4 * 10, 1.0f);
  {
    ShardFileWriter writer(path, 4, 0, 20, 8);
    ASSERT_TRUE(writer.Append(rows.data(), 10).ok());
    EXPECT_EQ(writer.Finish().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardFileWriter writer(path, 4, 0, 5, 8);
    EXPECT_EQ(writer.Append(rows.data(), 10).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(ShardFileTest, MissingFileIsCleanError) {
  auto opened = MappedShardFile::Open(TempPath("no_such.halkstore"), {});
  EXPECT_FALSE(opened.ok());
}

TEST(ShardFileTest, RejectsCorruptHeader) {
  const std::string path = TempPath("badheader.halkstore");
  WriteTestShardFile(path, 4, 0, 100, 16);
  FlipByteAt(path, 0);  // magic
  auto opened = MappedShardFile::Open(path, {});
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(ShardFileTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.halkstore");
  WriteTestShardFile(path, 4, 0, 100, 16);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(kPageBytes + 64)), 0);
  auto opened = MappedShardFile::Open(path, {});
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(ShardFileTest, BlockCorruptionCaughtByChecksums) {
  const std::string path = TempPath("badblock.halkstore");
  WriteTestShardFile(path, 4, 0, 100, 16);
  // A flipped float in the data region leaves the header valid...
  ShardFileHeader header;
  {
    auto opened = MappedShardFile::Open(path, {});
    ASSERT_TRUE(opened.ok());
    header = (*opened)->header();
  }
  FlipByteAt(path, static_cast<long>(header.data_offset) + 24);
  // ...so an eager open rejects it, and a lazy open defers to
  // VerifyChecksums (the `halk_store verify` path).
  MappedShardFile::OpenOptions eager;
  eager.verify_checksums = true;
  auto rejected = MappedShardFile::Open(path, eager);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);

  MappedShardFile::OpenOptions lazy;
  lazy.verify_checksums = false;
  auto opened = MappedShardFile::Open(path, lazy);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->VerifyChecksums().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(ShardFileTest, ParseHeaderRejectsFieldTampering) {
  const std::string path = TempPath("header_fields.halkstore");
  WriteTestShardFile(path, 4, 0, 100, 16);
  const std::string bytes = SlurpFile(path);
  ASSERT_GE(bytes.size(), kPageBytes);
  ShardFileHeader valid;
  ASSERT_TRUE(ParseHeader(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &valid)
                  .ok());

  // Each mutation is re-serialized (fresh, self-consistent checksum) so the
  // specific validation branch is exercised, not just the checksum.
  std::vector<uint8_t> page(kPageBytes);
  const auto expect_rejected = [&](ShardFileHeader h, const char* what) {
    SerializeHeader(h, page.data());
    ShardFileHeader out;
    EXPECT_EQ(ParseHeader(page.data(), page.size(), &out).code(),
              StatusCode::kParseError)
        << what;
  };
  {
    ShardFileHeader h = valid;
    h.version = kShardFormatVersion + 1;
    expect_rejected(h, "future version");
  }
  {
    ShardFileHeader h = valid;
    h.dtype = 99;
    expect_rejected(h, "unknown dtype");
  }
  {
    ShardFileHeader h = valid;
    h.dim = 0;
    expect_rejected(h, "zero dim");
  }
  {
    ShardFileHeader h = valid;
    h.entity_end = h.entity_begin;
    expect_rejected(h, "empty entity range");
  }
  {
    ShardFileHeader h = valid;
    h.num_groups += 1;
    expect_rejected(h, "group count vs rows");
  }
  {
    ShardFileHeader h = valid;
    h.data_bytes += kPageBytes;
    expect_rejected(h, "data size vs geometry");
  }
  // Truncated input never reads out of bounds.
  ShardFileHeader out;
  EXPECT_EQ(ParseHeader(reinterpret_cast<const uint8_t*>(bytes.data()),
                        kHeaderBytes - 1, &out)
                .code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

StoreSnapshot MakeSnapshot() {
  StoreSnapshot snap;
  snap.model_name = "HaLk";
  snap.config.num_entities = 100;
  snap.config.num_relations = 7;
  snap.config.dim = 8;
  snap.config.hidden = 16;
  snap.config.seed = 11;
  snap.has_params = true;
  snap.params_checksum = 0xdeadbeefULL;
  snap.shards.push_back({"entities-0.halkstore", 0, 50, 0x1111});
  snap.shards.push_back({"entities-1.halkstore", 50, 100, 0x2222});
  return snap;
}

TEST(ManifestTest, RoundTripPreservesEveryField) {
  const StoreSnapshot snap = MakeSnapshot();
  const std::string text = SerializeManifest(snap);
  StoreSnapshot parsed;
  ASSERT_TRUE(ParseManifest(text, &parsed).ok());
  EXPECT_EQ(parsed.model_name, snap.model_name);
  EXPECT_EQ(parsed.config.num_entities, snap.config.num_entities);
  EXPECT_EQ(parsed.config.num_relations, snap.config.num_relations);
  EXPECT_EQ(parsed.config.dim, snap.config.dim);
  EXPECT_EQ(parsed.config.hidden, snap.config.hidden);
  EXPECT_EQ(parsed.config.rho, snap.config.rho);
  EXPECT_EQ(parsed.config.lambda, snap.config.lambda);
  EXPECT_EQ(parsed.config.eta, snap.config.eta);
  EXPECT_EQ(parsed.config.gamma, snap.config.gamma);
  EXPECT_EQ(parsed.config.xi, snap.config.xi);
  EXPECT_EQ(parsed.config.seed, snap.config.seed);
  EXPECT_EQ(parsed.has_params, true);
  EXPECT_EQ(parsed.params_checksum, snap.params_checksum);
  ASSERT_EQ(parsed.shards.size(), 2u);
  EXPECT_EQ(parsed.shards[1].file, "entities-1.halkstore");
  EXPECT_EQ(parsed.shards[1].entity_begin, 50);
  EXPECT_EQ(parsed.shards[1].entity_end, 100);
  EXPECT_EQ(parsed.shards[1].header_checksum, 0x2222u);
  // Serializing the parse reproduces the text byte-for-byte.
  EXPECT_EQ(SerializeManifest(parsed), text);
}

TEST(ManifestTest, TamperedByteFailsChecksum) {
  std::string text = SerializeManifest(MakeSnapshot());
  text[text.size() / 2] ^= 0x01;
  StoreSnapshot parsed;
  EXPECT_EQ(ParseManifest(text, &parsed).code(), StatusCode::kParseError);
}

TEST(ManifestTest, RejectsStructuralDamage) {
  StoreSnapshot parsed;
  // Truncation (checksum line gone).
  std::string text = SerializeManifest(MakeSnapshot());
  text.resize(text.rfind("checksum"));
  EXPECT_FALSE(ParseManifest(text, &parsed).ok());
  // Shard ranges that do not tile [0, num_entities).
  StoreSnapshot gap = MakeSnapshot();
  gap.shards[1].entity_begin = 60;
  EXPECT_EQ(ParseManifest(SerializeManifest(gap), &parsed).code(),
            StatusCode::kParseError);
  StoreSnapshot shortfall = MakeSnapshot();
  shortfall.shards[1].entity_end = 90;
  EXPECT_EQ(ParseManifest(SerializeManifest(shortfall), &parsed).code(),
            StatusCode::kParseError);
  // Path separators in shard file names (directory escape).
  StoreSnapshot escape = MakeSnapshot();
  escape.shards[0].file = "../entities-0.halkstore";
  EXPECT_EQ(ParseManifest(SerializeManifest(escape), &parsed).code(),
            StatusCode::kParseError);
  EXPECT_FALSE(ParseManifest("", &parsed).ok());
}

TEST(SnapshotWriterTest, BalancedFilesAndCrossBoundaryAppends) {
  const std::string dir = TempPath("snap_balanced");
  SnapshotWriterOptions options;
  options.dir = dir;
  options.config.num_entities = 103;
  options.config.num_relations = 3;
  options.config.dim = 5;
  options.num_shards = 4;
  options.rows_per_group = 16;
  auto writer = SnapshotWriter::Create(options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  // Append in odd batch sizes so batches straddle file boundaries.
  std::vector<float> all(103 * 5);
  for (int64_t e = 0; e < 103; ++e) {
    for (int64_t j = 0; j < 5; ++j) {
      all[static_cast<size_t>(e * 5 + j)] = Cell(e, j);
    }
  }
  ASSERT_TRUE((*writer)->AppendEntityRows(all.data(), 50).ok());
  ASSERT_TRUE((*writer)->AppendEntityRows(all.data() + 50 * 5, 30).ok());
  ASSERT_TRUE((*writer)->AppendEntityRows(all.data() + 80 * 5, 23).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  EmbeddingStore::OpenOptions open_options;
  serving::MetricsRegistry metrics;
  open_options.metrics = &metrics;
  auto store = EmbeddingStore::Open(dir, open_options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_entities(), 103);
  EXPECT_EQ((*store)->dim(), 5);
  ASSERT_EQ((*store)->num_shard_files(), 4);
  // 103 = 26 + 26 + 26 + 25 (first `rem` files take the extra row).
  EXPECT_EQ((*store)->view(0).entity_end(), 26);
  EXPECT_EQ((*store)->view(3).entity_begin(), 78);
  EXPECT_EQ((*store)->view(3).entity_end(), 103);

  std::vector<float> row(5);
  for (int64_t e = 0; e < 103; ++e) {
    (*store)->CopyRow(e, row.data());
    for (int64_t j = 0; j < 5; ++j) {
      ASSERT_EQ(row[static_cast<size_t>(j)], Cell(e, j)) << "entity " << e;
    }
  }
  EXPECT_GT((*store)->MappedBytes(), 0u);
  EXPECT_TRUE((*store)->VerifyChecksums().ok());
  EXPECT_EQ(metrics.CounterValue("store.files_mapped"), 4);
  EXPECT_GT(metrics.GaugeValue("store.bytes_mapped"), 0.0);
}

TEST(SnapshotWriterTest, ReplacedShardFileIsRejectedByManifestBinding) {
  const std::string dir = TempPath("snap_replaced");
  SnapshotWriterOptions options;
  options.dir = dir;
  options.config.num_entities = 40;
  options.config.dim = 4;
  options.num_shards = 2;
  options.rows_per_group = 8;
  auto writer = SnapshotWriter::Create(options);
  ASSERT_TRUE(writer.ok());
  std::vector<float> rows(40 * 4, 1.5f);
  ASSERT_TRUE((*writer)->AppendEntityRows(rows.data(), 40).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  // Overwrite shard file 1 with a self-consistent file holding different
  // data: every per-file check passes, but the manifest's header-checksum
  // binding catches the swap.
  WriteTestShardFile(dir + "/entities-1.halkstore", 4, 20, 40, 8);
  auto store = EmbeddingStore::Open(dir, {});
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kParseError);
  EXPECT_NE(store.status().ToString().find("manifest"), std::string::npos)
      << store.status().ToString();
}

TEST(StoreScanTest, BoundAwareScanSkipsColumnBlocksExactly) {
  const std::string path = TempPath("scan_skip.halkstore");
  const uint32_t dim = 8;
  WriteTestShardFile(path, dim, 0, 256, /*rows_per_group=*/32);
  MappedShardFile::OpenOptions options;
  auto opened = MappedShardFile::Open(path, options);
  ASSERT_TRUE(opened.ok());

  std::vector<float> center(dim, 0.0f);
  std::vector<float> length(dim, 0.1f);
  const std::vector<core::ArcConstants> arcs = {
      core::MakeArcConstants(center.data(), length.data(), dim, 1.0f, 0.9f)};

  // Exactness: the scan's heap equals pushing every exact distance.
  core::TopKAccumulator scanned(10);
  core::ScanStats stats;
  (*opened)->Scan(arcs, 0, 256, &scanned, &stats);
  core::TopKAccumulator expected(10);
  std::vector<float> row(dim);
  for (int64_t e = 0; e < 256; ++e) {
    (*opened)->CopyRow(e, row.data());
    expected.Push(e, core::ArcPointDistance(row.data(), center.data(),
                                            length.data(), dim, 1.0f, 0.9f));
  }
  EXPECT_EQ(scanned.Take(), expected.Take());
  EXPECT_EQ(stats.entities_scanned, 256);
  EXPECT_GT(stats.column_blocks_scanned, 0);

  // With an already-tight bound every entity prunes after the first
  // dimension, so the remaining column blocks of every group are skipped —
  // pages the scan never reads.
  core::TopKAccumulator tight(1);
  tight.Push(/*entity=*/9999, 0.0f);
  core::ScanStats tight_stats;
  (*opened)->Scan(arcs, 0, 256, &tight, &tight_stats);
  EXPECT_GT(tight_stats.column_blocks_skipped, 0);
  EXPECT_EQ(tight_stats.entities_pruned, 256);
  std::remove(path.c_str());
}

/// End-to-end fixture: a trained-shape model over a small synthetic KG,
/// snapshotted to disk and re-opened as a store-backed serving model.
class StoreServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 160;
    opt.num_relations = 6;
    opt.num_triples = 1000;
    opt.seed = 13;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 7;
    model_ = new core::HalkModel(config, nullptr);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<int64_t> Entities(
      const std::vector<core::ScoredEntity>& entries) {
    std::vector<int64_t> out;
    for (const core::ScoredEntity& s : entries) out.push_back(s.entity);
    return out;
  }

  static kg::Dataset* dataset_;
  static core::HalkModel* model_;
};

kg::Dataset* StoreServingTest::dataset_ = nullptr;
core::HalkModel* StoreServingTest::model_ = nullptr;

// Acceptance property: the store-backed model ranks bit-identically to the
// in-RAM model, standalone and under every sharded partition.
TEST_F(StoreServingTest, StoreBackedTopKIsBitIdenticalToInRam) {
  const std::string dir = TempPath("snap_serving");
  ASSERT_TRUE(WriteModelSnapshot(*model_, dir, /*num_shards=*/3).ok());
  auto store = EmbeddingStore::Open(dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto served = OpenServingModel(**store, nullptr);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE((*served)->store_backed());

  core::Evaluator in_ram(model_);
  core::Evaluator out_of_core(served->get());
  query::QuerySampler sampler(&dataset_->train, 3);
  for (StructureId s :
       {StructureId::k1p, StructureId::k2p, StructureId::k2i,
        StructureId::k2u}) {
    auto queries = sampler.SampleMany(s, 3);
    ASSERT_TRUE(queries.ok());
    for (const query::GroundedQuery& q : *queries) {
      EXPECT_EQ(in_ram.TopK(q.graph, 10), out_of_core.TopK(q.graph, 10))
          << query::StructureName(s);
      // Raw distances match bit-exactly, not just the ranking.
      const std::vector<float> a = in_ram.ScoreAllEntities(q.graph);
      const std::vector<float> b = out_of_core.ScoreAllEntities(q.graph);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "entity " << i;
      }
    }
  }

  // Sharded serving over the store: file count (3) deliberately differs
  // from every shard count so ranges straddle shard-file boundaries.
  core::Evaluator evaluator(model_);
  for (int shards : {1, 2, 4, 8}) {
    shard::ShardOptions options;
    options.num_shards = shards;
    shard::ShardCoordinator coordinator(served->get(), options);
    query::QuerySampler shard_sampler(&dataset_->train, 17);
    for (const query::GroundedQuery& q :
         shard_sampler.SampleMany(StructureId::k2i, 4).ValueOrDie()) {
      shard::ShardedTopK top = coordinator.TopK(q.graph, 10);
      ASSERT_TRUE(top.ok()) << top.status.ToString();
      EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 10))
          << shards << " shards";
    }
  }
}

TEST_F(StoreServingTest, BlobToSnapshotToBlobIsByteIdentical) {
  const std::string blob_a = TempPath("legacy_a.bin");
  const std::string dir = TempPath("snap_convert");
  const std::string blob_b = TempPath("legacy_b.bin");
  ASSERT_TRUE(core::SaveCheckpoint(*model_, blob_a).ok());
  ASSERT_TRUE(ConvertCheckpointToSnapshot(blob_a, dir, /*num_shards=*/2).ok());
  ASSERT_TRUE(ConvertSnapshotToCheckpoint(dir, blob_b).ok());

  const std::string a = SlurpFile(blob_a);
  const std::string b = SlurpFile(blob_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // And the regenerated blob loads through the legacy path.
  core::HalkModel restored(model_->config(), nullptr);
  EXPECT_TRUE(core::LoadCheckpoint(&restored, blob_b).ok());
  std::remove(blob_a.c_str());
  std::remove(blob_b.c_str());
}

TEST_F(StoreServingTest, ServingModelRequiresParams) {
  const std::string dir = TempPath("snap_noparams");
  SnapshotWriterOptions options;
  options.dir = dir;
  options.config = model_->config();
  options.num_shards = 2;
  auto writer = SnapshotWriter::Create(options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)
                  ->AppendEntityRows(model_->entity_angles().data(),
                                     model_->config().num_entities)
                  .ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto store = EmbeddingStore::Open(dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto served = OpenServingModel(**store, nullptr);
  EXPECT_FALSE(served.ok());
}

TEST_F(StoreServingTest, MissingManifestIsCleanError) {
  auto store = EmbeddingStore::Open(TempPath("no_such_snapshot"), {});
  EXPECT_FALSE(store.ok());
}

}  // namespace
}  // namespace halk::store
