#include "net/http_server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/http_client_for_test.h"

namespace halk::net {
namespace {

TEST(QueryParamTest, ParsesPairs) {
  EXPECT_EQ(QueryParam("a=1&b=2", "a"), "1");
  EXPECT_EQ(QueryParam("a=1&b=2", "b"), "2");
  EXPECT_EQ(QueryParam("a=1&b=2", "c"), "");
  EXPECT_EQ(QueryParam("a=1&b=2", "c", "9"), "9");
  EXPECT_EQ(QueryParam("", "a", "fallback"), "fallback");
  EXPECT_EQ(QueryParam("a=", "a", "fallback"), "");
}

TEST(QueryParamTest, MatchesWholeKeysOnly) {
  // `b` must not match inside `ab`, and a valueless key is not a pair.
  EXPECT_EQ(QueryParam("ab=1", "b"), "");
  EXPECT_EQ(QueryParam("seconds=5&spans=7", "s", "none"), "none");
  EXPECT_EQ(QueryParam("spans", "spans", "none"), "none");
}

TEST(HttpServerTest, BindsEphemeralPortAndStops) {
  HttpServer server;
  EXPECT_EQ(server.port(), 0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(HttpServerTest, ServesRegisteredHandler) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) -> HttpResponse {
    return {200, "text/plain; charset=utf-8", "pong\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  const TestHttpResponse response = HttpGet(server.port(), "/ping");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "pong\n");
  EXPECT_EQ(response.content_type, "text/plain; charset=utf-8");
  server.Stop();
}

TEST(HttpServerTest, HandlerSeesQueryString) {
  HttpServer server;
  server.Handle("/echo", [](const HttpRequest& request) -> HttpResponse {
    return {200, "text/plain; charset=utf-8",
            request.path + "|" + QueryParam(request.query, "x", "?")};
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(HttpGet(server.port(), "/echo?x=42&y=1").body, "/echo|42");
  EXPECT_EQ(HttpGet(server.port(), "/echo").body, "/echo|?");
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404) {
  HttpServer server;
  server.Handle("/known", [](const HttpRequest&) -> HttpResponse {
    return {200, "text/plain; charset=utf-8", "ok"};
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(HttpGet(server.port(), "/unknown").status, 404);
  server.Stop();
}

TEST(HttpServerTest, NonGetIs405) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) -> HttpResponse {
    return {200, "text/plain; charset=utf-8", "ok"};
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string raw = RawHttpExchange(
      server.port(), "POST /x HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(raw.find(" 405 "), std::string::npos) << raw;
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestLineIs400) {
  HttpServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string raw =
      RawHttpExchange(server.port(), "this is not http\r\n\r\n");
  EXPECT_NE(raw.find(" 400 "), std::string::npos) << raw;
  server.Stop();
}

TEST(HttpServerTest, OversizedRequestHeadIs400) {
  HttpServer::Options options;
  options.max_request_bytes = 256;
  HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string raw = RawHttpExchange(
      server.port(), "GET /" + std::string(1024, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(raw.find(" 400 "), std::string::npos) << raw;
  server.Stop();
}

TEST(HttpServerTest, PortAlreadyBoundFailsCleanly) {
  HttpServer first;
  ASSERT_TRUE(first.Start().ok());
  HttpServer::Options taken;
  taken.port = first.port();
  HttpServer second(taken);
  const Status started = second.Start();
  EXPECT_FALSE(started.ok());
  // A failed Start leaves the server restartable on a free port.
  first.Stop();
  ASSERT_TRUE(second.Start().ok());
  EXPECT_GT(second.port(), 0);
  second.Stop();
}

// TSan-targeted: concurrent clients against one server, handlers touching
// shared state, Stop racing the last requests.
TEST(HttpServerTest, ConcurrentClients) {
  HttpServer::Options options;
  options.num_threads = 4;
  HttpServer server(options);
  std::atomic<int64_t> handled{0};
  server.Handle("/inc", [&handled](const HttpRequest&) -> HttpResponse {
    // order: test counter; the final load happens after every join.
    handled.fetch_add(1, std::memory_order_relaxed);
    return {200, "text/plain; charset=utf-8", "ok\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequests; ++i) {
        if (HttpGet(server.port(), "/inc").status == 200) {
          // order: test counter, read after join.
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(ok_count.load(), kClients * kRequests);
  EXPECT_EQ(handled.load(), kClients * kRequests);
}

}  // namespace
}  // namespace halk::net
