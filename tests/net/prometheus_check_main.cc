// Standalone Prometheus 0.0.4 exposition checker for shell tests: reads
// an exposition body from the file named in argv[1] (or stdin when no
// argument is given), runs it through the shared grammar checker, and
// exits nonzero on any violation. Used by the sparql_endpoint HTTP smoke
// test to validate a live /metrics scrape.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "serving/prometheus_grammar.h"

namespace {

std::string* g_body = nullptr;

TEST(PrometheusBodyCheck, BodyMatchesGrammar) {
  ASSERT_NE(g_body, nullptr);
  halk::serving::ExpectValidPrometheusExposition(*g_body);
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  std::string body;
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    body = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    body = buffer.str();
  }
  g_body = &body;
  return RUN_ALL_TESTS();
}
