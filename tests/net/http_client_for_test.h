#ifndef HALK_TESTS_NET_HTTP_CLIENT_FOR_TEST_H_
#define HALK_TESTS_NET_HTTP_CLIENT_FOR_TEST_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

namespace halk::net {

/// A parsed HTTP response from the test client. status 0 means the
/// request never completed (connect/send/recv failure).
struct TestHttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Sends `raw` bytes to 127.0.0.1:`port` and returns everything the
/// server writes back until it closes the connection.
inline std::string RawHttpExchange(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Minimal blocking GET against the embedded server, parsing the status
/// line, Content-Type header, and body out of the raw response.
inline TestHttpResponse HttpGet(int port, const std::string& path) {
  TestHttpResponse out;
  const std::string raw = RawHttpExchange(
      port, "GET " + path +
                " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
  if (raw.empty()) return out;
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return out;
  const std::string status_line = raw.substr(0, line_end);
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return out;
  out.status = std::atoi(status_line.c_str() + sp + 1);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  const std::string head = raw.substr(0, head_end);
  const size_t ct = head.find("Content-Type: ");
  if (ct != std::string::npos) {
    const size_t ct_end = head.find("\r\n", ct);
    out.content_type = head.substr(ct + 14, ct_end - (ct + 14));
  }
  out.body = raw.substr(head_end + 4);
  return out;
}

}  // namespace halk::net

#endif  // HALK_TESTS_NET_HTTP_CLIENT_FOR_TEST_H_
