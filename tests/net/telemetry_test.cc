#include "net/telemetry.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "kg/synthetic.h"
#include "net/http_client_for_test.h"
#include "net/http_server.h"
#include "obs/journal.h"
#include "obs/profiler.h"
#include "obs/slo_tracker.h"
#include "obs/trace.h"
#include "query/sampler.h"
#include "serving/metrics.h"
#include "serving/prometheus_grammar.h"
#include "shard/coordinator.h"
#include "shard/fault_injector.h"
#include "store/shard_file.h"

namespace halk::net {
namespace {

using query::StructureId;

// ---------------------------------------------------------------- health

TEST(EvaluateShardHealthTest, NoShardFamilyIsHealthy) {
  serving::MetricsRegistry metrics;
  metrics.GetCounter("serving.completed")->Increment();
  const ShardHealth health = EvaluateShardHealth(metrics);
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.shards, 0);
}

TEST(EvaluateShardHealthTest, SurvivingReplicaKeepsShardHealthy) {
  serving::MetricsRegistry metrics;
  metrics.GetGauge("shard.replica_health", {{"shard", "0"}, {"replica", "0"}})
      ->Set(2.0);
  metrics.GetGauge("shard.replica_health", {{"shard", "0"}, {"replica", "1"}})
      ->Set(0.0);
  metrics.GetGauge("shard.replica_health", {{"shard", "1"}, {"replica", "0"}})
      ->Set(1.0);  // suspect still counts as live
  metrics.GetGauge("shard.replica_health", {{"shard", "1"}, {"replica", "1"}})
      ->Set(0.0);
  const ShardHealth health = EvaluateShardHealth(metrics);
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.shards, 2);
  EXPECT_EQ(health.shards_down, 0);
  EXPECT_EQ(health.replicas_down, 1);
}

TEST(EvaluateShardHealthTest, FullShardLossIsUnhealthy) {
  serving::MetricsRegistry metrics;
  metrics.GetGauge("shard.replica_health", {{"shard", "0"}, {"replica", "0"}})
      ->Set(2.0);
  metrics.GetGauge("shard.replica_health", {{"shard", "0"}, {"replica", "1"}})
      ->Set(2.0);
  metrics.GetGauge("shard.replica_health", {{"shard", "1"}, {"replica", "0"}})
      ->Set(0.0);
  const ShardHealth health = EvaluateShardHealth(metrics);
  EXPECT_FALSE(health.healthy);
  EXPECT_EQ(health.shards, 2);
  EXPECT_EQ(health.shards_down, 1);
  EXPECT_EQ(health.replicas_down, 2);
}

// ------------------------------------------------------------- endpoints

TEST(TelemetryEndpointsTest, NullSourcesAnswer404ButHealthzPasses) {
  HttpServer server;
  RegisterTelemetryEndpoints(&server, TelemetrySources{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(HttpGet(server.port(), "/metrics").status, 404);
  EXPECT_EQ(HttpGet(server.port(), "/traces").status, 404);
  EXPECT_EQ(HttpGet(server.port(), "/profile").status, 404);
  EXPECT_EQ(HttpGet(server.port(), "/slo").status, 404);
  EXPECT_EQ(HttpGet(server.port(), "/queryz").status, 404);
  // With no registry there is nothing to be unhealthy about.
  EXPECT_EQ(HttpGet(server.port(), "/healthz").status, 200);
  EXPECT_EQ(HttpGet(server.port(), "/readyz").status, 200);
  server.Stop();
}

TEST(TelemetryEndpointsTest, MetricsScrapePassesGrammarWithExemplars) {
  serving::MetricsRegistry metrics;
  metrics.GetCounter("serving.completed")->Increment();
  metrics.GetGauge("serving.queue_depth")->Set(3.0);
  serving::Histogram* latency =
      metrics.GetHistogram("serving.latency_us", {10.0, 100.0});
  latency->Observe(5.0);
  latency->Observe(50.0, /*exemplar_trace_id=*/0xabcdef);
  latency->Observe(500.0, /*exemplar_trace_id=*/0x123);

  HttpServer server;
  TelemetrySources sources;
  sources.metrics = &metrics;
  RegisterTelemetryEndpoints(&server, sources);
  ASSERT_TRUE(server.Start().ok());
  const TestHttpResponse response = HttpGet(server.port(), "/metrics");
  server.Stop();

  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  serving::ExpectValidPrometheusExposition(response.body);
  // The scraped bucket lines carry the trace exemplars.
  EXPECT_NE(response.body.find("# {trace_id=\"abcdef\"} 50"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("# {trace_id=\"123\"} 500"), std::string::npos);
}

TEST(TelemetryEndpointsTest, QueryzForwardsTopNToTheCallback) {
  // halk_net carries no query/plan types: /queryz is fed through the
  // callback alone, so a fake store suffices to pin the endpoint contract
  // (JSON content type, default top=10, clamped ?top= parsing).
  HttpServer server;
  TelemetrySources sources;
  std::vector<size_t> asked;
  sources.query_stats_json = [&asked](size_t top_n) {
    asked.push_back(top_n);
    return std::string("{\"queries\":[{\"top\":") +
           std::to_string(top_n) + "}]}";
  };
  RegisterTelemetryEndpoints(&server, sources);
  ASSERT_TRUE(server.Start().ok());

  const TestHttpResponse plain = HttpGet(server.port(), "/queryz");
  EXPECT_EQ(plain.status, 200);
  EXPECT_EQ(plain.content_type, "application/json; charset=utf-8");
  EXPECT_NE(plain.body.find("\"queries\":["), std::string::npos);

  EXPECT_EQ(HttpGet(server.port(), "/queryz?top=3").status, 200);
  EXPECT_EQ(HttpGet(server.port(), "/queryz?top=0").status, 200);
  EXPECT_EQ(HttpGet(server.port(), "/queryz?top=junk").status, 200);
  server.Stop();

  ASSERT_EQ(asked.size(), 4u);
  EXPECT_EQ(asked[0], 10u);  // default
  EXPECT_EQ(asked[1], 3u);
  EXPECT_EQ(asked[2], 1u);  // clamped to the [1, 1024] range
  EXPECT_EQ(asked[3], 1u);  // atoi("junk") == 0, clamped up
}

TEST(TelemetryEndpointsTest, SloEndpointReportsBurnRates) {
  obs::SloTracker slo;
  slo.RecordRequest(/*latency_us=*/120.0, /*ok=*/true);
  slo.RecordRequest(/*latency_us=*/80.0, /*ok=*/false);

  HttpServer server;
  TelemetrySources sources;
  sources.slo = &slo;
  RegisterTelemetryEndpoints(&server, sources);
  ASSERT_TRUE(server.Start().ok());
  const TestHttpResponse response = HttpGet(server.port(), "/slo");
  server.Stop();

  EXPECT_EQ(response.status, 200);
  auto parsed = obs::ParseJsonLine(
      response.body.substr(0, response.body.find('\n')));
  ASSERT_TRUE(parsed.ok()) << response.body;
  const obs::JsonValue* requests = obs::FindKey(*parsed, "requests_fast");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->number, 2.0);
  EXPECT_NE(obs::FindKey(*parsed, "latency_burn_fast"), nullptr);
  EXPECT_NE(obs::FindKey(*parsed, "error_burn_slow"), nullptr);
  EXPECT_NE(obs::FindKey(*parsed, "latency_alert"), nullptr);
}

TEST(TelemetryEndpointsTest, TracesEndpointReturnsRecentSpans) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    const obs::TraceContext trace{&tracer, tracer.StartTrace(), 0};
    obs::SpanGuard span(trace, "telemetry_test_span");
    span.End();
  }

  HttpServer server;
  TelemetrySources sources;
  sources.tracer = &tracer;
  RegisterTelemetryEndpoints(&server, sources);
  ASSERT_TRUE(server.Start().ok());
  const TestHttpResponse response = HttpGet(server.port(), "/traces?spans=8");
  server.Stop();

  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("telemetry_test_span"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("trace_id"), std::string::npos);
}

// The acceptance scenario: a live endpoint suite over a real sharded
// coordinator whose replica-health gauges feed /healthz. Downing every
// replica of one shard flips it to 503; reviving flips it back.
TEST(TelemetryEndpointsTest, HealthzFlipsOnInjectedShardOutage) {
  kg::SyntheticKgOptions opt;
  opt.num_entities = 120;
  opt.num_relations = 5;
  opt.num_triples = 600;
  opt.seed = 13;
  kg::Dataset dataset = kg::GenerateSyntheticKg(opt);
  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 8;
  config.hidden = 16;
  config.seed = 5;
  core::HalkModel model(config, nullptr);

  shard::ShardFaultInjector faults;
  shard::ShardOptions options;
  options.num_shards = 2;
  options.replication = 1;
  options.down_after_failures = 2;
  serving::MetricsRegistry metrics;
  shard::ShardCoordinator coordinator(&model, options, &faults, &metrics);

  HttpServer server;
  TelemetrySources sources;
  sources.metrics = &metrics;
  RegisterTelemetryEndpoints(&server, sources);
  ASSERT_TRUE(server.Start().ok());

  query::QuerySampler sampler(&dataset.train, 7);
  const auto queries = sampler.SampleMany(StructureId::k1p, 4).ValueOrDie();

  // Healthy at start: gauges exist once the coordinator served a query.
  (void)coordinator.TopK(queries[0].graph, 5);
  TestHttpResponse healthy = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos);

  // Down the only replica of shard 0; after down_after_failures failed
  // calls its gauge reaches 2 and the shard has no live replica left.
  faults.SetShardDown(0, options.replication, true);
  for (const auto& q : queries) (void)coordinator.TopK(q.graph, 5);
  TestHttpResponse degraded = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("\"status\":\"unavailable\""),
            std::string::npos)
      << degraded.body;
  EXPECT_NE(degraded.body.find("\"shards_down\":1"), std::string::npos);
  // /readyz mirrors liveness and names the reason.
  TestHttpResponse not_ready = HttpGet(server.port(), "/readyz");
  EXPECT_EQ(not_ready.status, 503);
  EXPECT_NE(not_ready.body.find("shard coverage lost"), std::string::npos);

  // Revive: the next successful call per replica restores the gauge.
  faults.SetShardDown(0, options.replication, false);
  for (const auto& q : queries) (void)coordinator.TopK(q.graph, 5);
  TestHttpResponse recovered = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(recovered.status, 200);

  server.Stop();
}

// The second acceptance scenario: /readyz additionally runs the injected
// readiness probe — here the store's checksum verification over a shard
// file whose bytes were corrupted after it was mapped lazily.
TEST(TelemetryEndpointsTest, ReadyzFlipsOnCorruptedStoreFile) {
  const std::string path = testing::TempDir() + "/telemetry_readyz.halkstore";
  {
    store::ShardFileWriter writer(path, /*dim=*/4, /*entity_begin=*/0,
                                  /*entity_end=*/64, /*rows_per_group=*/16);
    std::vector<float> row(4, 1.5f);
    for (int64_t e = 0; e < 64; ++e) {
      ASSERT_TRUE(writer.Append(row.data(), 1).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  auto serve_readyz = [&](const std::string& file) {
    store::MappedShardFile::OpenOptions lazy;
    lazy.verify_checksums = false;
    auto opened = store::MappedShardFile::Open(file, lazy);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    store::MappedShardFile* mapped = opened->get();
    HttpServer server;
    TelemetrySources sources;
    sources.ready_check = [mapped] { return mapped->VerifyChecksums(); };
    RegisterTelemetryEndpoints(&server, sources);
    EXPECT_TRUE(server.Start().ok());
    const TestHttpResponse response = HttpGet(server.port(), "/readyz");
    server.Stop();
    return response;
  };

  const TestHttpResponse ready = serve_readyz(path);
  EXPECT_EQ(ready.status, 200);

  // Flip a data byte: liveness is untouched, readiness must flip.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  const TestHttpResponse not_ready = serve_readyz(path);
  EXPECT_EQ(not_ready.status, 503);
  EXPECT_NE(not_ready.body.find("\"reason\""), std::string::npos)
      << not_ready.body;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace halk::net
