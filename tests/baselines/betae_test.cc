#include "baselines/betae.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::baselines {
namespace {

using core::EmbeddingBatch;
using tensor::Tensor;

// --- Special functions backing the KL distance. ---

TEST(SpecialFunctionsTest, DigammaKnownValues) {
  // ψ(1) = -γ_EM, ψ(2) = 1 - γ_EM, ψ(0.5) = -γ_EM - 2 ln 2.
  constexpr float kEulerMascheroni = 0.5772157f;
  EXPECT_NEAR(tensor::special::DigammaScalar(1.0f), -kEulerMascheroni, 1e-4f);
  EXPECT_NEAR(tensor::special::DigammaScalar(2.0f), 1.0f - kEulerMascheroni,
              1e-4f);
  EXPECT_NEAR(tensor::special::DigammaScalar(0.5f),
              -kEulerMascheroni - 2.0f * std::log(2.0f), 1e-4f);
}

TEST(SpecialFunctionsTest, TrigammaKnownValues) {
  // ψ'(1) = π²/6, ψ'(2) = π²/6 − 1.
  constexpr float kPiSq6 = 1.6449341f;
  EXPECT_NEAR(tensor::special::TrigammaScalar(1.0f), kPiSq6, 1e-3f);
  EXPECT_NEAR(tensor::special::TrigammaScalar(2.0f), kPiSq6 - 1.0f, 1e-3f);
}

TEST(SpecialFunctionsTest, DigammaIsLgammaDerivative) {
  for (float x : {0.3f, 1.0f, 2.5f, 7.0f, 20.0f}) {
    const float eps = 1e-3f;
    const float numeric =
        (std::lgamma(x + eps) - std::lgamma(x - eps)) / (2.0f * eps);
    EXPECT_NEAR(tensor::special::DigammaScalar(x), numeric, 5e-3f) << x;
  }
}

TEST(SpecialFunctionsTest, LgammaOpGradientMatchesDigamma) {
  Tensor x = Tensor::FromVector({3}, {0.7f, 2.0f, 9.0f});
  x.set_requires_grad(true);
  tensor::Backward(tensor::SumAll(tensor::Lgamma(x)));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad()[i], tensor::special::DigammaScalar(x.at(i)), 1e-4f);
  }
}

// --- The model itself. ---

class BetaETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 1100;
    opt.seed = 88;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static core::ModelConfig SmallConfig() {
    core::ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.seed = 7;
    return c;
  }
  static kg::Dataset* dataset_;
};

kg::Dataset* BetaETest::dataset_ = nullptr;

TEST_F(BetaETest, ParametersStayPositive) {
  BetaEModel model(SmallConfig(), nullptr);
  EmbeddingBatch anchors = model.EmbedAnchors({0, 1, 2});
  for (int64_t i = 0; i < anchors.a.numel(); ++i) {
    EXPECT_GE(anchors.a.at(i), BetaEModel::kMinParam);
    EXPECT_GE(anchors.b.at(i), BetaEModel::kMinParam);
  }
  EmbeddingBatch proj = model.Projection(anchors, {0, 1, 2});
  for (int64_t i = 0; i < proj.a.numel(); ++i) {
    EXPECT_GE(proj.a.at(i), BetaEModel::kMinParam);
  }
}

TEST_F(BetaETest, KlIsZeroForIdenticalDistributions) {
  BetaEModel model(SmallConfig(), nullptr);
  EmbeddingBatch self = model.EmbedAnchors({5});
  Tensor d = model.Distance({5}, self);
  EXPECT_NEAR(d.at(0), 0.0f, 1e-3f);
}

TEST_F(BetaETest, KlIsNonNegative) {
  BetaEModel model(SmallConfig(), nullptr);
  EmbeddingBatch q = model.Projection(model.EmbedAnchors({0}), {0});
  for (int64_t e = 0; e < 20; ++e) {
    Tensor d = model.Distance({e}, q);
    EXPECT_GE(d.at(0), -1e-3f) << "entity " << e;
  }
}

TEST_F(BetaETest, DoubleNegationIsIdentity) {
  // (1/(1/α), 1/(1/β)) = (α, β) exactly.
  BetaEModel model(SmallConfig(), nullptr);
  EmbeddingBatch x = model.EmbedAnchors({3});
  EmbeddingBatch nn = model.Negation(model.Negation(x));
  for (int64_t i = 0; i < x.a.numel(); ++i) {
    EXPECT_NEAR(nn.a.at(i), x.a.at(i), 1e-4f);
    EXPECT_NEAR(nn.b.at(i), x.b.at(i), 1e-4f);
  }
}

TEST_F(BetaETest, DistanceConsistentWithDistancesToAll) {
  BetaEModel model(SmallConfig(), nullptr);
  query::QuerySampler sampler(&dataset_->train, 3);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  std::vector<float> all;
  model.DistancesToAll(emb, 0, &all);
  for (int64_t e : {int64_t{0}, int64_t{40}, int64_t{120}}) {
    Tensor d = model.Distance({e}, emb);
    EXPECT_NEAR(d.at(0), all[static_cast<size_t>(e)], 2e-2f);
  }
}

TEST_F(BetaETest, TrainsWithoutNan) {
  BetaEModel model(SmallConfig(), nullptr);
  core::TrainerOptions opt;
  opt.steps = 60;
  opt.batch_size = 8;
  opt.num_negatives = 4;
  opt.learning_rate = 3e-3f;
  opt.queries_per_structure = 30;
  opt.seed = 5;
  core::Trainer trainer(&model, &dataset_->train, nullptr, opt);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(std::isfinite(stats->final_loss));
}

TEST_F(BetaETest, SupportsMatchesBetaEFamily) {
  BetaEModel model(SmallConfig(), nullptr);
  EXPECT_TRUE(model.Supports(query::OpType::kNegation));
  EXPECT_FALSE(model.Supports(query::OpType::kDifference));
}

}  // namespace
}  // namespace halk::baselines
