#include <cmath>

#include <gtest/gtest.h>

#include "baselines/ablations.h"
#include "baselines/cone.h"
#include "baselines/factory.h"
#include "baselines/mlpmix.h"
#include "baselines/newlook.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "tensor/tape.h"

namespace halk::baselines {
namespace {

using core::EmbeddingBatch;
using core::ModelConfig;
using query::StructureId;
using tensor::Shape;

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 77;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(5);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 6, &rng));
    grouping_->BuildAdjacency(dataset_->train);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete grouping_;
    dataset_ = nullptr;
    grouping_ = nullptr;
  }

  static ModelConfig SmallConfig() {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.gamma = 6.0f;
    c.seed = 9;
    return c;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
};

kg::Dataset* BaselinesTest::dataset_ = nullptr;
kg::NodeGrouping* BaselinesTest::grouping_ = nullptr;

TEST_F(BaselinesTest, FactoryBuildsEveryModel) {
  for (const std::string& name : AvailableModels()) {
    auto model = CreateModel(name, SmallConfig(), grouping_);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_FALSE((*model)->name().empty());
  }
  EXPECT_FALSE(CreateModel("bogus", SmallConfig(), grouping_).ok());
}

TEST_F(BaselinesTest, OperatorSupportMatchesPaperTables) {
  ConeModel cone(SmallConfig(), grouping_);
  EXPECT_FALSE(cone.Supports(query::OpType::kDifference));
  EXPECT_TRUE(cone.Supports(query::OpType::kNegation));

  NewLookModel newlook(SmallConfig(), grouping_);
  EXPECT_TRUE(newlook.Supports(query::OpType::kDifference));
  EXPECT_FALSE(newlook.Supports(query::OpType::kNegation));

  MlpMixModel mlpmix(SmallConfig(), grouping_);
  EXPECT_FALSE(mlpmix.Supports(query::OpType::kDifference));
  EXPECT_TRUE(mlpmix.Supports(query::OpType::kNegation));
}

TEST_F(BaselinesTest, StructureFilteringPerModel) {
  ConeModel cone(SmallConfig(), grouping_);
  EXPECT_TRUE(core::ModelSupportsStructure(cone, StructureId::k2in));
  EXPECT_FALSE(core::ModelSupportsStructure(cone, StructureId::k2d));

  NewLookModel newlook(SmallConfig(), grouping_);
  EXPECT_TRUE(core::ModelSupportsStructure(newlook, StructureId::k2d));
  EXPECT_FALSE(core::ModelSupportsStructure(newlook, StructureId::kPni));
}

TEST_F(BaselinesTest, EveryModelEmbedsSupportedStructures) {
  query::QuerySampler sampler(&dataset_->train, 3);
  for (const std::string& name : AvailableModels()) {
    auto model = CreateModel(name, SmallConfig(), grouping_);
    ASSERT_TRUE(model.ok());
    for (StructureId id : query::AllStructures()) {
      query::QueryGraph proto = query::MakeStructure(id);
      if (proto.HasOp(query::OpType::kUnion)) continue;
      if (!core::ModelSupportsStructure(**model, id)) continue;
      auto q = sampler.Sample(id);
      ASSERT_TRUE(q.ok());
      std::vector<const query::QueryGraph*> batch = {&q->graph};
      EmbeddingBatch emb = (*model)->EmbedQueries(batch);
      ASSERT_EQ(emb.a.shape(), Shape({1, 8})) << name << "/"
                                              << query::StructureName(id);
      for (int64_t i = 0; i < emb.a.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(emb.a.at(i)));
      }
    }
  }
}

TEST_F(BaselinesTest, DistanceConsistencyAcrossModels) {
  query::QuerySampler sampler(&dataset_->train, 5);
  auto q = sampler.Sample(StructureId::k1p);
  ASSERT_TRUE(q.ok());
  for (const std::string& name : AvailableModels()) {
    auto model = CreateModel(name, SmallConfig(), grouping_);
    ASSERT_TRUE(model.ok());
    std::vector<const query::QueryGraph*> batch = {&q->graph};
    EmbeddingBatch emb = (*model)->EmbedQueries(batch);
    std::vector<float> all;
    (*model)->DistancesToAll(emb, 0, &all);
    tensor::Tensor d = (*model)->Distance({42}, emb);
    EXPECT_NEAR(d.at(0), all[42], 1e-3f) << name;
  }
}

TEST_F(BaselinesTest, NewLookOffsetsNonNegative) {
  NewLookModel model(SmallConfig(), grouping_);
  EmbeddingBatch anchors = model.EmbedAnchors({0, 1});
  EmbeddingBatch proj = model.Projection(anchors, {0, 1});
  for (int64_t i = 0; i < proj.b.numel(); ++i) {
    EXPECT_GE(proj.b.at(i), 0.0f);
  }
  EmbeddingBatch diff = model.Difference({proj, model.Projection(anchors, {2, 3})});
  for (int64_t i = 0; i < diff.b.numel(); ++i) {
    EXPECT_GE(diff.b.at(i), 0.0f);
    EXPECT_LE(diff.b.at(i), proj.b.at(i) + 1e-5f);  // box shrinks
  }
}

TEST_F(BaselinesTest, ConeNegationIsExactlyLinear) {
  ConeModel model(SmallConfig(), grouping_);
  core::ArcBatch in{tensor::Tensor::FromVector({1, 8},
                        {0.5f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 0.1f}),
                    tensor::Tensor::Full({1, 8}, 1.0f)};
  core::ArcBatch out = model.Negation(in);
  constexpr float kPi = 3.14159265f;
  constexpr float kTwoPi = 2.0f * kPi;
  for (int64_t i = 0; i < 8; ++i) {
    float expected = in.center.at(i) + kPi;
    if (expected >= kTwoPi) expected -= kTwoPi;
    EXPECT_NEAR(out.center.at(i), expected, 1e-4f);
    EXPECT_NEAR(out.length.at(i), kTwoPi - 1.0f, 1e-4f);
  }
}

TEST_F(BaselinesTest, HalkV2NegationMatchesLinearForm) {
  HalkV2Model model(SmallConfig(), grouping_);
  core::ArcBatch in{tensor::Tensor::Full({1, 8}, 1.0f),
                    tensor::Tensor::Full({1, 8}, 0.5f)};
  core::ArcBatch out = model.Negation(in);
  constexpr float kPi = 3.14159265f;
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(out.center.at(i), 1.0f + kPi, 1e-4f);
    EXPECT_NEAR(out.length.at(i), 2.0f * kPi - 0.5f, 1e-4f);
  }
}

TEST_F(BaselinesTest, HalkV1DropsCardinalityConstraint) {
  // V1's difference length may exceed the minuend's; full HaLk's cannot.
  HalkV1Model model(SmallConfig(), grouping_);
  core::ArcBatch a{tensor::Tensor::Full({1, 8}, 1.0f),
                   tensor::Tensor::Full({1, 8}, 0.01f)};  // tiny minuend
  core::ArcBatch b{tensor::Tensor::Full({1, 8}, 2.0f),
                   tensor::Tensor::Full({1, 8}, 1.0f)};
  core::ArcBatch d = model.Difference({a, b});
  float max_len = 0.0f;
  for (int64_t i = 0; i < 8; ++i) max_len = std::max(max_len, d.length.at(i));
  EXPECT_GT(max_len, 0.011f);  // unconstrained by the 0.01 minuend
}

TEST_F(BaselinesTest, EachBaselineTrainsWithoutNan) {
  for (const std::string& name : {"cone", "newlook", "mlpmix"}) {
    auto model = CreateModel(name, SmallConfig(), grouping_);
    ASSERT_TRUE(model.ok());
    core::TrainerOptions opt;
    opt.steps = 40;
    opt.batch_size = 8;
    opt.num_negatives = 4;
    opt.learning_rate = 3e-3f;
    opt.queries_per_structure = 30;
    opt.seed = 13;
    core::Trainer trainer(model->get(), &dataset_->train, grouping_, opt);
    auto stats = trainer.Train();
    ASSERT_TRUE(stats.ok()) << name;
    EXPECT_TRUE(std::isfinite(stats->final_loss)) << name;
  }
}

TEST_F(BaselinesTest, AblationsTrainAndEvaluate) {
  query::QuerySampler sampler(&dataset_->train, 17);
  auto queries = sampler.SampleMany(StructureId::k2d, 8);
  ASSERT_TRUE(queries.ok());
  for (const std::string& name : {"halk-v1", "halk-v2", "halk-v3"}) {
    auto model = CreateModel(name, SmallConfig(), grouping_);
    ASSERT_TRUE(model.ok());
    core::TrainerOptions opt;
    opt.steps = 30;
    opt.batch_size = 8;
    opt.num_negatives = 4;
    opt.queries_per_structure = 30;
    opt.seed = 19;
    core::Trainer trainer(model->get(), &dataset_->train, grouping_, opt);
    ASSERT_TRUE(trainer.Train().ok()) << name;
    core::Evaluator eval(model->get());
    core::Metrics m = eval.Evaluate(*queries);
    EXPECT_GE(m.mrr, 0.0) << name;
    EXPECT_LE(m.mrr, 1.0) << name;
  }
}

}  // namespace
}  // namespace halk::baselines
