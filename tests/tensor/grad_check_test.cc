// Property-style numerical gradient verification: for every differentiable
// op, the autograd gradient must match a central finite difference of the
// scalarized output at randomly drawn (kink-free) points.

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::tensor {
namespace {

using BuildFn = std::function<Tensor(const std::vector<Tensor>&)>;

// Verifies d(scalar f(inputs))/d(inputs) against central differences.
void CheckGrad(const BuildFn& f, std::vector<Tensor> inputs,
               float eps = 1e-2f, float tol = 3e-2f) {
  for (Tensor& t : inputs) t.set_requires_grad(true);
  Tensor loss = f(inputs);
  ASSERT_EQ(loss.numel(), 1);
  Backward(loss);

  for (size_t t = 0; t < inputs.size(); ++t) {
    std::vector<float> analytic = inputs[t].grad_vector();
    for (int64_t i = 0; i < inputs[t].numel(); ++i) {
      const float orig = inputs[t].data()[i];
      inputs[t].data()[i] = orig + eps;
      const float up = f(inputs).at(0);
      inputs[t].data()[i] = orig - eps;
      const float down = f(inputs).at(0);
      inputs[t].data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[static_cast<size_t>(i)];
      const float denom = std::max({1.0f, std::fabs(a), std::fabs(numeric)});
      EXPECT_NEAR(a, numeric, tol * denom)
          << "input " << t << " element " << i;
    }
  }
}

std::vector<float> RandomValues(Rng* rng, int64_t n, float lo, float hi) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng->Uniform(lo, hi));
  return v;
}

TEST(GradCheckTest, Add) {
  Rng rng(1);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Add(in[0], in[1]));
  }, {Tensor::FromVector({2, 3}, RandomValues(&rng, 6, -1, 1)),
      Tensor::FromVector({2, 3}, RandomValues(&rng, 6, -1, 1))});
}

TEST(GradCheckTest, SubRowBroadcast) {
  Rng rng(2);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(Sub(in[0], in[1])));
  }, {Tensor::FromVector({3, 2}, RandomValues(&rng, 6, -1, 1)),
      Tensor::FromVector({2}, RandomValues(&rng, 2, -1, 1))});
}

TEST(GradCheckTest, MulScalarBroadcast) {
  Rng rng(3);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Mul(in[0], in[1]));
  }, {Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({1}, RandomValues(&rng, 1, 0.5, 1.5))});
}

TEST(GradCheckTest, Div) {
  Rng rng(4);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Div(in[0], in[1]));
  }, {Tensor::FromVector({4}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({4}, RandomValues(&rng, 4, 1.0, 2.0))});
}

TEST(GradCheckTest, SinCos) {
  Rng rng(5);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Add(Sin(in[0]), Cos(in[0])));
  }, {Tensor::FromVector({5}, RandomValues(&rng, 5, -3, 3))});
}

TEST(GradCheckTest, TanhSigmoid) {
  Rng rng(6);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Mul(Tanh(in[0]), Sigmoid(in[0])));
  }, {Tensor::FromVector({5}, RandomValues(&rng, 5, -2, 2))});
}

TEST(GradCheckTest, ReluAwayFromKink) {
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Relu(in[0]));
  }, {Tensor::FromVector({4}, {-1.0f, -0.5f, 0.5f, 1.0f})});
}

TEST(GradCheckTest, AbsAwayFromKink) {
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Abs(in[0]));
  }, {Tensor::FromVector({4}, {-1.0f, -0.5f, 0.5f, 1.0f})});
}

TEST(GradCheckTest, ExpLogSqrt) {
  Rng rng(7);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Add(Exp(in[0]), Add(Log(in[0]), Sqrt(in[0]))));
  }, {Tensor::FromVector({4}, RandomValues(&rng, 4, 0.5, 2.0))});
}

TEST(GradCheckTest, SquareChain) {
  Rng rng(8);
  CheckGrad([](const std::vector<Tensor>& in) {
    return MeanAll(Square(Square(in[0])));
  }, {Tensor::FromVector({3}, RandomValues(&rng, 3, -1.5, 1.5))});
}

TEST(GradCheckTest, Atan2) {
  Rng rng(9);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Atan2(in[0], in[1]));
  }, {Tensor::FromVector({4}, RandomValues(&rng, 4, 0.5, 1.5)),
      Tensor::FromVector({4}, RandomValues(&rng, 4, 0.5, 1.5))});
}

TEST(GradCheckTest, MinimumMaximumAwayFromTies) {
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Add(Minimum(in[0], in[1]), Maximum(in[0], in[1])));
  }, {Tensor::FromVector({3}, {1.0f, 5.0f, 2.0f}),
      Tensor::FromVector({3}, {2.0f, 3.0f, 4.0f})});
}

TEST(GradCheckTest, MatMul) {
  Rng rng(10);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(MatMul(in[0], in[1])));
  }, {Tensor::FromVector({2, 3}, RandomValues(&rng, 6, -1, 1)),
      Tensor::FromVector({3, 2}, RandomValues(&rng, 6, -1, 1))});
}

TEST(GradCheckTest, ConcatSliceChain) {
  Rng rng(11);
  CheckGrad([](const std::vector<Tensor>& in) {
    Tensor cat = Concat({in[0], in[1]}, 1);
    Tensor sl = SliceCols(cat, 1, 3);
    return SumAll(Square(sl));
  }, {Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1))});
}

TEST(GradCheckTest, SumDimMeanDim) {
  Rng rng(12);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(SumDim(in[0], 0))) + SumAll(Square(MeanDim(in[0], 1)));
  }, {Tensor::FromVector({3, 2}, RandomValues(&rng, 6, -1, 1))});
}

TEST(GradCheckTest, GatherThroughLoss) {
  Rng rng(13);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(Gather(in[0], {0, 2, 0})));
  }, {Tensor::FromVector({3, 2}, RandomValues(&rng, 6, -1, 1))});
}

TEST(GradCheckTest, BroadcastRowThroughLoss) {
  Rng rng(14);
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(BroadcastRow(in[0], 4)));
  }, {Tensor::FromVector({3}, RandomValues(&rng, 3, -1, 1))});
}

TEST(GradCheckTest, Mod2PiPassThrough) {
  // Points away from wrap boundaries.
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Sin(Mod2Pi(in[0])));
  }, {Tensor::FromVector({3}, {7.0f, -2.0f, 14.0f})});
}

TEST(GradCheckTest, ClampInterior) {
  CheckGrad([](const std::vector<Tensor>& in) {
    return SumAll(Square(Clamp(in[0], -10.0f, 10.0f)));
  }, {Tensor::FromVector({3}, {-1.0f, 0.5f, 2.0f})});
}

TEST(GradCheckTest, AttentionPattern) {
  // w_i = exp(s_i) / sum_j exp(s_j) elementwise, then weighted mix —
  // the exact computation the HaLk intersection/difference operators use.
  Rng rng(15);
  CheckGrad([](const std::vector<Tensor>& in) {
    Tensor e0 = Exp(in[0]);
    Tensor e1 = Exp(in[1]);
    Tensor denom = Add(e0, e1);
    Tensor w0 = Div(e0, denom);
    Tensor w1 = Div(e1, denom);
    Tensor mix = Add(Mul(w0, in[2]), Mul(w1, in[3]));
    return MeanAll(Square(mix));
  }, {Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1)),
      Tensor::FromVector({2, 2}, RandomValues(&rng, 4, -1, 1))});
}

TEST(GradCheckTest, DeepComposition) {
  Rng rng(16);
  CheckGrad([](const std::vector<Tensor>& in) {
    Tensor h = Tanh(MatMul(in[0], in[1]));
    Tensor g = Sigmoid(MatMul(h, in[2]));
    return MeanAll(Square(g));
  }, {Tensor::FromVector({2, 3}, RandomValues(&rng, 6, -1, 1)),
      Tensor::FromVector({3, 3}, RandomValues(&rng, 9, -1, 1)),
      Tensor::FromVector({3, 1}, RandomValues(&rng, 3, -1, 1))});
}

}  // namespace
}  // namespace halk::tensor
