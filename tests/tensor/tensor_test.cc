#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::tensor {
namespace {

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.at(i), 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.at(i), 2.5f);
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ScalarShape) {
  Tensor s = Tensor::Scalar(3.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.at(0), 3.0f);
}

TEST(TensorTest, UndefinedHandle) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, RequiresGradDefaultsFalse) {
  Tensor t = Tensor::Zeros({3});
  EXPECT_FALSE(t.requires_grad());
  t.set_requires_grad(true);
  EXPECT_TRUE(t.requires_grad());
}

TEST(TensorTest, RequiresGradPropagatesThroughOps) {
  Tensor a = Tensor::Full({3}, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Full({3}, 2.0f);
  Tensor c = Add(a, b);
  EXPECT_TRUE(c.requires_grad());

  Tensor d = Add(b, b);
  EXPECT_FALSE(d.requires_grad());
}

TEST(TensorTest, DetachCutsGraph) {
  Tensor a = Tensor::Full({1}, 1.0f).set_requires_grad(true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor c = b.Detach();
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.at(0), 2.0f);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor a = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  Tensor loss = SumAll(a);
  Backward(loss);
  EXPECT_EQ(a.grad()[0], 1.0f);
  a.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, BackwardAccumulates) {
  Tensor a = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  for (int i = 0; i < 3; ++i) {
    Tensor loss = SumAll(a);
    Backward(loss);
  }
  EXPECT_EQ(a.grad()[0], 3.0f);
}

TEST(TensorTest, GraphSizeCountsNodes) {
  Tensor a = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor c = Add(b, a);
  EXPECT_EQ(GraphSize(c), 3);
}

TEST(TensorTest, DiamondGraphGradient) {
  // loss = sum(a*a + a) -> dl/da = 2a + 1 = 3 at a=1.
  Tensor a = Tensor::Full({1}, 1.0f).set_requires_grad(true);
  Tensor loss = SumAll(Add(Mul(a, a), a));
  Backward(loss);
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
}

}  // namespace
}  // namespace halk::tensor
