// Parameterized sweeps: every elementwise op must satisfy its algebraic
// identities across a grid of shapes and seeds, and every gradient must
// match central differences (complementing grad_check_test.cc's targeted
// cases with breadth).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::tensor {
namespace {

using ShapeSeed = std::tuple<int64_t, int64_t, uint64_t>;  // rows, cols, seed

class OpsSweepTest : public ::testing::TestWithParam<ShapeSeed> {
 protected:
  Tensor RandomTensor(Rng* rng, float lo = -2.0f, float hi = 2.0f) {
    auto [rows, cols, seed] = GetParam();
    std::vector<float> v(static_cast<size_t>(rows * cols));
    for (auto& x : v) x = static_cast<float>(rng->Uniform(lo, hi));
    return Tensor::FromVector({rows, cols}, std::move(v));
  }
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpsSweepTest,
    ::testing::Values(ShapeSeed{1, 1, 11}, ShapeSeed{1, 7, 12},
                      ShapeSeed{5, 3, 13}, ShapeSeed{8, 8, 14},
                      ShapeSeed{2, 16, 15}));

TEST_P(OpsSweepTest, AddCommutes) {
  Rng rng(std::get<2>(GetParam()));
  Tensor a = RandomTensor(&rng);
  Tensor b = RandomTensor(&rng);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  for (int64_t i = 0; i < ab.numel(); ++i) {
    EXPECT_FLOAT_EQ(ab.at(i), ba.at(i));
  }
}

TEST_P(OpsSweepTest, MulDistributesOverAdd) {
  Rng rng(std::get<2>(GetParam()) + 1);
  Tensor a = RandomTensor(&rng);
  Tensor b = RandomTensor(&rng);
  Tensor c = RandomTensor(&rng);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4f);
  }
}

TEST_P(OpsSweepTest, SubIsAddOfNeg) {
  Rng rng(std::get<2>(GetParam()) + 2);
  Tensor a = RandomTensor(&rng);
  Tensor b = RandomTensor(&rng);
  Tensor lhs = Sub(a, b);
  Tensor rhs = Add(a, Neg(b));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_FLOAT_EQ(lhs.at(i), rhs.at(i));
  }
}

TEST_P(OpsSweepTest, MinPlusMaxEqualsSum) {
  Rng rng(std::get<2>(GetParam()) + 3);
  Tensor a = RandomTensor(&rng);
  Tensor b = RandomTensor(&rng);
  Tensor lhs = Add(Minimum(a, b), Maximum(a, b));
  Tensor rhs = Add(a, b);
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_FLOAT_EQ(lhs.at(i), rhs.at(i));
  }
}

TEST_P(OpsSweepTest, SinSquaredPlusCosSquared) {
  Rng rng(std::get<2>(GetParam()) + 4);
  Tensor a = RandomTensor(&rng, -6.0f, 6.0f);
  Tensor lhs = Add(Square(Sin(a)), Square(Cos(a)));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), 1.0f, 1e-5f);
  }
}

TEST_P(OpsSweepTest, ExpLogRoundTrip) {
  Rng rng(std::get<2>(GetParam()) + 5);
  Tensor a = RandomTensor(&rng, 0.1f, 3.0f);
  Tensor rt = Exp(Log(a));
  for (int64_t i = 0; i < rt.numel(); ++i) {
    EXPECT_NEAR(rt.at(i), a.at(i), 1e-4f * std::fabs(a.at(i)) + 1e-5f);
  }
}

TEST_P(OpsSweepTest, SoftplusMatchesLogSigmoidIdentity) {
  // softplus(-x) == -log(sigmoid(x)).
  Rng rng(std::get<2>(GetParam()) + 6);
  Tensor a = RandomTensor(&rng, -8.0f, 8.0f);
  Tensor lhs = Softplus(Neg(a));
  Tensor rhs = Neg(Log(Sigmoid(a)));
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4f);
  }
}

TEST_P(OpsSweepTest, SumDimsConsistentWithSumAll) {
  Rng rng(std::get<2>(GetParam()) + 7);
  Tensor a = RandomTensor(&rng);
  const float total = SumAll(a).at(0);
  EXPECT_NEAR(SumAll(SumDim(a, 0)).at(0), total, 1e-3f);
  EXPECT_NEAR(SumAll(SumDim(a, 1)).at(0), total, 1e-3f);
}

TEST_P(OpsSweepTest, ConcatSliceRoundTrip) {
  Rng rng(std::get<2>(GetParam()) + 8);
  Tensor a = RandomTensor(&rng);
  Tensor b = RandomTensor(&rng);
  const int64_t cols = a.shape().dim(1);
  Tensor cat = Concat({a, b}, 1);
  Tensor a2 = SliceCols(cat, 0, cols);
  Tensor b2 = SliceCols(cat, cols, 2 * cols);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a2.at(i), a.at(i));
    EXPECT_FLOAT_EQ(b2.at(i), b.at(i));
  }
}

TEST_P(OpsSweepTest, MatMulIdentity) {
  Rng rng(std::get<2>(GetParam()) + 9);
  Tensor a = RandomTensor(&rng);
  const int64_t cols = a.shape().dim(1);
  Tensor eye = Tensor::Zeros({cols, cols});
  for (int64_t i = 0; i < cols; ++i) eye.data()[i * cols + i] = 1.0f;
  Tensor out = MatMul(a, eye);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(out.at(i), a.at(i), 1e-5f);
  }
}

TEST_P(OpsSweepTest, GradientOfCompositePipeline) {
  // Numerical gradient over a pipeline representative of model code:
  // softplus(sumdim(mul(sin(a), sigmoid(b)))).
  Rng rng(std::get<2>(GetParam()) + 10);
  Tensor a = RandomTensor(&rng).set_requires_grad(true);
  Tensor b = RandomTensor(&rng).set_requires_grad(true);
  auto f = [&]() {
    return MeanAll(Softplus(SumDim(Mul(Sin(a), Sigmoid(b)), 1)));
  };
  Tensor loss = f();
  Backward(loss);
  const float eps = 1e-2f;
  Rng pick(std::get<2>(GetParam()) + 11);
  for (int check = 0; check < 4; ++check) {
    Tensor& t = (check % 2 == 0) ? a : b;
    const int64_t i =
        static_cast<int64_t>(pick.UniformInt(static_cast<uint64_t>(t.numel())));
    const float orig = t.data()[i];
    t.data()[i] = orig + eps;
    const float up = f().at(0);
    t.data()[i] = orig - eps;
    const float down = f().at(0);
    t.data()[i] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(t.grad()[i], numeric,
                3e-2f * std::max(1.0f, std::fabs(numeric)));
  }
}

}  // namespace
}  // namespace halk::tensor
