#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace halk::tensor {
namespace {

TEST(ShapeTest, DefaultIsRankZero) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, InitializerList) {
  Shape s = {4, 8};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.dim(0), 4);
  EXPECT_EQ(s.dim(1), 8);
  EXPECT_EQ(s.numel(), 32);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({3}), Shape({3}));
  EXPECT_NE(Shape({3}), Shape({3, 1}));
  EXPECT_NE(Shape({3}), Shape({4}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({2, 5}).ToString(), "[2, 5]");
  EXPECT_EQ(Shape({}).ToString(), "[]");
}

}  // namespace
}  // namespace halk::tensor
