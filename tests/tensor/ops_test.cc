#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tape.h"

namespace halk::tensor {
namespace {

constexpr float kPi = 3.14159265358979f;

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 44.0f);
}

TEST(OpsTest, AddScalarBroadcast) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Tensor::Scalar(10.0f);
  Tensor c = Add(a, s);
  EXPECT_FLOAT_EQ(c.at(2), 13.0f);
  Tensor d = Add(s, a);
  EXPECT_FLOAT_EQ(d.at(0), 11.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor m = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = Add(m, r);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36.0f);
  Tensor d = Add(r, m);
  EXPECT_FLOAT_EQ(d.at(1, 0), 14.0f);
}

TEST(OpsTest, SubMulDiv) {
  Tensor a = Tensor::FromVector({2}, {6, 8});
  Tensor b = Tensor::FromVector({2}, {2, 4});
  EXPECT_FLOAT_EQ(Sub(a, b).at(0), 4.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(1), 32.0f);
  EXPECT_FLOAT_EQ(Div(a, b).at(1), 2.0f);
}

TEST(OpsTest, NegAndScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  EXPECT_FLOAT_EQ(Neg(a).at(1), 2.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 5.0f).at(0), 6.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, -3.0f).at(0), -3.0f);
}

TEST(OpsTest, TrigAndActivations) {
  Tensor a = Tensor::FromVector({3}, {0.0f, kPi / 2.0f, kPi});
  EXPECT_NEAR(Sin(a).at(1), 1.0f, 1e-6);
  EXPECT_NEAR(Cos(a).at(2), -1.0f, 1e-6);

  Tensor b = Tensor::FromVector({2}, {0.0f, 100.0f});
  EXPECT_NEAR(Tanh(b).at(0), 0.0f, 1e-6);
  EXPECT_NEAR(Tanh(b).at(1), 1.0f, 1e-6);
  EXPECT_NEAR(Sigmoid(b).at(0), 0.5f, 1e-6);

  Tensor c = Tensor::FromVector({2}, {-2.0f, 3.0f});
  EXPECT_FLOAT_EQ(Relu(c).at(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(c).at(1), 3.0f);
  EXPECT_FLOAT_EQ(Abs(c).at(0), 2.0f);
}

TEST(OpsTest, ExpLogSqrtSquare) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(Exp(a).at(1), std::exp(1.0f), 1e-5);
  Tensor b = Tensor::FromVector({2}, {1.0f, std::exp(2.0f)});
  EXPECT_NEAR(Log(b).at(1), 2.0f, 1e-5);
  Tensor c = Tensor::FromVector({2}, {4.0f, 9.0f});
  EXPECT_FLOAT_EQ(Sqrt(c).at(1), 3.0f);
  EXPECT_FLOAT_EQ(Square(c).at(0), 16.0f);
}

TEST(OpsTest, Atan2Quadrants) {
  Tensor y = Tensor::FromVector({4}, {1.0f, 1.0f, -1.0f, -1.0f});
  Tensor x = Tensor::FromVector({4}, {1.0f, -1.0f, -1.0f, 1.0f});
  Tensor a = Atan2(y, x);
  EXPECT_NEAR(a.at(0), kPi / 4.0f, 1e-6);
  EXPECT_NEAR(a.at(1), 3.0f * kPi / 4.0f, 1e-6);
  EXPECT_NEAR(a.at(2), -3.0f * kPi / 4.0f, 1e-6);
  EXPECT_NEAR(a.at(3), -kPi / 4.0f, 1e-6);
}

TEST(OpsTest, MinimumMaximum) {
  Tensor a = Tensor::FromVector({3}, {1, 5, 3});
  Tensor b = Tensor::FromVector({3}, {2, 4, 3});
  Tensor mn = Minimum(a, b);
  Tensor mx = Maximum(a, b);
  EXPECT_FLOAT_EQ(mn.at(0), 1.0f);
  EXPECT_FLOAT_EQ(mn.at(1), 4.0f);
  EXPECT_FLOAT_EQ(mx.at(0), 2.0f);
  EXPECT_FLOAT_EQ(mx.at(1), 5.0f);
}

TEST(OpsTest, Clamp) {
  Tensor a = Tensor::FromVector({3}, {-5, 0.5f, 5});
  Tensor c = Clamp(a, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.at(0), 0.0f);
  EXPECT_FLOAT_EQ(c.at(1), 0.5f);
  EXPECT_FLOAT_EQ(c.at(2), 1.0f);
}

TEST(OpsTest, Mod2PiWrapsIntoRange) {
  Tensor a = Tensor::FromVector({4}, {-kPi, 0.0f, 3.0f * kPi, 7.0f * kPi});
  Tensor m = Mod2Pi(a);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_GE(m.at(i), 0.0f);
    EXPECT_LT(m.at(i), 2.0f * kPi + 1e-5);
  }
  EXPECT_NEAR(m.at(0), kPi, 1e-5);
  EXPECT_NEAR(m.at(2), kPi, 1e-4);
}

TEST(OpsTest, MatMulValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, ConcatRank1) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({3}, {3, 4, 5});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.numel(), 5);
  EXPECT_FLOAT_EQ(c.at(4), 5.0f);
}

TEST(OpsTest, ConcatRank2Columns) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 10});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
}

TEST(OpsTest, SliceCols) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = SliceCols(a, 1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 7.0f);
}

TEST(OpsTest, Reshape) {
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor r = Reshape(a, Shape({2, 2}));
  EXPECT_FLOAT_EQ(r.at(1, 0), 3.0f);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a).at(0), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).at(0), 3.5f);

  Tensor s0 = SumDim(a, 0);
  EXPECT_EQ(s0.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(s0.at(0), 5.0f);
  EXPECT_FLOAT_EQ(s0.at(2), 9.0f);

  Tensor s1 = SumDim(a, 1);
  EXPECT_EQ(s1.shape(), Shape({2}));
  EXPECT_FLOAT_EQ(s1.at(0), 6.0f);
  EXPECT_FLOAT_EQ(s1.at(1), 15.0f);

  EXPECT_FLOAT_EQ(MeanDim(a, 1).at(0), 2.0f);
  EXPECT_FLOAT_EQ(MeanDim(a, 0).at(1), 3.5f);
}

TEST(OpsTest, GatherRows) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(table, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(OpsTest, GatherBackwardScatterAdds) {
  Tensor table = Tensor::FromVector({3, 2}, {0, 0, 0, 0, 0, 0});
  table.set_requires_grad(true);
  Tensor g = Gather(table, {1, 1});
  Tensor loss = SumAll(g);
  Backward(loss);
  // Row 1 gathered twice: grad 2 per element; rows 0,2 untouched.
  EXPECT_FLOAT_EQ(table.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(table.grad()[2], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[3], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[4], 0.0f);
}

TEST(OpsTest, BroadcastRowTiles) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = BroadcastRow(a, 3);
  EXPECT_EQ(b.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(b.at(2, 1), 2.0f);
}

TEST(OpsTest, OperatorSugar) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  EXPECT_FLOAT_EQ((a + b).at(0), 4.0f);
  EXPECT_FLOAT_EQ((a - b).at(1), -2.0f);
  EXPECT_FLOAT_EQ((a * b).at(1), 8.0f);
  EXPECT_FLOAT_EQ((a / b).at(0), 1.0f / 3.0f);
  EXPECT_FLOAT_EQ((-a).at(0), -1.0f);
}

TEST(OpsTest, RowBroadcastBackwardReduces) {
  Tensor m = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor r = Tensor::FromVector({2}, {1, 1}).set_requires_grad(true);
  Tensor loss = SumAll(Mul(m, r));
  Backward(loss);
  // d/dr_j = sum over rows of m[:, j].
  EXPECT_FLOAT_EQ(r.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(r.grad()[1], 6.0f);
}

TEST(OpsTest, ScalarBroadcastBackwardReduces) {
  Tensor m = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(1.0f).set_requires_grad(true);
  Tensor loss = SumAll(Mul(m, s));
  Backward(loss);
  EXPECT_FLOAT_EQ(s.grad()[0], 10.0f);
}

}  // namespace
}  // namespace halk::tensor
