// Autograd tape accounting: op counts, FLOP estimates, and byte totals
// for a hand-computed query-style graph (gather anchors -> matmul ->
// relu -> add -> sum_all, the shape of a HaLk scoring pass) must match
// exactly, forward and backward; plus the install/nest/disable semantics
// of the thread-local TapeAccounting scope.

#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace halk::tensor {
namespace {

TEST(TapeAccountingTest, HandComputedQueryGraphMatchesExactly) {
  // Entity table E (5x4) and projection W (4x3), both trainable.
  Tensor table = Tensor::Full(Shape({5, 4}), 0.5f);
  table.set_requires_grad(true);
  Tensor weight = Tensor::Full(Shape({4, 3}), 0.25f);
  weight.set_requires_grad(true);

  TapeAccounting accounting;
  ASSERT_EQ(TapeAccounting::Active(), &accounting);

  // "Query": embed two anchor entities, project, activate, combine, score.
  Tensor anchors = Gather(table, {0, 2});       // gather      2x4
  Tensor projected = MatMul(anchors, weight);   // matmul      2x3
  Tensor activated = Relu(projected);           // relu        2x3
  Tensor combined = Add(activated, activated);  // add         2x3
  Tensor loss = SumAll(combined);               // sum_all     1
  Backward(loss);

  const TapeStats& stats = accounting.stats();

  // ---- forward: one node per op ----------------------------------------
  EXPECT_EQ(stats.forward_nodes, 5);
  ASSERT_EQ(stats.forward.size(), 5u);
  EXPECT_EQ(stats.forward.at("gather").count, 1);
  EXPECT_EQ(stats.forward.at("matmul").count, 1);
  EXPECT_EQ(stats.forward.at("relu").count, 1);
  EXPECT_EQ(stats.forward.at("add").count, 1);
  EXPECT_EQ(stats.forward.at("sum_all").count, 1);

  // FLOPs: gather moves data (0); matmul is 2*m*k*n = 2*2*4*3 = 48;
  // relu and add are elementwise over 2x3 outputs (6 each); sum_all
  // touches every input element once (6).
  EXPECT_EQ(stats.forward.at("gather").flops, 0);
  EXPECT_EQ(stats.forward.at("matmul").flops, 48);
  EXPECT_EQ(stats.forward.at("relu").flops, 6);
  EXPECT_EQ(stats.forward.at("add").flops, 6);
  EXPECT_EQ(stats.forward.at("sum_all").flops, 6);
  EXPECT_EQ(stats.forward_flops, 48 + 6 + 6 + 6);

  // Bytes: each op's output buffer. 2x4 + 2x3 + 2x3 + 2x3 + 1 floats.
  EXPECT_EQ(stats.forward_bytes, (8 + 6 + 6 + 6 + 1) * 4);

  // ---- backward: one closure per non-leaf node, ~2x forward FLOPs ------
  EXPECT_EQ(stats.backward_nodes, 5);
  EXPECT_EQ(stats.backward.at("matmul").count, 1);
  EXPECT_EQ(stats.backward.at("matmul").flops, 96);
  EXPECT_EQ(stats.backward_flops, 2 * stats.forward_flops);
  // Gradient buffers mirror the output buffers.
  EXPECT_EQ(stats.backward_bytes, stats.forward_bytes);

  // ---- peak graph footprint: data + grad over every reachable node -----
  // After Backward every node holds data and grad: leaves 5x4 and 4x3
  // plus the five op outputs, each buffer twice (data + grad).
  EXPECT_EQ(stats.peak_graph_bytes,
            2 * (20 + 12 + 8 + 6 + 6 + 6 + 1) * 4);
}

TEST(TapeAccountingTest, NoAccountingMeansNoActiveAndNoCrash) {
  ASSERT_EQ(TapeAccounting::Active(), nullptr);
  Tensor a = Tensor::Full(Shape({2, 2}), 1.0f);
  a.set_requires_grad(true);
  Tensor loss = SumAll(Square(a));
  Backward(loss);
  EXPECT_FLOAT_EQ(loss.at(0), 4.0f);
}

TEST(TapeAccountingTest, ScopesNestAndRestore) {
  TapeAccounting outer;
  Tensor a = Tensor::Full(Shape({3}), 2.0f);
  a.set_requires_grad(true);
  {
    TapeAccounting inner;
    ASSERT_EQ(TapeAccounting::Active(), &inner);
    Tensor loss = SumAll(a);
    Backward(loss);
    EXPECT_EQ(inner.stats().forward_nodes, 1);
    // The inner scope absorbed the ops; the outer saw nothing.
    EXPECT_EQ(outer.stats().forward_nodes, 0);
  }
  ASSERT_EQ(TapeAccounting::Active(), &outer);
  Tensor loss = SumAll(a);
  Backward(loss);
  EXPECT_EQ(outer.stats().forward_nodes, 1);
  EXPECT_EQ(outer.stats().backward_nodes, 1);
}

TEST(TapeAccountingTest, ResetClearsTotals) {
  TapeAccounting accounting;
  Tensor a = Tensor::Full(Shape({4}), 1.0f);
  a.set_requires_grad(true);
  Backward(SumAll(a));
  ASSERT_GT(accounting.stats().forward_nodes, 0);
  accounting.Reset();
  EXPECT_EQ(accounting.stats().forward_nodes, 0);
  EXPECT_EQ(accounting.stats().backward_nodes, 0);
  EXPECT_TRUE(accounting.stats().forward.empty());
  EXPECT_EQ(accounting.stats().peak_graph_bytes, 0);
}

TEST(TapeAccountingTest, DataMoversAndDetachCountZeroFlops) {
  TapeAccounting accounting;
  Tensor a = Tensor::Full(Shape({2, 6}), 1.0f);
  a.set_requires_grad(true);
  Tensor r = Reshape(a, Shape({3, 4}));
  Tensor s = SliceCols(r, 0, 2);
  Tensor b = BroadcastRow(Tensor::Full(Shape({2}), 1.0f), 3);
  (void)s;
  (void)b;
  const TapeStats& stats = accounting.stats();
  EXPECT_EQ(stats.forward.at("reshape").flops, 0);
  EXPECT_EQ(stats.forward.at("slice_cols").flops, 0);
  EXPECT_EQ(stats.forward.at("broadcast_row").flops, 0);
  // Bytes still count: movement is traffic even when it computes nothing.
  EXPECT_EQ(stats.forward.at("reshape").bytes, 12 * 4);
}

}  // namespace
}  // namespace halk::tensor
