#include "serving/server.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/halk_model.h"
#include "kg/synthetic.h"
#include "obs/trace.h"
#include "query/sampler.h"
#include "query/structures.h"

namespace halk::serving {
namespace {

using query::StructureId;

/// Shared fixture: a small synthetic KG and an (untrained) HaLk model.
/// Serving correctness is weight-independent, so training is skipped.
class QueryServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 11;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 7;
    model_ = new core::HalkModel(config, nullptr);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<query::GroundedQuery> SampleQueries(
      StructureId structure, int count, uint64_t seed) {
    query::QuerySampler sampler(&dataset_->train, seed);
    return sampler.SampleMany(structure, count).ValueOrDie();
  }

  static kg::Dataset* dataset_;
  static core::HalkModel* model_;
};

kg::Dataset* QueryServerTest::dataset_ = nullptr;
core::HalkModel* QueryServerTest::model_ = nullptr;

TEST_F(QueryServerTest, AgreesWithUncachedEvaluatorAcrossStructures) {
  ServerOptions options;
  options.num_workers = 3;
  options.max_batch_size = 4;
  QueryServer server(model_, &dataset_->train, options);
  core::Evaluator evaluator(model_);
  // Union structures exercise the DNF branch batching.
  for (StructureId s : {StructureId::k1p, StructureId::k2p, StructureId::k2i,
                        StructureId::k2in, StructureId::k2d,
                        StructureId::k2u, StructureId::kUp}) {
    for (const query::GroundedQuery& q : SampleQueries(s, 3, 101)) {
      Result<TopKAnswer> served = server.Answer(q.graph, 10);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      std::vector<int64_t> expected = evaluator.TopK(q.graph, 10);
      EXPECT_EQ(served->entities, expected)
          << "structure " << query::StructureName(s);
    }
  }
}

TEST_F(QueryServerTest, CacheHitMatchesUncachedAnswer) {
  ServerOptions cached_options;
  cached_options.num_workers = 2;
  ServerOptions uncached_options;
  uncached_options.num_workers = 2;
  uncached_options.enable_cache = false;
  QueryServer cached(model_, &dataset_->train, cached_options);
  QueryServer uncached(model_, &dataset_->train, uncached_options);

  query::GroundedQuery q = SampleQueries(StructureId::k2i, 1, 33)[0];
  Result<TopKAnswer> first = cached.Answer(q.graph, 8);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  Result<TopKAnswer> second = cached.Answer(q.graph, 8);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  Result<TopKAnswer> baseline = uncached.Answer(q.graph, 8);
  ASSERT_TRUE(baseline.ok());

  EXPECT_EQ(first->entities, baseline->entities);
  EXPECT_EQ(second->entities, baseline->entities);
  EXPECT_EQ(second->distances, baseline->distances);
  EXPECT_GE(cached.metrics()->CounterValue("serving.cache_hits"), 1);
}

TEST_F(QueryServerTest, SmallerKIsServedFromLargerCachedEntry) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(model_, &dataset_->train, options);
  query::GroundedQuery q = SampleQueries(StructureId::k2p, 1, 55)[0];
  Result<TopKAnswer> big = server.Answer(q.graph, 10);
  ASSERT_TRUE(big.ok());
  Result<TopKAnswer> small = server.Answer(q.graph, 3);
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->from_cache);
  ASSERT_EQ(small->entities.size(), 3u);
  EXPECT_EQ(std::vector<int64_t>(big->entities.begin(),
                                 big->entities.begin() + 3),
            small->entities);
}

TEST_F(QueryServerTest, ConcurrentSubmittersAllAnswered) {
  ServerOptions options;
  options.num_workers = 4;
  options.max_batch_size = 8;
  QueryServer server(model_, &dataset_->train, options);
  core::Evaluator evaluator(model_);

  std::vector<query::GroundedQuery> pool =
      SampleQueries(StructureId::k2i, 12, 77);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const query::GroundedQuery& q =
            pool[static_cast<size_t>((t * kPerThread + i) % pool.size())];
        Result<TopKAnswer> r = server.Answer(q.graph, 5);
        if (!r.ok() || r->entities.size() != 5u) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.metrics()->CounterValue("serving.submitted"),
            kThreads * kPerThread);
  EXPECT_EQ(server.metrics()->CounterValue("serving.completed"),
            kThreads * kPerThread);
  // Spot-check one answer against the single-threaded path.
  Result<TopKAnswer> r = server.Answer(pool[0].graph, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entities, evaluator.TopK(pool[0].graph, 5));
}

TEST_F(QueryServerTest, QueuedRequestsPastDeadlineExpire) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch_size = 4;
  options.batch_linger = std::chrono::microseconds(0);
  options.enable_cache = false;
  QueryServer server(model_, &dataset_->train, options);

  // Fill the single worker with two full batches of undeadlined work, then
  // queue requests that can only be reached after >= one batch of real
  // embedding work — far beyond their 1us deadline.
  std::vector<query::GroundedQuery> blockers =
      SampleQueries(StructureId::k3p, 8, 91);
  std::vector<std::future<Result<TopKAnswer>>> blocker_futures;
  for (const query::GroundedQuery& q : blockers) {
    auto r = server.Submit(q.graph, 5);
    ASSERT_TRUE(r.ok());
    blocker_futures.push_back(std::move(*r));
  }
  std::vector<query::GroundedQuery> doomed =
      SampleQueries(StructureId::k1p, 4, 92);
  std::vector<std::future<Result<TopKAnswer>>> doomed_futures;
  for (const query::GroundedQuery& q : doomed) {
    auto r = server.Submit(q.graph, 5, std::chrono::microseconds(1));
    ASSERT_TRUE(r.ok());
    doomed_futures.push_back(std::move(*r));
  }
  for (auto& f : blocker_futures) {
    EXPECT_TRUE(f.get().ok());
  }
  int expired = 0;
  for (auto& f : doomed_futures) {
    Result<TopKAnswer> r = f.get();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
      ++expired;
    }
  }
  EXPECT_GE(expired, 1);
  EXPECT_EQ(server.metrics()->CounterValue("serving.deadline_expired"),
            expired);
}

TEST_F(QueryServerTest, FullQueueAppliesBackpressure) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch_size = 2;
  options.queue_capacity = 2;
  options.enable_cache = false;
  QueryServer server(model_, &dataset_->train, options);

  std::vector<query::GroundedQuery> pool =
      SampleQueries(StructureId::k2p, 8, 13);
  int accepted = 0;
  int rejected = 0;
  std::vector<std::future<Result<TopKAnswer>>> futures;
  for (int i = 0; i < 64; ++i) {
    auto r = server.Submit(pool[static_cast<size_t>(i) % pool.size()].graph,
                           5);
    if (r.ok()) {
      ++accepted;
      futures.push_back(std::move(*r));
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(server.metrics()->CounterValue("serving.rejected"), rejected);
}

TEST_F(QueryServerTest, InvalidQueriesRejectedSynchronously) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(model_, &dataset_->train, options);

  query::QueryGraph ungrounded = query::MakeStructure(StructureId::k2i);
  auto r1 = server.Submit(ungrounded, 5);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  query::QueryGraph out_of_range;
  out_of_range.SetTarget(out_of_range.AddProjection(
      out_of_range.AddAnchor(dataset_->train.num_entities() + 5), 0));
  auto r2 = server.Submit(out_of_range, 5);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 3)[0];
  auto r3 = server.Submit(q.graph, 0);
  EXPECT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.metrics()->CounterValue("serving.invalid"), 3);
}

TEST_F(QueryServerTest, ShutdownDrainsQueuedWorkAndRejectsNewWork) {
  ServerOptions options;
  options.num_workers = 2;
  QueryServer* server = new QueryServer(model_, &dataset_->train, options);
  std::vector<query::GroundedQuery> pool =
      SampleQueries(StructureId::k2i, 10, 29);
  std::vector<std::future<Result<TopKAnswer>>> futures;
  for (const query::GroundedQuery& q : pool) {
    auto r = server->Submit(q.graph, 5);
    ASSERT_TRUE(r.ok());
    futures.push_back(std::move(*r));
  }
  server->Shutdown();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());  // drained, not dropped
  }
  auto rejected = server->Submit(pool[0].graph, 5);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  delete server;  // double-shutdown must be safe
}

TEST_F(QueryServerTest, KLargerThanEntityCountIsClamped) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(model_, &dataset_->train, options);
  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 41)[0];
  Result<TopKAnswer> r =
      server.Answer(q.graph, dataset_->train.num_entities() + 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int64_t>(r->entities.size()),
            dataset_->train.num_entities());
  // And the clamped full answer satisfies later smaller-k requests.
  Result<TopKAnswer> again = server.Answer(q.graph, 4);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
}

TEST_F(QueryServerTest, MetricsDumpContainsDerivedHitRate) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(model_, &dataset_->train, options);
  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 61)[0];
  ASSERT_TRUE(server.Answer(q.graph, 5).ok());
  ASSERT_TRUE(server.Answer(q.graph, 5).ok());
  const std::string dump = server.DumpMetrics();
  EXPECT_NE(dump.find("counter serving.submitted 2"), std::string::npos);
  EXPECT_NE(dump.find("serving.cache_hit_rate 0.5"), std::string::npos);
  EXPECT_NE(dump.find("histogram serving.latency_us"), std::string::npos);
}

TEST_F(QueryServerTest, ShardedServerAgreesWithEvaluatorAcrossStructures) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch_size = 4;
  options.num_shards = 4;
  options.enable_cache = false;
  QueryServer server(model_, &dataset_->train, options);
  ASSERT_NE(server.coordinator(), nullptr);
  core::Evaluator evaluator(model_);
  for (StructureId s : {StructureId::k1p, StructureId::k2p, StructureId::k2i,
                        StructureId::k2in, StructureId::k2d,
                        StructureId::k2u, StructureId::kUp}) {
    for (const query::GroundedQuery& q : SampleQueries(s, 3, 211)) {
      Result<TopKAnswer> served = server.Answer(q.graph, 10);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      EXPECT_EQ(served->coverage, 1.0);
      EXPECT_TRUE(served->completeness.ok());
      EXPECT_EQ(served->entities, evaluator.TopK(q.graph, 10))
          << "structure " << query::StructureName(s);
    }
  }
  EXPECT_GT(server.metrics()->CounterValue("shard.requests"), 0);
}

TEST_F(QueryServerTest, ShardOutageServesPartialAnswersUncached) {
  shard::ShardFaultInjector faults;
  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 4;
  options.shard_replication = 1;
  options.shard_faults = &faults;
  QueryServer server(model_, &dataset_->train, options);
  query::GroundedQuery q = SampleQueries(StructureId::k2i, 1, 223)[0];

  faults.SetShardDown(/*shard=*/3, /*num_replicas=*/1, true);
  const shard::EntityRange lost = server.coordinator()->shard_range(3);
  const double expected_coverage =
      1.0 - static_cast<double>(lost.size()) /
                static_cast<double>(dataset_->train.num_entities());

  Result<TopKAnswer> degraded = server.Answer(q.graph, 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_DOUBLE_EQ(degraded->coverage, expected_coverage);
  EXPECT_EQ(degraded->completeness.code(), StatusCode::kPartialResult);
  EXPECT_FALSE(degraded->from_cache);
  for (int64_t e : degraded->entities) {
    EXPECT_TRUE(e < lost.begin || e >= lost.end) << "entity " << e;
  }

  // Degraded answers must not be cached: once the shard heals, the same
  // query gets the full-coverage answer computed fresh.
  faults.SetShardDown(3, 1, false);
  core::Evaluator evaluator(model_);
  Result<TopKAnswer> healed = server.Answer(q.graph, 10);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->from_cache);
  EXPECT_EQ(healed->coverage, 1.0);
  EXPECT_EQ(healed->entities, evaluator.TopK(q.graph, 10));
  // The healed full answer is cacheable again.
  Result<TopKAnswer> cached = server.Answer(q.graph, 10);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
}

TEST_F(QueryServerTest, TracedShardedRequestPhaseSpansTileTheLatency) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch_size = 4;
  options.num_shards = 2;
  options.enable_cache = false;
  options.tracer = &tracer;
  QueryServer server(model_, &dataset_->train, options);

  query::GroundedQuery q = SampleQueries(StructureId::k2i, 1, 301)[0];
  Result<TopKAnswer> r = server.Answer(q.graph, 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->trace_id, 0u);

  const obs::Trace trace = tracer.Collect(r->trace_id);
  const obs::SpanRecord* root = trace.Find("request");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(root->annotation("ok"), 1.0);

  // Every request-path phase must be present as a direct child of the root.
  for (const char* phase : {"queue_wait", "dnf_expand", "batch_assembly",
                            "embed", "scatter", "merge"}) {
    const obs::SpanRecord* span = trace.Find(phase);
    ASSERT_NE(span, nullptr) << "missing span " << phase;
    EXPECT_EQ(span->parent, root->id) << phase;
    EXPECT_GE(span->start_ns, root->start_ns) << phase;
    EXPECT_LE(span->end_ns(), root->end_ns()) << phase;
  }
  // The phases are sequentially disjoint slices of the request, so their
  // durations sum to at most the end-to-end latency.
  int64_t phase_sum_ns = 0;
  for (const obs::SpanRecord& span : trace.spans()) {
    if (span.parent == root->id) phase_sum_ns += span.duration_ns;
  }
  EXPECT_GT(phase_sum_ns, 0);
  EXPECT_LE(phase_sum_ns, root->duration_ns);

  // Each shard contributed one replica_scan under the scatter span, with
  // its scan statistics attached.
  const obs::SpanRecord* scatter = trace.Find("scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_EQ(scatter->annotation("shards"), 2.0);
  EXPECT_EQ(scatter->annotation("uncovered_shards"), 0.0);
  const std::vector<const obs::SpanRecord*> scans =
      trace.FindAll("replica_scan");
  ASSERT_EQ(scans.size(), 2u);
  for (const obs::SpanRecord* scan : scans) {
    EXPECT_EQ(scan->parent, scatter->id);
    EXPECT_TRUE(scan->has_annotation("shard"));
    EXPECT_TRUE(scan->has_annotation("entities_scanned"));
    EXPECT_GT(scan->annotation("entities_scanned"), 0.0);
  }
}

TEST_F(QueryServerTest, SlowQueryLogKeysRepeatedSlowRequestsByFingerprint) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ServerOptions options;
  options.num_workers = 1;
  options.enable_cache = false;  // repeats must reach the workers
  options.tracer = &tracer;
  // Every request blows a 1us threshold, so each one lands in the log.
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.slow_query_log_capacity = 8;
  QueryServer server(model_, &dataset_->train, options);
  ASSERT_NE(server.slow_query_log(), nullptr);

  query::GroundedQuery hot = SampleQueries(StructureId::k2p, 1, 311)[0];
  query::GroundedQuery cold = SampleQueries(StructureId::k2i, 1, 313)[0];
  ASSERT_TRUE(server.Answer(hot.graph, 5).ok());
  ASSERT_TRUE(server.Answer(cold.graph, 5).ok());
  ASSERT_TRUE(server.Answer(hot.graph, 5).ok());

  const auto entries = server.slow_query_log()->Entries();
  ASSERT_EQ(entries.size(), 2u);  // two fingerprints, not three requests
  // Most-recently-slow first: the repeated query, with both hits folded in.
  EXPECT_EQ(entries[0].hits, 2);
  EXPECT_EQ(entries[1].hits, 1);
  EXPECT_GE(entries[0].worst_ns, 1000);
  // The stored trace is the full span tree of the offending request.
  EXPECT_NE(entries[0].trace.Find("request"), nullptr);
  EXPECT_NE(entries[0].trace.Find("queue_wait"), nullptr);
}

TEST_F(QueryServerTest, ReplicaFailureDrivesHealthGaugeAndFailoverSpans) {
  shard::ShardFaultInjector faults;
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ServerOptions options;
  options.num_workers = 1;
  options.num_shards = 2;
  options.shard_replication = 2;
  options.shard_faults = &faults;
  options.enable_cache = false;
  options.tracer = &tracer;
  QueryServer server(model_, &dataset_->train, options);
  MetricsRegistry* metrics = server.metrics();
  const Labels replica00{{"replica", "0"}, {"shard", "0"}};
  const Labels replica01{{"replica", "1"}, {"shard", "0"}};
  EXPECT_EQ(metrics->GaugeValue("shard.replica_health", replica00), 0.0);

  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 401)[0];

  // One failure: the shard fails over to replica 1 (full coverage) and
  // replica 0 is demoted healthy -> suspect.
  faults.FailNextCalls(/*shard=*/0, /*replica=*/0, 100);
  Result<TopKAnswer> r = server.Answer(q.graph, 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->coverage, 1.0);
  EXPECT_EQ(metrics->GaugeValue("shard.replica_health", replica00), 1.0);
  EXPECT_EQ(metrics->GaugeValue("shard.replica_health", replica01), 0.0);
  ASSERT_NE(r->trace_id, 0u);
  const obs::Trace trace = tracer.Collect(r->trace_id);
  const std::vector<const obs::SpanRecord*> failovers =
      trace.FindAll("failover");
  ASSERT_GE(failovers.size(), 1u);
  EXPECT_EQ(failovers[0]->annotation("shard", -1.0), 0.0);
  EXPECT_EQ(failovers[0]->annotation("replica", -1.0), 0.0);
  const obs::SpanRecord* scatter = trace.Find("scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_EQ(failovers[0]->parent, scatter->id);

  // Replica 1 now fails too, so the scatter keeps probing replica 0 until
  // its consecutive failures cross the threshold: suspect -> down.
  faults.FailNextCalls(0, 1, 100);
  for (int i = 0; i < 4; ++i) {
    Result<TopKAnswer> degraded = server.Answer(q.graph, 5);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_EQ(degraded->completeness.code(), StatusCode::kPartialResult);
  }
  EXPECT_EQ(metrics->GaugeValue("shard.replica_health", replica00), 2.0);
  EXPECT_GE(metrics->CounterValue("shard.failovers", {{"shard", "0"}}), 3);
  // The untouched shard's replicas stayed healthy throughout.
  EXPECT_EQ(metrics->GaugeValue("shard.replica_health",
                                {{"replica", "0"}, {"shard", "1"}}),
            0.0);
}

}  // namespace
}  // namespace halk::serving
