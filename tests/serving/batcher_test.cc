#include "serving/batcher.h"

#include <gtest/gtest.h>

#include "query/fingerprint.h"
#include "query/structures.h"
#include "serving/request_queue.h"

namespace halk::serving {
namespace {

using query::QueryGraph;
using query::StructureId;

QueryGraph Grounded(StructureId id, int64_t seed) {
  QueryGraph g = query::MakeStructure(id);
  for (int i = 0; i < g.num_nodes(); ++i) {
    query::QueryNode& n = g.mutable_node(i);
    if (n.op == query::OpType::kAnchor) n.anchor_entity = seed;
    if (n.op == query::OpType::kProjection) n.relation = seed % 3;
  }
  return g;
}

TEST(BatcherTest, GroupsByStructureLayout) {
  QueryGraph p1a = Grounded(StructureId::k1p, 0);
  QueryGraph p1b = Grounded(StructureId::k1p, 1);
  QueryGraph i2 = Grounded(StructureId::k2i, 2);
  std::vector<BatchItem> items = {{0, &p1a}, {1, &i2}, {2, &p1b}};
  std::vector<MicroBatch> batches = FormBatches(items, 16);
  ASSERT_EQ(batches.size(), 2u);
  // First-appearance order: the 1p group opens first.
  EXPECT_EQ(batches[0].items.size(), 2u);
  EXPECT_EQ(batches[0].items[0].request_index, 0u);
  EXPECT_EQ(batches[0].items[1].request_index, 2u);
  EXPECT_EQ(batches[1].items.size(), 1u);
  EXPECT_EQ(batches[1].items[0].request_index, 1u);
}

TEST(BatcherTest, SplitsGroupsAtMaxBatchSize) {
  std::vector<QueryGraph> graphs;
  graphs.reserve(10);
  for (int i = 0; i < 10; ++i) {
    graphs.push_back(Grounded(StructureId::k2p, i));
  }
  std::vector<BatchItem> items;
  for (size_t i = 0; i < graphs.size(); ++i) {
    items.push_back({i, &graphs[i]});
  }
  std::vector<MicroBatch> batches = FormBatches(items, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].items.size(), 4u);
  EXPECT_EQ(batches[1].items.size(), 4u);
  EXPECT_EQ(batches[2].items.size(), 2u);
}

TEST(BatcherTest, EmptyInput) {
  EXPECT_TRUE(FormBatches({}, 8).empty());
}

TEST(BoundedQueueTest, TryPushRejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1).ok());
  EXPECT_TRUE(q.TryPush(2).ok());
  Status full = q.TryPush(3);
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
}

TEST(BoundedQueueTest, PopBatchDrainsUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i).ok());
  std::vector<int> out;
  ASSERT_TRUE(q.PopBatch(&out, 3, std::chrono::microseconds(0)));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(q.PopBatch(&out, 3, std::chrono::microseconds(0)));
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsExit) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.TryPush(7).ok());
  q.Close();
  EXPECT_EQ(q.TryPush(8).code(), StatusCode::kUnavailable);
  std::vector<int> out;
  EXPECT_TRUE(q.PopBatch(&out, 4, std::chrono::microseconds(0)));
  EXPECT_EQ(out, (std::vector<int>{7}));
  EXPECT_FALSE(q.PopBatch(&out, 4, std::chrono::microseconds(0)));
}

}  // namespace
}  // namespace halk::serving
