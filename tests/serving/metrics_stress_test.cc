// TSan-oriented stress tests for the metrics registry: labeled-family
// creation racing DumpPrometheus, and Histogram writers racing statistics
// readers. These are labeled `concurrent`, so the TSan CI job always runs
// them; under TSan any lock-discipline or atomics-protocol regression in
// metrics.{h,cc} surfaces as a data-race report here.

#include "serving/metrics.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serving/prometheus_grammar.h"

namespace halk::serving {
namespace {

TEST(MetricsStressTest, FamilyCreationRacesDumpPrometheus) {
  MetricsRegistry registry;
  constexpr int kCreators = 4;
  constexpr int kFamiliesPerCreator = 64;
  std::atomic<bool> done{false};

  std::vector<std::thread> creators;
  creators.reserve(kCreators);
  for (int t = 0; t < kCreators; ++t) {
    creators.emplace_back([&registry, t] {
      for (int i = 0; i < kFamiliesPerCreator; ++i) {
        const std::string suffix =
            std::to_string(t) + "_" + std::to_string(i);
        registry.GetCounter("stress.ctr_" + suffix, {{"t", suffix}})
            ->Increment();
        registry.GetGauge("stress.gauge_" + suffix, {{"t", suffix}})
            ->Set(static_cast<double>(i));
        registry
            .GetHistogram("stress.hist_" + suffix, {1.0, 10.0},
                          {{"t", suffix}})
            ->Observe(static_cast<double>(i));
      }
    });
  }

  // A single dumper validates every snapshot against the exposition
  // grammar while families appear underneath it. Assertions stay on this
  // thread (gtest assertions are not thread-safe across threads).
  std::thread dumper([&registry, &done] {
    while (!done.load(std::memory_order_acquire)) {
      // order: acquire pairs with the release store below; the loop body
      // only needs a coherent registry snapshot, which the registry lock
      // provides.
      const std::string text = registry.DumpPrometheus();
      if (!text.empty()) ExpectValidPrometheusExposition(text);
    }
  });

  for (std::thread& t : creators) t.join();
  // order: release makes the creators' work visible before the dumper's
  // final iteration observes done=true.
  done.store(true, std::memory_order_release);
  dumper.join();

  const std::string final_text = registry.DumpPrometheus();
  ExpectValidPrometheusExposition(final_text);
  EXPECT_EQ(registry.CounterValue("stress.ctr_0_0", {{"t", "0_0"}}), 1);
}

TEST(MetricsStressTest, HistogramObserveRacesQuantileAndMoments) {
  Histogram histogram({1.0, 10.0, 100.0, 1000.0});
  constexpr int kWriters = 4;
  constexpr int kObservationsPerWriter = 20000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservationsPerWriter; ++i) {
        // Every fourth observation carries a trace-id exemplar so the
        // last-writer-wins exemplar words race with the bucket counters.
        histogram.Observe(static_cast<double>((i * (t + 1)) % 2000),
                          i % 4 == 0 ? static_cast<uint64_t>(t + 1) : 0);
      }
    });
  }

  std::thread reader([&histogram, &done] {
    // order: acquire pairs with the release store after join below.
    while (!done.load(std::memory_order_acquire)) {
      // Concurrent snapshots may be torn across *different* atomics (count
      // vs sum), but each read must be race-free and every derived value
      // finite and in range.
      const double p50 = histogram.Quantile(0.50);
      const double p99 = histogram.Quantile(0.99);
      EXPECT_GE(p99, 0.0);
      EXPECT_GE(p50, 0.0);
      EXPECT_GE(histogram.count(), 0);
      const std::vector<int64_t> buckets = histogram.BucketCounts();
      int64_t total = 0;
      for (int64_t b : buckets) {
        EXPECT_GE(b, 0);
        total += b;
      }
      EXPECT_LE(total, static_cast<int64_t>(kWriters) *
                           kObservationsPerWriter);
      // Exemplar reads race the last-writer-wins stores; the id is
      // always one of the writer ids (or 0 before the first traced hit).
      const Histogram::Exemplar exemplar = histogram.BucketExemplar(0);
      EXPECT_LE(exemplar.trace_id, static_cast<uint64_t>(kWriters));
    }
  });

  for (std::thread& t : writers) t.join();
  // order: release publishes all observations before the reader exits.
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(histogram.count(),
            static_cast<int64_t>(kWriters) * kObservationsPerWriter);
  const std::vector<int64_t> buckets = histogram.BucketCounts();
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  EXPECT_EQ(total, static_cast<int64_t>(kWriters) * kObservationsPerWriter);
}

}  // namespace
}  // namespace halk::serving
