#include "serving/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::serving {
namespace {

TEST(LruCacheTest, GetAfterPut) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  std::string out;
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out, "one");
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCacheTest, OverwriteKeepsSingleEntry) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  cache.Put(1, "uno");
  EXPECT_EQ(cache.size(), 1u);
  std::string out;
  ASSERT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out, "uno");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  int out = 0;
  ASSERT_TRUE(cache.Get(1, &out));  // 1 is now most recent
  cache.Put(3, 30);                 // evicts 2
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  int out = 0;
  EXPECT_FALSE(cache.Get(1, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ConcurrentMixedAccessStaysConsistent) {
  LruCache<int, int> cache(64);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 31 + i) % 100;
        cache.Put(key, key * 2);
        int out = 0;
        if (cache.Get(key, &out)) {
          // The value for a key is always key*2, no torn reads.
          EXPECT_EQ(out, key * 2);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace halk::serving
