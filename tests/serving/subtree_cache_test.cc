#include "serving/subtree_cache.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace halk::serving {
namespace {

query::Fingerprint Key(uint64_t n) { return {n, n * 31 + 7}; }

/// An entry of 8 floats charges 32 + 96 overhead = 128 bytes (before
/// relation tags), so byte budgets divide evenly in the tests below.
SubtreeCache::Entry MakeEntry(float fill,
                              std::vector<int64_t> relations = {}) {
  SubtreeCache::Entry entry;
  entry.row.assign(8, fill);
  entry.relations = std::move(relations);
  return entry;
}

TEST(SubtreeCacheTest, PutGetRoundTrip) {
  SubtreeCache cache(1024);
  cache.Put(Key(1), MakeEntry(0.5f, {2, 4}));
  SubtreeCache::Entry out;
  ASSERT_TRUE(cache.Get(Key(1), &out));
  EXPECT_EQ(out.row, std::vector<float>(8, 0.5f));
  EXPECT_EQ(out.relations, (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_FALSE(cache.Get(Key(2), &out));
  EXPECT_EQ(cache.misses(), 1);
}

TEST(SubtreeCacheTest, TracksByteFootprint) {
  SubtreeCache cache(1024);
  EXPECT_EQ(cache.bytes(), 0u);
  cache.Put(Key(1), MakeEntry(1.0f));
  EXPECT_EQ(cache.bytes(), 128u);
  cache.Put(Key(2), MakeEntry(2.0f, {3}));
  EXPECT_EQ(cache.bytes(), 128u + 136u);
  EXPECT_EQ(cache.size(), 2u);
  // Overwriting replaces the old entry's charge, not adds to it.
  cache.Put(Key(2), MakeEntry(3.0f));
  EXPECT_EQ(cache.bytes(), 256u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SubtreeCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  SubtreeCache cache(256);  // room for exactly two tag-free entries
  cache.Put(Key(1), MakeEntry(1.0f));
  cache.Put(Key(2), MakeEntry(2.0f));
  ASSERT_TRUE(cache.Get(Key(1), nullptr));  // 2 becomes LRU
  cache.Put(Key(3), MakeEntry(3.0f));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.Contains(Key(1)));
  EXPECT_FALSE(cache.Contains(Key(2)));
  EXPECT_TRUE(cache.Contains(Key(3)));
  EXPECT_LE(cache.bytes(), cache.capacity_bytes());
}

TEST(SubtreeCacheTest, OversizeEntryIsDropped) {
  SubtreeCache cache(64);  // smaller than any 8-float entry
  cache.Put(Key(1), MakeEntry(1.0f));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.Contains(Key(1)));
}

TEST(SubtreeCacheTest, ContainsHasNoSideEffects) {
  SubtreeCache cache(256);
  cache.Put(Key(1), MakeEntry(1.0f));
  cache.Put(Key(2), MakeEntry(2.0f));
  EXPECT_TRUE(cache.Contains(Key(1)));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  // Contains did not refresh key 1's recency, so it is still the LRU
  // entry and the next insert evicts it.
  cache.Put(Key(3), MakeEntry(3.0f));
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_TRUE(cache.Contains(Key(2)));
}

TEST(SubtreeCacheTest, InvalidateRelationDropsTaggedEntriesOnly) {
  SubtreeCache cache(4096);
  cache.Put(Key(1), MakeEntry(1.0f, {0, 2}));
  cache.Put(Key(2), MakeEntry(2.0f, {1}));
  cache.Put(Key(3), MakeEntry(3.0f, {2, 5}));
  cache.Put(Key(4), MakeEntry(4.0f));  // no tags: structural only
  EXPECT_EQ(cache.InvalidateRelation(2), 2u);
  EXPECT_EQ(cache.invalidations(), 2);
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_TRUE(cache.Contains(Key(2)));
  EXPECT_FALSE(cache.Contains(Key(3)));
  EXPECT_TRUE(cache.Contains(Key(4)));
  EXPECT_EQ(cache.InvalidateRelation(2), 0u);
  // Byte accounting survives the evictions.
  EXPECT_EQ(cache.bytes(), 128u + 136u);
}

TEST(SubtreeCacheTest, ClearEmptiesEverything) {
  SubtreeCache cache(4096);
  cache.Put(Key(1), MakeEntry(1.0f, {0}));
  cache.Put(Key(2), MakeEntry(2.0f));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.Contains(Key(1)));
  // The cache keeps accepting entries after a Clear.
  cache.Put(Key(3), MakeEntry(3.0f));
  EXPECT_TRUE(cache.Contains(Key(3)));
}

TEST(SubtreeCacheTest, GetWithNullOutOnlyTouchesRecency) {
  SubtreeCache cache(256);
  cache.Put(Key(1), MakeEntry(1.0f));
  EXPECT_TRUE(cache.Get(Key(1), nullptr));
  EXPECT_EQ(cache.hits(), 1);
}

}  // namespace
}  // namespace halk::serving
