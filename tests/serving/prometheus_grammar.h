#ifndef HALK_TESTS_SERVING_PROMETHEUS_GRAMMAR_H_
#define HALK_TESTS_SERVING_PROMETHEUS_GRAMMAR_H_

#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace halk::serving {

// Checks `text` line by line against the Prometheus text exposition format
// (version 0.0.4): every line is a `# TYPE` declaration or a sample whose
// name/labels/value match the grammar, every sample belongs to a declared
// family, and histogram bucket series are cumulative and consistent.
// Bucket lines may carry an OpenMetrics-style trace exemplar suffix
// (` # {trace_id="<hex>"} <value>`), which 0.0.4 scrapers ignore as a
// comment; no other sample line may.
inline void ExpectValidPrometheusExposition(const std::string& text) {
  static const std::regex kTypeRe(
      R"(# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram))");
  static const std::regex kSampleRe(
      R"lit(([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)|\+Inf))lit");
  static const std::regex kExemplarRe(
      R"lit(# \{trace_id="[0-9a-f]+"\} -?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?))lit");

  std::map<std::string, std::string> family_type;  // name -> declared type
  // Per histogram child (family + non-le labels): the bucket counts in
  // file order, the +Inf bucket, and the _count sample, cross-checked at
  // the end.
  std::map<std::string, std::vector<double>> bucket_series;
  std::map<std::string, double> inf_value;
  std::map<std::string, double> count_value;
  std::map<std::string, int> sum_seen;

  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    SCOPED_TRACE("line " + std::to_string(line_no) + ": " + line);
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    std::smatch m;
    if (line[0] == '#') {
      ASSERT_TRUE(std::regex_match(line, m, kTypeRe));
      const std::string family = m[1];
      EXPECT_EQ(family_type.count(family), 0u)
          << "duplicate # TYPE for " << family;
      family_type[family] = m[2];
      continue;
    }
    // Split off a trailing exemplar before matching the sample grammar.
    std::string sample_line = line;
    const size_t exemplar_at = line.find(" # {");
    if (exemplar_at != std::string::npos) {
      const std::string exemplar = line.substr(exemplar_at + 1);
      ASSERT_TRUE(std::regex_match(exemplar, kExemplarRe))
          << "malformed exemplar suffix";
      sample_line = line.substr(0, exemplar_at);
    }
    ASSERT_TRUE(std::regex_match(sample_line, m, kSampleRe));
    const std::string name = m[1];
    const std::string labels = m[2];
    const std::string value_text = m[3];
    if (exemplar_at != std::string::npos) {
      EXPECT_TRUE(name.size() > 7 &&
                  name.compare(name.size() - 7, 7, "_bucket") == 0)
          << "exemplar on a non-bucket sample";
    }
    const double value =
        value_text == "+Inf" ? 0.0 : std::stod(value_text);  // must parse

    // Resolve the family: plain name for counters/gauges, the stripped
    // `_bucket`/`_sum`/`_count` suffix for histogram series.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string stem = name.substr(0, name.size() - s.size());
        if (family_type.count(stem) != 0 &&
            family_type[stem] == "histogram") {
          family = stem;
          break;
        }
      }
    }
    ASSERT_EQ(family_type.count(family), 1u)
        << "sample before/without # TYPE for family " << family;
    const std::string& type = family_type[family];
    if (type == "histogram") {
      // Key bucket series by family + non-le labels so labeled children
      // are tracked independently; the `le` label itself must be present
      // on bucket lines.
      if (name == family + "_bucket") {
        // Locate the `le` pair at a label-name boundary — a plain substring
        // search would match label names that merely end in "le", like the
        // `exported_le` rename of user labels.
        std::string rest = labels;
        size_t le = std::string::npos;
        for (size_t p = rest.find("le=\""); p != std::string::npos;
             p = rest.find("le=\"", p + 1)) {
          if (p > 0 && (rest[p - 1] == '{' || rest[p - 1] == ',')) {
            le = p;
            break;
          }
        }
        ASSERT_NE(le, std::string::npos) << "bucket line without le label";
        // Strip the le pair (it varies per line of one series) so the key
        // matches the _sum/_count label set of the same child.
        const size_t end = rest.find_first_of(",}", le);
        const std::string le_value =
            rest.substr(le + 4, end - 1 - (le + 4));
        if (rest[end] == ',') {
          rest.erase(le, end - le + 1);  // mid-list: drop its trailing comma
        } else if (le > 1 && rest[le - 1] == ',') {
          rest.erase(le - 1, end - le + 1);  // last pair: drop leading comma
        } else {
          rest.erase(le, end - le + 1);  // only pair: "{" remains
        }
        if (rest == "{") rest.clear();
        const std::string series_key = family + "|" + rest;
        bucket_series[series_key].push_back(value);
        if (le_value == "+Inf") {
          inf_value[series_key] = value;
        }
      } else if (name == family + "_count") {
        count_value[family + "|" + labels] = value;
      } else if (name == family + "_sum") {
        ++sum_seen[family + "|" + labels];
      } else {
        ADD_FAILURE() << "histogram family " << family
                      << " has non-series sample " << name;
      }
    } else {
      EXPECT_EQ(name, family) << "suffixed sample in a " << type << " family";
    }
  }

  EXPECT_FALSE(family_type.empty());
  for (const auto& [key, series] : bucket_series) {
    SCOPED_TRACE("bucket series " + key);
    ASSERT_FALSE(series.empty());
    for (size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1]) << "buckets must be cumulative";
    }
    // The +Inf bucket closes every series and agrees with _count and _sum.
    ASSERT_EQ(inf_value.count(key), 1u) << "no +Inf bucket";
    EXPECT_EQ(series.back(), inf_value[key]);
    ASSERT_EQ(count_value.count(key), 1u) << "no _count sample";
    EXPECT_EQ(inf_value[key], count_value[key]);
    EXPECT_EQ(sum_seen.count(key), 1u) << "no _sum sample";
  }
  for (const auto& [key, n] : sum_seen) {
    EXPECT_EQ(n, 1) << "family child " << key << " must emit _sum once";
  }
}

}  // namespace halk::serving

#endif  // HALK_TESTS_SERVING_PROMETHEUS_GRAMMAR_H_
