#include "serving/metrics.h"

#include "serving/prometheus_grammar.h"

#include <cmath>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::serving {
namespace {

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketed) {
  Histogram h(Histogram::ExponentialBounds(1.0, 2.0, 12));
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i % 100));
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, 2048.0);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, OverflowReportsLargestBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);
  EXPECT_EQ(h.Quantile(0.5), 2.0);
}

TEST(MetricsRegistryTest, StablePointersAndDump) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("serving.submitted");
  Counter* b = registry.GetCounter("serving.submitted");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.CounterValue("serving.submitted"), 3);
  EXPECT_EQ(registry.CounterValue("never.created"), 0);

  Histogram* h = registry.GetHistogram("serving.latency_us",
                                       Histogram::ExponentialBounds(1, 2, 4));
  h->Observe(3.0);
  const std::string dump = registry.DumpText();
  EXPECT_NE(dump.find("counter serving.submitted 3"), std::string::npos);
  EXPECT_NE(dump.find("histogram serving.latency_us count=1"),
            std::string::npos);
}

TEST(GaugeTest, SetMovesBothWays) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(5.0);
  EXPECT_EQ(g.value(), 5.0);
  g.Set(2.0);
  EXPECT_EQ(g.value(), 2.0);
  g.Add(-3.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(GaugeTest, ConcurrentAddLosesNoDeltas) {
  Gauge g;
  g.Set(100.0);
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      // Paired +2/-1 so the CAS loop is exercised in both directions.
      for (int i = 0; i < kAdds; ++i) {
        g.Add(2.0);
        g.Add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 100.0 + kThreads * kAdds);
}

TEST(HistogramTest, ConcurrentObserveLosesNothing) {
  Histogram h(Histogram::ExponentialBounds(1.0, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kObservations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kObservations);
  // Each thread observes 100 full cycles of 0..99 (sum 4950 per cycle);
  // every addend is an integer well inside double precision, so the
  // CAS-maintained sum must be exact.
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * 100.0 * 4950.0);
  const std::vector<int64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), h.bounds().size() + 1);
  int64_t bucket_total = 0;
  for (int64_t c : buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(HistogramTest, QuantileEdgeCasesAreDefinedAndNeverNaN) {
  // Empty: 0 for every q, including out-of-range q (clamped).
  Histogram empty({1.0, 2.0});
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(empty.Quantile(q), 0.0) << "q=" << q;
  }

  // q=0 reports the lower edge of the first non-empty bucket, q=1 the
  // upper bound of the last non-empty bucket.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.5);  // lands in (1, 2]
  EXPECT_EQ(h.Quantile(0.0), 1.0);
  EXPECT_EQ(h.Quantile(1.0), 2.0);
  // Out-of-range q clamps to the same edges.
  EXPECT_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(1.5), h.Quantile(1.0));

  // All observations in the +inf overflow bucket: the largest finite bound
  // for every q (there is nothing better to report).
  Histogram overflow({1.0, 2.0});
  overflow.Observe(50.0);
  overflow.Observe(99.0);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(overflow.Quantile(q), 2.0) << "q=" << q;
  }

  // A dense sweep must never produce NaN on any of the above shapes.
  for (const Histogram* hist : {&empty, &h, &overflow}) {
    for (int i = 0; i <= 100; ++i) {
      EXPECT_FALSE(std::isnan(hist->Quantile(i / 100.0))) << "q=" << i / 100.0;
    }
  }
}

TEST(MetricsRegistryTest, LabeledChildrenAreDistinctInstruments) {
  MetricsRegistry registry;
  Counter* s0 = registry.GetCounter("shard.tasks", {{"shard", "0"}});
  Counter* s1 = registry.GetCounter("shard.tasks", {{"shard", "1"}});
  Counter* unlabeled = registry.GetCounter("shard.tasks");
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, unlabeled);
  s0->Increment(2);
  s1->Increment(5);
  EXPECT_EQ(registry.CounterValue("shard.tasks", {{"shard", "0"}}), 2);
  EXPECT_EQ(registry.CounterValue("shard.tasks", {{"shard", "1"}}), 5);
  EXPECT_EQ(registry.CounterValue("shard.tasks"), 0);
  EXPECT_EQ(registry.CounterValue("shard.tasks", {{"shard", "9"}}), 0);
}

TEST(MetricsRegistryTest, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Gauge* a = registry.GetGauge("shard.replica_health",
                               {{"shard", "1"}, {"replica", "0"}});
  Gauge* b = registry.GetGauge("shard.replica_health",
                               {{"replica", "0"}, {"shard", "1"}});
  EXPECT_EQ(a, b);
  a->Set(2.0);
  EXPECT_EQ(registry.GaugeValue("shard.replica_health",
                                {{"replica", "0"}, {"shard", "1"}}),
            2.0);
  EXPECT_EQ(registry.GaugeValue("shard.replica_health",
                                {{"replica", "1"}, {"shard", "1"}}),
            0.0);  // never created

  Histogram* h1 = registry.GetHistogram(
      "shard.scan_us", {1.0, 2.0}, {{"shard", "0"}, {"replica", "1"}});
  Histogram* h2 = registry.GetHistogram(
      "shard.scan_us", {1.0, 2.0}, {{"replica", "1"}, {"shard", "0"}});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, DumpTextOrderingIsStableAndDocumented) {
  MetricsRegistry registry;
  // Created in scrambled order on purpose; the dump must not care.
  registry.GetHistogram("z.lat", {1.0})->Observe(0.5);
  registry.GetCounter("b.tasks", {{"x", "2"}})->Increment(2);
  registry.GetGauge("m.depth")->Set(3.0);
  registry.GetCounter("b.tasks", {{"x", "1"}})->Increment(1);
  registry.GetCounter("a.requests")->Increment(7);
  registry.GetGauge("n.health", {{"r", "0"}})->Set(1.0);

  const std::string dump = registry.DumpText();
  // Deterministic: a second dump is byte-identical.
  EXPECT_EQ(dump, registry.DumpText());

  // Sections in kind order (counters, gauges, histograms), each sorted by
  // (name, labels).
  const std::vector<std::string> expected_order = {
      "counter a.requests 7",
      "counter b.tasks{x=\"1\"} 1",
      "counter b.tasks{x=\"2\"} 2",
      "gauge m.depth 3",
      "gauge n.health{r=\"0\"} 1",
      "histogram z.lat count=1",
  };
  size_t at = 0;
  for (const std::string& needle : expected_order) {
    const size_t pos = dump.find(needle, at);
    ASSERT_NE(pos, std::string::npos) << needle << "\n--- dump ---\n" << dump;
    at = pos;
  }
}

TEST(MetricsRegistryTest, DumpPrometheusMatchesTheTextGrammar) {
  MetricsRegistry registry;
  registry.GetCounter("serving.submitted")->Increment(128);
  registry.GetCounter("shard.tasks", {{"shard", "0"}})->Increment(3);
  registry.GetCounter("shard.tasks", {{"shard", "1"}})->Increment(4);
  registry.GetGauge("serving.queue_depth")->Set(2.0);
  registry.GetGauge("shard.replica_health",
                    {{"shard", "0"}, {"replica", "1"}})
      ->Set(1.0);
  Histogram* latency =
      registry.GetHistogram("serving.latency_us", {1.0, 10.0, 100.0});
  latency->Observe(0.5);
  latency->Observe(50.0);
  latency->Observe(1e6);  // overflow bucket
  Histogram* scan = registry.GetHistogram(
      "shard.scan_us", {1.0, 10.0}, {{"shard", "0"}, {"replica", "0"}});
  scan->Observe(5.0);
  // Names needing sanitization and a label value needing escaping.
  registry.GetCounter("weird-name.v2")->Increment();
  registry.GetCounter("9lives")->Increment();
  registry.GetGauge("esc", {{"q", "say \"hi\"\nback\\slash"}})->Set(1.0);

  const std::string text = registry.DumpPrometheus();
  ExpectValidPrometheusExposition(text);

  // Spot-check the round trip: dots sanitized, families typed, series
  // complete.
  EXPECT_NE(text.find("# TYPE serving_submitted counter"), std::string::npos);
  EXPECT_NE(text.find("serving_submitted 128"), std::string::npos);
  EXPECT_NE(text.find("shard_tasks{shard=\"0\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serving_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("serving_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("serving_latency_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("weird_name_v2 1"), std::string::npos);
  EXPECT_NE(text.find("_9lives 1"), std::string::npos);
}

TEST(HistogramTest, BucketExemplarIsLastWriterWins) {
  Histogram histogram({10.0, 100.0});
  // An observation without a trace id leaves the bucket exemplar-free.
  histogram.Observe(5.0);
  EXPECT_EQ(histogram.BucketExemplar(0).trace_id, 0u);
  histogram.Observe(5.0, 0xa1);
  EXPECT_EQ(histogram.BucketExemplar(0).trace_id, 0xa1u);
  EXPECT_DOUBLE_EQ(histogram.BucketExemplar(0).value, 5.0);
  // Later traced observation in the same bucket replaces the exemplar...
  histogram.Observe(7.0, 0xb2);
  EXPECT_EQ(histogram.BucketExemplar(0).trace_id, 0xb2u);
  EXPECT_DOUBLE_EQ(histogram.BucketExemplar(0).value, 7.0);
  // ...an untraced one does not.
  histogram.Observe(8.0);
  EXPECT_EQ(histogram.BucketExemplar(0).trace_id, 0xb2u);
  // Out-of-range bucket reads as empty rather than crashing.
  EXPECT_EQ(histogram.BucketExemplar(99).trace_id, 0u);
}

TEST(MetricsRegistryTest, ExemplarsReachTheBucketLinesAndStayValid) {
  MetricsRegistry registry;
  Histogram* latency =
      registry.GetHistogram("serving.latency_us", {10.0, 100.0});
  latency->Observe(5.0, 0xabcdef);
  latency->Observe(1e6, 0x123);  // lands in the +Inf bucket
  latency->Observe(50.0);        // middle bucket stays exemplar-free
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
  EXPECT_NE(text.find("serving_latency_us_bucket{le=\"10\"} 1 "
                      "# {trace_id=\"abcdef\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("serving_latency_us_bucket{le=\"+Inf\"} 3 "
                      "# {trace_id=\"123\"} 1e+06"),
            std::string::npos);
  // The exemplar-free bucket keeps the classic 0.0.4 line shape.
  EXPECT_NE(text.find("serving_latency_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ZeroObservationHistogramRendersWithoutExemplars) {
  // A family registered at construction but never observed — exactly the
  // state of plan.qerror on a freshly started server before any planned
  // traffic. Every bucket renders zero, no line carries the `#` exemplar
  // suffix, and the body still parses as 0.0.4.
  MetricsRegistry registry;
  Histogram* qerror = registry.GetHistogram("plan.qerror", {1.0, 2.0});
  EXPECT_EQ(qerror->BucketExemplar(0).trace_id, 0u);
  EXPECT_DOUBLE_EQ(qerror->BucketExemplar(0).value, 0.0);
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
  EXPECT_NE(text.find("plan_qerror_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("plan_qerror_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("plan_qerror_count 0"), std::string::npos);
  EXPECT_EQ(text.find("# {trace_id="), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreate) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"), 4000);
}

// Regression: label names used to reach the exposition unsanitized, so an
// adversarial name (spaces, quotes, leading digit) produced grammar-invalid
// output. Names now canonicalize to [a-zA-Z_][a-zA-Z0-9_]* at registration.
TEST(MetricsRegistryTest, AdversarialLabelNamesAreSanitized) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"bad name!", "v"}, {"1digit", "w"}})
      ->Increment();
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
  EXPECT_NE(text.find("bad_name_=\"v\""), std::string::npos);
  EXPECT_NE(text.find("_1digit=\"w\""), std::string::npos);
}

// Regression: two raw names sanitizing to the same family ("x.y" and
// "x_y") used to emit duplicate # TYPE declarations; later claimants now
// get a deterministic _2 suffix.
TEST(MetricsRegistryTest, CollidingSanitizedFamiliesStayDistinct) {
  MetricsRegistry registry;
  registry.GetCounter("x.y")->Increment();
  registry.GetCounter("x_y")->Increment(2);
  registry.GetGauge("x_y")->Set(7.0);  // cross-kind collision on the name
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
  EXPECT_NE(text.find("# TYPE x_y counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_y_2 counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_y_3 gauge"), std::string::npos);
}

}  // namespace
}  // namespace halk::serving
