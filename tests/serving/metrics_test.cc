#include "serving/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::serving {
namespace {

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.mean(), 555.5 / 4.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketed) {
  Histogram h(Histogram::ExponentialBounds(1.0, 2.0, 12));
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i % 100));
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, 2048.0);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, OverflowReportsLargestBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);
  EXPECT_EQ(h.Quantile(0.5), 2.0);
}

TEST(MetricsRegistryTest, StablePointersAndDump) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("serving.submitted");
  Counter* b = registry.GetCounter("serving.submitted");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(registry.CounterValue("serving.submitted"), 3);
  EXPECT_EQ(registry.CounterValue("never.created"), 0);

  Histogram* h = registry.GetHistogram("serving.latency_us",
                                       Histogram::ExponentialBounds(1, 2, 4));
  h->Observe(3.0);
  const std::string dump = registry.DumpText();
  EXPECT_NE(dump.find("counter serving.submitted 3"), std::string::npos);
  EXPECT_NE(dump.find("histogram serving.latency_us count=1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreate) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"), 4000);
}

}  // namespace
}  // namespace halk::serving
