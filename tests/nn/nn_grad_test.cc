// Numerical gradient checks of the *parameters* of nn building blocks —
// the leaves the optimizer updates — complementing the input-gradient
// checks in tensor/grad_check_test.cc.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/deepsets.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::nn {
namespace {

using tensor::Tensor;

// Checks d loss / d p numerically for a few coordinates of every
// parameter of `params`, where `loss_fn` rebuilds the scalar loss.
void CheckParameterGrads(const std::vector<Tensor>& params,
                         const std::function<Tensor()>& loss_fn,
                         uint64_t seed) {
  Tensor loss = loss_fn();
  ASSERT_EQ(loss.numel(), 1);
  for (Tensor p : params) p.ZeroGrad();
  tensor::Backward(loss);

  Rng pick(seed);
  const float eps = 1e-2f;
  for (Tensor p : params) {
    for (int check = 0; check < 3; ++check) {
      const int64_t i = static_cast<int64_t>(
          pick.UniformInt(static_cast<uint64_t>(p.numel())));
      const float orig = p.data()[i];
      p.data()[i] = orig + eps;
      const float up = loss_fn().at(0);
      p.data()[i] = orig - eps;
      const float down = loss_fn().at(0);
      p.data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(p.grad()[i], numeric,
                  4e-2f * std::max(1.0f, std::fabs(numeric)))
          << "param element " << i;
    }
  }
}

Tensor RandomInput(Rng* rng, int64_t rows, int64_t cols) {
  std::vector<float> v(static_cast<size_t>(rows * cols));
  for (auto& x : v) x = static_cast<float>(rng->Uniform(-1, 1));
  return Tensor::FromVector({rows, cols}, std::move(v));
}

TEST(NnGradTest, LinearParameters) {
  Rng rng(1);
  Linear lin(5, 3, &rng);
  Tensor x = RandomInput(&rng, 4, 5);
  CheckParameterGrads(lin.Parameters(), [&] {
    return tensor::MeanAll(tensor::Square(lin.Forward(x)));
  }, 2);
}

TEST(NnGradTest, MlpParameters) {
  Rng rng(3);
  Mlp mlp({4, 8, 2}, &rng);
  Tensor x = RandomInput(&rng, 3, 4);
  CheckParameterGrads(mlp.Parameters(), [&] {
    return tensor::MeanAll(tensor::Square(tensor::Tanh(mlp.Forward(x))));
  }, 4);
}

TEST(NnGradTest, DeepSetsParameters) {
  Rng rng(5);
  DeepSets ds({3, 6}, {6, 2}, &rng);
  Tensor x1 = RandomInput(&rng, 2, 3);
  Tensor x2 = RandomInput(&rng, 2, 3);
  Tensor x3 = RandomInput(&rng, 2, 3);
  CheckParameterGrads(ds.Parameters(), [&] {
    return tensor::MeanAll(tensor::Square(ds.Forward({x1, x2, x3})));
  }, 6);
}

TEST(NnGradTest, AttentionPipelineParameters) {
  // The exact scoring pattern the HaLk intersection uses: per-input MLP
  // scores, softmax across inputs, weighted mix.
  Rng rng(7);
  Mlp score({4, 8, 4}, &rng);
  Tensor a = RandomInput(&rng, 2, 4);
  Tensor b = RandomInput(&rng, 2, 4);
  CheckParameterGrads(score.Parameters(), [&] {
    auto weights = SoftmaxAcross({score.Forward(a), score.Forward(b)});
    Tensor mix = WeightedSum(weights, {a, b});
    return tensor::MeanAll(tensor::Square(mix));
  }, 8);
}

TEST(NnGradTest, ZeroInitFinalLayerZeroesOutput) {
  Rng rng(9);
  Mlp mlp({4, 8, 3}, &rng);
  mlp.ZeroInitFinalLayer();
  Tensor x = RandomInput(&rng, 2, 4);
  Tensor y = mlp.Forward(x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.at(i), 0.0f);
  // But gradients still flow to the zeroed layer (and it can learn).
  Tensor loss = tensor::MeanAll(tensor::Square(tensor::AddScalar(y, 1.0f)));
  tensor::Backward(loss);
  bool any = false;
  for (Tensor p : mlp.Parameters()) {
    for (float g : p.grad_vector()) any = any || g != 0.0f;
  }
  EXPECT_TRUE(any);
}

TEST(NnGradTest, AdamFirstStepMagnitudeIsLr) {
  // With bias correction, the very first Adam update has magnitude ≈ lr
  // regardless of the raw gradient scale.
  Tensor x = Tensor::FromVector({2}, {1.0f, -3.0f}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.25f});
  Tensor loss = tensor::SumAll(tensor::MulScalar(x, 123.0f));
  tensor::Backward(loss);
  const float before0 = x.at(0);
  opt.Step();
  EXPECT_NEAR(std::fabs(x.at(0) - before0), 0.25f, 1e-3f);
}

TEST(NnGradTest, InitFinalBiasSetsOperatingPoint) {
  Rng rng(11);
  Mlp mlp({2, 4, 2}, &rng);
  mlp.InitFinalBias(-3.0f);
  // Zero input, ReLU hidden of random weights with zero bias -> final
  // output is final-bias plus weighted hidden; with zero input the hidden
  // is bias-only (zero), so the output equals the final bias.
  Tensor y = mlp.Forward(Tensor::Zeros({1, 2}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), -3.0f);
}

}  // namespace
}  // namespace halk::nn
