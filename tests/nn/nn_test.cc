#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/deepsets.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace halk::nn {
namespace {

using tensor::Backward;
using tensor::Shape;
using tensor::Tensor;

TEST(InitTest, UniformWithinBounds) {
  Rng rng(1);
  Tensor t = Tensor::Zeros({100});
  UniformInit(&t, -0.5f, 0.5f, &rng);
  float lo = 1e9f;
  float hi = -1e9f;
  for (int64_t i = 0; i < t.numel(); ++i) {
    lo = std::min(lo, t.at(i));
    hi = std::max(hi, t.at(i));
  }
  EXPECT_GE(lo, -0.5f);
  EXPECT_LT(hi, 0.5f);
  EXPECT_LT(lo, -0.2f);  // actually spread out
  EXPECT_GT(hi, 0.2f);
}

TEST(InitTest, NormalRoughStddev) {
  Rng rng(2);
  Tensor t = Tensor::Zeros({5000});
  NormalInit(&t, 2.0f, &rng);
  double sq = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sq += t.at(i) * t.at(i);
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.numel())), 2.0, 0.1);
}

TEST(InitTest, XavierBound) {
  Rng rng(3);
  Tensor t = Tensor::Zeros({64, 64});
  XavierUniformInit(&t, 64, 64, &rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(t.at(i)), bound + 1e-6f);
  }
}

TEST(LinearTest, ShapesAndParameterCount) {
  Rng rng(4);
  Linear lin(8, 3, &rng);
  Tensor x = Tensor::Zeros({5, 8});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), Shape({5, 3}));
  EXPECT_EQ(lin.ParameterCount(), 8 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(5);
  Linear lin(4, 2, &rng, /*with_bias=*/false);
  EXPECT_EQ(lin.ParameterCount(), 8);
  EXPECT_EQ(lin.Parameters().size(), 1u);
}

TEST(LinearTest, LearnsIdentityMap) {
  Rng rng(6);
  Linear lin(2, 2, &rng);
  Adam opt(lin.Parameters(), {.lr = 0.05f});
  float last_loss = 1e9f;
  for (int step = 0; step < 200; ++step) {
    std::vector<float> xs(16);
    for (auto& v : xs) v = static_cast<float>(rng.Uniform(-1, 1));
    Tensor x = Tensor::FromVector({8, 2}, xs);
    Tensor pred = lin.Forward(x);
    Tensor loss = tensor::MeanAll(tensor::Square(tensor::Sub(pred, x)));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
    last_loss = loss.at(0);
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(MlpTest, DepthAndParameters) {
  Rng rng(7);
  Mlp mlp({4, 16, 16, 2}, &rng);
  EXPECT_EQ(mlp.in_features(), 4);
  EXPECT_EQ(mlp.out_features(), 2);
  EXPECT_EQ(mlp.ParameterCount(), (4 * 16 + 16) + (16 * 16 + 16) + (16 * 2 + 2));
  Tensor y = mlp.Forward(Tensor::Zeros({3, 4}));
  EXPECT_EQ(y.shape(), Shape({3, 2}));
}

TEST(MlpTest, LearnsXorLikeFunction) {
  Rng rng(8);
  Mlp mlp({2, 16, 1}, &rng);
  Adam opt(mlp.Parameters(), {.lr = 0.03f});
  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor target = Tensor::FromVector({4, 1}, {0, 1, 1, 0});
  float last_loss = 1e9f;
  for (int step = 0; step < 500; ++step) {
    Tensor pred = tensor::Sigmoid(mlp.Forward(x));
    Tensor loss = tensor::MeanAll(tensor::Square(tensor::Sub(pred, target)));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
    last_loss = loss.at(0);
  }
  EXPECT_LT(last_loss, 0.03f);
}

TEST(DeepSetsTest, PermutationInvariance) {
  Rng rng(9);
  DeepSets ds({3, 8}, {8, 2}, &rng);
  Rng data_rng(10);
  std::vector<Tensor> xs;
  for (int i = 0; i < 4; ++i) {
    std::vector<float> v(6);
    for (auto& f : v) f = static_cast<float>(data_rng.Uniform(-1, 1));
    xs.push_back(Tensor::FromVector({2, 3}, v));
  }
  Tensor a = ds.Forward(xs);
  std::vector<Tensor> shuffled = {xs[2], xs[0], xs[3], xs[1]};
  Tensor b = ds.Forward(shuffled);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-5f);
  }
}

TEST(DeepSetsTest, SingleElementSet) {
  Rng rng(11);
  DeepSets ds({2, 4}, {4, 1}, &rng);
  Tensor x = Tensor::FromVector({1, 2}, {0.5f, -0.5f});
  Tensor y = ds.Forward({x});
  EXPECT_EQ(y.shape(), Shape({1, 1}));
}

TEST(AttentionTest, WeightsSumToOne) {
  Rng rng(12);
  std::vector<Tensor> scores;
  for (int i = 0; i < 3; ++i) {
    std::vector<float> v(4);
    for (auto& f : v) f = static_cast<float>(rng.Uniform(-2, 2));
    scores.push_back(Tensor::FromVector({2, 2}, v));
  }
  auto weights = SoftmaxAcross(scores);
  ASSERT_EQ(weights.size(), 3u);
  for (int64_t i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (const Tensor& w : weights) {
      EXPECT_GT(w.at(i), 0.0f);
      total += w.at(i);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(AttentionTest, LargerScoreLargerWeight) {
  Tensor s1 = Tensor::FromVector({1, 2}, {2.0f, 0.0f});
  Tensor s2 = Tensor::FromVector({1, 2}, {0.0f, 3.0f});
  auto weights = SoftmaxAcross({s1, s2});
  EXPECT_GT(weights[0].at(0), weights[1].at(0));
  EXPECT_LT(weights[0].at(1), weights[1].at(1));
}

TEST(AttentionTest, StableForLargeScores) {
  Tensor s1 = Tensor::FromVector({1, 1}, {1000.0f});
  Tensor s2 = Tensor::FromVector({1, 1}, {999.0f});
  auto weights = SoftmaxAcross({s1, s2});
  EXPECT_TRUE(std::isfinite(weights[0].at(0)));
  EXPECT_NEAR(weights[0].at(0) + weights[1].at(0), 1.0f, 1e-5f);
  EXPECT_GT(weights[0].at(0), weights[1].at(0));
}

TEST(AttentionTest, WeightedSumMatchesManual) {
  Tensor w1 = Tensor::FromVector({1, 2}, {0.25f, 0.75f});
  Tensor w2 = Tensor::FromVector({1, 2}, {0.75f, 0.25f});
  Tensor x1 = Tensor::FromVector({1, 2}, {4.0f, 8.0f});
  Tensor x2 = Tensor::FromVector({1, 2}, {8.0f, 4.0f});
  Tensor out = WeightedSum({w1, w2}, {x1, x2});
  EXPECT_FLOAT_EQ(out.at(0), 0.25f * 4.0f + 0.75f * 8.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.75f * 8.0f + 0.25f * 4.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromVector({2}, {5.0f, -3.0f}).set_requires_grad(true);
  Adam opt({x}, {.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    Tensor loss = tensor::SumAll(tensor::Square(x));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 0.02f);
  EXPECT_NEAR(x.at(1), 0.0f, 0.02f);
}

TEST(AdamTest, StepCountAdvances) {
  Tensor x = Tensor::FromVector({1}, {1.0f}).set_requires_grad(true);
  Adam opt({x}, {});
  EXPECT_EQ(opt.step_count(), 0);
  Tensor loss = tensor::SumAll(tensor::Square(x));
  Backward(loss);
  opt.Step();
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  Rng rng(13);
  Mlp mlp({2, 4, 1}, &rng);
  Tensor loss = tensor::MeanAll(mlp.Forward(Tensor::Full({3, 2}, 1.0f)));
  Backward(loss);
  bool any_nonzero = false;
  for (tensor::Tensor p : mlp.Parameters()) {
    for (float g : p.grad_vector()) any_nonzero = any_nonzero || g != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  mlp.ZeroGrad();
  for (tensor::Tensor p : mlp.Parameters()) {
    for (float g : p.grad_vector()) EXPECT_EQ(g, 0.0f);
  }
}

}  // namespace
}  // namespace halk::nn
