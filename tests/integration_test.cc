// Full-pipeline integration test: synthetic KG → training → checkpoint →
// reload → evaluation → LSH retrieval → pruning → matching → SPARQL.
// Everything a downstream user would chain together, on one tiny dataset.

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

#include "halk/halk.h"

namespace halk {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 250;
    opt.num_relations = 10;
    opt.num_triples = 2500;
    opt.seed = 2024;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));

    Rng rng(4);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);

    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 16;
    config.hidden = 32;
    config.seed = 5;
    model_ = new core::HalkModel(config, grouping_);

    core::TrainerOptions opt2;
    opt2.steps = 900;
    opt2.batch_size = 32;
    opt2.num_negatives = 16;
    opt2.learning_rate = 1e-2f;
    opt2.queries_per_structure = 120;
    opt2.structures = {query::StructureId::k1p, query::StructureId::k2p,
                       query::StructureId::k2i, query::StructureId::k2d};
    core::Trainer trainer(model_, &dataset_->train, grouping_, opt2);
    auto stats = trainer.Train();
    ASSERT_TRUE(stats.ok());
  }

  static void TearDownTestSuite() {
    delete model_;
    delete grouping_;
    delete dataset_;
    model_ = nullptr;
    grouping_ = nullptr;
    dataset_ = nullptr;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
  static core::HalkModel* model_;
};

kg::Dataset* PipelineTest::dataset_ = nullptr;
kg::NodeGrouping* PipelineTest::grouping_ = nullptr;
core::HalkModel* PipelineTest::model_ = nullptr;

TEST_F(PipelineTest, TrainedModelRanksAnswersAboveUntrained) {
  query::QuerySampler sampler(&dataset_->test, 9);
  auto queries = sampler.SampleMany(query::StructureId::k1p, 25);
  ASSERT_TRUE(queries.ok());
  core::Evaluator evaluator(model_);
  core::Metrics trained = evaluator.Evaluate(*queries);

  core::ModelConfig config = model_->config();
  config.seed = 321;
  core::HalkModel untrained(config, grouping_);
  core::Evaluator evaluator_u(&untrained);
  core::Metrics random = evaluator_u.Evaluate(*queries);

  EXPECT_GT(trained.mrr, random.mrr * 1.5);
  EXPECT_GT(trained.mrr, 0.05);
}

TEST_F(PipelineTest, CheckpointRoundTripThroughDisk) {
  const std::string path = testing::TempDir() + "/pipeline_ckpt.bin";
  ASSERT_TRUE(core::SaveCheckpoint(*model_, path).ok());
  core::ModelConfig config = model_->config();
  config.seed = 999;
  core::HalkModel reloaded(config, grouping_);
  ASSERT_TRUE(core::LoadCheckpoint(&reloaded, path).ok());

  query::QuerySampler sampler(&dataset_->test, 11);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  core::Evaluator ev_a(model_);
  core::Evaluator ev_b(&reloaded);
  EXPECT_EQ(ev_a.TopK(q->graph, 10), ev_b.TopK(q->graph, 10));
  std::remove(path.c_str());
}

TEST_F(PipelineTest, LshTopKAgreesWithExactForTrainedModel) {
  const auto& angles = model_->entity_angles();
  core::AngularLshIndex::Options lsh_opt;
  lsh_opt.num_tables = 16;
  lsh_opt.bits_per_table = 4;
  core::AngularLshIndex index(angles.data(), model_->config().num_entities,
                              model_->config().dim, lsh_opt);
  query::QuerySampler sampler(&dataset_->test, 13);
  auto q = sampler.Sample(query::StructureId::k1p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  core::EmbeddingBatch emb = model_->EmbedQueries(batch);

  // Exact top-10 from the evaluator vs LSH top-10: high overlap required
  // (the LSH path may probe a subset of buckets).
  core::Evaluator evaluator(model_);
  auto exact = evaluator.TopK(q->graph, 10);
  auto approx = index.TopK(emb.a.data(), emb.b.data(), 10,
                           model_->config().rho, model_->config().eta);
  int overlap = 0;
  for (int64_t e : approx) {
    overlap += std::find(exact.begin(), exact.end(), e) != exact.end();
  }
  EXPECT_GE(overlap, 7);
}

TEST_F(PipelineTest, PruneThenMatchIsSound) {
  query::QuerySampler sampler(&dataset_->test, 15);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  matching::SubgraphMatcher full(&dataset_->test);
  matching::PrunedMatcher pruned(model_, &dataset_->test, 20);
  auto fr = full.Match(q->graph);
  auto pr = pruned.Match(q->graph);
  ASSERT_TRUE(fr.ok());
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(*fr, q->answers);  // full matcher is exact on observed edges
  for (int64_t a : *pr) {      // pruned answers are sound
    EXPECT_TRUE(std::binary_search(fr->begin(), fr->end(), a));
  }
}

TEST_F(PipelineTest, SparqlToNeuralAnswers) {
  // Express a 2i query over the synthetic vocabulary via SPARQL.
  query::QuerySampler sampler(&dataset_->test, 17);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  const auto& nodes = q->graph.nodes();
  const query::QueryNode& inter =
      nodes[static_cast<size_t>(q->graph.target())];
  const query::QueryNode& p1 = nodes[static_cast<size_t>(inter.inputs[0])];
  const query::QueryNode& p2 = nodes[static_cast<size_t>(inter.inputs[1])];
  const auto& ents = dataset_->test.entities();
  const auto& rels = dataset_->test.relations();
  const std::string sparql =
      "SELECT ?x WHERE { " +
      ents.Name(nodes[static_cast<size_t>(p1.inputs[0])].anchor_entity) +
      " " + rels.Name(p1.relation) + " ?x . " +
      ents.Name(nodes[static_cast<size_t>(p2.inputs[0])].anchor_entity) +
      " " + rels.Name(p2.relation) + " ?x . }";
  auto compiled = sparql::CompileSparql(sparql, dataset_->test);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto exact = query::ExecuteQuery(*compiled, dataset_->test);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, q->answers);

  core::Evaluator evaluator(model_);
  auto top = evaluator.TopK(*compiled, 5);
  EXPECT_EQ(top.size(), 5u);
}

TEST_F(PipelineTest, RewrittenQueriesEmbedIdentically) {
  // The planner's rewrites must be transparent to the neural executor
  // in the union/negation-free case (same DAG up to flattening).
  query::QuerySampler sampler(&dataset_->test, 19);
  auto q = sampler.Sample(query::StructureId::kPi);
  ASSERT_TRUE(q.ok());
  query::QueryGraph normalized = plan::RewriteQuery(q->graph);
  core::Evaluator evaluator(model_);
  EXPECT_EQ(evaluator.TopK(q->graph, 10), evaluator.TopK(normalized, 10));
}

}  // namespace
}  // namespace halk
