#include <algorithm>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "sparql/adaptor.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace halk::sparql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT ?x WHERE { ?x :rel :Const . }");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kVariable);
  EXPECT_EQ((*tokens)[1].text, "x");
  EXPECT_EQ((*tokens)[3].type, TokenType::kLBrace);
  EXPECT_EQ((*tokens)[5].type, TokenType::kIri);
  EXPECT_EQ((*tokens)[5].text, "rel");
}

TEST(LexerTest, IriNormalization) {
  auto tokens = Lex("<http://example.org/ns#Oscar> ns:won :prize");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Oscar");
  EXPECT_EQ((*tokens)[1].text, "won");
  EXPECT_EQ((*tokens)[2].text, "prize");
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select ?x where { }");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("SELECT ?x # a comment\nWHERE { }");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, UnterminatedIriIsError) {
  EXPECT_FALSE(Lex("SELECT ?x WHERE { <http://oops ").ok());
}

TEST(ParserTest, BasicGraphPattern) {
  auto q = Parse("SELECT ?f WHERE { ?d directed ?f . oscar won_by ?d . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->target_variable, "f");
  ASSERT_EQ(q->where.triples.size(), 2u);
  EXPECT_TRUE(q->where.triples[0].subject.is_variable());
  EXPECT_EQ(q->where.triples[1].subject.text, "oscar");
}

TEST(ParserTest, PrefixAndDistinctAccepted) {
  auto q = Parse(
      "PREFIX ns: <http://example.org/> "
      "SELECT DISTINCT ?x WHERE { ns:a ns:r ?x . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples[0].subject.text, "a");
}

TEST(ParserTest, FilterNotExists) {
  auto q = Parse(
      "SELECT ?x WHERE { a r ?x . FILTER NOT EXISTS { b s ?x . } }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.not_exists.size(), 1u);
  EXPECT_EQ(q->where.not_exists[0].triples.size(), 1u);
}

TEST(ParserTest, MinusBlock) {
  auto q = Parse("SELECT ?x WHERE { a r ?x . MINUS { b s ?x . } }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.minus.size(), 1u);
}

TEST(ParserTest, UnionBlocks) {
  auto q = Parse(
      "SELECT ?x WHERE { { a r ?x . } UNION { b s ?x . } UNION { c t ?x } }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.unions.size(), 1u);
  EXPECT_EQ(q->where.unions[0].size(), 3u);
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(Parse("WHERE { a r ?x }").ok());            // no SELECT
  EXPECT_FALSE(Parse("SELECT ?x ?y WHERE { a r ?x }").ok());  // two vars
  EXPECT_FALSE(Parse("SELECT ?x WHERE { a ?p ?x }").ok());  // var predicate
  EXPECT_FALSE(Parse("SELECT ?x WHERE { a r ?x ").ok());    // unterminated
  EXPECT_FALSE(Parse("SELECT ?x WHERE { FILTER EXISTS { a r ?x } }").ok());
}

// --- Adaptor tests on the Fig. 1 movie scenario. ---

class AdaptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // "Films directed by Oscar-winning American directors."
    kg_.AddTriple("Oscar", "won_by", "Borzage");
    kg_.AddTriple("Oscar", "won_by", "Chaplin");
    kg_.AddTriple("USA", "citizen", "Borzage");
    kg_.AddTriple("USA", "citizen", "Hitchcock");
    kg_.AddTriple("Borzage", "directed", "SeventhHeaven");
    kg_.AddTriple("Borzage", "directed", "StreetAngel");
    kg_.AddTriple("Chaplin", "directed", "ModernTimes");
    kg_.AddTriple("Hitchcock", "directed", "Psycho");
    kg_.AddTriple("Festival", "screened", "StreetAngel");
    // Inverse relation used by subject-variable patterns.
    kg_.AddTriple("SeventhHeaven", "directed_inv", "Borzage");
    kg_.Finalize();
  }

  std::vector<std::string> Answers(const std::string& sparql) {
    auto graph = CompileSparql(sparql, kg_);
    if (!graph.ok()) ADD_FAILURE() << graph.status().ToString();
    auto result = query::ExecuteQuery(*graph, kg_);
    if (!result.ok()) ADD_FAILURE() << result.status().ToString();
    std::vector<std::string> names;
    for (int64_t id : *result) names.push_back(kg_.entities().Name(id));
    std::sort(names.begin(), names.end());
    return names;
  }

  kg::KnowledgeGraph kg_;
};

TEST_F(AdaptorTest, Figure1Query) {
  // 2i + projection: films by directors who won the Oscar AND are American.
  auto names = Answers(
      "SELECT ?f WHERE { Oscar won_by ?d . USA citizen ?d . "
      "?d directed ?f }");
  EXPECT_EQ(names,
            (std::vector<std::string>{"SeventhHeaven", "StreetAngel"}));
}

TEST_F(AdaptorTest, MinusMapsToDifference) {
  auto names = Answers(
      "SELECT ?f WHERE { Borzage directed ?f . "
      "MINUS { Festival screened ?f . } }");
  EXPECT_EQ(names, (std::vector<std::string>{"SeventhHeaven"}));
}

TEST_F(AdaptorTest, NotExistsMapsToNegation) {
  auto names = Answers(
      "SELECT ?f WHERE { Borzage directed ?f . "
      "FILTER NOT EXISTS { Festival screened ?f . } }");
  EXPECT_EQ(names, (std::vector<std::string>{"SeventhHeaven"}));
}

TEST_F(AdaptorTest, UnionMapsToUnion) {
  auto names = Answers(
      "SELECT ?f WHERE { { Borzage directed ?f . } UNION "
      "{ Chaplin directed ?f . } }");
  EXPECT_EQ(names, (std::vector<std::string>{"ModernTimes", "SeventhHeaven",
                                             "StreetAngel"}));
}

TEST_F(AdaptorTest, InverseRelationForSubjectVariable) {
  auto names = Answers("SELECT ?d WHERE { ?d directed SeventhHeaven . }");
  EXPECT_EQ(names, (std::vector<std::string>{"Borzage"}));
}

TEST_F(AdaptorTest, MissingInverseIsExplained) {
  auto graph =
      CompileSparql("SELECT ?x WHERE { ?x screened StreetAngel }", kg_);
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("screened_inv"), std::string::npos);
}

TEST_F(AdaptorTest, UnknownEntityIsNotFound) {
  auto graph = CompileSparql("SELECT ?x WHERE { Nobody directed ?x }", kg_);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kNotFound);
}

TEST_F(AdaptorTest, UnproducedVariableIsError) {
  auto graph = CompileSparql("SELECT ?x WHERE { Oscar won_by ?d }", kg_);
  EXPECT_FALSE(graph.ok());
}

TEST_F(AdaptorTest, OperatorMappingShapes) {
  auto graph = CompileSparql(
      "SELECT ?f WHERE { Oscar won_by ?d . USA citizen ?d . ?d directed ?f "
      ". MINUS { Festival screened ?f } "
      "FILTER NOT EXISTS { Chaplin directed ?f } }",
      kg_);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->HasOp(query::OpType::kIntersection));
  EXPECT_TRUE(graph->HasOp(query::OpType::kDifference));
  EXPECT_TRUE(graph->HasOp(query::OpType::kNegation));
}

}  // namespace
}  // namespace halk::sparql
