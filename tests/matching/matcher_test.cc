#include "matching/matcher.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "kg/synthetic.h"
#include "matching/pruned_matcher.h"
#include "query/executor.h"
#include "query/sampler.h"

namespace halk::matching {
namespace {

using query::StructureId;

class MatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 300;
    opt.num_relations = 10;
    opt.num_triples = 2200;
    opt.seed = 91;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static kg::Dataset* dataset_;
};

kg::Dataset* MatcherTest::dataset_ = nullptr;

TEST_F(MatcherTest, AgreesWithExecutorOnObservedGraph) {
  SubgraphMatcher matcher(&dataset_->test);
  query::QuerySampler sampler(&dataset_->test, 1);
  for (StructureId id :
       {StructureId::k1p, StructureId::k2p, StructureId::k2i,
        StructureId::kPi, StructureId::k2d, StructureId::k2in,
        StructureId::k2u, StructureId::k2ippd}) {
    auto q = sampler.Sample(id);
    ASSERT_TRUE(q.ok()) << query::StructureName(id);
    auto matched = matcher.Match(q->graph);
    ASSERT_TRUE(matched.ok());
    EXPECT_EQ(*matched, q->answers) << query::StructureName(id);
  }
}

TEST_F(MatcherTest, MissesHeldOutAnswers) {
  // Matching on the training graph cannot recover answers that need
  // held-out edges — the structural weakness the paper's Table VI shows.
  SubgraphMatcher matcher(&dataset_->train);
  query::QuerySampler sampler(&dataset_->test, 2);
  int64_t missed = 0;
  int64_t total = 0;
  for (int i = 0; i < 30; ++i) {
    auto q = sampler.Sample(StructureId::k2p);
    ASSERT_TRUE(q.ok());
    auto matched = matcher.Match(q->graph);
    ASSERT_TRUE(matched.ok());
    for (int64_t a : q->answers) {
      total++;
      missed += !std::binary_search(matched->begin(), matched->end(), a);
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(missed, 0);
}

TEST_F(MatcherTest, StatsArePopulated) {
  SubgraphMatcher matcher(&dataset_->test);
  query::QuerySampler sampler(&dataset_->test, 3);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  MatchStats stats;
  ASSERT_TRUE(matcher.Match(q->graph, &stats).ok());
  EXPECT_GT(stats.verification_steps, 0);
  EXPECT_GT(stats.candidates_checked, 0);
  EXPECT_GE(stats.millis, 0.0);
}

TEST_F(MatcherTest, WorkGrowsWithQuerySize) {
  // Verification effort must grow with the number of projection hops —
  // the scalability axis of Table VI.
  SubgraphMatcher matcher(&dataset_->test);
  query::QuerySampler sampler(&dataset_->test, 4);
  auto avg_steps = [&](StructureId id) {
    int64_t total = 0;
    for (int i = 0; i < 10; ++i) {
      auto q = sampler.Sample(id);
      EXPECT_TRUE(q.ok());
      MatchStats stats;
      EXPECT_TRUE(matcher.Match(q->graph, &stats).ok());
      total += stats.verification_steps;
    }
    return total / 10;
  };
  const int64_t steps_1p = avg_steps(StructureId::k1p);
  const int64_t steps_p3ip = avg_steps(StructureId::kP3ip);
  EXPECT_GT(steps_p3ip, steps_1p);
}

TEST_F(MatcherTest, PrunedMatcherSpeedsUpWithBoundedAccuracyLoss) {
  core::ModelConfig config;
  config.num_entities = dataset_->train.num_entities();
  config.num_relations = dataset_->train.num_relations();
  config.dim = 8;
  config.hidden = 16;
  config.gamma = 6.0f;
  config.seed = 5;
  core::HalkModel model(config, nullptr);
  core::TrainerOptions topt;
  topt.steps = 120;
  topt.batch_size = 16;
  topt.num_negatives = 8;
  topt.queries_per_structure = 50;
  topt.structures = {StructureId::k1p, StructureId::k2p, StructureId::k2i};
  topt.seed = 6;
  core::Trainer trainer(&model, &dataset_->train, nullptr, topt);
  ASSERT_TRUE(trainer.Train().ok());

  SubgraphMatcher full(&dataset_->test);
  PrunedMatcher pruned(&model, &dataset_->test, /*top_k=*/20);
  query::QuerySampler sampler(&dataset_->test, 7);

  int64_t full_steps = 0;
  int64_t pruned_steps = 0;
  int64_t found = 0;
  int64_t truth = 0;
  for (int i = 0; i < 10; ++i) {
    auto q = sampler.Sample(StructureId::k2i);
    ASSERT_TRUE(q.ok());
    MatchStats fs, ps;
    auto fr = full.Match(q->graph, &fs);
    auto pr = pruned.Match(q->graph, &ps);
    ASSERT_TRUE(fr.ok());
    ASSERT_TRUE(pr.ok());
    full_steps += fs.verification_steps;
    pruned_steps += ps.verification_steps;
    truth += static_cast<int64_t>(fr->size());
    for (int64_t a : *pr) {
      found += std::binary_search(fr->begin(), fr->end(), a);
    }
    // Pruned answers are a subset of the full matcher's answers.
    for (int64_t a : *pr) {
      EXPECT_TRUE(std::binary_search(fr->begin(), fr->end(), a));
    }
  }
  EXPECT_LT(pruned_steps, full_steps);
  EXPECT_GT(truth, 0);
}

TEST_F(MatcherTest, RejectsUngroundedQuery) {
  SubgraphMatcher matcher(&dataset_->test);
  query::QueryGraph q = query::MakeStructure(StructureId::k2p);
  EXPECT_FALSE(matcher.Match(q).ok());
}

}  // namespace
}  // namespace halk::matching
