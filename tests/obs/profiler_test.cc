// Hierarchical CPU profiler: scope nesting, cross-thread merging, the
// disabled fast path, Reset semantics, arena overflow, and the collapsed /
// chrome-trace export formats (exercised on hand-built snapshots so the
// assertions are exact, not timing-dependent).

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/profiler.h"

namespace halk::obs {
namespace {

// Spins until the monotonic clock moves so every recorded scope has a
// strictly positive duration (sleeping would slow the suite for nothing).
void BurnClock() {
  volatile int sink = 0;
  for (int i = 0; i < 50000; ++i) sink = sink + i;
  (void)sink;
}

TEST(ProfilerTest, DisabledScopesAreInert) {
  Profiler profiler;
  ASSERT_FALSE(profiler.enabled());
  {
    ProfileScope scope(profiler, "never");
    EXPECT_FALSE(scope.active());
  }
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(ProfilerTest, NestedScopesBuildACallTree) {
  Profiler profiler;
  profiler.set_enabled(true);
  {
    ProfileScope outer(profiler, "outer");
    ASSERT_TRUE(outer.active());
    for (int i = 0; i < 3; ++i) {
      ProfileScope inner(profiler, "inner");
      BurnClock();
    }
  }
  ProfileSnapshot snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.roots().size(), 1u);
  const ProfileEntry& outer = snapshot.roots()[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  ASSERT_EQ(outer.children.size(), 1u);
  const ProfileEntry& inner = outer.children[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 3);
  // The inner region's time nests inside the outer's.
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_GT(inner.total_ns, 0);
  EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
  // Named lookups sum over the whole tree.
  EXPECT_EQ(snapshot.TotalNs("inner"), inner.total_ns);
  EXPECT_EQ(snapshot.Count("inner"), 3);
  EXPECT_EQ(snapshot.TotalNs("absent"), 0);
}

TEST(ProfilerTest, SameNameUnderDifferentParentsStaysSeparate) {
  Profiler profiler;
  profiler.set_enabled(true);
  {
    ProfileScope a(profiler, "a");
    ProfileScope work(profiler, "work");
    BurnClock();
  }
  {
    ProfileScope b(profiler, "b");
    ProfileScope work(profiler, "work");
    BurnClock();
  }
  ProfileSnapshot snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.roots().size(), 2u);  // sorted: a, b
  EXPECT_EQ(snapshot.roots()[0].name, "a");
  EXPECT_EQ(snapshot.roots()[1].name, "b");
  ASSERT_EQ(snapshot.roots()[0].children.size(), 1u);
  ASSERT_EQ(snapshot.roots()[1].children.size(), 1u);
  EXPECT_EQ(snapshot.roots()[0].children[0].count, 1);
  EXPECT_EQ(snapshot.roots()[1].children[0].count, 1);
  // ...but name-keyed queries still see both.
  EXPECT_EQ(snapshot.Count("work"), 2);
}

TEST(ProfilerTest, ThreadsMergeByPath) {
  Profiler profiler;
  profiler.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (int i = 0; i < kIters; ++i) {
        ProfileScope outer(profiler, "serve");
        ProfileScope inner(profiler, "rank");
        BurnClock();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ProfileSnapshot snapshot = profiler.Snapshot();
  // All threads' trees merge into one "serve" root with one "rank" child.
  ASSERT_EQ(snapshot.roots().size(), 1u);
  EXPECT_EQ(snapshot.roots()[0].name, "serve");
  EXPECT_EQ(snapshot.roots()[0].count, kThreads * kIters);
  ASSERT_EQ(snapshot.roots()[0].children.size(), 1u);
  EXPECT_EQ(snapshot.roots()[0].children[0].count, kThreads * kIters);
  EXPECT_EQ(profiler.overflow_count(), 0);
}

TEST(ProfilerTest, ResetZeroesCountersButKeepsRecording) {
  Profiler profiler;
  profiler.set_enabled(true);
  {
    ProfileScope scope(profiler, "phase");
    BurnClock();
  }
  ASSERT_EQ(profiler.Snapshot().Count("phase"), 1);
  profiler.Reset();
  EXPECT_EQ(profiler.Snapshot().Count("phase"), 0);
  EXPECT_EQ(profiler.Snapshot().TotalNs("phase"), 0);
  {
    ProfileScope scope(profiler, "phase");
    BurnClock();
  }
  EXPECT_EQ(profiler.Snapshot().Count("phase"), 1);
}

TEST(ProfilerTest, ArenaOverflowIsCountedNotRecorded) {
  Profiler profiler;
  profiler.set_enabled(true);
  // Each recursion level creates a new (parent, "deep") node, so depth
  // beyond kMaxProfileNodes must overflow; the overflowing scopes stay
  // inert instead of corrupting the arena.
  std::function<void(uint32_t)> recurse = [&](uint32_t depth) {
    if (depth == 0) return;
    ProfileScope scope(profiler, "deep");
    recurse(depth - 1);
  };
  recurse(kMaxProfileNodes + 50);
  EXPECT_GE(profiler.overflow_count(), 50);
  ProfileSnapshot snapshot = profiler.Snapshot();
  EXPECT_EQ(snapshot.Count("deep"), kMaxProfileNodes);
}

// --- export formats, on a hand-built snapshot ------------------------------

ProfileSnapshot MakeSnapshot() {
  ProfileEntry inner;
  inner.name = "inner";
  inner.count = 2;
  inner.total_ns = 2000;
  inner.self_ns = 2000;
  ProfileEntry zero_self;
  zero_self.name = "forward_only";
  zero_self.count = 1;
  zero_self.total_ns = 0;
  zero_self.self_ns = 0;
  ProfileEntry root;
  root.name = "train";
  root.count = 1;
  root.total_ns = 5000;
  root.self_ns = 3000;
  root.children = {inner, zero_self};
  return ProfileSnapshot({root});
}

TEST(ProfileSnapshotTest, FlattenJoinsPathsWithSemicolons) {
  const std::vector<ProfileFlatEntry> flat = MakeSnapshot().Flatten();
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0].path, "train");
  EXPECT_EQ(flat[1].path, "train;inner");
  EXPECT_EQ(flat[1].name, "inner");
  EXPECT_EQ(flat[2].path, "train;forward_only");
}

TEST(ProfileSnapshotTest, TopSelfOrdersBySelfTime) {
  const std::vector<ProfileFlatEntry> top = MakeSnapshot().TopSelf(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "train");
  EXPECT_EQ(top[0].self_ns, 3000);
  EXPECT_EQ(top[1].path, "train;inner");
}

TEST(ProfileSnapshotTest, CollapsedFormatSkipsZeroSelfRegions) {
  const std::string collapsed = MakeSnapshot().ToCollapsed();
  EXPECT_EQ(collapsed, "train 3000\ntrain;inner 2000\n");
}

TEST(ProfileSnapshotTest, ChromeJsonEmitsCompleteEvents) {
  const std::string json = MakeSnapshot().ToChromeJson();
  // Same envelope shape as Trace::ToChromeJson().
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 5000 ns root duration -> 5.000 us; counts ride in args.
  EXPECT_NE(json.find("\"name\":\"train\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":1,\"self_us\":3.000}"),
            std::string::npos);
  // The child is packed at the parent's start.
  EXPECT_NE(json.find("\"name\":\"inner\",\"cat\":\"halk\",\"ph\":\"X\","
                      "\"ts\":0.000"),
            std::string::npos);
}

TEST(ProfileSnapshotTest, EmptySnapshotExportsAreWellFormed) {
  ProfileSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.ToCollapsed(), "");
  EXPECT_NE(empty.ToChromeJson().find("\"traceEvents\":[]"),
            std::string::npos);
  EXPECT_TRUE(empty.TopSelf(5).empty());
}

}  // namespace
}  // namespace halk::obs
