#include "obs/windowed_histogram.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::obs {
namespace {

constexpr int64_t kSlotNs = 1000;  // tiny slots so tests rotate cheaply

/// A fake clock the test advances by hand; shared with the histogram via
/// the injectable now_ns so rotation is fully deterministic.
struct FakeClock {
  std::atomic<int64_t> now_ns{0};
  std::function<int64_t()> fn() {
    // order: test clock, advanced between quiesced phases.
    return [this] { return now_ns.load(std::memory_order_relaxed); };
  }
  void Advance(int64_t ns) {
    // order: see fn().
    now_ns.fetch_add(ns, std::memory_order_relaxed);
  }
};

TEST(WindowedHistogramTest, ObservationsLandInBuckets) {
  FakeClock clock;
  WindowedHistogram hist({10.0, 100.0}, kSlotNs, 4, clock.fn());
  hist.Observe(5.0);
  hist.Observe(50.0);
  hist.Observe(500.0);
  const WindowedHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.total, 3);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_DOUBLE_EQ(snap.sum, 555.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 185.0);
}

TEST(WindowedHistogramTest, OldSlotsAgeOutOfTheWindow) {
  FakeClock clock;
  WindowedHistogram hist({10.0}, kSlotNs, 4, clock.fn());
  hist.Observe(1.0);
  EXPECT_EQ(hist.TakeSnapshot().total, 1);

  // Still inside the 4-slot window three slots later...
  clock.Advance(3 * kSlotNs);
  hist.Observe(2.0);
  EXPECT_EQ(hist.TakeSnapshot().total, 2);

  // ...but the first observation's slot leaves the window at slot 4.
  clock.Advance(kSlotNs);
  EXPECT_EQ(hist.TakeSnapshot().total, 1);

  // And a full window of silence empties it.
  clock.Advance(4 * kSlotNs);
  EXPECT_EQ(hist.TakeSnapshot().total, 0);
  EXPECT_DOUBLE_EQ(hist.TakeSnapshot().sum, 0.0);
}

TEST(WindowedHistogramTest, SlotReuseZeroesStaleCounts) {
  FakeClock clock;
  WindowedHistogram hist({10.0}, kSlotNs, 2, clock.fn());
  for (int i = 0; i < 5; ++i) hist.Observe(1.0);
  // Advance exactly num_slots slots: the same ring slot is reused for a
  // new epoch and must restart from zero, not accumulate.
  clock.Advance(2 * kSlotNs);
  hist.Observe(1.0);
  EXPECT_EQ(hist.TakeSnapshot().total, 1);
}

TEST(WindowedHistogramTest, SnapshotQuantileMatchesCumulativeSemantics) {
  FakeClock clock;
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  WindowedHistogram hist(bounds, kSlotNs, 4, clock.fn());
  serving::Histogram reference(bounds);
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * static_cast<double>(i);
    hist.Observe(x);
    reference.Observe(x);
  }
  const WindowedHistogram::Snapshot snap = hist.TakeSnapshot();
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
}

TEST(WindowedHistogramTest, EmptyWindowQuantileIsZero) {
  FakeClock clock;
  WindowedHistogram hist({1.0}, kSlotNs, 2, clock.fn());
  // Every quantile of a never-observed window is 0, including the
  // degenerate endpoints.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hist.TakeSnapshot().Quantile(q), 0.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(hist.TakeSnapshot().mean(), 0.0);
}

TEST(WindowedHistogramTest, AgedOutWindowQuantileIsZeroAgain) {
  // A window that *was* populated and then fully aged out must answer
  // like a fresh one — the SLO burn-rate engine calls Quantile on idle
  // services, where every slot has rotated to a stale epoch.
  FakeClock clock;
  WindowedHistogram hist({1.0, 10.0}, kSlotNs, 2, clock.fn());
  hist.Observe(5.0);
  hist.Observe(50.0);
  EXPECT_GT(hist.TakeSnapshot().Quantile(0.5), 0.0);
  clock.Advance(3 * kSlotNs);
  const WindowedHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.total, 0);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 0.0) << "q=" << q;
  }
}

// TSan-targeted: writers observing while the clock races forward (forcing
// rotation elections) and a reader snapshotting continuously. Exact counts
// are checked after writers quiesce within a stable epoch.
TEST(WindowedHistogramTest, ConcurrentObserveAndRotation) {
  FakeClock clock;
  WindowedHistogram hist({10.0, 100.0}, kSlotNs, 8, clock.fn());
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    // order: plain stop flag for the polling reader.
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const WindowedHistogram::Snapshot snap = hist.TakeSnapshot();
      // Monotone sanity only — totals race with in-flight rotation.
      EXPECT_GE(snap.total, 0);
    }
  });
  std::thread ticker([&] {
    // order: see FakeClock.
    for (int i = 0; i < 200; ++i) {
      clock.Advance(kSlotNs / 4);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        hist.Observe(static_cast<double>((w * kPerWriter + i) % 200));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ticker.join();
  // order: release not needed; join above already ordered writer effects.
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiesced: everything still inside the window must be consistent
  // (counts sum to total; boundary-dropped observations only shrink it,
  // and the ticker may have aged arbitrarily much out of the window).
  hist.Observe(1.0);
  const WindowedHistogram::Snapshot snap = hist.TakeSnapshot();
  int64_t bucket_sum = 0;
  for (const int64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);
  EXPECT_LE(snap.total, int64_t{kWriters} * kPerWriter + 1);
  EXPECT_GE(snap.total, 1);
}

}  // namespace
}  // namespace halk::obs
