// Training journal: the flat JSON line builder/parser round-trip, escape
// and error handling, the FNV-1a options fingerprint, and TrainJournal's
// append/flush/record-count behavior against both a stream and a file.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/journal.h"

namespace halk::obs {
namespace {

TEST(JsonLineBuilderTest, RendersGoldenLine) {
  JsonLineBuilder b;
  b.Str("record", "step")
      .Int("step", 42)
      .Num("loss", 0.5)
      .Bool("done", false)
      .Null("note");
  EXPECT_EQ(b.Finish(),
            "{\"record\":\"step\",\"step\":42,\"loss\":0.5,"
            "\"done\":false,\"note\":null}");
}

TEST(JsonLineBuilderTest, EscapesStringsAndRejectsNonFinite) {
  JsonLineBuilder b;
  b.Str("msg", "a\"b\\c\nd").Num("bad", std::nan("")).Num(
      "inf", std::numeric_limits<double>::infinity());
  const std::string line = b.Finish();
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd"), std::string::npos);
  // Non-finite doubles have no JSON representation; they become null.
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(line.find("\"inf\":null"), std::string::npos);
}

TEST(JsonLineBuilderTest, EmptyBuilderRendersEmptyObject) {
  JsonLineBuilder b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.Finish(), "{}");
}

TEST(ParseJsonLineTest, RoundTripsBuilderOutput) {
  JsonLineBuilder b;
  b.Str("record", "header")
      .Int("seed", -7)
      .Num("lr", 0.004999999888241291)
      .Bool("profile", true)
      .Null("extra");
  auto parsed = ParseJsonLine(b.Finish());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 5u);
  // Key order of appearance is preserved.
  EXPECT_EQ((*parsed)[0].first, "record");
  EXPECT_EQ((*parsed)[0].second.string_value, "header");
  const JsonValue* seed = FindKey(*parsed, "seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_DOUBLE_EQ(seed->number, -7.0);
  // %.17g rendering round-trips doubles exactly.
  EXPECT_EQ(FindKey(*parsed, "lr")->number, 0.004999999888241291);
  EXPECT_TRUE(FindKey(*parsed, "profile")->bool_value);
  EXPECT_EQ(FindKey(*parsed, "extra")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(FindKey(*parsed, "absent"), nullptr);
}

TEST(ParseJsonLineTest, HandlesUnicodeEscapes) {
  auto parsed = ParseJsonLine("{\"s\":\"a\\u0041\\u00e9\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok());
  // \u0041 = 'A', \u00e9 = é (2 UTF-8 bytes), surrogate pair = 😀 (4).
  EXPECT_EQ(FindKey(*parsed, "s")->string_value,
            "aA\xc3\xa9\xf0\x9f\x98\x80");
  // A lone surrogate decodes to U+FFFD instead of corrupting the string.
  auto lone = ParseJsonLine("{\"s\":\"\\ud83d!\"}");
  ASSERT_TRUE(lone.ok());
  EXPECT_EQ(FindKey(*lone, "s")->string_value, "\xef\xbf\xbd!");
}

TEST(ParseJsonLineTest, AcceptsSurroundingWhitespaceAndNumberForms) {
  auto parsed =
      ParseJsonLine("  { \"a\" : -1.5e3 , \"b\" : 0.25 , \"c\" : 12 }  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(FindKey(*parsed, "a")->number, -1500.0);
  EXPECT_DOUBLE_EQ(FindKey(*parsed, "b")->number, 0.25);
  EXPECT_DOUBLE_EQ(FindKey(*parsed, "c")->number, 12.0);
}

TEST(ParseJsonLineTest, RejectsMalformedInput) {
  // One representative per error class; the fuzz suite covers the rest.
  for (const char* bad : {
           "",                      // no object
           "{\"a\":1",              // unterminated
           "{\"a\":1} trailing",    // bytes after the object
           "{\"a\":{\"b\":1}}",     // nested object
           "{\"a\":[1,2]}",         // nested array
           "{\"a\":01}",            // leading zero
           "{\"a\":+1}",            // bad sign
           "{a:1}",                 // unquoted key
           "{\"a\" 1}",             // missing colon
           "{\"a\":1,}",            // trailing comma
           "{\"a\":\"\\x41\"}",     // invalid escape
           "{\"a\":\"\\u12\"}",     // short unicode escape
           "{\"a\":tru}",           // bad keyword
       }) {
    auto parsed = ParseJsonLine(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(Fnv1a64Test, MatchesReferenceVectorsAndDiscriminates) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_NE(Fnv1a64("lr=0.005"), Fnv1a64("lr=0.0005"));
}

TEST(TrainJournalTest, WritesOneFlushedLinePerRecord) {
  std::ostringstream sink;
  std::unique_ptr<TrainJournal> journal = TrainJournal::ToStream(&sink);
  JsonLineBuilder a;
  a.Str("record", "header").Int("schema_version", 1);
  journal->Write(a);
  JsonLineBuilder b;
  b.Str("record", "step").Int("step", 1);
  journal->Write(b);
  EXPECT_EQ(journal->records_written(), 2);
  const std::string text = sink.str();
  EXPECT_EQ(text,
            "{\"record\":\"header\",\"schema_version\":1}\n"
            "{\"record\":\"step\",\"step\":1}\n");
  // Every line is independently parseable (the JSONL contract).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(ParseJsonLine(line).ok()) << line;
  }
}

TEST(TrainJournalTest, OpenTruncatesAndReportsPath) {
  const std::string path =
      ::testing::TempDir() + "/halk_journal_test.jsonl";
  {
    std::ofstream stale(path);
    stale << "stale content\n";
  }
  auto journal = TrainJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->path(), path);
  JsonLineBuilder rec;
  rec.Str("record", "header");
  (*journal)->Write(rec);
  journal->reset();  // close before reading back

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"record\":\"header\"}");
  EXPECT_FALSE(std::getline(in, line)) << "stale content survived Open";
  std::remove(path.c_str());
}

TEST(TrainJournalTest, OpenOnUnwritablePathIsIOError) {
  auto journal = TrainJournal::Open("/nonexistent-dir/journal.jsonl");
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kIOError);
}

TEST(ServeJournalTest, RecordsRoundTripThroughTheLineParser) {
  std::ostringstream sink;
  std::unique_ptr<ServeJournal> journal = ServeJournal::ToStream(&sink);
  journal->Record("q:abc123", "OK", 1234.5, 10, 0.875, false,
                  0xdeadbeefull);
  journal->Record("q:abc123", "OK", 9.25, 10, 1.0, true, 0);
  EXPECT_EQ(journal->records_written(), 2);

  std::istringstream lines(sink.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  auto first = ParseJsonLine(line);
  ASSERT_TRUE(first.ok()) << line;
  EXPECT_EQ(FindKey(*first, "record")->string_value, "serve");
  EXPECT_EQ(FindKey(*first, "fingerprint")->string_value, "q:abc123");
  EXPECT_EQ(FindKey(*first, "status")->string_value, "OK");
  EXPECT_DOUBLE_EQ(FindKey(*first, "latency_us")->number, 1234.5);
  EXPECT_DOUBLE_EQ(FindKey(*first, "k")->number, 10.0);
  EXPECT_DOUBLE_EQ(FindKey(*first, "coverage")->number, 0.875);
  EXPECT_FALSE(FindKey(*first, "cache_hit")->bool_value);
  // Trace ids are hex strings: JSON doubles cannot hold 64 bits.
  EXPECT_EQ(FindKey(*first, "trace_id")->string_value, "deadbeef");

  ASSERT_TRUE(std::getline(lines, line));
  auto second = ParseJsonLine(line);
  ASSERT_TRUE(second.ok()) << line;
  EXPECT_TRUE(FindKey(*second, "cache_hit")->bool_value);
  EXPECT_EQ(FindKey(*second, "trace_id")->string_value, "0");
  EXPECT_FALSE(std::getline(lines, line)) << "exactly one line per record";
}

TEST(ServeJournalTest, PlanShapeColumnsRoundTrip) {
  std::ostringstream sink;
  std::unique_ptr<ServeJournal> journal = ServeJournal::ToStream(&sink);
  // Planned request: plan_nodes/dedup_ratio carry the serving plan shape.
  journal->Record("q:planned", "OK", 100.0, 10, 1.0, false, 0x2a,
                  /*plan_nodes=*/7, /*dedup_ratio=*/0.375);
  // Legacy/cache-hit path: defaults record an explicit zero shape.
  journal->Record("q:legacy", "OK", 5.0, 10, 1.0, true, 0);

  std::istringstream lines(sink.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  auto planned = ParseJsonLine(line);
  ASSERT_TRUE(planned.ok()) << line;
  ASSERT_NE(FindKey(*planned, "plan_nodes"), nullptr);
  EXPECT_DOUBLE_EQ(FindKey(*planned, "plan_nodes")->number, 7.0);
  ASSERT_NE(FindKey(*planned, "dedup_ratio"), nullptr);
  EXPECT_DOUBLE_EQ(FindKey(*planned, "dedup_ratio")->number, 0.375);

  ASSERT_TRUE(std::getline(lines, line));
  auto legacy = ParseJsonLine(line);
  ASSERT_TRUE(legacy.ok()) << line;
  EXPECT_DOUBLE_EQ(FindKey(*legacy, "plan_nodes")->number, 0.0);
  EXPECT_DOUBLE_EQ(FindKey(*legacy, "dedup_ratio")->number, 0.0);
}

TEST(ServeJournalTest, OpenTruncatesAndFlushesEveryRecord) {
  const std::string path =
      ::testing::TempDir() + "/halk_serve_journal_test.jsonl";
  {
    std::ofstream stale(path);
    stale << "stale content\n";
  }
  auto journal = ServeJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->path(), path);
  (*journal)->Record("q:1", "DEADLINE_EXCEEDED", 50000.0, 5, 0.5, false,
                     0x1f);
  // Records are flushed as written: readable before the journal closes.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = ParseJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(FindKey(*parsed, "status")->string_value, "DEADLINE_EXCEEDED");
  EXPECT_EQ(FindKey(*parsed, "trace_id")->string_value, "1f");
  EXPECT_FALSE(std::getline(in, line)) << "stale content survived Open";
  std::remove(path.c_str());
}

TEST(ServeJournalTest, OpenOnUnwritablePathIsIOError) {
  auto journal = ServeJournal::Open("/nonexistent-dir/serve.jsonl");
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace halk::obs
