// Deterministic SLO burn-rate tests: a fake clock drives tiny windows so
// burn rates, the both-windows alert policy, and rising-edge alert
// transitions are all exact.

#include "obs/slo_tracker.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "obs/journal.h"
#include "serving/metrics.h"

namespace halk::obs {
namespace {

struct FakeClock {
  std::atomic<int64_t> now_ns{0};
  std::function<int64_t()> fn() {
    // order: test clock, advanced between quiesced phases.
    return [this] { return now_ns.load(std::memory_order_relaxed); };
  }
  void Advance(int64_t ns) {
    // order: see fn().
    now_ns.fetch_add(ns, std::memory_order_relaxed);
  }
};

/// Tiny windows: fast = 4 slots x 1us, slow = 4 slots x 4us. A latency
/// above 100us is over-objective; budgets keep the default 1% / 0.1%.
SloOptions TestOptions(FakeClock* clock) {
  SloOptions options;
  options.latency_objective_us = 100.0;
  options.fast_window_ns = 4000;
  options.fast_slots = 4;
  options.slow_window_ns = 16000;
  options.slow_slots = 4;
  options.now_ns = clock->fn();
  return options;
}

TEST(SloTrackerTest, EmptyWindowsBurnNothing) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  const SloStatus status = tracker.Evaluate();
  EXPECT_EQ(status.requests_fast, 0);
  EXPECT_EQ(status.requests_slow, 0);
  EXPECT_DOUBLE_EQ(status.latency_burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(status.error_burn_slow, 0.0);
  EXPECT_FALSE(status.latency_alert);
  EXPECT_FALSE(status.error_alert);
}

TEST(SloTrackerTest, BurnRateIsBadFractionOverBudget) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  // 90 within-objective + 10 over-objective = 10% bad against a 1%
  // budget: burn exactly 10x in both windows. All succeed, so the error
  // objective burns nothing.
  for (int i = 0; i < 90; ++i) tracker.RecordRequest(50.0, true);
  for (int i = 0; i < 10; ++i) tracker.RecordRequest(500.0, true);
  const SloStatus status = tracker.Evaluate();
  EXPECT_EQ(status.requests_fast, 100);
  EXPECT_EQ(status.requests_slow, 100);
  EXPECT_DOUBLE_EQ(status.latency_burn_fast, 10.0);
  EXPECT_DOUBLE_EQ(status.latency_burn_slow, 10.0);
  EXPECT_DOUBLE_EQ(status.error_burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(status.error_burn_slow, 0.0);
  // 10x fast burn is under the 14.4x page threshold: no alert.
  EXPECT_FALSE(status.latency_alert);
  EXPECT_GE(status.p99_us_fast, 100.0);
}

TEST(SloTrackerTest, AlertNeedsBothWindowsBurning) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  // A long good history fills the slow window...
  for (int i = 0; i < 600; ++i) tracker.RecordRequest(10.0, true);
  // ...then the fast window rolls past it and sees a pure-bad burst.
  clock.Advance(8000);
  for (int i = 0; i < 4; ++i) tracker.RecordRequest(900.0, true);
  const SloStatus status = tracker.Evaluate();
  // Fast window: 4/4 bad -> burn 100x, way over threshold.
  EXPECT_DOUBLE_EQ(status.latency_burn_fast, 100.0);
  // Slow window: 4/604 bad -> burn ~0.66x, under the 6x threshold.
  EXPECT_LT(status.latency_burn_slow, 6.0);
  EXPECT_FALSE(status.latency_alert) << "slow window must gate the page";

  // Once the bad fraction dominates the slow window too, both burn.
  for (int i = 0; i < 120; ++i) tracker.RecordRequest(900.0, true);
  const SloStatus paged = tracker.Evaluate();
  EXPECT_GE(paged.latency_burn_fast, 14.4);
  EXPECT_GE(paged.latency_burn_slow, 6.0);
  EXPECT_TRUE(paged.latency_alert);
}

TEST(SloTrackerTest, ErrorObjectiveAlertsIndependently) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  // Fast failures: latency is fine, so only the error objective burns
  // (1/10 failed against a 0.1% budget = 100x burn).
  for (int i = 0; i < 9; ++i) tracker.RecordRequest(10.0, true);
  tracker.RecordRequest(10.0, false);
  const SloStatus status = tracker.Evaluate();
  EXPECT_DOUBLE_EQ(status.latency_burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(status.error_burn_fast, 100.0);
  EXPECT_DOUBLE_EQ(status.error_burn_slow, 100.0);
  EXPECT_FALSE(status.latency_alert);
  EXPECT_TRUE(status.error_alert);
}

TEST(SloTrackerTest, AlertTransitionsCountOncePerRisingEdge) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  serving::MetricsRegistry registry;
  tracker.RegisterMetrics(&registry);

  // Trip the latency alert: all traffic over objective burns both
  // windows far past threshold.
  for (int i = 0; i < 20; ++i) tracker.RecordRequest(500.0, true);
  EXPECT_TRUE(tracker.Evaluate().latency_alert);
  EXPECT_EQ(registry.CounterValue("slo.alerts_fired"), 1);
  EXPECT_DOUBLE_EQ(
      registry.GaugeValue("slo.alert_active", {{"objective", "latency"}}),
      1.0);
  EXPECT_DOUBLE_EQ(
      registry.GaugeValue("slo.alert_active", {{"objective", "errors"}}),
      0.0);

  // Re-evaluating while still firing is not a new transition.
  EXPECT_TRUE(tracker.Evaluate().latency_alert);
  EXPECT_TRUE(tracker.Evaluate().latency_alert);
  EXPECT_EQ(registry.CounterValue("slo.alerts_fired"), 1);

  // A full slow window of silence ages the burst out and clears the
  // alert...
  clock.Advance(20000);
  EXPECT_FALSE(tracker.Evaluate().latency_alert);
  EXPECT_DOUBLE_EQ(
      registry.GaugeValue("slo.alert_active", {{"objective", "latency"}}),
      0.0);
  EXPECT_EQ(registry.CounterValue("slo.alerts_fired"), 1);

  // ...and the next outage is a second rising edge.
  for (int i = 0; i < 20; ++i) tracker.RecordRequest(500.0, true);
  EXPECT_TRUE(tracker.Evaluate().latency_alert);
  EXPECT_EQ(registry.CounterValue("slo.alerts_fired"), 2);
}

TEST(SloTrackerTest, ScrapeTriggersEvaluationThroughCollectionHook) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  serving::MetricsRegistry registry;
  tracker.RegisterMetrics(&registry);
  for (int i = 0; i < 90; ++i) tracker.RecordRequest(50.0, true);
  for (int i = 0; i < 10; ++i) tracker.RecordRequest(500.0, true);
  // No explicit Evaluate: the dump's collection hook must refresh slo.*.
  const std::string text = registry.DumpPrometheus();
  EXPECT_DOUBLE_EQ(registry.GaugeValue("slo.requests_fast"), 100.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("slo.latency_burn_fast"), 10.0);
  EXPECT_NE(text.find("slo_latency_burn_fast"), std::string::npos) << text;
}

TEST(SloTrackerTest, StatusJsonRoundTrips) {
  FakeClock clock;
  SloTracker tracker(TestOptions(&clock));
  for (int i = 0; i < 9; ++i) tracker.RecordRequest(10.0, true);
  tracker.RecordRequest(10.0, false);
  const std::string json = tracker.Evaluate().ToJson();
  auto parsed = ParseJsonLine(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_DOUBLE_EQ(FindKey(*parsed, "requests_fast")->number, 10.0);
  EXPECT_DOUBLE_EQ(FindKey(*parsed, "error_burn_fast")->number, 100.0);
  EXPECT_FALSE(FindKey(*parsed, "latency_alert")->bool_value);
  EXPECT_TRUE(FindKey(*parsed, "error_alert")->bool_value);
}

}  // namespace
}  // namespace halk::obs
