#include "obs/trace.h"

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::obs {
namespace {

TEST(TracerTest, DisabledTracerMakesEverySpanOperationANoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.StartTrace(), 0u);

  const TraceContext ctx{&tracer, 0, 0};
  EXPECT_FALSE(ctx.active());
  SpanGuard guard(ctx, "work");
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(guard.id(), 0u);
  guard.Annotate("k", 1.0);
  guard.End();
  EXPECT_EQ(RecordSpan(ctx, "late", 1, 2), 0u);
  EXPECT_EQ(RecordEvent(ctx, "event"), 0u);
  EXPECT_TRUE(tracer.Collect(0).empty());

  // A null tracer is equally inert.
  const TraceContext null_ctx{};
  EXPECT_FALSE(null_ctx.active());
  EXPECT_EQ(RecordSpan(null_ctx, "x", 1, 2), 0u);
}

TEST(TracerTest, SpanGuardRecordsNestedSpansWithAnnotations) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  ASSERT_NE(id, 0u);

  SpanGuard root({&tracer, id, 0}, "request");
  ASSERT_TRUE(root.active());
  {
    SpanGuard child(root.child_context(), "embed");
    child.Annotate("rows", 4.0);
  }  // recorded by the destructor
  root.End();
  root.End();  // idempotent: must not record a second span

  const Trace trace = tracer.Collect(id);
  ASSERT_EQ(trace.spans().size(), 2u);
  const SpanRecord* request = trace.Find("request");
  const SpanRecord* embed = trace.Find("embed");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(embed, nullptr);
  EXPECT_EQ(request->parent, 0u);
  EXPECT_EQ(embed->parent, request->id);
  EXPECT_EQ(embed->annotation("rows"), 4.0);
  EXPECT_TRUE(embed->has_annotation("rows"));
  EXPECT_FALSE(embed->has_annotation("cols"));
  EXPECT_EQ(embed->annotation("cols", -7.0), -7.0);
  // The child nests inside the parent in time.
  EXPECT_GE(embed->start_ns, request->start_ns);
  EXPECT_LE(embed->end_ns(), request->end_ns());
  // With a root present, the trace duration is the root's duration.
  EXPECT_EQ(trace.duration_ns(), request->duration_ns);
}

TEST(TracerTest, ExplicitEndpointsAndPreallocatedRootId) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();

  // The server pattern: the root id is allocated up front so children can
  // parent it, and the root span itself is recorded last.
  const uint32_t root_id = tracer.NextSpanId();
  RecordSpan({&tracer, id, root_id}, "queue_wait", 100, 250);
  const uint32_t recorded = RecordSpan({&tracer, id, 0}, "request", 50, 400,
                                       {{"ok", 1.0}}, root_id);
  EXPECT_EQ(recorded, root_id);

  const Trace trace = tracer.Collect(id);
  const SpanRecord* request = trace.Find("request");
  const SpanRecord* wait = trace.Find("queue_wait");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(request->id, root_id);
  EXPECT_EQ(request->start_ns, 50);
  EXPECT_EQ(request->duration_ns, 350);
  EXPECT_EQ(request->annotation("ok"), 1.0);
  EXPECT_EQ(wait->parent, root_id);
  EXPECT_EQ(wait->duration_ns, 150);
  EXPECT_EQ(trace.duration_ns(), 350);
}

TEST(TracerTest, EventsAreZeroDurationSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  RecordEvent({&tracer, id, 0}, "failover", {{"shard", 2.0}});
  const Trace trace = tracer.Collect(id);
  const SpanRecord* event = trace.Find("failover");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->duration_ns, 0);
  EXPECT_EQ(event->annotation("shard"), 2.0);
}

TEST(TracerTest, DistinctTracesAreCollectedIndependently) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t a = tracer.StartTrace();
  const uint64_t b = tracer.StartTrace();
  ASSERT_NE(a, b);
  RecordSpan({&tracer, a, 0}, "alpha", 1, 2);
  RecordSpan({&tracer, b, 0}, "beta", 1, 2);
  EXPECT_EQ(tracer.Collect(a).spans().size(), 1u);
  EXPECT_STREQ(tracer.Collect(a).spans()[0].name, "alpha");
  EXPECT_EQ(tracer.Collect(b).spans().size(), 1u);
  EXPECT_STREQ(tracer.Collect(b).spans()[0].name, "beta");
  EXPECT_TRUE(tracer.Collect(a + b + 99).empty());
}

TEST(TracerTest, CollectReturnsSpansSortedByStartTime) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  RecordSpan({&tracer, id, 0}, "second", 10, 12);
  RecordSpan({&tracer, id, 0}, "first", 5, 6);
  RecordSpan({&tracer, id, 0}, "third", 20, 21);
  const Trace trace = tracer.Collect(id);
  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_STREQ(trace.spans()[0].name, "first");
  EXPECT_STREQ(trace.spans()[1].name, "second");
  EXPECT_STREQ(trace.spans()[2].name, "third");
  // No root span (all parents nonzero? here parents are 0 at top level) —
  // duration falls back to the root span's duration when present; with
  // several parent-0 spans the first by start time wins, so just check the
  // envelope invariant holds.
  EXPECT_GE(trace.duration_ns(), 0);
}

TEST(TracerTest, EnvelopeDurationWhenNoRootSpanWasRecorded) {
  std::vector<SpanRecord> spans(2);
  spans[0].trace_id = 9;
  spans[0].id = 2;
  spans[0].parent = 1;  // orphaned children only, no parent-0 span
  spans[0].name = "a";
  spans[0].start_ns = 100;
  spans[0].duration_ns = 50;
  spans[1].trace_id = 9;
  spans[1].id = 3;
  spans[1].parent = 1;
  spans[1].name = "b";
  spans[1].start_ns = 400;
  spans[1].duration_ns = 25;
  const Trace trace(9, spans);
  EXPECT_EQ(trace.duration_ns(), 425 - 100);
}

TEST(TracerTest, RingWrapKeepsTheNewestSpans) {
  Tracer tracer(/*ring_capacity=*/8);
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  for (int i = 0; i < 20; ++i) {
    RecordSpan({&tracer, id, 0}, "span", i * 10, i * 10 + 5,
               {{"i", static_cast<double>(i)}});
  }
  const Trace trace = tracer.Collect(id);
  EXPECT_EQ(trace.spans().size(), 8u);
  for (const SpanRecord& span : trace.spans()) {
    EXPECT_GE(span.annotation("i"), 12.0);  // the 8 newest of 20
  }
}

TEST(TracerTest, SpansFromManyThreadsAssembleIntoOneTrace) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, id, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        RecordSpan({&tracer, id, 0}, "work", t * 1000 + i, t * 1000 + i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Trace trace = tracer.Collect(id);
  EXPECT_EQ(trace.spans().size(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  std::set<uint32_t> thread_indices;
  for (const SpanRecord& span : trace.spans()) {
    thread_indices.insert(span.thread);
  }
  EXPECT_EQ(thread_indices.size(), static_cast<size_t>(kThreads));
}

TEST(TracerTest, CollectIsSafeWhileAnotherThreadRecords) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  std::thread recorder([&tracer, id] {
    for (int i = 0; i < 2000; ++i) {
      RecordSpan({&tracer, id, 0}, "hot", i, i + 1);
    }
  });
  // Concurrent collection must neither crash nor return torn spans
  // (seqlock readers skip slots mid-write).
  for (int i = 0; i < 50; ++i) {
    const Trace snapshot = tracer.Collect(id);
    for (const SpanRecord& span : snapshot.spans()) {
      EXPECT_EQ(span.trace_id, id);
      EXPECT_EQ(span.duration_ns, 1);
    }
  }
  recorder.join();
  EXPECT_EQ(tracer.Collect(id).spans().size(), 2000u);
}

TEST(TracerTest, AnnotationsBeyondTheCapAreDropped) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  SpanGuard guard({&tracer, id, 0}, "busy");
  for (int i = 0; i < kMaxAnnotations + 4; ++i) {
    guard.Annotate("k", static_cast<double>(i));
  }
  guard.End();
  const Trace trace = tracer.Collect(id);
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].num_annotations, kMaxAnnotations);
}

TEST(TraceTest, ChromeJsonHasCompleteEventsWithArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t id = tracer.StartTrace();
  const uint32_t root = RecordSpan({&tracer, id, 0}, "request", 1000, 9000);
  RecordSpan({&tracer, id, root}, "embed", 2000, 3000, {{"rows", 3.0}});
  const std::string json = tracer.Collect(id).ToChromeJson();

  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"embed\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Crude structural sanity: braces and brackets balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // An empty trace still renders a loadable document.
  const std::string empty = Trace().ToChromeJson();
  EXPECT_NE(empty.find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace halk::obs
