#include "obs/slow_query_log.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace halk::obs {
namespace {

/// A one-span trace whose root lasts `duration_ns`.
Trace MakeTrace(uint64_t id, int64_t duration_ns) {
  SpanRecord root;
  root.trace_id = id;
  root.id = 1;
  root.parent = 0;
  root.name = "request";
  root.start_ns = 0;
  root.duration_ns = duration_ns;
  return Trace(id, {root});
}

TEST(SlowQueryLogTest, ThresholdGatesAdmission) {
  SlowQueryLog log(4, /*threshold_ns=*/1000);
  EXPECT_EQ(log.threshold_ns(), 1000);
  EXPECT_FALSE(log.Offer("fast", MakeTrace(1, 999)));
  EXPECT_TRUE(log.Offer("slow", MakeTrace(2, 1000)));  // at-threshold counts
  EXPECT_TRUE(log.Offer("slower", MakeTrace(3, 5000)));
  EXPECT_EQ(log.size(), 2u);
}

TEST(SlowQueryLogTest, NonPositiveThresholdRejectsEverything) {
  SlowQueryLog log(4, 0);
  EXPECT_FALSE(log.Offer("q", MakeTrace(1, 1'000'000'000)));
  EXPECT_EQ(log.size(), 0u);
  log.set_threshold_ns(10);
  EXPECT_TRUE(log.Offer("q", MakeTrace(2, 11)));
}

TEST(SlowQueryLogTest, RepeatedFingerprintRefreshesOneEntry) {
  SlowQueryLog log(4, 100);
  EXPECT_TRUE(log.Offer("hot", MakeTrace(1, 2000)));
  EXPECT_TRUE(log.Offer("hot", MakeTrace(2, 1500)));  // faster, still slow
  ASSERT_EQ(log.size(), 1u);
  const std::vector<SlowQueryLog::Entry> entries = log.Entries();
  EXPECT_EQ(entries[0].fingerprint, "hot");
  EXPECT_EQ(entries[0].hits, 2);
  EXPECT_EQ(entries[0].worst_ns, 2000);      // worst sticks
  EXPECT_EQ(entries[0].trace.id(), 2u);      // trace is the latest
  EXPECT_TRUE(log.Offer("hot", MakeTrace(3, 9000)));
  EXPECT_EQ(log.Entries()[0].worst_ns, 9000);
  EXPECT_EQ(log.Entries()[0].hits, 3);
}

TEST(SlowQueryLogTest, EntriesAreMostRecentlySlowFirst) {
  SlowQueryLog log(4, 100);
  log.Offer("a", MakeTrace(1, 200));
  log.Offer("b", MakeTrace(2, 200));
  log.Offer("a", MakeTrace(3, 200));  // refresh moves "a" to the front
  const std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fingerprint, "a");
  EXPECT_EQ(entries[1].fingerprint, "b");
}

TEST(SlowQueryLogTest, CapacityEvictsLeastRecentlySlow) {
  SlowQueryLog log(2, 100);
  log.Offer("a", MakeTrace(1, 200));
  log.Offer("b", MakeTrace(2, 200));
  log.Offer("c", MakeTrace(3, 200));  // evicts "a"
  const std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fingerprint, "c");
  EXPECT_EQ(entries[1].fingerprint, "b");
  // The evicted fingerprint re-enters as a fresh entry.
  log.Offer("a", MakeTrace(4, 200));
  EXPECT_EQ(log.Entries()[0].fingerprint, "a");
  EXPECT_EQ(log.Entries()[0].hits, 1);
}

TEST(SlowQueryLogTest, PlanShapeColumnsAreStoredAndRefreshed) {
  SlowQueryLog log(4, 100);
  // Without the optional plan columns the entry records a zero shape
  // (legacy path / whole-answer cache hits).
  EXPECT_TRUE(log.Offer("legacy", MakeTrace(1, 200)));
  EXPECT_EQ(log.Entries()[0].plan_nodes, 0);
  EXPECT_DOUBLE_EQ(log.Entries()[0].dedup_ratio, 0.0);

  EXPECT_TRUE(log.Offer("planned", MakeTrace(2, 300), /*plan_nodes=*/9,
                        /*dedup_ratio=*/0.5));
  const std::vector<SlowQueryLog::Entry> entries = log.Entries();
  EXPECT_EQ(entries[0].fingerprint, "planned");
  EXPECT_EQ(entries[0].plan_nodes, 9);
  EXPECT_DOUBLE_EQ(entries[0].dedup_ratio, 0.5);

  // A refresh carries the *latest* plan shape, like the latest trace: the
  // plan serving a fingerprint changes as caches warm and feedback kicks
  // in, and the log describes the most recent slow occurrence.
  EXPECT_TRUE(log.Offer("planned", MakeTrace(3, 250), /*plan_nodes=*/4,
                        /*dedup_ratio=*/0.25));
  EXPECT_EQ(log.Entries()[0].hits, 2);
  EXPECT_EQ(log.Entries()[0].plan_nodes, 4);
  EXPECT_DOUBLE_EQ(log.Entries()[0].dedup_ratio, 0.25);
}

TEST(SlowQueryLogTest, ClearEmptiesTheLog) {
  SlowQueryLog log(4, 100);
  log.Offer("a", MakeTrace(1, 200));
  log.Offer("b", MakeTrace(2, 200));
  ASSERT_EQ(log.size(), 2u);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Entries().empty());
  // Still usable after Clear.
  EXPECT_TRUE(log.Offer("a", MakeTrace(3, 200)));
}

}  // namespace
}  // namespace halk::obs
