#include "obs/query_stats.h"

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace halk::obs {
namespace {

QueryObservation Obs(double latency_us, bool cache_hit = false) {
  QueryObservation o;
  o.latency_us = latency_us;
  o.cache_hit = cache_hit;
  return o;
}

query::Fingerprint Key(uint64_t hi, uint64_t lo) {
  query::Fingerprint fp;
  fp.hi = hi;
  fp.lo = lo;
  return fp;
}

TEST(WelfordTest, MatchesClosedFormMeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Add(x);
  EXPECT_EQ(w.count, 8);
  EXPECT_DOUBLE_EQ(w.mean, 5.0);
  // Sample variance of the classic textbook sequence: 32/7.
  EXPECT_NEAR(w.Variance(), 32.0 / 7.0, 1e-12);
}

TEST(WelfordTest, ZeroAndOneSampleHaveZeroVariance) {
  Welford w;
  EXPECT_EQ(w.Variance(), 0.0);
  w.Add(42.0);
  EXPECT_EQ(w.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean, 42.0);
}

TEST(QueryStatsStoreTest, AggregatesPerFingerprint) {
  QueryStatsStore store(8);
  QueryObservation first = Obs(100.0);
  first.structure = "s1";
  first.plan_nodes = 5;
  first.dedup_ratio = 0.25;
  first.worst_qerror = 3.0;
  first.op_ns[static_cast<size_t>(query::OpType::kProjection)] = 4000;
  store.Record("fp1", first);
  QueryObservation second = Obs(300.0, /*cache_hit=*/true);
  second.worst_qerror = 7.0;
  second.op_ns[static_cast<size_t>(query::OpType::kAnchor)] = 1000;
  store.Record("fp1", second);

  QueryStatsStore::Stats stats;
  ASSERT_TRUE(store.Lookup("fp1", &stats));
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_DOUBLE_EQ(stats.latency_us.mean, 200.0);
  EXPECT_EQ(stats.qerror.count, 2);
  EXPECT_DOUBLE_EQ(stats.qerror.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.worst_qerror, 7.0);
  // Structure / plan shape stick at the latest *planned* observation:
  // the cache-hit record carried no plan, so the first one's survive.
  EXPECT_EQ(stats.structure, "s1");
  EXPECT_EQ(stats.plan_nodes, 5);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio, 0.25);
  EXPECT_EQ(stats.total_op_ns(), 5000);
  EXPECT_FALSE(store.Lookup("absent", &stats));
}

TEST(QueryStatsStoreTest, QErrorWelfordSkipsUnmeasuredRequests) {
  QueryStatsStore store(8);
  store.Record("fp", Obs(10.0));  // worst_qerror == 0: not measured
  QueryObservation measured = Obs(10.0);
  measured.worst_qerror = 2.0;
  store.Record("fp", measured);
  QueryStatsStore::Stats stats;
  ASSERT_TRUE(store.Lookup("fp", &stats));
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.qerror.count, 1);
  EXPECT_DOUBLE_EQ(stats.qerror.mean, 2.0);
}

TEST(QueryStatsStoreTest, EvictsLeastRecentlyServedFingerprint) {
  QueryStatsStore store(2);
  store.Record("a", Obs(1.0));
  store.Record("b", Obs(1.0));
  store.Record("a", Obs(1.0));  // refresh: "b" is now the LRU entry
  store.Record("c", Obs(1.0));  // evicts "b"
  EXPECT_EQ(store.size(), 2u);
  QueryStatsStore::Stats stats;
  EXPECT_TRUE(store.Lookup("a", &stats));
  EXPECT_EQ(stats.hits, 2);
  EXPECT_FALSE(store.Lookup("b", &stats));
  EXPECT_TRUE(store.Lookup("c", &stats));
}

TEST(QueryStatsStoreTest, TopByTimeOrdersByAttributedTimeThenHits) {
  QueryStatsStore store(8);
  QueryObservation heavy = Obs(1.0);
  heavy.op_ns[static_cast<size_t>(query::OpType::kIntersection)] = 9000;
  store.Record("heavy", heavy);
  QueryObservation light = Obs(1.0);
  light.op_ns[static_cast<size_t>(query::OpType::kAnchor)] = 1000;
  store.Record("light", light);
  // Two timeless fingerprints tie at 0 op-ns; more hits ranks first.
  store.Record("popular", Obs(1.0));
  store.Record("popular", Obs(1.0));
  store.Record("rare", Obs(1.0));

  const std::vector<QueryStatsStore::Stats> top = store.TopByTime(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].fingerprint, "heavy");
  EXPECT_EQ(top[1].fingerprint, "light");
  EXPECT_EQ(top[2].fingerprint, "popular");
  EXPECT_EQ(store.TopByTime(100).size(), 4u);
}

TEST(QueryStatsStoreTest, ToJsonRendersTopStructures) {
  QueryStatsStore store(8);
  QueryObservation o = Obs(125.0);
  o.structure = "deadbeef";
  o.plan_nodes = 7;
  o.worst_qerror = 4.0;
  o.op_ns[static_cast<size_t>(query::OpType::kProjection)] = 2000;
  store.Record("fp1", o);
  const std::string json = store.ToJson(10);
  // The body is {"queries":[...]} — nested, so asserted by substring (the
  // repo's flat-line parser rejects nesting by design).
  EXPECT_NE(json.find("\"queries\":["), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\"fp1\""), std::string::npos);
  EXPECT_NE(json.find("\"structure\":\"deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"qerror_worst\":4"), std::string::npos);
  EXPECT_NE(json.find("\"us_projection\":2"), std::string::npos);
  EXPECT_NE(json.find("\"plan_nodes\":7"), std::string::npos);

  // top_n truncates deterministically.
  store.Record("fp2", Obs(1.0));
  EXPECT_EQ(store.ToJson(1).find("fp2"), std::string::npos);
  // An empty store renders an empty array, still valid JSON.
  store.Clear();
  EXPECT_NE(store.ToJson(10).find("\"queries\":[]"), std::string::npos);
}

TEST(QueryStatsStoreTest, FeedbackRequiresMinSamplesAndTracksEwma) {
  QueryStatsStore store(8, /*feedback_capacity=*/8,
                        /*feedback_min_samples=*/2);
  const query::Fingerprint key = Key(1, 2);
  double rows = 0.0;
  EXPECT_FALSE(store.ObservedRows(key, &rows));
  store.RecordSubtreeRows(key, 100.0);
  // One sample is below the trust threshold.
  EXPECT_FALSE(store.ObservedRows(key, &rows));
  store.RecordSubtreeRows(key, 100.0);
  ASSERT_TRUE(store.ObservedRows(key, &rows));
  EXPECT_DOUBLE_EQ(rows, 100.0);
  // EWMA with alpha 0.25: 0.75*100 + 0.25*200 = 125.
  store.RecordSubtreeRows(key, 200.0);
  ASSERT_TRUE(store.ObservedRows(key, &rows));
  EXPECT_DOUBLE_EQ(rows, 125.0);
}

TEST(QueryStatsStoreTest, FeedbackRejectsInvalidRowsAndBoundsEntries) {
  QueryStatsStore store(8, /*feedback_capacity=*/2,
                        /*feedback_min_samples=*/1);
  const query::Fingerprint bad = Key(9, 9);
  store.RecordSubtreeRows(bad, -1.0);
  store.RecordSubtreeRows(bad, std::nan(""));
  double rows = 0.0;
  EXPECT_FALSE(store.ObservedRows(bad, &rows));
  EXPECT_EQ(store.feedback_size(), 0u);

  store.RecordSubtreeRows(Key(1, 0), 10.0);
  store.RecordSubtreeRows(Key(2, 0), 20.0);
  store.RecordSubtreeRows(Key(1, 0), 10.0);  // refresh: Key(2,0) is LRU
  store.RecordSubtreeRows(Key(3, 0), 30.0);  // evicts Key(2,0)
  EXPECT_EQ(store.feedback_size(), 2u);
  EXPECT_TRUE(store.ObservedRows(Key(1, 0), &rows));
  EXPECT_FALSE(store.ObservedRows(Key(2, 0), &rows));
  EXPECT_TRUE(store.ObservedRows(Key(3, 0), &rows));
}

// TSan target: workers Record while a scraper loops ToJson/TopByTime and
// the planner reads feedback — the exact concurrent shape of a serving
// process with /queryz being polled.
TEST(QueryStatsStoreConcurrentTest, RecordToJsonAndFeedbackRace) {
  QueryStatsStore store(16, /*feedback_capacity=*/16,
                        /*feedback_min_samples=*/1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 500; ++i) {
        QueryObservation o = Obs(static_cast<double>(i));
        o.worst_qerror = 1.5;
        o.op_ns[static_cast<size_t>(query::OpType::kProjection)] = 100;
        store.Record("fp" + std::to_string((t * 500 + i) % 32), o);
        store.RecordSubtreeRows(
            Key(static_cast<uint64_t>(t), static_cast<uint64_t>(i % 32)),
            static_cast<double>(i + 1));
      }
    });
  }
  std::thread scraper([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.ToJson(8);
      (void)store.TopByTime(8);
      double rows = 0.0;
      (void)store.ObservedRows(Key(0, 0), &rows);
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(store.size(), 16u);
  EXPECT_EQ(store.feedback_size(), 16u);
}

}  // namespace
}  // namespace halk::obs
