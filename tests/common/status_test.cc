#include "common/status.h"

#include <gtest/gtest.h>

namespace halk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrDieMovesValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  HALK_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

Result<int> MakeEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x;
}

Result<int> DoubleEven(int x) {
  HALK_ASSIGN_OR_RETURN(int v, MakeEven(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubleEven(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  Result<int> err = DoubleEven(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace halk
