#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace halk {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{10}));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRoughRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (int64_t x : s) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(37);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 10000;
  for (int i = 0; i < n; ++i) counts[rng.WeightedIndex(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.03);
}

}  // namespace
}  // namespace halk
