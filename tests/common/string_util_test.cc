#include "common/string_util.h"

#include <gtest/gtest.h>

namespace halk {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\tb\t\tc", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("no_trim"), "no_trim");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT * WHERE", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("query.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", ".tsv"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace halk
