#include "core/lsh.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/distance.h"

namespace halk::core {
namespace {

constexpr float kTwoPi = 6.2831853f;

std::vector<float> RandomAngles(Rng* rng, int64_t n, int64_t d) {
  std::vector<float> out(static_cast<size_t>(n * d));
  for (auto& x : out) x = static_cast<float>(rng->Uniform(0.0, kTwoPi));
  return out;
}

std::vector<int64_t> ExactTopK(const std::vector<float>& angles, int64_t n,
                               int64_t d, const float* center,
                               const float* length, int64_t k) {
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<float> dist(static_cast<size_t>(n));
  for (int64_t e = 0; e < n; ++e) {
    dist[static_cast<size_t>(e)] = ArcPointDistance(
        angles.data() + e * d, center, length, d, 1.0f, 0.9f);
  }
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&dist](int64_t a, int64_t b) {
                      return dist[static_cast<size_t>(a)] <
                             dist[static_cast<size_t>(b)];
                    });
  ids.resize(static_cast<size_t>(k));
  return ids;
}

TEST(LshTest, CandidatesIncludeTheQueryPointItself) {
  Rng rng(1);
  const int64_t n = 500;
  const int64_t d = 8;
  std::vector<float> angles = RandomAngles(&rng, n, d);
  AngularLshIndex index(angles.data(), n, d, {});
  for (int64_t e = 0; e < n; e += 37) {
    auto cands = index.Candidates(angles.data() + e * d);
    EXPECT_NE(std::find(cands.begin(), cands.end(), e), cands.end())
        << "entity " << e;
  }
}

TEST(LshTest, TopKMatchesExactWhenFallbackTriggers) {
  // With a tiny corpus the candidate set is always < 4k, so TopK is exact.
  Rng rng(2);
  const int64_t n = 60;
  const int64_t d = 8;
  std::vector<float> angles = RandomAngles(&rng, n, d);
  AngularLshIndex index(angles.data(), n, d, {});
  std::vector<float> length(static_cast<size_t>(d), 0.1f);
  auto got = index.TopK(angles.data(), length.data(), 10, 1.0f, 0.9f);
  auto want = ExactTopK(angles, n, d, angles.data(), length.data(), 10);
  EXPECT_EQ(got, want);
}

TEST(LshTest, HighRecallOnClusteredData) {
  // Entities clustered around a few centers; the query sits on one
  // cluster: LSH must recover most of the exact top-20.
  Rng rng(3);
  const int64_t n = 2000;
  const int64_t d = 8;
  std::vector<float> angles(static_cast<size_t>(n * d));
  std::vector<float> centers = RandomAngles(&rng, 10, d);
  for (int64_t e = 0; e < n; ++e) {
    const int64_t c = static_cast<int64_t>(rng.UniformInt(uint64_t{10}));
    for (int64_t i = 0; i < d; ++i) {
      angles[static_cast<size_t>(e * d + i)] =
          centers[static_cast<size_t>(c * d + i)] +
          static_cast<float>(rng.Normal()) * 0.2f;
    }
  }
  AngularLshIndex::Options opt;
  opt.num_tables = 12;
  opt.bits_per_table = 8;
  AngularLshIndex index(angles.data(), n, d, opt);

  std::vector<float> length(static_cast<size_t>(d), 0.05f);
  double recall = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const int64_t probe = static_cast<int64_t>(rng.UniformInt(uint64_t{2000}));
    auto got = index.TopK(angles.data() + probe * d, length.data(), 20,
                          1.0f, 0.9f);
    auto want = ExactTopK(angles, n, d, angles.data() + probe * d,
                          length.data(), 20);
    std::set<int64_t> want_set(want.begin(), want.end());
    int hit = 0;
    for (int64_t e : got) hit += want_set.count(e) > 0;
    recall += hit / 20.0;
  }
  EXPECT_GT(recall / trials, 0.8);
}

TEST(LshTest, ScanFractionIsSublinearOnClusteredData) {
  Rng rng(4);
  const int64_t n = 4000;
  const int64_t d = 8;
  std::vector<float> angles(static_cast<size_t>(n * d));
  std::vector<float> centers = RandomAngles(&rng, 16, d);
  for (int64_t e = 0; e < n; ++e) {
    const int64_t c = static_cast<int64_t>(rng.UniformInt(uint64_t{16}));
    for (int64_t i = 0; i < d; ++i) {
      angles[static_cast<size_t>(e * d + i)] =
          centers[static_cast<size_t>(c * d + i)] +
          static_cast<float>(rng.Normal()) * 0.15f;
    }
  }
  AngularLshIndex::Options opt;
  opt.num_tables = 8;
  opt.bits_per_table = 10;
  AngularLshIndex index(angles.data(), n, d, opt);
  std::vector<float> length(static_cast<size_t>(d), 0.05f);
  double fraction = 0.0;
  for (int t = 0; t < 10; ++t) {
    const int64_t probe = static_cast<int64_t>(rng.UniformInt(uint64_t{4000}));
    index.TopK(angles.data() + probe * d, length.data(), 10, 1.0f, 0.9f);
    fraction += index.last_scan_fraction();
  }
  EXPECT_LT(fraction / 10.0, 0.6);
}

TEST(LshTest, DeterministicForSeed) {
  Rng rng(5);
  const int64_t n = 300;
  const int64_t d = 4;
  std::vector<float> angles = RandomAngles(&rng, n, d);
  AngularLshIndex a(angles.data(), n, d, {});
  AngularLshIndex b(angles.data(), n, d, {});
  auto ca = a.Candidates(angles.data());
  auto cb = b.Candidates(angles.data());
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  EXPECT_EQ(ca, cb);
}

TEST(LshTest, KLargerThanCorpusIsClamped) {
  Rng rng(6);
  const int64_t n = 25;
  const int64_t d = 4;
  std::vector<float> angles = RandomAngles(&rng, n, d);
  AngularLshIndex index(angles.data(), n, d, {});
  std::vector<float> length(static_cast<size_t>(d), 0.1f);
  auto got = index.TopK(angles.data(), length.data(), 100, 1.0f, 0.9f);
  EXPECT_EQ(got.size(), 25u);
}

}  // namespace
}  // namespace halk::core
