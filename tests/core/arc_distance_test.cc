#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/arc.h"
#include "core/distance.h"
#include "tensor/tape.h"

namespace halk::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr float kPi = 3.14159265358979f;

TEST(ArcTest, StartEndPoints) {
  ArcBatch arc{Tensor::FromVector({1, 2}, {1.0f, 2.0f}),
               Tensor::FromVector({1, 2}, {0.4f, 0.8f})};
  Tensor s = StartPoint(arc, /*rho=*/1.0f);
  Tensor e = EndPoint(arc, 1.0f);
  EXPECT_FLOAT_EQ(s.at(0, 0), 1.0f - 0.2f);
  EXPECT_FLOAT_EQ(e.at(0, 0), 1.0f + 0.2f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 2.0f - 0.4f);
  EXPECT_FLOAT_EQ(e.at(0, 1), 2.0f + 0.4f);
}

TEST(ArcTest, StartEndScaleWithRadius) {
  ArcBatch arc{Tensor::FromVector({1, 1}, {1.0f}),
               Tensor::FromVector({1, 1}, {1.0f})};
  Tensor s = StartPoint(arc, /*rho=*/2.0f);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f - 1.0f / 4.0f);
}

TEST(ArcTest, StartEndPairConcatenates) {
  ArcBatch arc{Tensor::FromVector({2, 2}, {0, 1, 2, 3}),
               Tensor::FromVector({2, 2}, {0.2f, 0.2f, 0.2f, 0.2f})};
  Tensor pair = StartEndPair(arc, 1.0f);
  EXPECT_EQ(pair.shape(), Shape({2, 4}));
  EXPECT_FLOAT_EQ(pair.at(0, 0), -0.1f);
  EXPECT_FLOAT_EQ(pair.at(0, 2), 0.1f);
}

TEST(ArcTest, GFunctionRangeIsZeroToTwoPi) {
  Tensor x = Tensor::FromVector({5}, {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f});
  Tensor g = GFunction(x, /*lambda=*/1.0f);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_GE(g.at(i), 0.0f);
    EXPECT_LE(g.at(i), 2.0f * kPi + 1e-5f);
  }
  EXPECT_NEAR(g.at(2), kPi, 1e-5f);           // g(0) = π
  EXPECT_NEAR(g.at(0), 0.0f, 1e-4f);          // saturates low
  EXPECT_NEAR(g.at(4), 2.0f * kPi, 1e-4f);    // saturates high
}

TEST(ArcTest, ChordLengthPeriodic) {
  Tensor a = Tensor::FromVector({2}, {0.3f, 0.3f + 2.0f * kPi});
  Tensor b = Tensor::FromVector({2}, {1.0f, 1.0f});
  Tensor c = ChordLength(a, b, 1.0f);
  EXPECT_NEAR(c.at(0), c.at(1), 1e-4f);
  // Antipodal points have chord 2ρ.
  Tensor p = Tensor::FromVector({1}, {0.0f});
  Tensor q = Tensor::FromVector({1}, {kPi});
  EXPECT_NEAR(ChordLength(p, q, 1.5f).at(0), 3.0f, 1e-5f);
}

TEST(DistanceTest, ZeroAtArcCenterUpToEta) {
  // Point exactly at the arc center: outside term 0, inside term 0.
  ArcBatch arc{Tensor::FromVector({1, 2}, {1.0f, 2.0f}),
               Tensor::FromVector({1, 2}, {0.5f, 0.5f})};
  Tensor point = Tensor::FromVector({1, 2}, {1.0f, 2.0f});
  Tensor d = ArcDistance(point, arc, 1.0f, 0.02f);
  EXPECT_NEAR(d.at(0), 0.0f, 1e-6f);
}

TEST(DistanceTest, InsideArcOnlyInsidePenalty) {
  // Point inside the arc but off-center: d_o = 0, d_i > 0 (scaled by η).
  ArcBatch arc{Tensor::FromVector({1, 1}, {1.0f}),
               Tensor::FromVector({1, 1}, {1.0f})};
  Tensor point = Tensor::FromVector({1, 1}, {1.2f});  // within ±0.5 of center
  const float eta = 0.5f;
  Tensor d = ArcDistance(point, arc, 1.0f, eta);
  const float expected_inside = 2.0f * std::fabs(std::sin(0.2f / 2.0f));
  EXPECT_NEAR(d.at(0), eta * expected_inside, 1e-5f);
}

TEST(DistanceTest, OutsideArcDominatedByOutsideTerm) {
  ArcBatch arc{Tensor::FromVector({1, 1}, {0.0f}),
               Tensor::FromVector({1, 1}, {0.2f})};
  Tensor near_point = Tensor::FromVector({1, 1}, {0.5f});
  Tensor far_point = Tensor::FromVector({1, 1}, {2.5f});
  const float d_near = ArcDistance(near_point, arc, 1.0f, 0.02f).at(0);
  const float d_far = ArcDistance(far_point, arc, 1.0f, 0.02f).at(0);
  EXPECT_GT(d_far, d_near);
  EXPECT_GT(d_near, 0.0f);
}

TEST(DistanceTest, PeriodicInPointAngle) {
  ArcBatch arc{Tensor::FromVector({1, 2}, {0.7f, 5.0f}),
               Tensor::FromVector({1, 2}, {0.3f, 0.9f})};
  Tensor p1 = Tensor::FromVector({1, 2}, {2.0f, 1.0f});
  Tensor p2 = Tensor::FromVector({1, 2}, {2.0f + 2.0f * kPi, 1.0f - 2.0f * kPi});
  const float d1 = ArcDistance(p1, arc, 1.0f, 0.02f).at(0);
  const float d2 = ArcDistance(p2, arc, 1.0f, 0.02f).at(0);
  EXPECT_NEAR(d1, d2, 1e-4f);
}

TEST(DistanceTest, ScalarVersionMatchesTensorVersion) {
  const int64_t d = 8;
  std::vector<float> center(d), length(d), point(d);
  halk::Rng rng(99);
  for (int64_t i = 0; i < d; ++i) {
    center[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(0, 6.28));
    length[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(0, 3.0));
    point[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(0, 6.28));
  }
  ArcBatch arc{Tensor::FromVector({1, d}, center),
               Tensor::FromVector({1, d}, length)};
  Tensor p = Tensor::FromVector({1, d}, point);
  const float tensor_d = ArcDistance(p, arc, 1.0f, 0.02f).at(0);
  const float scalar_d = ArcPointDistance(point.data(), center.data(),
                                          length.data(), d, 1.0f, 0.02f);
  EXPECT_NEAR(tensor_d, scalar_d, 1e-4f);
}

TEST(DistanceTest, GradientFlowsToPointAndArc) {
  ArcBatch arc{
      Tensor::FromVector({1, 2}, {0.5f, 1.5f}).set_requires_grad(true),
      Tensor::FromVector({1, 2}, {0.3f, 0.3f}).set_requires_grad(true)};
  Tensor point =
      Tensor::FromVector({1, 2}, {2.0f, 4.0f}).set_requires_grad(true);
  Tensor d = ArcDistance(point, arc, 1.0f, 0.02f);
  tensor::Backward(tensor::SumAll(d));
  bool arc_grad = false;
  for (float g : arc.center.grad_vector()) arc_grad = arc_grad || g != 0.0f;
  bool point_grad = false;
  for (float g : point.grad_vector()) point_grad = point_grad || g != 0.0f;
  EXPECT_TRUE(arc_grad);
  EXPECT_TRUE(point_grad);
}

TEST(DistanceTest, BoundedKernelIsBitIdenticalWhenNotPruned) {
  Rng rng(19);
  const int64_t d = 16;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> point, center, length;
    for (int64_t i = 0; i < d; ++i) {
      point.push_back(static_cast<float>(rng.Uniform()) * 2.0f * kPi);
      center.push_back(static_cast<float>(rng.Uniform()) * 2.0f * kPi);
      length.push_back(static_cast<float>(rng.Uniform()) * 2.0f);
    }
    const float rho = 1.0f;
    const float eta = 0.9f;
    const float exact = ArcPointDistance(point.data(), center.data(),
                                         length.data(), d, rho, eta);
    const ArcConstants arc =
        MakeArcConstants(center.data(), length.data(), d, rho, eta);
    // With an infinite bound the scan never exits early: bit-identical.
    const float unbounded = ArcPointDistanceBounded(
        point.data(), arc, std::numeric_limits<float>::infinity());
    EXPECT_EQ(unbounded, exact) << "trial " << trial;
    // Any bound at or above the distance keeps the result exact.
    EXPECT_EQ(ArcPointDistanceBounded(point.data(), arc, exact), exact);
    // A bound below it makes the scan exit with some value above the
    // bound — a certificate the entity cannot enter the top-k.
    if (exact > 0.0f) {
      const float pruned =
          ArcPointDistanceBounded(point.data(), arc, exact * 0.5f);
      EXPECT_GT(pruned, exact * 0.5f);
      EXPECT_LE(pruned, exact);
    }
  }
}

TEST(DistanceTest, WiderArcReducesDistanceToFixedPoint) {
  // Growing the arc toward the point should not increase the distance.
  Tensor point = Tensor::FromVector({1, 1}, {1.0f});
  ArcBatch narrow{Tensor::FromVector({1, 1}, {0.0f}),
                  Tensor::FromVector({1, 1}, {0.1f})};
  ArcBatch wide{Tensor::FromVector({1, 1}, {0.0f}),
                Tensor::FromVector({1, 1}, {1.8f})};
  const float dn = ArcDistance(point, narrow, 1.0f, 0.02f).at(0);
  const float dw = ArcDistance(point, wide, 1.0f, 0.02f).at(0);
  EXPECT_LE(dw, dn);
}

}  // namespace
}  // namespace halk::core
