// Properties of the Eq. (17) loss and the group machinery that the
// trainer relies on.

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "core/loss.h"
#include "core/query_groups.h"
#include "kg/synthetic.h"
#include "query/executor.h"
#include "query/sampler.h"

namespace halk::core {
namespace {

class LossPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 220;
    opt.num_relations = 8;
    opt.num_triples = 1500;
    opt.seed = 55;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(5);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete grouping_;
    dataset_ = nullptr;
    grouping_ = nullptr;
  }

  static ModelConfig SmallConfig(uint64_t seed) {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.seed = seed;
    return c;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
};

kg::Dataset* LossPropertyTest::dataset_ = nullptr;
kg::NodeGrouping* LossPropertyTest::grouping_ = nullptr;

INSTANTIATE_TEST_SUITE_P(Seeds, LossPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// A positive that is closer to the query arc yields a smaller loss, all
// else equal.
TEST_P(LossPropertyTest, CloserPositiveSmallerLoss) {
  HalkModel model(SmallConfig(GetParam()), grouping_);
  query::QuerySampler sampler(&dataset_->train, GetParam() * 13 + 1);
  auto q = sampler.Sample(query::StructureId::k1p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);

  // Rank all entities by distance; pick a near one and a far one.
  std::vector<float> dist;
  model.DistancesToAll(emb, 0, &dist);
  int64_t nearest = 0;
  int64_t farthest = 0;
  for (int64_t e = 0; e < static_cast<int64_t>(dist.size()); ++e) {
    if (dist[static_cast<size_t>(e)] < dist[static_cast<size_t>(nearest)]) nearest = e;
    if (dist[static_cast<size_t>(e)] > dist[static_cast<size_t>(farthest)]) farthest = e;
  }

  LossBatch lb;
  lb.negatives = {{1, 2, 3, 4}};
  lb.positive_penalty = {0.0f};
  lb.negative_penalty = {{0, 0, 0, 0}};
  lb.positives = {nearest};
  EmbeddingBatch emb1 = model.EmbedQueries(batch);
  const float loss_near = NegativeSamplingLoss(&model, emb1, lb).at(0);
  lb.positives = {farthest};
  EmbeddingBatch emb2 = model.EmbedQueries(batch);
  const float loss_far = NegativeSamplingLoss(&model, emb2, lb).at(0);
  EXPECT_LT(loss_near, loss_far);
}

// A negative that is farther from the query arc yields a smaller loss.
TEST_P(LossPropertyTest, FartherNegativeSmallerLoss) {
  HalkModel model(SmallConfig(GetParam() + 10), grouping_);
  query::QuerySampler sampler(&dataset_->train, GetParam() * 17 + 3);
  auto q = sampler.Sample(query::StructureId::k1p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  std::vector<float> dist;
  model.DistancesToAll(emb, 0, &dist);
  int64_t nearest = 0;
  int64_t farthest = 0;
  for (int64_t e = 0; e < static_cast<int64_t>(dist.size()); ++e) {
    if (dist[static_cast<size_t>(e)] < dist[static_cast<size_t>(nearest)]) nearest = e;
    if (dist[static_cast<size_t>(e)] > dist[static_cast<size_t>(farthest)]) farthest = e;
  }
  LossBatch lb;
  lb.positives = {q->answers[0]};
  lb.positive_penalty = {0.0f};
  lb.negative_penalty = {{0.0f}};
  lb.negatives = {{farthest}};
  EmbeddingBatch emb1 = model.EmbedQueries(batch);
  const float loss_far = NegativeSamplingLoss(&model, emb1, lb).at(0);
  lb.negatives = {{nearest}};
  EmbeddingBatch emb2 = model.EmbedQueries(batch);
  const float loss_near = NegativeSamplingLoss(&model, emb2, lb).at(0);
  EXPECT_LT(loss_far, loss_near);
}

// Group soundness: every exact answer of an EPFO query lies in the group
// image computed by NodeGroupVectors (on the graph the adjacency was built
// from), so true answers never incur the ξ penalty.
TEST_P(LossPropertyTest, TrueAnswersNeverPenalized) {
  query::QuerySampler sampler(&dataset_->train, GetParam() * 19 + 7);
  for (query::StructureId s :
       {query::StructureId::k1p, query::StructureId::k2p,
        query::StructureId::k2i, query::StructureId::kPi}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << query::StructureName(s);
    auto groups = QueryGroupVector(q->graph, *grouping_);
    for (int64_t a : q->answers) {
      EXPECT_EQ(GroupPenalty(a, groups, *grouping_), 0.0f)
          << query::StructureName(s) << " answer " << a;
    }
  }
}

// The penalty is 1 exactly for entities whose group is impossible.
TEST_P(LossPropertyTest, PenaltyMatchesGroupMembership) {
  query::QuerySampler sampler(&dataset_->train, GetParam() * 23 + 11);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  auto groups = QueryGroupVector(q->graph, *grouping_);
  for (int64_t e = 0; e < grouping_->num_entities(); e += 7) {
    const float expected =
        groups[static_cast<size_t>(grouping_->group_of(e))] > 0.0f ? 0.0f
                                                                   : 1.0f;
    EXPECT_EQ(GroupPenalty(e, groups, *grouping_), expected);
  }
}

}  // namespace
}  // namespace halk::core
