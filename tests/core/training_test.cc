// End-to-end learning tests: short HaLk training runs on a tiny synthetic
// KG must reduce the loss and beat an untrained model on ranking metrics.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/loss.h"
#include "core/pruner.h"
#include "core/trainer.h"
#include "kg/synthetic.h"
#include "query/executor.h"
#include "tensor/tape.h"

namespace halk::core {
namespace {

using query::StructureId;

class TrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 33;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(3);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 6, &rng));
    grouping_->BuildAdjacency(dataset_->train);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete grouping_;
    dataset_ = nullptr;
    grouping_ = nullptr;
  }

  static ModelConfig SmallConfig() {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.gamma = 6.0f;
    c.seed = 11;
    return c;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
};

kg::Dataset* TrainingTest::dataset_ = nullptr;
kg::NodeGrouping* TrainingTest::grouping_ = nullptr;

TEST_F(TrainingTest, LossIsFiniteAndPositive) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 41);
  auto q = sampler.Sample(StructureId::k1p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  LossBatch lb;
  lb.positives = {q->answers[0]};
  lb.negatives = {{5, 6, 7, 8}};
  lb.positive_penalty = {0.0f};
  lb.negative_penalty = {{0.0f, 0.0f, 0.0f, 0.0f}};
  tensor::Tensor loss = NegativeSamplingLoss(&model, emb, lb);
  EXPECT_TRUE(std::isfinite(loss.at(0)));
  EXPECT_GT(loss.at(0), 0.0f);
}

TEST_F(TrainingTest, GroupPenaltyIncreasesLoss) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 43);
  auto q = sampler.Sample(StructureId::k1p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  LossBatch lb;
  lb.positives = {q->answers[0]};
  lb.negatives = {{5, 6}};
  lb.positive_penalty = {0.0f};
  lb.negative_penalty = {{0.0f, 0.0f}};
  const float base = NegativeSamplingLoss(&model, emb, lb).at(0);
  // A positive with a group-violation penalty scores a higher loss.
  EmbeddingBatch emb2 = model.EmbedQueries(batch);
  lb.positive_penalty = {2.0f};
  const float penalized = NegativeSamplingLoss(&model, emb2, lb).at(0);
  EXPECT_GT(penalized, base);
}

TEST_F(TrainingTest, TrainingReducesLoss) {
  HalkModel model(SmallConfig(), grouping_);
  TrainerOptions opt;
  opt.steps = 160;
  opt.batch_size = 16;
  opt.num_negatives = 8;
  opt.learning_rate = 5e-3f;
  opt.structures = {StructureId::k1p, StructureId::k2i};
  opt.queries_per_structure = 60;
  opt.seed = 5;
  Trainer trainer(&model, &dataset_->train, grouping_, opt);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->steps, 160);
  EXPECT_LT(stats->final_loss, stats->mean_loss);
  EXPECT_TRUE(std::isfinite(stats->final_loss));
}

TEST_F(TrainingTest, TrainedModelBeatsUntrainedOnMrr) {
  const ModelConfig config = SmallConfig();
  query::QuerySampler sampler(&dataset_->train, 47);
  auto eval_queries = sampler.SampleMany(StructureId::k1p, 30);
  ASSERT_TRUE(eval_queries.ok());

  HalkModel untrained(config, grouping_);
  Evaluator eval_untrained(&untrained);
  Metrics before = eval_untrained.Evaluate(*eval_queries);

  HalkModel trained(config, grouping_);
  TrainerOptions opt;
  opt.steps = 250;
  opt.batch_size = 16;
  opt.num_negatives = 8;
  opt.learning_rate = 5e-3f;
  opt.structures = {StructureId::k1p};
  opt.queries_per_structure = 80;
  opt.seed = 5;
  Trainer trainer(&trained, &dataset_->train, grouping_, opt);
  ASSERT_TRUE(trainer.Train().ok());
  Evaluator eval_trained(&trained);
  Metrics after = eval_trained.Evaluate(*eval_queries);

  EXPECT_GT(after.mrr, before.mrr * 1.5);
  EXPECT_GT(after.mrr, 0.05);
  EXPECT_EQ(after.num_queries, 30);
}

TEST_F(TrainingTest, ModelSupportsStructureFiltersCorrectly) {
  HalkModel model(SmallConfig(), grouping_);
  for (StructureId s : query::AllStructures()) {
    EXPECT_TRUE(ModelSupportsStructure(model, s));
  }
}

TEST_F(TrainingTest, EvaluatorMetricsAreBounded) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 53);
  auto queries = sampler.SampleMany(StructureId::k2p, 10);
  ASSERT_TRUE(queries.ok());
  Evaluator eval(&model);
  Metrics m = eval.Evaluate(*queries);
  EXPECT_GE(m.mrr, 0.0);
  EXPECT_LE(m.mrr, 1.0);
  EXPECT_GE(m.hits3, 0.0);
  EXPECT_LE(m.hits3, 1.0);
  EXPECT_LE(m.hits1, m.hits3);
  EXPECT_LE(m.hits3, m.hits10);
  EXPECT_EQ(m.num_queries, 10);
}

TEST_F(TrainingTest, EvaluatorHandlesUnionQueriesViaDnf) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 59);
  auto queries = sampler.SampleMany(StructureId::k2u, 5);
  ASSERT_TRUE(queries.ok());
  Evaluator eval(&model);
  Metrics m = eval.Evaluate(*queries);
  EXPECT_EQ(m.num_queries, 5);
  EXPECT_GE(m.mrr, 0.0);
}

TEST_F(TrainingTest, TopKReturnsDistinctEntities) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 61);
  auto q = sampler.Sample(StructureId::k1p);
  ASSERT_TRUE(q.ok());
  Evaluator eval(&model);
  auto top = eval.TopK(q->graph, 20);
  ASSERT_EQ(top.size(), 20u);
  std::set<int64_t> uniq(top.begin(), top.end());
  EXPECT_EQ(uniq.size(), 20u);
}

TEST_F(TrainingTest, PrunerBuildsInducedSubgraph) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 67);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  Pruner pruner(&model);
  PruneResult result = pruner.Prune(q->graph, dataset_->train, 20);

  // Anchors are always kept.
  for (int id : q->graph.AnchorIds()) {
    const int64_t anchor =
        q->graph.nodes()[static_cast<size_t>(id)].anchor_entity;
    EXPECT_TRUE(std::binary_search(result.candidates.begin(),
                                   result.candidates.end(), anchor));
  }
  // The induced graph only contains edges between candidates and is
  // no larger than the original.
  EXPECT_LE(result.induced.num_triples(), dataset_->train.num_triples());
  for (const kg::Triple& t : result.induced.triples()) {
    EXPECT_TRUE(std::binary_search(result.candidates.begin(),
                                   result.candidates.end(), t.head));
    EXPECT_TRUE(std::binary_search(result.candidates.begin(),
                                   result.candidates.end(), t.tail));
  }
  // Candidate count is bounded by top_k per variable node + anchors.
  const size_t num_vars =
      q->graph.TopologicalOrder().size() - q->graph.AnchorIds().size();
  EXPECT_LE(result.candidates.size(),
            num_vars * 20 + q->graph.AnchorIds().size());
}

}  // namespace
}  // namespace halk::core
