#include "core/halk_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/loss.h"
#include "core/query_groups.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "tensor/tape.h"

namespace halk::core {
namespace {

using query::StructureId;
using tensor::Shape;
using tensor::Tensor;

class HalkModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 200;
    opt.num_relations = 8;
    opt.num_triples = 1200;
    opt.seed = 21;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(5);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete grouping_;
    dataset_ = nullptr;
    grouping_ = nullptr;
  }

  static ModelConfig SmallConfig() {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.seed = 3;
    return c;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
};

kg::Dataset* HalkModelTest::dataset_ = nullptr;
kg::NodeGrouping* HalkModelTest::grouping_ = nullptr;

TEST_F(HalkModelTest, AnchorsAreZeroLengthArcs) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch arc = model.EmbedAnchors({0, 1, 2});
  EXPECT_EQ(arc.center.shape(), Shape({3, 8}));
  for (int64_t i = 0; i < arc.length.numel(); ++i) {
    EXPECT_EQ(arc.length.at(i), 0.0f);
  }
}

TEST_F(HalkModelTest, ProjectionShapesAndRanges) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch in = model.EmbedAnchors({0, 1});
  ArcBatch out = model.Projection(in, {2, 3});
  EXPECT_EQ(out.center.shape(), Shape({2, 8}));
  constexpr float kTwoPi = 6.2831853f;
  for (int64_t i = 0; i < out.center.numel(); ++i) {
    EXPECT_GE(out.center.at(i), 0.0f);
    EXPECT_LE(out.center.at(i), kTwoPi + 1e-4f);
    EXPECT_GE(out.length.at(i), 0.0f);
    EXPECT_LE(out.length.at(i), kTwoPi + 1e-4f);
  }
}

TEST_F(HalkModelTest, DifferenceRespectsCardinalityConstraint) {
  // A_l = A_{1,l} * sigmoid(...) must never exceed the minuend's length.
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch a = model.Projection(model.EmbedAnchors({0, 1}), {0, 1});
  ArcBatch b = model.Projection(model.EmbedAnchors({2, 3}), {1, 2});
  ArcBatch d = model.Difference({a, b});
  for (int64_t i = 0; i < d.length.numel(); ++i) {
    EXPECT_LE(d.length.at(i), a.length.at(i) + 1e-5f);
    EXPECT_GE(d.length.at(i), 0.0f);
  }
}

TEST_F(HalkModelTest, IntersectionBoundedByMinInputLength) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch a = model.Projection(model.EmbedAnchors({0, 1}), {0, 1});
  ArcBatch b = model.Projection(model.EmbedAnchors({2, 3}), {1, 2});
  ArcBatch c = model.Projection(model.EmbedAnchors({4, 5}), {2, 3});
  ArcBatch inter = model.Intersection({a, b, c}, {});
  for (int64_t i = 0; i < inter.length.numel(); ++i) {
    const float min_len = std::min(
        {a.length.at(i), b.length.at(i), c.length.at(i)});
    EXPECT_LE(inter.length.at(i), min_len + 1e-5f);
  }
}

TEST_F(HalkModelTest, IntersectionIsPermutationInvariant) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch a = model.Projection(model.EmbedAnchors({0}), {0});
  ArcBatch b = model.Projection(model.EmbedAnchors({2}), {1});
  ArcBatch c = model.Projection(model.EmbedAnchors({4}), {2});
  ArcBatch i1 = model.Intersection({a, b, c}, {});
  ArcBatch i2 = model.Intersection({c, a, b}, {});
  for (int64_t i = 0; i < i1.center.numel(); ++i) {
    EXPECT_NEAR(i1.center.at(i), i2.center.at(i), 1e-4f);
    EXPECT_NEAR(i1.length.at(i), i2.length.at(i), 1e-4f);
  }
}

TEST_F(HalkModelTest, DifferenceInvariantToSubtrahendOrderOnly) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch a = model.Projection(model.EmbedAnchors({0}), {0});
  ArcBatch b = model.Projection(model.EmbedAnchors({2}), {1});
  ArcBatch c = model.Projection(model.EmbedAnchors({4}), {2});
  // Swapping subtrahends must not change the result (Sec. III-C).
  ArcBatch d1 = model.Difference({a, b, c});
  ArcBatch d2 = model.Difference({a, c, b});
  for (int64_t i = 0; i < d1.center.numel(); ++i) {
    EXPECT_NEAR(d1.center.at(i), d2.center.at(i), 1e-4f);
    EXPECT_NEAR(d1.length.at(i), d2.length.at(i), 1e-4f);
  }
  // Swapping the minuend must change it (asymmetry).
  ArcBatch d3 = model.Difference({b, a, c});
  float max_diff = 0.0f;
  for (int64_t i = 0; i < d1.length.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(d1.length.at(i) - d3.length.at(i)));
  }
  EXPECT_GT(max_diff, 1e-5f);
}

TEST_F(HalkModelTest, NegationProducesValidArc) {
  HalkModel model(SmallConfig(), grouping_);
  ArcBatch in = model.Projection(model.EmbedAnchors({0, 1}), {0, 1});
  ArcBatch out = model.Negation(in);
  EXPECT_EQ(out.center.shape(), in.center.shape());
  constexpr float kTwoPi = 6.2831853f;
  for (int64_t i = 0; i < out.center.numel(); ++i) {
    EXPECT_GE(out.center.at(i), 0.0f);
    EXPECT_LE(out.center.at(i), kTwoPi + 1e-4f);
  }
}

TEST_F(HalkModelTest, EmbedsEveryUnionFreeStructure) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 17);
  for (StructureId id : query::AllStructures()) {
    query::QueryGraph proto = query::MakeStructure(id);
    if (proto.HasOp(query::OpType::kUnion)) continue;
    auto q = sampler.Sample(id);
    ASSERT_TRUE(q.ok()) << query::StructureName(id);
    std::vector<const query::QueryGraph*> batch = {&q->graph, &q->graph};
    EmbeddingBatch emb = model.EmbedQueries(batch);
    EXPECT_EQ(emb.a.shape(), Shape({2, 8})) << query::StructureName(id);
    for (int64_t i = 0; i < emb.a.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(emb.a.at(i)));
      EXPECT_TRUE(std::isfinite(emb.b.at(i)));
    }
  }
}

TEST_F(HalkModelTest, GradientsReachAllParameterGroupsFor2in) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 19);
  auto q = sampler.Sample(StructureId::k2in);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  LossBatch lb;
  lb.positives = {q->answers[0]};
  lb.negatives = {{1, 2, 3}};
  lb.positive_penalty = {0.0f};
  lb.negative_penalty = {{0.0f, 0.0f, 0.0f}};
  Tensor loss = NegativeSamplingLoss(&model, emb, lb);
  tensor::Backward(loss);
  // Entity table, relation tables, projection/intersection/negation nets
  // must all receive gradient signal for this structure.
  int with_grad = 0;
  for (Tensor p : model.Parameters()) {
    bool any = false;
    for (float g : p.grad_vector()) any = any || g != 0.0f;
    with_grad += any;
  }
  EXPECT_GT(with_grad, 10);
}

TEST_F(HalkModelTest, DistanceConsistentWithDistancesToAll) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 23);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch emb = model.EmbedQueries(batch);
  std::vector<float> all;
  model.DistancesToAll(emb, 0, &all);
  ASSERT_EQ(all.size(), static_cast<size_t>(model.config().num_entities));
  for (int64_t e : {int64_t{0}, int64_t{50}, int64_t{150}}) {
    Tensor d = model.Distance({e}, emb);
    EXPECT_NEAR(d.at(0), all[static_cast<size_t>(e)], 1e-3f);
  }
}

TEST_F(HalkModelTest, DeterministicForSeed) {
  HalkModel m1(SmallConfig(), grouping_);
  HalkModel m2(SmallConfig(), grouping_);
  ArcBatch a1 = m1.Projection(m1.EmbedAnchors({7}), {1});
  ArcBatch a2 = m2.Projection(m2.EmbedAnchors({7}), {1});
  for (int64_t i = 0; i < a1.center.numel(); ++i) {
    EXPECT_EQ(a1.center.at(i), a2.center.at(i));
  }
}

TEST_F(HalkModelTest, EmbedAllNodesCoversReachableNodes) {
  HalkModel model(SmallConfig(), grouping_);
  query::QuerySampler sampler(&dataset_->train, 29);
  auto q = sampler.Sample(StructureId::kPi);
  ASSERT_TRUE(q.ok());
  auto arcs = model.EmbedAllNodes(q->graph);
  for (int id : q->graph.TopologicalOrder()) {
    EXPECT_TRUE(arcs[static_cast<size_t>(id)].center.defined());
  }
}

TEST_F(HalkModelTest, SupportsAllOps) {
  HalkModel model(SmallConfig(), grouping_);
  for (auto op : {query::OpType::kProjection, query::OpType::kIntersection,
                  query::OpType::kUnion, query::OpType::kDifference,
                  query::OpType::kNegation}) {
    EXPECT_TRUE(model.Supports(op));
  }
}

TEST_F(HalkModelTest, QueryGroupsPropagation) {
  query::QuerySampler sampler(&dataset_->train, 31);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  auto vectors = NodeGroupVectors(q->graph, *grouping_);
  const auto& target = vectors[static_cast<size_t>(q->graph.target())];
  ASSERT_EQ(target.size(), 8u);
  // Target groups = product of branch groups: never exceeds either branch.
  const auto& in0 = vectors[static_cast<size_t>(
      q->graph.nodes()[static_cast<size_t>(q->graph.target())].inputs[0])];
  for (size_t g = 0; g < target.size(); ++g) {
    EXPECT_LE(target[g], in0[g]);
  }
  // All true answers must lie in allowed groups when executed on the same
  // graph the adjacency was built from.
  for (int64_t a : q->answers) {
    EXPECT_GT(target[static_cast<size_t>(grouping_->group_of(a))], 0.0f)
        << "answer " << a;
  }
}

}  // namespace
}  // namespace halk::core
