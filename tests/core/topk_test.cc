#include "core/topk.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace halk::core {
namespace {

std::vector<int64_t> Entities(const std::vector<ScoredEntity>& ranking) {
  std::vector<int64_t> out;
  for (const ScoredEntity& s : ranking) out.push_back(s.entity);
  return out;
}

TEST(TopKAccumulatorTest, KeepsKSmallestAscending) {
  TopKAccumulator acc(3);
  acc.Push(0, 5.0f);
  acc.Push(1, 1.0f);
  acc.Push(2, 4.0f);
  acc.Push(3, 2.0f);
  acc.Push(4, 3.0f);
  EXPECT_EQ(Entities(acc.Take()), (std::vector<int64_t>{1, 3, 4}));
}

TEST(TopKAccumulatorTest, TiesBreakTowardLowerEntityId) {
  TopKAccumulator acc(4);
  // Push in an order that would expose instability: high ids first.
  acc.Push(9, 1.0f);
  acc.Push(7, 1.0f);
  acc.Push(8, 1.0f);
  acc.Push(1, 2.0f);
  acc.Push(0, 1.0f);  // ties at 1.0 must evict entity 9, not survive it
  EXPECT_EQ(Entities(acc.Take()), (std::vector<int64_t>{0, 7, 8, 9}));
}

TEST(TopKAccumulatorTest, KLargerThanCandidatesReturnsAll) {
  TopKAccumulator acc(10);
  acc.Push(2, 0.5f);
  acc.Push(1, 0.25f);
  EXPECT_EQ(Entities(acc.Take()), (std::vector<int64_t>{1, 2}));
}

TEST(TopKAccumulatorTest, NonPositiveKAcceptsNothing) {
  TopKAccumulator acc(0);
  acc.Push(1, 1.0f);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKAccumulatorTest, MatchesFullSortOnRandomStreams) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform() * 200);
    const int64_t k = 1 + static_cast<int64_t>(rng.Uniform() * 12);
    std::vector<ScoredEntity> all;
    TopKAccumulator acc(k);
    for (int i = 0; i < n; ++i) {
      // Coarse quantization forces plenty of distance ties.
      const float d = static_cast<float>(static_cast<int>(rng.Uniform() * 8));
      all.push_back({i, d});
      acc.Push(i, d);
    }
    std::sort(all.begin(), all.end(), ScoredBefore);
    all.resize(std::min<size_t>(all.size(), static_cast<size_t>(k)));
    EXPECT_EQ(acc.Take(), all) << "trial " << trial;
  }
}

TEST(TopKFromDistancesTest, AppliesEntityOffset) {
  const std::vector<float> dist = {3.0f, 1.0f, 2.0f};
  const std::vector<ScoredEntity> top = TopKFromDistances(dist, 2, 100);
  EXPECT_EQ(Entities(top), (std::vector<int64_t>{101, 102}));
  EXPECT_EQ(top[0].distance, 1.0f);
}

TEST(MergeTopKTest, MergesSortedPartialsWithTies) {
  const std::vector<std::vector<ScoredEntity>> partials = {
      {{0, 1.0f}, {2, 2.0f}},
      {{1, 1.0f}, {3, 1.5f}},
  };
  EXPECT_EQ(Entities(MergeTopK(partials, 3)),
            (std::vector<int64_t>{0, 1, 3}));
}

TEST(MergeTopKTest, EmptyShardContributesNothing) {
  const std::vector<std::vector<ScoredEntity>> partials = {
      {}, {{5, 2.0f}}, {}, {{4, 1.0f}}};
  EXPECT_EQ(Entities(MergeTopK(partials, 10)),
            (std::vector<int64_t>{4, 5}));
}

TEST(MergeTopKTest, KBeyondTotalCandidates) {
  const std::vector<std::vector<ScoredEntity>> partials = {{{1, 1.0f}}};
  EXPECT_EQ(MergeTopK(partials, 99).size(), 1u);
  EXPECT_TRUE(MergeTopK({}, 5).empty());
  EXPECT_TRUE(MergeTopK(partials, 0).empty());
}

TEST(MergeTopKTest, MergeOfPartitionsEqualsGlobalTopK) {
  Rng rng(13);
  std::vector<float> dist;
  for (int i = 0; i < 300; ++i) {
    dist.push_back(static_cast<float>(static_cast<int>(rng.Uniform() * 16)));
  }
  const std::vector<ScoredEntity> global = TopKFromDistances(dist, 17);
  for (int shards : {1, 2, 4, 8}) {
    std::vector<std::vector<ScoredEntity>> partials;
    const size_t per = dist.size() / static_cast<size_t>(shards);
    for (int s = 0; s < shards; ++s) {
      const size_t begin = static_cast<size_t>(s) * per;
      const size_t end = s == shards - 1 ? dist.size() : begin + per;
      std::vector<float> slice(dist.begin() + static_cast<int64_t>(begin),
                               dist.begin() + static_cast<int64_t>(end));
      partials.push_back(
          TopKFromDistances(slice, 17, static_cast<int64_t>(begin)));
    }
    EXPECT_EQ(MergeTopK(partials, 17), global) << shards << " shards";
  }
}

}  // namespace
}  // namespace halk::core
