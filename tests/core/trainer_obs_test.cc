// Trainer observability: the structured journal (header/step/eval JSONL
// records over a 600-step run), the profiler-derived phase breakdown
// (span sum bounded by wall time), tape totals surfaced through
// TrainStats and the metrics registry, and the options fingerprint.

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "core/trainer.h"
#include "kg/synthetic.h"
#include "obs/journal.h"
#include "serving/metrics.h"

namespace halk::core {
namespace {

using query::StructureId;

class TrainerObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 120;
    opt.num_relations = 5;
    opt.num_triples = 700;
    opt.seed = 71;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(9);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 5, &rng));
    grouping_->BuildAdjacency(dataset_->train);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete grouping_;
    dataset_ = nullptr;
    grouping_ = nullptr;
  }

  static ModelConfig SmallConfig() {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.seed = 13;
    return c;
  }

  static TrainerOptions BaseOptions() {
    TrainerOptions opt;
    opt.steps = 600;
    opt.batch_size = 8;
    opt.num_negatives = 4;
    opt.learning_rate = 5e-3f;
    opt.structures = {StructureId::k1p, StructureId::k2i};
    opt.queries_per_structure = 40;
    opt.eval_queries_per_structure = 10;
    opt.seed = 21;
    return opt;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
};

kg::Dataset* TrainerObsTest::dataset_ = nullptr;
kg::NodeGrouping* TrainerObsTest::grouping_ = nullptr;

TEST_F(TrainerObsTest, SixHundredStepJournalHasValidSchema) {
  HalkModel model(SmallConfig(), grouping_);
  std::ostringstream sink;
  auto journal = obs::TrainJournal::ToStream(&sink);
  serving::MetricsRegistry metrics;

  TrainerOptions opt = BaseOptions();
  opt.journal = journal.get();
  opt.metrics = &metrics;
  opt.profile = true;
  opt.eval_every = 200;
  Trainer trainer(&model, &dataset_->train, grouping_, opt);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());

  // 1 header + 600 steps + evals at 200/400/600.
  EXPECT_EQ(journal->records_written(), 1 + 600 + 3);

  std::istringstream lines(sink.str());
  std::string line;
  int headers = 0;
  int steps = 0;
  int evals = 0;
  int last_step = 0;
  while (std::getline(lines, line)) {
    auto parsed = obs::ParseJsonLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const obs::JsonValue* record = obs::FindKey(*parsed, "record");
    ASSERT_NE(record, nullptr) << line;
    if (record->string_value == "header") {
      ++headers;
      EXPECT_EQ(steps + evals, 0) << "header must come first";
      EXPECT_EQ(obs::FindKey(*parsed, "schema_version")->number, 1.0);
      EXPECT_EQ(obs::FindKey(*parsed, "seed")->number, 21.0);
      EXPECT_EQ(obs::FindKey(*parsed, "steps")->number, 600.0);
      EXPECT_EQ(obs::FindKey(*parsed, "structures")->string_value, "1p,2i");
      const obs::JsonValue* fp = obs::FindKey(*parsed, "options_fingerprint");
      ASSERT_NE(fp, nullptr);
      EXPECT_EQ(fp->string_value,
                TrainerOptionsFingerprint(opt));
    } else if (record->string_value == "step") {
      ++steps;
      // Steps are 1-based and strictly increasing.
      EXPECT_EQ(obs::FindKey(*parsed, "step")->number, last_step + 1);
      last_step = static_cast<int>(obs::FindKey(*parsed, "step")->number);
      for (const char* key :
           {"loss", "grad_norm", "update_norm", "wall_ms", "forward_ops",
            "backward_ops", "forward_flops", "backward_flops",
            "forward_bytes", "peak_graph_bytes"}) {
        const obs::JsonValue* v = obs::FindKey(*parsed, key);
        ASSERT_NE(v, nullptr) << key << " missing: " << line;
        ASSERT_TRUE(v->is_number()) << key;
        EXPECT_TRUE(std::isfinite(v->number)) << key;
        EXPECT_GE(v->number, 0.0) << key;
      }
      EXPECT_GT(obs::FindKey(*parsed, "forward_ops")->number, 0.0);
      EXPECT_GT(obs::FindKey(*parsed, "backward_flops")->number, 0.0);
      const std::string structure =
          obs::FindKey(*parsed, "structure")->string_value;
      EXPECT_TRUE(structure == "1p" || structure == "2i") << structure;
    } else if (record->string_value == "eval") {
      ++evals;
      const double step_of_eval = obs::FindKey(*parsed, "step")->number;
      EXPECT_EQ(std::fmod(step_of_eval, 200.0), 0.0);
      for (const char* key : {"mrr", "hits1", "hits3", "hits10"}) {
        const double v = obs::FindKey(*parsed, key)->number;
        EXPECT_GE(v, 0.0) << key;
        EXPECT_LE(v, 1.0) << key;
      }
      EXPECT_EQ(obs::FindKey(*parsed, "num_queries")->number, 20.0);
    } else {
      FAIL() << "unknown record kind: " << line;
    }
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(steps, 600);
  EXPECT_EQ(evals, 3);

  // Tape totals surfaced on TrainStats and mirrored into the registry.
  EXPECT_GT(stats->forward_ops, 0);
  EXPECT_GT(stats->backward_ops, 0);
  EXPECT_GT(stats->forward_flops, 0);
  EXPECT_GT(stats->backward_flops, stats->forward_flops);
  EXPECT_GT(stats->peak_graph_bytes, 0);
  EXPECT_GT(stats->grad_norm, 0.0);
  EXPECT_GT(stats->update_norm, 0.0);
  EXPECT_EQ(metrics.GetCounter("train.tape.forward_ops")->value(),
            stats->forward_ops);
  EXPECT_EQ(metrics.GetCounter("train.steps")->value(), 600);
  EXPECT_GT(
      metrics.GetCounter("train.tape.ops", {{"op", "matmul"}, {"pass", "forward"}})
          ->value(),
      0);

  // Phase breakdown: the profiled phases partition a subset of the step,
  // so their sum can never exceed the run's wall time.
  const double span_sum = stats->sample_seconds + stats->embed_seconds +
                          stats->loss_seconds + stats->backward_seconds +
                          stats->adam_seconds;
  EXPECT_GT(span_sum, 0.0);
  EXPECT_LE(span_sum, stats->seconds * 1.05 + 0.05);
  // The training math dominates the breakdown for this workload.
  EXPECT_GT(stats->embed_seconds + stats->loss_seconds +
                stats->backward_seconds,
            0.0);
}

TEST_F(TrainerObsTest, NoJournalNoMetricsMeansNoAccountingCost) {
  HalkModel model(SmallConfig(), grouping_);
  TrainerOptions opt = BaseOptions();
  opt.steps = 10;
  Trainer trainer(&model, &dataset_->train, grouping_, opt);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  // Accounting was never installed, so tape totals stay zero.
  EXPECT_EQ(stats->forward_ops, 0);
  EXPECT_EQ(stats->backward_ops, 0);
  EXPECT_EQ(stats->peak_graph_bytes, 0);
  // And without profile=true the phase breakdown stays zero too.
  EXPECT_EQ(stats->sample_seconds, 0.0);
  EXPECT_EQ(stats->adam_seconds, 0.0);
}

TEST_F(TrainerObsTest, OptionsFingerprintKeysTheConfiguration) {
  const TrainerOptions base = BaseOptions();
  TrainerOptions same = BaseOptions();
  EXPECT_EQ(TrainerOptionsFingerprint(base), TrainerOptionsFingerprint(same));
  TrainerOptions different_lr = BaseOptions();
  different_lr.learning_rate *= 2.0f;
  EXPECT_NE(TrainerOptionsFingerprint(base),
            TrainerOptionsFingerprint(different_lr));
  TrainerOptions different_structures = BaseOptions();
  different_structures.structures = {StructureId::k1p};
  EXPECT_NE(TrainerOptionsFingerprint(base),
            TrainerOptionsFingerprint(different_structures));
  // Observability sinks do not change the fingerprint: two runs with the
  // same hyperparameters stay comparable whether or not they journaled.
  TrainerOptions journaled = BaseOptions();
  std::ostringstream sink;
  auto journal = obs::TrainJournal::ToStream(&sink);
  journaled.journal = journal.get();
  journaled.profile = true;
  EXPECT_EQ(TrainerOptionsFingerprint(base),
            TrainerOptionsFingerprint(journaled));
}

}  // namespace
}  // namespace halk::core
