#include "core/checkpoint.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/evaluator.h"
#include "core/halk_model.h"
#include "kg/synthetic.h"
#include "query/sampler.h"

namespace halk::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 120;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 31;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static ModelConfig SmallConfig(uint64_t seed = 3) {
    ModelConfig c;
    c.num_entities = dataset_->train.num_entities();
    c.num_relations = dataset_->train.num_relations();
    c.dim = 8;
    c.hidden = 16;
    c.seed = seed;
    return c;
  }

  std::string TempPath(const char* name) {
    return testing::TempDir() + "/" + name;
  }

  static kg::Dataset* dataset_;
};

kg::Dataset* CheckpointTest::dataset_ = nullptr;

TEST_F(CheckpointTest, RoundTripRestoresEveryParameter) {
  HalkModel a(SmallConfig(3), nullptr);
  const std::string path = TempPath("halk_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  HalkModel b(SmallConfig(99), nullptr);  // different random init
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t t = 0; t < pa.size(); ++t) {
    for (int64_t i = 0; i < pa[t].numel(); ++i) {
      ASSERT_EQ(pa[t].at(i), pb[t].at(i)) << "tensor " << t;
    }
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RestoredModelProducesIdenticalEmbeddings) {
  HalkModel a(SmallConfig(3), nullptr);
  const std::string path = TempPath("halk_ckpt_embed.bin");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  HalkModel b(SmallConfig(77), nullptr);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());

  query::QuerySampler sampler(&dataset_->train, 5);
  auto q = sampler.Sample(query::StructureId::k2i);
  ASSERT_TRUE(q.ok());
  std::vector<const query::QueryGraph*> batch = {&q->graph};
  EmbeddingBatch ea = a.EmbedQueries(batch);
  EmbeddingBatch eb = b.EmbedQueries(batch);
  for (int64_t i = 0; i < ea.a.numel(); ++i) {
    EXPECT_EQ(ea.a.at(i), eb.a.at(i));
    EXPECT_EQ(ea.b.at(i), eb.b.at(i));
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RejectsWrongModelName) {
  HalkModel halk(SmallConfig(), nullptr);
  const std::string path = TempPath("halk_ckpt_name.bin");
  ASSERT_TRUE(SaveCheckpoint(halk, path).ok());
  auto cone = baselines::CreateModel("cone", SmallConfig(), nullptr);
  ASSERT_TRUE(cone.ok());
  Status s = LoadCheckpoint(cone->get(), path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, RejectsMismatchedConfig) {
  HalkModel a(SmallConfig(), nullptr);
  const std::string path = TempPath("halk_ckpt_config.bin");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ModelConfig other = SmallConfig();
  other.dim = 16;  // different architecture
  HalkModel b(other, nullptr);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, DetectsCorruption) {
  HalkModel a(SmallConfig(), nullptr);
  const std::string path = TempPath("halk_ckpt_corrupt.bin");
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  {
    // Flip a byte in the middle of the tensor payload.
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 400, SEEK_SET);
    int c = fgetc(f);
    fseek(f, 400, SEEK_SET);
    fputc(c ^ 0x40, f);
    fclose(f);
  }
  HalkModel b(SmallConfig(8), nullptr);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MissingFileIsIOError) {
  HalkModel a(SmallConfig(), nullptr);
  EXPECT_EQ(LoadCheckpoint(&a, "/nonexistent/ckpt.bin").code(),
            StatusCode::kIOError);
}

TEST_F(CheckpointTest, WorksForEveryFactoryModel) {
  for (const std::string& name : baselines::AvailableModels()) {
    auto a = baselines::CreateModel(name, SmallConfig(4), nullptr);
    ASSERT_TRUE(a.ok());
    const std::string path = TempPath(("ckpt_" + name + ".bin").c_str());
    ASSERT_TRUE(SaveCheckpoint(**a, path).ok()) << name;
    auto b = baselines::CreateModel(name, SmallConfig(5), nullptr);
    ASSERT_TRUE(LoadCheckpoint(b->get(), path).ok()) << name;
    std::remove(path.c_str());
  }
}

// Mirrors the halk_cli serving path: a trained-and-saved model, restored
// through the factory into a fresh instance, must rank identically.
TEST_F(CheckpointTest, RestoredFactoryModelRanksIdentically) {
  auto trained = baselines::CreateModel("halk", SmallConfig(6), nullptr);
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("halk_ckpt_topk.bin");
  ASSERT_TRUE(SaveCheckpoint(**trained, path).ok());

  auto restored = baselines::CreateModel("halk", SmallConfig(123), nullptr);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(LoadCheckpoint(restored->get(), path).ok());

  Evaluator before(trained->get());
  Evaluator after(restored->get());
  query::QuerySampler sampler(&dataset_->train, 9);
  for (query::StructureId s :
       {query::StructureId::k1p, query::StructureId::k2i,
        query::StructureId::k2u}) {
    auto queries = sampler.SampleMany(s, 3);
    ASSERT_TRUE(queries.ok());
    for (const query::GroundedQuery& q : *queries) {
      EXPECT_EQ(before.TopK(q.graph, 10), after.TopK(q.graph, 10));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace halk::core
