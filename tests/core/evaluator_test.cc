#include "core/evaluator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "kg/synthetic.h"
#include "query/dnf.h"
#include "query/sampler.h"
#include "query/structures.h"

namespace halk::core {
namespace {

using query::StructureId;

class EvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 120;
    opt.num_relations = 6;
    opt.num_triples = 700;
    opt.seed = 19;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 23;
    model_ = new HalkModel(config, nullptr);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static query::GroundedQuery SampleOne(StructureId s, uint64_t seed) {
    query::QuerySampler sampler(&dataset_->train, seed);
    return sampler.Sample(s).ValueOrDie();
  }

  static kg::Dataset* dataset_;
  static HalkModel* model_;
};

kg::Dataset* EvaluatorTest::dataset_ = nullptr;
HalkModel* EvaluatorTest::model_ = nullptr;

TEST_F(EvaluatorTest, ScoreAllEntitiesCoversEveryEntity) {
  Evaluator evaluator(model_);
  query::GroundedQuery q = SampleOne(StructureId::k2i, 5);
  std::vector<float> scores = evaluator.ScoreAllEntities(q.graph);
  EXPECT_EQ(static_cast<int64_t>(scores.size()),
            dataset_->train.num_entities());
  for (float s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
  }
}

TEST_F(EvaluatorTest, ScoreAllEntitiesTakesMinimumOverUnionBranches) {
  Evaluator evaluator(model_);
  query::GroundedQuery q = SampleOne(StructureId::k2u, 9);
  std::vector<float> whole = evaluator.ScoreAllEntities(q.graph);
  // Score each DNF branch separately; the union score must be the
  // element-wise minimum.
  std::vector<query::QueryGraph> branches = query::ToDnf(q.graph);
  ASSERT_EQ(branches.size(), 2u);
  std::vector<float> lhs = evaluator.ScoreAllEntities(branches[0]);
  std::vector<float> rhs = evaluator.ScoreAllEntities(branches[1]);
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_FLOAT_EQ(whole[i], std::min(lhs[i], rhs[i]));
  }
}

TEST_F(EvaluatorTest, TopKIsSortedPrefixOfScoreAllEntities) {
  Evaluator evaluator(model_);
  for (StructureId s :
       {StructureId::k1p, StructureId::k2p, StructureId::k2i,
        StructureId::k2u}) {
    query::GroundedQuery q = SampleOne(s, 31);
    std::vector<float> scores = evaluator.ScoreAllEntities(q.graph);
    std::vector<int64_t> top = evaluator.TopK(q.graph, 10);
    ASSERT_EQ(top.size(), 10u);
    // Ascending by score.
    for (size_t i = 1; i < top.size(); ++i) {
      EXPECT_LE(scores[static_cast<size_t>(top[i - 1])],
                scores[static_cast<size_t>(top[i])]);
    }
    // Nothing outside the prefix scores strictly below its tail.
    const float worst = scores[static_cast<size_t>(top.back())];
    int64_t strictly_better = 0;
    for (float v : scores) strictly_better += v < worst;
    EXPECT_LE(strictly_better, 9);
  }
}

TEST_F(EvaluatorTest, TopKClampsToEntityCount) {
  Evaluator evaluator(model_);
  query::GroundedQuery q = SampleOne(StructureId::k1p, 13);
  std::vector<int64_t> all =
      evaluator.TopK(q.graph, dataset_->train.num_entities() + 50);
  EXPECT_EQ(static_cast<int64_t>(all.size()), dataset_->train.num_entities());
}

TEST_F(EvaluatorTest, TopKAgreesWithEvaluateRanking) {
  // A hard answer of rank 1 must be the TopK head; more generally, the
  // filtered rank Evaluate computes must match a rank recomputed from
  // ScoreAllEntities directly.
  Evaluator evaluator(model_);
  query::GroundedQuery q = SampleOne(StructureId::k2i, 47);
  ASSERT_FALSE(q.answers.empty());
  Metrics m = evaluator.Evaluate({q});
  EXPECT_EQ(m.num_queries, 1);

  std::vector<float> scores = evaluator.ScoreAllEntities(q.graph);
  double mrr = 0.0;
  for (int64_t answer : q.answers) {
    const float d = scores[static_cast<size_t>(answer)];
    int64_t rank = 1;
    for (int64_t e = 0; e < static_cast<int64_t>(scores.size()); ++e) {
      if (scores[static_cast<size_t>(e)] < d &&
          !std::binary_search(q.answers.begin(), q.answers.end(), e)) {
        ++rank;
      }
    }
    mrr += 1.0 / static_cast<double>(rank);
  }
  mrr /= static_cast<double>(q.answers.size());
  EXPECT_NEAR(m.mrr, mrr, 1e-9);
}

}  // namespace
}  // namespace halk::core
