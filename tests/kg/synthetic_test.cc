#include "kg/synthetic.h"

#include <gtest/gtest.h>

namespace halk::kg {
namespace {

bool IsSubsetOf(const KnowledgeGraph& small, const KnowledgeGraph& big) {
  for (const Triple& t : small.triples()) {
    if (!big.HasTriple(t.head, t.relation, t.tail)) return false;
  }
  return true;
}

TEST(SyntheticTest, GeneratesRequestedScale) {
  SyntheticKgOptions opt;
  opt.num_entities = 300;
  opt.num_relations = 10;
  opt.num_triples = 1500;
  opt.seed = 1;
  Dataset ds = GenerateSyntheticKg(opt);
  EXPECT_EQ(ds.test.num_entities(), 300);
  EXPECT_EQ(ds.test.num_relations(), 10);
  // Dedup / rejection may fall slightly short of the target.
  EXPECT_GE(ds.test.num_triples(), 1350);
  EXPECT_LE(ds.test.num_triples(), 1500);
}

TEST(SyntheticTest, NestedSplits) {
  SyntheticKgOptions opt;
  opt.num_entities = 300;
  opt.num_relations = 10;
  opt.num_triples = 2000;
  opt.seed = 2;
  Dataset ds = GenerateSyntheticKg(opt);
  EXPECT_LT(ds.train.num_triples(), ds.valid.num_triples());
  EXPECT_LT(ds.valid.num_triples(), ds.test.num_triples());
  EXPECT_TRUE(IsSubsetOf(ds.train, ds.valid));
  EXPECT_TRUE(IsSubsetOf(ds.valid, ds.test));
}

TEST(SyntheticTest, EveryEntityAndRelationCoveredInTrain) {
  SyntheticKgOptions opt;
  opt.num_entities = 200;
  opt.num_relations = 8;
  opt.num_triples = 1200;
  opt.seed = 3;
  Dataset ds = GenerateSyntheticKg(opt);
  std::vector<char> ent(static_cast<size_t>(ds.train.num_entities()), 0);
  std::vector<char> rel(static_cast<size_t>(ds.train.num_relations()), 0);
  for (const Triple& t : ds.train.triples()) {
    ent[static_cast<size_t>(t.head)] = 1;
    ent[static_cast<size_t>(t.tail)] = 1;
    rel[static_cast<size_t>(t.relation)] = 1;
  }
  for (char c : rel) EXPECT_TRUE(c);
  int covered = 0;
  for (char c : ent) covered += c;
  // A handful of entities may end up with no sampled triple at all (they
  // then appear in no split); all entities that occur anywhere must occur
  // in train.
  std::vector<char> anywhere(static_cast<size_t>(ds.test.num_entities()), 0);
  for (const Triple& t : ds.test.triples()) {
    anywhere[static_cast<size_t>(t.head)] = 1;
    anywhere[static_cast<size_t>(t.tail)] = 1;
  }
  for (size_t i = 0; i < anywhere.size(); ++i) {
    if (anywhere[i]) EXPECT_TRUE(ent[i]) << "entity " << i;
  }
  EXPECT_GT(covered, 120);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticKgOptions opt;
  opt.num_entities = 150;
  opt.num_relations = 6;
  opt.num_triples = 600;
  opt.seed = 7;
  Dataset a = GenerateSyntheticKg(opt);
  Dataset b = GenerateSyntheticKg(opt);
  ASSERT_EQ(a.test.num_triples(), b.test.num_triples());
  for (int64_t i = 0; i < a.test.num_triples(); ++i) {
    EXPECT_EQ(a.test.triples()[static_cast<size_t>(i)],
              b.test.triples()[static_cast<size_t>(i)]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticKgOptions opt;
  opt.num_entities = 150;
  opt.num_relations = 6;
  opt.num_triples = 600;
  opt.seed = 8;
  Dataset a = GenerateSyntheticKg(opt);
  opt.seed = 9;
  Dataset b = GenerateSyntheticKg(opt);
  int same = 0;
  const int64_t n = std::min(a.test.num_triples(), b.test.num_triples());
  for (int64_t i = 0; i < n; ++i) {
    same += a.test.triples()[static_cast<size_t>(i)] ==
            b.test.triples()[static_cast<size_t>(i)];
  }
  EXPECT_LT(same, n / 10);
}

TEST(SyntheticTest, BenchmarkStandInsHaveDocumentedShapes) {
  Dataset fb15k = MakeFb15kLike(1);
  Dataset fb237 = MakeFb237Like(1);
  Dataset nell = MakeNellLike(1);
  // FB15k-like is the densest; NELL-like is the sparsest.
  const double d15k = static_cast<double>(fb15k.test.num_triples()) /
                      static_cast<double>(fb15k.test.num_entities());
  const double d237 = static_cast<double>(fb237.test.num_triples()) /
                      static_cast<double>(fb237.test.num_entities());
  const double dnell = static_cast<double>(nell.test.num_triples()) /
                       static_cast<double>(nell.test.num_entities());
  EXPECT_GT(d15k, d237);
  EXPECT_GT(d237, dnell);
  EXPECT_GT(fb15k.test.num_relations(), fb237.test.num_relations());
}

}  // namespace
}  // namespace halk::kg
