#include "kg/stats.h"

#include <gtest/gtest.h>

#include "kg/graph.h"
#include "kg/synthetic.h"

namespace halk::kg {
namespace {

TEST(GraphStatsTest, CountsEdgesHeadsAndTails) {
  // relation 0: 0->1, 0->2, 1->2 (3 edges, 2 distinct heads, 2 tails);
  // relation 1: 3->0             (1 edge).
  const std::vector<Triple> triples = {
      {0, 0, 1}, {0, 0, 2}, {1, 0, 2}, {3, 1, 0}};
  const GraphStats stats = GraphStats::Collect(4, 2, triples);
  EXPECT_EQ(stats.num_entities(), 4);
  EXPECT_EQ(stats.num_relations(), 2);
  EXPECT_EQ(stats.num_edges(), 4);

  const RelationStats& r0 = stats.relation(0);
  EXPECT_EQ(r0.num_edges, 3);
  EXPECT_EQ(r0.num_heads, 2);
  EXPECT_EQ(r0.num_tails, 2);
  EXPECT_DOUBLE_EQ(r0.avg_out_fanout, 1.5);
  EXPECT_DOUBLE_EQ(r0.avg_in_fanout, 1.5);

  const RelationStats& r1 = stats.relation(1);
  EXPECT_EQ(r1.num_edges, 1);
  EXPECT_EQ(r1.num_heads, 1);
  EXPECT_EQ(r1.num_tails, 1);
  EXPECT_DOUBLE_EQ(r1.avg_out_fanout, 1.0);
  EXPECT_DOUBLE_EQ(r1.avg_in_fanout, 1.0);
}

TEST(GraphStatsTest, EmptyRelationHasZeroFanout) {
  const GraphStats stats = GraphStats::Collect(10, 3, {{0, 0, 1}});
  const RelationStats& empty = stats.relation(2);
  EXPECT_EQ(empty.num_edges, 0);
  EXPECT_EQ(empty.num_heads, 0);
  EXPECT_DOUBLE_EQ(empty.avg_out_fanout, 0.0);
  EXPECT_DOUBLE_EQ(empty.avg_in_fanout, 0.0);
}

TEST(GraphStatsTest, OutOfRangeRelationReturnsZeros) {
  const GraphStats stats = GraphStats::Collect(4, 2, {{0, 0, 1}});
  EXPECT_EQ(stats.relation(-1).num_edges, 0);
  EXPECT_EQ(stats.relation(2).num_edges, 0);
  EXPECT_EQ(stats.relation(1 << 20).num_edges, 0);
}

TEST(GraphStatsTest, OutOfRangeTriplesAreIgnored) {
  const std::vector<Triple> triples = {
      {0, 0, 1},   // valid
      {0, 5, 1},   // relation out of range
      {-1, 0, 1},  // head out of range
      {0, 0, 9},   // tail out of range
  };
  const GraphStats stats = GraphStats::Collect(4, 2, triples);
  EXPECT_EQ(stats.num_edges(), 1);
  EXPECT_EQ(stats.relation(0).num_edges, 1);
}

TEST(GraphStatsTest, DuplicateHeadsCountedOnce) {
  // Head 0 projects to three tails under relation 0.
  const std::vector<Triple> triples = {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}};
  const GraphStats stats = GraphStats::Collect(5, 1, triples);
  const RelationStats& r0 = stats.relation(0);
  EXPECT_EQ(r0.num_heads, 1);
  EXPECT_EQ(r0.num_tails, 3);
  EXPECT_DOUBLE_EQ(r0.avg_out_fanout, 3.0);
  EXPECT_DOUBLE_EQ(r0.avg_in_fanout, 1.0);
}

TEST(GraphStatsTest, KnowledgeGraphBuildsStatsAtFinalize) {
  KnowledgeGraph graph;
  graph.ReserveEntities(6);
  graph.ReserveRelations(2);
  ASSERT_TRUE(graph.AddTriple(0, 0, 1).ok());
  ASSERT_TRUE(graph.AddTriple(0, 0, 2).ok());
  ASSERT_TRUE(graph.AddTriple(3, 1, 4).ok());
  graph.Finalize();
  const GraphStats& stats = graph.stats();
  EXPECT_EQ(stats.num_edges(), graph.num_triples());
  EXPECT_EQ(stats.num_entities(), graph.num_entities());
  EXPECT_EQ(stats.relation(0).num_edges, 2);
  EXPECT_EQ(stats.relation(1).num_edges, 1);
}

TEST(GraphStatsTest, SyntheticGraphStatsAreConsistent) {
  SyntheticKgOptions opt;
  opt.num_entities = 80;
  opt.num_relations = 4;
  opt.num_triples = 400;
  opt.seed = 5;
  const Dataset dataset = GenerateSyntheticKg(opt);
  const GraphStats& stats = dataset.train.stats();
  int64_t total = 0;
  for (int64_t r = 0; r < stats.num_relations(); ++r) {
    const RelationStats& rel = stats.relation(r);
    total += rel.num_edges;
    EXPECT_LE(rel.num_heads, rel.num_edges);
    EXPECT_LE(rel.num_tails, rel.num_edges);
    if (rel.num_edges > 0) {
      EXPECT_GE(rel.avg_out_fanout, 1.0);
      EXPECT_GE(rel.avg_in_fanout, 1.0);
    }
  }
  EXPECT_EQ(total, stats.num_edges());
  EXPECT_EQ(stats.num_edges(), dataset.train.num_triples());
}

}  // namespace
}  // namespace halk::kg
