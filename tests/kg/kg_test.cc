#include <algorithm>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "kg/csr.h"
#include "kg/dictionary.h"
#include "kg/graph.h"
#include "kg/groups.h"
#include "kg/io.h"

namespace halk::kg {
namespace {

TEST(DictionaryTest, GetOrAddAssignsDenseIds) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("a"), 0);
  EXPECT_EQ(d.GetOrAdd("b"), 1);
  EXPECT_EQ(d.GetOrAdd("a"), 0);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.Name(1), "b");
}

TEST(DictionaryTest, LookupMissingIsNotFound) {
  Dictionary d;
  d.GetOrAdd("x");
  EXPECT_TRUE(d.Lookup("x").ok());
  auto r = d.Lookup("y");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(d.Contains("x"));
  EXPECT_FALSE(d.Contains("y"));
}

KnowledgeGraph SmallGraph() {
  KnowledgeGraph g;
  g.AddTriple("alice", "knows", "bob");
  g.AddTriple("alice", "knows", "carol");
  g.AddTriple("bob", "knows", "carol");
  g.AddTriple("carol", "works_at", "acme");
  g.Finalize();
  return g;
}

TEST(GraphTest, CountsAndLookups) {
  KnowledgeGraph g = SmallGraph();
  EXPECT_EQ(g.num_entities(), 4);
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.num_triples(), 4);

  const int64_t alice = *g.entities().Lookup("alice");
  const int64_t bob = *g.entities().Lookup("bob");
  const int64_t knows = *g.relations().Lookup("knows");
  EXPECT_TRUE(g.HasTriple(alice, knows, bob));
  EXPECT_FALSE(g.HasTriple(bob, knows, alice));
}

TEST(GraphTest, DuplicateTriplesIgnored) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("a", "r", "b");
  EXPECT_EQ(g.num_triples(), 1);
}

TEST(GraphTest, AddTripleByIdValidation) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  EXPECT_TRUE(g.AddTriple(0, 0, 1).ok());
  EXPECT_FALSE(g.AddTriple(0, 0, 99).ok());
  EXPECT_FALSE(g.AddTriple(0, 5, 1).ok());
}

TEST(GraphTest, SharedVocabularySplits) {
  KnowledgeGraph train;
  train.AddTriple("a", "r", "b");
  KnowledgeGraph test = KnowledgeGraph::WithSharedVocabulary(train);
  EXPECT_EQ(test.num_entities(), 2);
  EXPECT_TRUE(test.AddTriple(0, 0, 1).ok());
  // Adding a name to test grows the shared dictionary seen by train too.
  test.AddTriple("a", "r", "c");
  EXPECT_EQ(train.num_entities(), 3);
}

TEST(CsrTest, ForwardAndReverseNeighbors) {
  KnowledgeGraph g = SmallGraph();
  const auto& idx = g.index();
  const int64_t alice = *g.entities().Lookup("alice");
  const int64_t bob = *g.entities().Lookup("bob");
  const int64_t carol = *g.entities().Lookup("carol");
  const int64_t knows = *g.relations().Lookup("knows");

  auto tails = idx.Tails(alice, knows);
  std::set<int64_t> tail_set(tails.begin(), tails.end());
  EXPECT_EQ(tail_set, (std::set<int64_t>{bob, carol}));

  auto heads = idx.Heads(carol, knows);
  std::set<int64_t> head_set(heads.begin(), heads.end());
  EXPECT_EQ(head_set, (std::set<int64_t>{alice, bob}));

  EXPECT_EQ(idx.OutDegree(alice, knows), 2);
  EXPECT_TRUE(idx.Tails(carol, knows).empty());
}

TEST(CsrTest, EmptyRelationSlots) {
  KnowledgeGraph g = SmallGraph();
  const int64_t works = *g.relations().Lookup("works_at");
  const int64_t alice = *g.entities().Lookup("alice");
  EXPECT_TRUE(g.index().Tails(alice, works).empty());
  EXPECT_TRUE(g.index().Heads(alice, works).empty());
}

TEST(GroupsTest, OneHotAndAssignmentStable) {
  Rng rng(5);
  NodeGrouping grouping = NodeGrouping::Random(100, 8, &rng);
  EXPECT_EQ(grouping.num_groups(), 8);
  for (int64_t e = 0; e < 100; ++e) {
    auto v = grouping.OneHot(e);
    EXPECT_EQ(v.size(), 8u);
    float sum = 0.0f;
    for (float x : v) sum += x;
    EXPECT_EQ(sum, 1.0f);
    EXPECT_EQ(v[static_cast<size_t>(grouping.group_of(e))], 1.0f);
  }
}

TEST(GroupsTest, AdjacencyReflectsTriples) {
  KnowledgeGraph g = SmallGraph();
  Rng rng(7);
  NodeGrouping grouping = NodeGrouping::Random(g.num_entities(), 2, &rng);
  grouping.BuildAdjacency(g);
  const int64_t knows = *g.relations().Lookup("knows");
  const int64_t alice = *g.entities().Lookup("alice");
  const int64_t bob = *g.entities().Lookup("bob");
  EXPECT_TRUE(grouping.Connected(knows, grouping.group_of(alice),
                                 grouping.group_of(bob)));
}

TEST(GroupsTest, ProjectFollowsGroupEdges) {
  KnowledgeGraph g = SmallGraph();
  Rng rng(9);
  NodeGrouping grouping = NodeGrouping::Random(g.num_entities(), 4, &rng);
  grouping.BuildAdjacency(g);
  const int64_t knows = *g.relations().Lookup("knows");
  const int64_t alice = *g.entities().Lookup("alice");
  const int64_t bob = *g.entities().Lookup("bob");
  auto img = grouping.Project(grouping.OneHot(alice), knows);
  EXPECT_EQ(img[static_cast<size_t>(grouping.group_of(bob))], 1.0f);
}

TEST(GroupsTest, SetAlgebraHelpers) {
  std::vector<float> a = {1, 0, 1, 0};
  std::vector<float> b = {1, 1, 0, 0};
  EXPECT_EQ(NodeGrouping::Intersect(a, b), (std::vector<float>{1, 0, 0, 0}));
  EXPECT_EQ(NodeGrouping::Union(a, b), (std::vector<float>{1, 1, 1, 0}));
  EXPECT_FLOAT_EQ(NodeGrouping::Similarity(a, a), 1.0f);
  EXPECT_FLOAT_EQ(NodeGrouping::Similarity(a, b), 1.0f / 3.0f);
}

TEST(IoTest, RoundTrip) {
  KnowledgeGraph g = SmallGraph();
  const std::string path = testing::TempDir() + "/halk_kg_roundtrip.tsv";
  ASSERT_TRUE(SaveTriplesTsv(g, path).ok());

  KnowledgeGraph loaded;
  ASSERT_TRUE(LoadTriplesTsv(path, &loaded).ok());
  EXPECT_EQ(loaded.num_triples(), g.num_triples());
  EXPECT_EQ(loaded.num_entities(), g.num_entities());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIOError) {
  KnowledgeGraph g;
  Status s = LoadTriplesTsv("/nonexistent/file.tsv", &g);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(IoTest, MalformedLineIsParseError) {
  const std::string path = testing::TempDir() + "/halk_kg_bad.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# comment\n\nonly_two\tfields\n", f);
    fclose(f);
  }
  KnowledgeGraph g;
  Status s = LoadTriplesTsv(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace halk::kg
