#include "kg/synthetic_stream.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace halk::kg {
namespace {

StreamKgOptions SmallOptions(int64_t num_entities = 600) {
  StreamKgOptions opt;
  opt.num_entities = num_entities;
  opt.num_relations = 12;
  opt.num_types = 4;
  opt.seed = 97;
  return opt;
}

std::vector<Triple> Drain(SyntheticKgStream* stream) {
  std::vector<Triple> all;
  while (stream->NextChunk(&all)) {
  }
  return all;
}

bool SameTriple(const Triple& a, const Triple& b) {
  return a.head == b.head && a.relation == b.relation && a.tail == b.tail;
}

TEST(SyntheticStreamTest, DeterministicForAFixedSeed) {
  SyntheticKgStream a(SmallOptions());
  SyntheticKgStream b(SmallOptions());
  const std::vector<Triple> ta = Drain(&a);
  const std::vector<Triple> tb = Drain(&b);
  ASSERT_FALSE(ta.empty());
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_TRUE(SameTriple(ta[i], tb[i])) << "triple " << i;
  }
  // Edge count tracks the configured mean fan-out (within a loose band —
  // the fan-out is geometric per head).
  const double per_head =
      static_cast<double>(ta.size()) / SmallOptions().num_entities;
  EXPECT_GT(per_head, 0.5 * SmallOptions().mean_fanout);
  EXPECT_LT(per_head, 2.0 * SmallOptions().mean_fanout);
}

TEST(SyntheticStreamTest, ChunkSizeNeverChangesTheStream) {
  StreamKgOptions tiny = SmallOptions();
  tiny.chunk_triples = 7;
  StreamKgOptions big = SmallOptions();
  big.chunk_triples = 100000;
  SyntheticKgStream a(tiny);
  SyntheticKgStream b(big);
  const std::vector<Triple> ta = Drain(&a);
  const std::vector<Triple> tb = Drain(&b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_TRUE(SameTriple(ta[i], tb[i])) << "triple " << i;
  }
}

TEST(SyntheticStreamTest, ResetReplaysFromTheFirstHead) {
  SyntheticKgStream stream(SmallOptions());
  const std::vector<Triple> first = Drain(&stream);
  std::vector<Triple> nothing;
  EXPECT_FALSE(stream.NextChunk(&nothing));
  EXPECT_TRUE(nothing.empty());
  stream.Reset();
  const std::vector<Triple> second = Drain(&stream);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(SameTriple(first[i], second[i]));
  }
}

TEST(SyntheticStreamTest, IdsStayInRange) {
  const StreamKgOptions opt = SmallOptions();
  SyntheticKgStream stream(opt);
  for (const Triple& t : Drain(&stream)) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, opt.num_entities);
    EXPECT_GE(t.tail, 0);
    EXPECT_LT(t.tail, opt.num_entities);
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, opt.num_relations);
  }
}

// The property the large-scale bench depends on: a smaller world with the
// same seed is a *slice* of the big one — shared ids keep their types and
// latents, so queries sampled from a materialized slice are valid against
// the streamed million-entity table.
TEST(SyntheticStreamTest, SmallerWorldIsASliceOfTheLargerOne) {
  SyntheticKgStream big(SmallOptions(600));
  SyntheticKgStream slice(SmallOptions(150));
  std::vector<double> latent_big;
  std::vector<double> latent_slice;
  for (int64_t e = 0; e < 150; ++e) {
    EXPECT_EQ(big.TypeOf(e), slice.TypeOf(e)) << "entity " << e;
    big.EntityLatent(e, &latent_big);
    slice.EntityLatent(e, &latent_slice);
    ASSERT_EQ(latent_big.size(), latent_slice.size());
    for (size_t j = 0; j < latent_big.size(); ++j) {
      EXPECT_EQ(latent_big[j], latent_slice[j]) << "entity " << e;
    }
  }
  // Relation structure is entity-count independent outright.
  for (int64_t r = 0; r < SmallOptions().num_relations; ++r) {
    EXPECT_EQ(big.SubjectType(r), slice.SubjectType(r));
    EXPECT_EQ(big.ObjectType(r), slice.ObjectType(r));
    EXPECT_EQ(big.RelationRotation(r), slice.RelationRotation(r));
  }
}

TEST(SyntheticStreamTest, RelationSignaturesHoldOnEveryTriple) {
  SyntheticKgStream stream(SmallOptions());
  std::vector<Triple> all = Drain(&stream);
  int noisy_tails = 0;
  for (const Triple& t : all) {
    EXPECT_EQ(stream.TypeOf(t.head), stream.SubjectType(t.relation));
    if (stream.TypeOf(t.tail) != stream.ObjectType(t.relation)) {
      ++noisy_tails;  // uniform-noise tails may leave the object type
    }
  }
  // Noise stays a small minority, so the latent structure dominates.
  EXPECT_LT(noisy_tails, static_cast<int>(all.size()) / 4);
}

TEST(SyntheticStreamTest, MaterializedDatasetHasNestedSplits) {
  StreamKgOptions opt = SmallOptions(400);
  Dataset ds = MaterializeStreamDataset(opt, /*valid_holdout=*/0.1,
                                        /*test_holdout=*/0.1);
  EXPECT_EQ(ds.test.num_entities(), opt.num_entities);
  EXPECT_GT(ds.train.num_triples(), 0);
  EXPECT_LE(ds.train.num_triples(), ds.valid.num_triples());
  EXPECT_LE(ds.valid.num_triples(), ds.test.num_triples());
  EXPECT_LT(ds.valid.num_triples(), ds.test.num_triples());
  for (const Triple& t : ds.train.triples()) {
    EXPECT_TRUE(ds.valid.HasTriple(t.head, t.relation, t.tail));
  }
  for (const Triple& t : ds.valid.triples()) {
    EXPECT_TRUE(ds.test.HasTriple(t.head, t.relation, t.tail));
  }
  // Latent ground truth rides along for diagnostics.
  EXPECT_EQ(static_cast<int64_t>(ds.latent.entity.size()),
            opt.num_entities * ds.latent.dim);
}

}  // namespace
}  // namespace halk::kg
