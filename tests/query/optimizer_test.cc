#include "query/optimizer.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "query/executor.h"
#include "query/sampler.h"
#include "query/structures.h"

namespace halk::query {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 200;
    opt.num_relations = 8;
    opt.num_triples = 1400;
    opt.seed = 71;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static kg::Dataset* dataset_;
};

kg::Dataset* OptimizerTest::dataset_ = nullptr;

TEST_F(OptimizerTest, DoubleNegationEliminated) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.SetTarget(g.AddNegation(g.AddNegation(p)));
  QueryGraph n = NormalizeQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  EXPECT_EQ(n.ToString(), "p(a1,r0)");
}

TEST_F(OptimizerTest, NestedIntersectionsFlattened) {
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddIntersection({g.AddIntersection({a, b}), c}));
  QueryGraph n = NormalizeQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kIntersection);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(OptimizerTest, NestedUnionsFlattened) {
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddUnion({g.AddUnion({a, b}), c}));
  QueryGraph n = NormalizeQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kUnion);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(OptimizerTest, DifferenceMinuendFlattened) {
  // D(D(a, b), c) -> D(a, b, c).
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddDifference({g.AddDifference({a, b}), c}));
  QueryGraph n = NormalizeQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kDifference);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(OptimizerTest, IntermediateNegationBecomesDifference) {
  // p(i(a, ¬b)) — the negation is intermediate, so the paper's preference
  // rewrites it into a difference.
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int i = g.AddIntersection({a, g.AddNegation(b)});
  g.SetTarget(g.AddProjection(i, 2));
  QueryGraph n = NormalizeQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  EXPECT_TRUE(n.HasOp(OpType::kDifference));
}

TEST_F(OptimizerTest, TailNegationKeptByDefault) {
  // 2in: i(a, ¬b) at the target — negation is the better tail operator,
  // so the default options keep it.
  QueryGraph g = MakeStructure(StructureId::k2in);
  QueryGraph n = NormalizeQuery(g);
  EXPECT_TRUE(n.HasOp(OpType::kNegation));
  EXPECT_FALSE(n.HasOp(OpType::kDifference));

  NormalizeOptions opt;
  opt.rewrite_tail_negation = true;
  QueryGraph n2 = NormalizeQuery(g, opt);
  EXPECT_FALSE(n2.HasOp(OpType::kNegation));
  EXPECT_TRUE(n2.HasOp(OpType::kDifference));
}

TEST_F(OptimizerTest, PreservesSemanticsOnRandomQueries) {
  QuerySampler sampler(&dataset_->test, 9);
  NormalizeOptions aggressive;
  aggressive.rewrite_tail_negation = true;
  for (StructureId s : AllStructures()) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << StructureName(s);
    for (const NormalizeOptions& opt :
         {NormalizeOptions(), aggressive}) {
      QueryGraph n = NormalizeQuery(q->graph, opt);
      ASSERT_TRUE(n.Validate(/*grounded=*/true).ok()) << StructureName(s);
      auto before = ExecuteQuery(q->graph, dataset_->test);
      auto after = ExecuteQuery(n, dataset_->test);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(*before, *after) << StructureName(s);
    }
  }
}

TEST_F(OptimizerTest, HandcraftedDeepNest) {
  // ¬¬(i(i(a, ¬¬b), ¬c)) under a projection; normalization must produce
  // a flat difference feeding the projection with identical semantics.
  QuerySampler sampler(&dataset_->test, 11);
  auto seed_query = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(seed_query.ok());
  const auto& nodes = seed_query->graph.nodes();
  const QueryNode& inter =
      nodes[static_cast<size_t>(seed_query->graph.target())];

  QueryGraph g;
  int a = g.AddProjection(
      g.AddAnchor(nodes[static_cast<size_t>(
                            nodes[static_cast<size_t>(inter.inputs[0])]
                                .inputs[0])]
                      .anchor_entity),
      nodes[static_cast<size_t>(inter.inputs[0])].relation);
  int b = g.AddProjection(
      g.AddAnchor(nodes[static_cast<size_t>(
                            nodes[static_cast<size_t>(inter.inputs[1])]
                                .inputs[0])]
                      .anchor_entity),
      nodes[static_cast<size_t>(inter.inputs[1])].relation);
  int c = g.AddProjection(g.AddAnchor(0), 0);
  int bb = g.AddNegation(g.AddNegation(b));
  int i1 = g.AddIntersection({a, bb});
  int i2 = g.AddIntersection({i1, g.AddNegation(c)});
  int nn = g.AddNegation(g.AddNegation(i2));
  g.SetTarget(g.AddProjection(nn, 1));

  QueryGraph n = NormalizeQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  auto before = ExecuteQuery(g, dataset_->test);
  auto after = ExecuteQuery(n, dataset_->test);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(OptimizerTest, NormalizedGraphHasNoUnreachableNodes) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.AddProjection(g.AddAnchor(2), 1);  // orphan
  g.SetTarget(g.AddNegation(g.AddNegation(p)));
  QueryGraph n = NormalizeQuery(g);
  EXPECT_EQ(static_cast<size_t>(n.num_nodes()),
            n.TopologicalOrder().size());
}

}  // namespace
}  // namespace halk::query
