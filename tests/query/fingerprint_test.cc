#include "query/fingerprint.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "query/structures.h"

namespace halk::query {
namespace {

QueryGraph TwoIntersection(int64_t a0, int64_t r0, int64_t a1, int64_t r1) {
  QueryGraph g;
  int p0 = g.AddProjection(g.AddAnchor(a0), r0);
  int p1 = g.AddProjection(g.AddAnchor(a1), r1);
  g.SetTarget(g.AddIntersection({p0, p1}));
  return g;
}

TEST(FingerprintTest, DeterministicAcrossCalls) {
  QueryGraph g = TwoIntersection(3, 1, 7, 2);
  EXPECT_EQ(CanonicalFingerprint(g), CanonicalFingerprint(g));
  EXPECT_EQ(StructureFingerprint(g), StructureFingerprint(g));
}

TEST(FingerprintTest, GroundingChangesCanonicalNotStructure) {
  QueryGraph a = TwoIntersection(3, 1, 7, 2);
  QueryGraph b = TwoIntersection(4, 1, 7, 2);
  EXPECT_NE(CanonicalFingerprint(a), CanonicalFingerprint(b));
  EXPECT_EQ(StructureFingerprint(a), StructureFingerprint(b));
}

TEST(FingerprintTest, IntersectionInputOrderIsCanonicalized) {
  QueryGraph a = TwoIntersection(3, 1, 7, 2);
  QueryGraph b = TwoIntersection(7, 2, 3, 1);  // same branches, swapped
  EXPECT_EQ(CanonicalFingerprint(a), CanonicalFingerprint(b));
}

TEST(FingerprintTest, DifferenceMinuendIsPositional) {
  QueryGraph a;
  {
    int p0 = a.AddProjection(a.AddAnchor(1), 0);
    int p1 = a.AddProjection(a.AddAnchor(2), 0);
    a.SetTarget(a.AddDifference({p0, p1}));
  }
  QueryGraph b;
  {
    int p0 = b.AddProjection(b.AddAnchor(2), 0);
    int p1 = b.AddProjection(b.AddAnchor(1), 0);
    b.SetTarget(b.AddDifference({p0, p1}));
  }
  // a \ b != b \ a.
  EXPECT_NE(CanonicalFingerprint(a), CanonicalFingerprint(b));
}

TEST(FingerprintTest, DeadNodesDoNotAffectCanonicalFingerprint) {
  QueryGraph a = TwoIntersection(3, 1, 7, 2);
  QueryGraph b = TwoIntersection(3, 1, 7, 2);
  b.AddProjection(b.AddAnchor(9), 5);  // unreachable from target
  EXPECT_EQ(CanonicalFingerprint(a), CanonicalFingerprint(b));
  // The layout fingerprint, by design, does see the extra nodes.
  EXPECT_NE(StructureFingerprint(a), StructureFingerprint(b));
}

QueryGraph UniformlyGrounded(StructureId id) {
  QueryGraph g = MakeStructure(id);
  for (int i = 0; i < g.num_nodes(); ++i) {
    QueryNode& n = g.mutable_node(i);
    if (n.op == OpType::kAnchor) n.anchor_entity = 0;
    if (n.op == OpType::kProjection) n.relation = 0;
  }
  return g;
}

TEST(FingerprintTest, DistinctStructureTemplatesAreDistinct) {
  // A spread of genuinely different structures, grounded identically, must
  // hash apart both ways.
  const std::vector<StructureId> distinct = {
      StructureId::k1p, StructureId::k2p,  StructureId::k3p,
      StructureId::k2i, StructureId::k3i,  StructureId::kIp,
      StructureId::kPi, StructureId::k2u,  StructureId::k2d,
      StructureId::k2in, StructureId::kPip};
  std::unordered_set<Fingerprint, FingerprintHash> canonical;
  std::unordered_set<Fingerprint, FingerprintHash> layout;
  for (StructureId id : distinct) {
    QueryGraph g = UniformlyGrounded(id);
    canonical.insert(CanonicalFingerprint(g));
    layout.insert(StructureFingerprint(g));
  }
  EXPECT_EQ(canonical.size(), distinct.size());
  EXPECT_EQ(layout.size(), distinct.size());
}

TEST(FingerprintTest, AliasedStructureTemplatesCollide) {
  // kP3ip and k3ipp both build p(p(3i)); with equal grounding they denote
  // the same query, and the canonical fingerprint must agree.
  QueryGraph a = UniformlyGrounded(StructureId::kP3ip);
  QueryGraph b = UniformlyGrounded(StructureId::k3ipp);
  EXPECT_EQ(CanonicalFingerprint(a), CanonicalFingerprint(b));
}

TEST(FingerprintTest, HexRendering) {
  QueryGraph g = TwoIntersection(3, 1, 7, 2);
  EXPECT_EQ(CanonicalFingerprint(g).ToHex().size(), 32u);
}

}  // namespace
}  // namespace halk::query
