#include "query/dag.h"

#include <gtest/gtest.h>

#include "query/ops.h"

namespace halk::query {
namespace {

TEST(OpTypeTest, Names) {
  EXPECT_STREQ(OpTypeName(OpType::kAnchor), "anchor");
  EXPECT_STREQ(OpTypeName(OpType::kProjection), "projection");
  EXPECT_STREQ(OpTypeName(OpType::kIntersection), "intersection");
  EXPECT_STREQ(OpTypeName(OpType::kUnion), "union");
  EXPECT_STREQ(OpTypeName(OpType::kDifference), "difference");
  EXPECT_STREQ(OpTypeName(OpType::kNegation), "negation");
}

TEST(DagTest, BuildSimpleChain) {
  QueryGraph g;
  int a = g.AddAnchor(5);
  int p = g.AddProjection(a, 2);
  g.SetTarget(p);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.target(), p);
  EXPECT_TRUE(g.Validate(/*grounded=*/true).ok());
}

TEST(DagTest, ValidateRejectsMissingTarget) {
  QueryGraph g;
  g.AddAnchor(1);
  EXPECT_FALSE(g.Validate(false).ok());
}

TEST(DagTest, ValidateRejectsUngroundedWhenRequired) {
  QueryGraph g;
  int a = g.AddAnchor();  // entity -1
  int p = g.AddProjection(a);
  g.SetTarget(p);
  EXPECT_TRUE(g.Validate(/*grounded=*/false).ok());
  EXPECT_FALSE(g.Validate(/*grounded=*/true).ok());
}

TEST(DagTest, TopologicalOrderSkipsUnreachable) {
  QueryGraph g;
  int a = g.AddAnchor(0);
  g.AddAnchor(1);  // orphan
  int p = g.AddProjection(a, 0);
  g.SetTarget(p);
  auto order = g.TopologicalOrder();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(DagTest, AnchorIdsAndHasOp) {
  QueryGraph g;
  int a1 = g.AddAnchor(0);
  int a2 = g.AddAnchor(1);
  int p1 = g.AddProjection(a1, 0);
  int p2 = g.AddProjection(a2, 1);
  int n = g.AddNegation(p2);
  g.SetTarget(g.AddIntersection({p1, n}));
  EXPECT_EQ(g.AnchorIds(), (std::vector<int>{a1, a2}));
  EXPECT_TRUE(g.HasOp(OpType::kNegation));
  EXPECT_FALSE(g.HasOp(OpType::kUnion));
}

TEST(DagTest, NumProjectionsCountsReachableEdges) {
  QueryGraph g;
  int a = g.AddAnchor(0);
  int p1 = g.AddProjection(a, 0);
  int p2 = g.AddProjection(p1, 1);
  g.SetTarget(p2);
  EXPECT_EQ(g.NumProjections(), 2);
}

TEST(DagTest, ToStringRendersStructure) {
  QueryGraph g;
  int a = g.AddAnchor(3);
  int p = g.AddProjection(a, 7);
  g.SetTarget(p);
  EXPECT_EQ(g.ToString(), "p(a3,r7)");
}

}  // namespace
}  // namespace halk::query
