#include "query/executor.h"

#include <gtest/gtest.h>

#include "query/dnf.h"

namespace halk::query {
namespace {

// Family KG:
//   anna -parent_of-> ben, cara
//   ben  -parent_of-> dave
//   anna -likes-> cara ; ben -likes-> cara ; cara -likes-> dave
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_.AddTriple("anna", "parent_of", "ben");
    g_.AddTriple("anna", "parent_of", "cara");
    g_.AddTriple("ben", "parent_of", "dave");
    g_.AddTriple("anna", "likes", "cara");
    g_.AddTriple("ben", "likes", "cara");
    g_.AddTriple("cara", "likes", "dave");
    g_.Finalize();
    anna_ = *g_.entities().Lookup("anna");
    ben_ = *g_.entities().Lookup("ben");
    cara_ = *g_.entities().Lookup("cara");
    dave_ = *g_.entities().Lookup("dave");
    parent_ = *g_.relations().Lookup("parent_of");
    likes_ = *g_.relations().Lookup("likes");
  }

  kg::KnowledgeGraph g_;
  int64_t anna_, ben_, cara_, dave_, parent_, likes_;
};

TEST_F(ExecutorTest, OneHopProjection) {
  QueryGraph q;
  q.SetTarget(q.AddProjection(q.AddAnchor(anna_), parent_));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{ben_, cara_}));
}

TEST_F(ExecutorTest, TwoHopProjection) {
  QueryGraph q;
  int a = q.AddAnchor(anna_);
  q.SetTarget(q.AddProjection(q.AddProjection(a, parent_), parent_));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{dave_}));  // grandchildren of anna
}

TEST_F(ExecutorTest, Intersection) {
  // Children of anna who are liked by ben: {cara}.
  QueryGraph q;
  int b1 = q.AddProjection(q.AddAnchor(anna_), parent_);
  int b2 = q.AddProjection(q.AddAnchor(ben_), likes_);
  q.SetTarget(q.AddIntersection({b1, b2}));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{cara_}));
}

TEST_F(ExecutorTest, UnionMergesBranches) {
  QueryGraph q;
  int b1 = q.AddProjection(q.AddAnchor(anna_), parent_);
  int b2 = q.AddProjection(q.AddAnchor(cara_), likes_);
  q.SetTarget(q.AddUnion({b1, b2}));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{ben_, cara_, dave_}));
}

TEST_F(ExecutorTest, DifferenceRemovesSubtrahends) {
  // Children of anna minus entities ben likes: {ben}.
  QueryGraph q;
  int b1 = q.AddProjection(q.AddAnchor(anna_), parent_);
  int b2 = q.AddProjection(q.AddAnchor(ben_), likes_);
  q.SetTarget(q.AddDifference({b1, b2}));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{ben_}));
}

TEST_F(ExecutorTest, NegationComplementsUniverse) {
  // NOT (children of anna) = {anna, dave}.
  QueryGraph q;
  int b = q.AddProjection(q.AddAnchor(anna_), parent_);
  q.SetTarget(q.AddNegation(b));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{anna_, dave_}));
}

TEST_F(ExecutorTest, IntersectionWithNegation2in) {
  // Liked by anna or... actually: children of anna AND NOT liked-by-ben:
  // {ben, cara} \ {cara} = {ben}.
  QueryGraph q;
  int pos = q.AddProjection(q.AddAnchor(anna_), parent_);
  int neg = q.AddNegation(q.AddProjection(q.AddAnchor(ben_), likes_));
  q.SetTarget(q.AddIntersection({pos, neg}));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<int64_t>{ben_}));
}

TEST_F(ExecutorTest, DifferenceEqualsNegationIntersection) {
  // B - C == B ∧ ¬C (Fig. 2 of the paper).
  QueryGraph qd;
  {
    int b = qd.AddProjection(qd.AddAnchor(anna_), parent_);
    int c = qd.AddProjection(qd.AddAnchor(ben_), likes_);
    qd.SetTarget(qd.AddDifference({b, c}));
  }
  QueryGraph qn;
  {
    int b = qn.AddProjection(qn.AddAnchor(anna_), parent_);
    int c = qn.AddNegation(qn.AddProjection(qn.AddAnchor(ben_), likes_));
    qn.SetTarget(qn.AddIntersection({b, c}));
  }
  auto rd = ExecuteQuery(qd, g_);
  auto rn = ExecuteQuery(qn, g_);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_EQ(*rd, *rn);
}

TEST_F(ExecutorTest, EmptyAnswerSetIsAllowed) {
  QueryGraph q;
  q.SetTarget(q.AddProjection(q.AddAnchor(dave_), parent_));
  auto r = ExecuteQuery(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(ExecutorTest, RejectsUngroundedQuery) {
  QueryGraph q;
  q.SetTarget(q.AddProjection(q.AddAnchor(), parent_));
  EXPECT_FALSE(ExecuteQuery(q, g_).ok());
}

TEST_F(ExecutorTest, RejectsOutOfRangeAnchor) {
  QueryGraph q;
  q.SetTarget(q.AddProjection(q.AddAnchor(999), parent_));
  EXPECT_FALSE(ExecuteQuery(q, g_).ok());
}

TEST_F(ExecutorTest, AllNodesResultsExposeIntermediates) {
  QueryGraph q;
  int a = q.AddAnchor(anna_);
  int p1 = q.AddProjection(a, parent_);
  int p2 = q.AddProjection(p1, parent_);
  q.SetTarget(p2);
  auto r = ExecuteQueryAllNodes(q, g_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[static_cast<size_t>(a)], (std::vector<int64_t>{anna_}));
  EXPECT_EQ((*r)[static_cast<size_t>(p1)],
            (std::vector<int64_t>{ben_, cara_}));
  EXPECT_EQ((*r)[static_cast<size_t>(p2)], (std::vector<int64_t>{dave_}));
}

TEST_F(ExecutorTest, DnfBranchesUnionToOriginalAnswers) {
  // up structure: project the union.
  QueryGraph q;
  int b1 = q.AddProjection(q.AddAnchor(anna_), parent_);
  int b2 = q.AddProjection(q.AddAnchor(anna_), likes_);
  int u = q.AddUnion({b1, b2});
  q.SetTarget(q.AddProjection(u, likes_));
  auto direct = ExecuteQuery(q, g_);
  ASSERT_TRUE(direct.ok());

  auto branches = ToDnf(q);
  ASSERT_EQ(branches.size(), 2u);
  std::set<int64_t> merged;
  for (const QueryGraph& b : branches) {
    EXPECT_FALSE(b.HasOp(OpType::kUnion) &&
                 [&] {
                   for (int id : b.TopologicalOrder()) {
                     if (b.nodes()[static_cast<size_t>(id)].op ==
                         OpType::kUnion)
                       return true;
                   }
                   return false;
                 }());
    auto r = ExecuteQuery(b, g_);
    ASSERT_TRUE(r.ok());
    merged.insert(r->begin(), r->end());
  }
  EXPECT_EQ(std::vector<int64_t>(merged.begin(), merged.end()), *direct);
}

}  // namespace
}  // namespace halk::query
