#include "query/sampler.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "query/executor.h"

namespace halk::query {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 400;
    opt.num_relations = 12;
    opt.num_triples = 3000;
    opt.seed = 11;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static kg::Dataset* dataset_;
};

kg::Dataset* SamplerTest::dataset_ = nullptr;

TEST_F(SamplerTest, GroundsEveryStructure) {
  QuerySampler sampler(&dataset_->test, 1);
  for (StructureId id : AllStructures()) {
    auto q = sampler.Sample(id);
    ASSERT_TRUE(q.ok()) << StructureName(id) << ": "
                        << q.status().ToString();
    EXPECT_TRUE(q->graph.Validate(/*grounded=*/true).ok())
        << StructureName(id);
    EXPECT_FALSE(q->answers.empty()) << StructureName(id);
  }
}

TEST_F(SamplerTest, AnswersMatchExecutorExactly) {
  QuerySampler sampler(&dataset_->test, 2);
  for (StructureId id : {StructureId::k2p, StructureId::k2i,
                         StructureId::k2d, StructureId::k2in}) {
    auto q = sampler.Sample(id);
    ASSERT_TRUE(q.ok());
    auto direct = ExecuteQuery(q->graph, dataset_->test);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(q->answers, *direct) << StructureName(id);
  }
}

TEST_F(SamplerTest, AnswersAreSortedAndUnique) {
  QuerySampler sampler(&dataset_->test, 3);
  auto q = sampler.Sample(StructureId::k2u);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(std::is_sorted(q->answers.begin(), q->answers.end()));
  EXPECT_EQ(std::adjacent_find(q->answers.begin(), q->answers.end()),
            q->answers.end());
}

TEST_F(SamplerTest, RespectsAnswerCap) {
  QuerySampler::Options opt;
  opt.max_answers = 20;
  QuerySampler sampler(&dataset_->test, 4, opt);
  for (int i = 0; i < 10; ++i) {
    auto q = sampler.Sample(StructureId::k2p);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->answers.size(), 20u);
  }
}

TEST_F(SamplerTest, SampleManyYieldsRequestedCount) {
  QuerySampler sampler(&dataset_->test, 5);
  auto qs = sampler.SampleMany(StructureId::k2i, 25);
  ASSERT_TRUE(qs.ok());
  EXPECT_EQ(qs->size(), 25u);
}

TEST_F(SamplerTest, DeterministicForSeed) {
  QuerySampler a(&dataset_->test, 6);
  QuerySampler b(&dataset_->test, 6);
  auto qa = a.Sample(StructureId::k3p);
  auto qb = b.Sample(StructureId::k3p);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa->graph.ToString(), qb->graph.ToString());
  EXPECT_EQ(qa->answers, qb->answers);
}

TEST_F(SamplerTest, SplitEasyHardPartitionsAnswers) {
  QuerySampler sampler(&dataset_->test, 7);
  int with_hard = 0;
  for (int i = 0; i < 20; ++i) {
    auto q = sampler.Sample(StructureId::k2p);
    ASSERT_TRUE(q.ok());
    SplitEasyHard(&*q, dataset_->train);
    // Partition: easy ∪ hard == answers, disjoint.
    std::vector<int64_t> merged = q->easy_answers;
    merged.insert(merged.end(), q->hard_answers.begin(),
                  q->hard_answers.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, q->answers);
    with_hard += !q->hard_answers.empty();
  }
  // Held-out edges must make at least some queries require generalization.
  EXPECT_GT(with_hard, 0);
}

TEST_F(SamplerTest, NegationQueriesCanHaveLargeAnswerSets) {
  QuerySampler sampler(&dataset_->test, 8);
  auto q = sampler.Sample(StructureId::k2in);
  ASSERT_TRUE(q.ok());
  // Complements are large; just check plausibility and executor agreement.
  EXPECT_GT(q->answers.size(), 0u);
}

}  // namespace
}  // namespace halk::query
