#include "query/structures.h"

#include <gtest/gtest.h>

namespace halk::query {
namespace {

TEST(StructuresTest, NamesRoundTrip) {
  for (StructureId id : AllStructures()) {
    auto parsed = StructureFromName(StructureName(id));
    ASSERT_TRUE(parsed.ok()) << StructureName(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(StructureFromName("bogus").ok());
}

TEST(StructuresTest, AllTemplatesValidate) {
  for (StructureId id : AllStructures()) {
    QueryGraph g = MakeStructure(id);
    EXPECT_TRUE(g.Validate(/*grounded=*/false).ok()) << StructureName(id);
    EXPECT_FALSE(g.Validate(/*grounded=*/true).ok()) << StructureName(id);
  }
}

TEST(StructuresTest, ProjectionCountsMatchQuerySizes) {
  // The Table VI "query size" axis.
  EXPECT_EQ(MakeStructure(StructureId::k1p).NumProjections(), 1);
  EXPECT_EQ(MakeStructure(StructureId::k2p).NumProjections(), 2);
  EXPECT_EQ(MakeStructure(StructureId::kPi).NumProjections(), 3);
  EXPECT_EQ(MakeStructure(StructureId::kPip).NumProjections(), 4);
  EXPECT_EQ(MakeStructure(StructureId::kP3ip).NumProjections(), 5);
}

TEST(StructuresTest, OperatorInventory) {
  EXPECT_TRUE(MakeStructure(StructureId::k2in).HasOp(OpType::kNegation));
  EXPECT_TRUE(MakeStructure(StructureId::k2d).HasOp(OpType::kDifference));
  EXPECT_TRUE(MakeStructure(StructureId::k2u).HasOp(OpType::kUnion));
  EXPECT_FALSE(MakeStructure(StructureId::k3p).HasOp(OpType::kIntersection));
  EXPECT_TRUE(MakeStructure(StructureId::k3ippd).HasOp(OpType::kDifference));
  EXPECT_TRUE(MakeStructure(StructureId::k3ippu).HasOp(OpType::kUnion));
}

TEST(StructuresTest, AnchorCounts) {
  EXPECT_EQ(MakeStructure(StructureId::k1p).AnchorIds().size(), 1u);
  EXPECT_EQ(MakeStructure(StructureId::k3i).AnchorIds().size(), 3u);
  EXPECT_EQ(MakeStructure(StructureId::k3d).AnchorIds().size(), 3u);
  EXPECT_EQ(MakeStructure(StructureId::k3ippu).AnchorIds().size(), 4u);
}

TEST(StructuresTest, CategoryListsAreConsistent) {
  // Train + eval-only covers the 12 EPFO/difference structures of Tables
  // I-II (training also includes the negation structures).
  auto train = TrainStructures();
  auto eval_only = EvalOnlyStructures();
  auto table12 = EpfoDifferenceStructures();
  for (StructureId id : table12) {
    const bool in_train =
        std::find(train.begin(), train.end(), id) != train.end();
    const bool in_eval =
        std::find(eval_only.begin(), eval_only.end(), id) != eval_only.end();
    EXPECT_TRUE(in_train != in_eval) << StructureName(id);
  }
  EXPECT_EQ(NegationStructures().size(), 4u);
  EXPECT_EQ(PruningStructures().size(), 6u);
}

}  // namespace
}  // namespace halk::query
