// Property-based tests of logical-query semantics on randomly grounded
// queries: algebraic identities that must hold exactly for the symbolic
// executor, for any query and graph.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "query/dnf.h"
#include "query/executor.h"
#include "query/sampler.h"

namespace halk::query {
namespace {

class QueryPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 250;
    opt.num_relations = 10;
    opt.num_triples = 1800;
    opt.seed = 1234;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static kg::Dataset* dataset_;
};

kg::Dataset* QueryPropertyTest::dataset_ = nullptr;

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// B − C  ==  B ∧ ¬C  (the identity behind Fig. 2 of the paper).
TEST_P(QueryPropertyTest, DifferenceEqualsIntersectWithNegation) {
  QuerySampler sampler(&dataset_->test, GetParam());
  auto q = sampler.Sample(StructureId::k2d);
  ASSERT_TRUE(q.ok());
  // Rebuild as b ∧ ¬c.
  const auto& nodes = q->graph.nodes();
  const QueryNode& diff = nodes[static_cast<size_t>(q->graph.target())];
  QueryGraph alt;
  const QueryNode& b_proj = nodes[static_cast<size_t>(diff.inputs[0])];
  const QueryNode& c_proj = nodes[static_cast<size_t>(diff.inputs[1])];
  int b = alt.AddProjection(
      alt.AddAnchor(nodes[static_cast<size_t>(b_proj.inputs[0])].anchor_entity),
      b_proj.relation);
  int c = alt.AddProjection(
      alt.AddAnchor(nodes[static_cast<size_t>(c_proj.inputs[0])].anchor_entity),
      c_proj.relation);
  alt.SetTarget(alt.AddIntersection({b, alt.AddNegation(c)}));
  auto rd = ExecuteQuery(q->graph, dataset_->test);
  auto rn = ExecuteQuery(alt, dataset_->test);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_EQ(*rd, *rn);
}

// Double negation is the identity.
TEST_P(QueryPropertyTest, DoubleNegationIdentity) {
  QuerySampler sampler(&dataset_->test, GetParam() + 100);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  QueryGraph wrapped = q->graph;
  wrapped.SetTarget(wrapped.AddNegation(wrapped.AddNegation(q->graph.target())));
  auto base = ExecuteQuery(q->graph, dataset_->test);
  auto twice = ExecuteQuery(wrapped, dataset_->test);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*base, *twice);
}

// A ∧ B ⊆ A  and  A ∧ B ⊆ B.
TEST_P(QueryPropertyTest, IntersectionIsSubsetOfInputs) {
  QuerySampler sampler(&dataset_->test, GetParam() + 200);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  auto all = ExecuteQueryAllNodes(q->graph, dataset_->test);
  ASSERT_TRUE(all.ok());
  const QueryNode& target =
      q->graph.nodes()[static_cast<size_t>(q->graph.target())];
  const auto& result = (*all)[static_cast<size_t>(q->graph.target())];
  for (int input : target.inputs) {
    const auto& in = (*all)[static_cast<size_t>(input)];
    EXPECT_TRUE(std::includes(in.begin(), in.end(), result.begin(),
                              result.end()));
  }
}

// A ⊆ A ∨ B and B ⊆ A ∨ B.
TEST_P(QueryPropertyTest, UnionIsSupersetOfInputs) {
  QuerySampler sampler(&dataset_->test, GetParam() + 300);
  auto q = sampler.Sample(StructureId::k2u);
  ASSERT_TRUE(q.ok());
  auto all = ExecuteQueryAllNodes(q->graph, dataset_->test);
  ASSERT_TRUE(all.ok());
  const QueryNode& target =
      q->graph.nodes()[static_cast<size_t>(q->graph.target())];
  const auto& result = (*all)[static_cast<size_t>(q->graph.target())];
  for (int input : target.inputs) {
    const auto& in = (*all)[static_cast<size_t>(input)];
    EXPECT_TRUE(std::includes(result.begin(), result.end(), in.begin(),
                              in.end()));
  }
}

// De Morgan: ¬(A ∨ B) == ¬A ∧ ¬B.
TEST_P(QueryPropertyTest, DeMorgan) {
  QuerySampler sampler(&dataset_->test, GetParam() + 400);
  auto q = sampler.Sample(StructureId::k2u);
  ASSERT_TRUE(q.ok());
  const auto& nodes = q->graph.nodes();
  const QueryNode& u = nodes[static_cast<size_t>(q->graph.target())];

  QueryGraph lhs = q->graph;
  lhs.SetTarget(lhs.AddNegation(q->graph.target()));

  QueryGraph rhs;
  std::vector<int> negs;
  for (int input : u.inputs) {
    const QueryNode& p = nodes[static_cast<size_t>(input)];
    int a = rhs.AddAnchor(
        nodes[static_cast<size_t>(p.inputs[0])].anchor_entity);
    negs.push_back(rhs.AddNegation(rhs.AddProjection(a, p.relation)));
  }
  rhs.SetTarget(rhs.AddIntersection(negs));

  auto rl = ExecuteQuery(lhs, dataset_->test);
  auto rr = ExecuteQuery(rhs, dataset_->test);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(*rl, *rr);
}

// DNF branches always union back to the original answers, for every
// union-bearing structure.
TEST_P(QueryPropertyTest, DnfPreservesSemantics) {
  QuerySampler sampler(&dataset_->test, GetParam() + 500);
  for (StructureId s : {StructureId::k2u, StructureId::kUp,
                        StructureId::k2ippu, StructureId::k3ippu}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << StructureName(s);
    auto direct = ExecuteQuery(q->graph, dataset_->test);
    ASSERT_TRUE(direct.ok());
    std::set<int64_t> merged;
    for (const QueryGraph& branch : ToDnf(q->graph)) {
      auto r = ExecuteQuery(branch, dataset_->test);
      ASSERT_TRUE(r.ok());
      merged.insert(r->begin(), r->end());
    }
    EXPECT_EQ(std::vector<int64_t>(merged.begin(), merged.end()), *direct)
        << StructureName(s);
  }
}

// Monotonicity under graph growth: EPFO (negation/difference-free)
// answers never shrink when edges are added (train ⊆ test).
TEST_P(QueryPropertyTest, EpfoMonotoneUnderGraphGrowth) {
  QuerySampler sampler(&dataset_->train, GetParam() + 600);
  for (StructureId s :
       {StructureId::k2p, StructureId::k2i, StructureId::k2u,
        StructureId::kIp}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << StructureName(s);
    auto small = ExecuteQuery(q->graph, dataset_->train);
    auto big = ExecuteQuery(q->graph, dataset_->test);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(big.ok());
    EXPECT_TRUE(std::includes(big->begin(), big->end(), small->begin(),
                              small->end()))
        << StructureName(s);
  }
}

// The matcher agrees with the executor on every structure (same graph).
TEST_P(QueryPropertyTest, HardAnswersNotDerivableOnSmallerGraph) {
  QuerySampler sampler(&dataset_->test, GetParam() + 700);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  SplitEasyHard(&*q, dataset_->train);
  auto small = ExecuteQuery(q->graph, dataset_->train);
  ASSERT_TRUE(small.ok());
  for (int64_t hard : q->hard_answers) {
    EXPECT_FALSE(std::binary_search(small->begin(), small->end(), hard));
  }
  for (int64_t easy : q->easy_answers) {
    EXPECT_TRUE(std::binary_search(small->begin(), small->end(), easy));
  }
}

}  // namespace
}  // namespace halk::query
