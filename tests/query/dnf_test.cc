#include "query/dnf.h"

#include <gtest/gtest.h>

#include "query/structures.h"

namespace halk::query {
namespace {

bool ReachableUnion(const QueryGraph& g) {
  for (int id : g.TopologicalOrder()) {
    if (g.nodes()[static_cast<size_t>(id)].op == OpType::kUnion) return true;
  }
  return false;
}

TEST(DnfTest, UnionFreeQueryIsSingleBranch) {
  QueryGraph g = MakeStructure(StructureId::k3p);
  auto branches = ToDnf(g);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].ToString(), g.ToString());
}

TEST(DnfTest, TwoUBecomesTwoBranches) {
  QueryGraph g = MakeStructure(StructureId::k2u);
  auto branches = ToDnf(g);
  ASSERT_EQ(branches.size(), 2u);
  for (const auto& b : branches) {
    EXPECT_FALSE(ReachableUnion(b));
    EXPECT_TRUE(b.Validate(/*grounded=*/false).ok());
  }
}

TEST(DnfTest, UpKeepsTrailingProjectionPerBranch) {
  QueryGraph g = MakeStructure(StructureId::kUp);
  auto branches = ToDnf(g);
  ASSERT_EQ(branches.size(), 2u);
  for (const auto& b : branches) {
    EXPECT_FALSE(ReachableUnion(b));
    // Each branch is a 2p chain: anchor -> p -> p.
    EXPECT_EQ(b.NumProjections(), 2);
  }
}

TEST(DnfTest, NestedUnionsMultiply) {
  // u(u(1p,1p), 1p) -> 3 branches.
  QueryGraph g;
  int p1 = g.AddProjection(g.AddAnchor(), -1);
  int p2 = g.AddProjection(g.AddAnchor(), -1);
  int p3 = g.AddProjection(g.AddAnchor(), -1);
  int u1 = g.AddUnion({p1, p2});
  g.SetTarget(g.AddUnion({u1, p3}));
  auto branches = ToDnf(g);
  EXPECT_EQ(branches.size(), 3u);
}

TEST(DnfTest, DifferenceMinuendUnionDistributes) {
  // d(u(b1,b2), c) -> (b1-c), (b2-c).
  QueryGraph g;
  int b1 = g.AddProjection(g.AddAnchor(), -1);
  int b2 = g.AddProjection(g.AddAnchor(), -1);
  int c = g.AddProjection(g.AddAnchor(), -1);
  int u = g.AddUnion({b1, b2});
  g.SetTarget(g.AddDifference({u, c}));
  auto branches = ToDnf(g);
  ASSERT_EQ(branches.size(), 2u);
  for (const auto& b : branches) EXPECT_FALSE(ReachableUnion(b));
}

TEST(DnfDeathTest, UnionUnderNegationRejected) {
  QueryGraph g;
  int b1 = g.AddProjection(g.AddAnchor(), -1);
  int b2 = g.AddProjection(g.AddAnchor(), -1);
  int u = g.AddUnion({b1, b2});
  g.SetTarget(g.AddNegation(u));
  EXPECT_DEATH(ToDnf(g), "union inside");
}

TEST(DnfDeathTest, UnionInSubtrahendRejected) {
  QueryGraph g;
  int m = g.AddProjection(g.AddAnchor(), -1);
  int b1 = g.AddProjection(g.AddAnchor(), -1);
  int b2 = g.AddProjection(g.AddAnchor(), -1);
  int u = g.AddUnion({b1, b2});
  g.SetTarget(g.AddDifference({m, u}));
  EXPECT_DEATH(ToDnf(g), "union inside");
}

TEST(DnfTest, PruningUnionStructuresExpand) {
  auto branches2 = ToDnf(MakeStructure(StructureId::k2ippu));
  EXPECT_EQ(branches2.size(), 2u);
  auto branches3 = ToDnf(MakeStructure(StructureId::k3ippu));
  EXPECT_EQ(branches3.size(), 2u);
}

}  // namespace
}  // namespace halk::query
