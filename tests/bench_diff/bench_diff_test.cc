// halk_bench_diff: throughput keys gate on tolerance, everything else is
// informational, schema drift is noted, and malformed/mismatched inputs
// are errors rather than passes.

#include <string>

#include <gtest/gtest.h>

#include "obs/journal.h"
#include "tools/bench_diff/bench_diff.h"

namespace halk::benchdiff {
namespace {

constexpr char kBaseline[] =
    "{\"bench\":\"serving_throughput\",\"git_sha\":\"abc1234\","
    "\"qps\":1000.0,\"batched_qps\":2000.0,\"qps_cached\":5000.0,"
    "\"p99_ms\":8.0,\"speedup_batched\":2.0}";

std::string Fresh(double qps, double batched, double cached) {
  return "{\"bench\":\"serving_throughput\",\"git_sha\":\"def5678\","
         "\"qps\":" + std::to_string(qps) +
         ",\"batched_qps\":" + std::to_string(batched) +
         ",\"qps_cached\":" + std::to_string(cached) +
         ",\"p99_ms\":20.0,\"speedup_batched\":1.0}";
}

TEST(IsThroughputKeyTest, MatchesQpsShapesOnly) {
  EXPECT_TRUE(IsThroughputKey("qps"));
  EXPECT_TRUE(IsThroughputKey("qps_cached"));
  EXPECT_TRUE(IsThroughputKey("batched_qps"));
  EXPECT_FALSE(IsThroughputKey("p99_ms"));
  EXPECT_FALSE(IsThroughputKey("speedup_batched"));
  EXPECT_FALSE(IsThroughputKey("qpsx"));
  EXPECT_FALSE(IsThroughputKey("steps"));
}

TEST(IsLatencyQuantileKeyTest, MatchesUnderscoreDelimitedQuantileTokens) {
  EXPECT_TRUE(IsLatencyQuantileKey("p99_ms"));
  EXPECT_TRUE(IsLatencyQuantileKey("p50_ms"));
  EXPECT_TRUE(IsLatencyQuantileKey("batched_p95_ms"));
  EXPECT_TRUE(IsLatencyQuantileKey("diverse_p99_us"));
  EXPECT_FALSE(IsLatencyQuantileKey("p999_ms"));   // not a known quantile
  EXPECT_FALSE(IsLatencyQuantileKey("up50_ms"));   // p50 not a whole token
  EXPECT_FALSE(IsLatencyQuantileKey("qps"));
  EXPECT_FALSE(IsLatencyQuantileKey("speedup_batched"));
}

TEST(BenchDiffTest, LatencyGateIsOffByDefault) {
  // p99_ms goes 8 -> 20 (+150%) but without --latency-tolerance the key
  // stays informational, exactly as before the gate existed.
  auto report = DiffBenchJson(kBaseline, Fresh(1000.0, 2000.0, 5000.0),
                              Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->ToString();
}

TEST(BenchDiffTest, LatencySlowdownBeyondToleranceFails) {
  Options options;
  options.latency_tolerance = 1.0;  // p99 may at most double
  auto report =
      DiffBenchJson(kBaseline, Fresh(1000.0, 2000.0, 5000.0), options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);  // 8 -> 20 is +150%
  EXPECT_NE(report->ToString().find("FAIL p99_ms"), std::string::npos)
      << report->ToString();

  options.latency_tolerance = 2.0;  // +150% now inside the bound
  report = DiffBenchJson(kBaseline, Fresh(1000.0, 2000.0, 5000.0), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->ToString();
}

TEST(BenchDiffTest, LatencyImprovementNeverFails) {
  // The gate is one-sided: a quantile collapsing far beyond the tolerance
  // in the *fast* direction is a win, not a workload-drift signal.
  const std::string fast =
      "{\"bench\":\"serving_throughput\",\"qps\":1000.0,"
      "\"batched_qps\":2000.0,\"qps_cached\":5000.0,\"p99_ms\":0.5,"
      "\"speedup_batched\":2.0}";
  Options options;
  options.latency_tolerance = 0.1;
  auto report = DiffBenchJson(kBaseline, fast, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->ToString();
}

TEST(BenchDiffTest, WithinTolerancePasses) {
  auto report = DiffBenchJson(kBaseline, Fresh(900.0, 2400.0, 4200.0),
                              Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->ToString();
  // Latency and speedup moved wildly but are informational only.
  EXPECT_NE(report->ToString().find("PASS"), std::string::npos);
}

TEST(BenchDiffTest, ThroughputRegressionBeyondToleranceFails) {
  auto report = DiffBenchJson(kBaseline, Fresh(700.0, 2000.0, 5000.0),
                              Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);
  const std::string text = report->ToString();
  EXPECT_NE(text.find("FAIL qps"), std::string::npos) << text;
  EXPECT_NE(text.find("-30.0%"), std::string::npos) << text;
}

TEST(BenchDiffTest, ImprovementBeyondToleranceAlsoFails) {
  // A "too good" number usually means the workload silently shrank; the
  // gate is symmetric so that regression hides nowhere.
  auto report = DiffBenchJson(kBaseline, Fresh(1000.0, 2000.0, 9000.0),
                              Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);
}

TEST(BenchDiffTest, TightenedToleranceApplies) {
  Options tight;
  tight.tolerance = 0.02;
  auto report =
      DiffBenchJson(kBaseline, Fresh(960.0, 2000.0, 5000.0), tight);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);  // -4% > 2%
  Options loose;
  loose.tolerance = 0.05;
  report = DiffBenchJson(kBaseline, Fresh(960.0, 2000.0, 5000.0), loose);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok);
}

TEST(BenchDiffTest, MissingThroughputKeyIsNotedAndOptionallyFatal) {
  const std::string fresh_missing =
      "{\"bench\":\"serving_throughput\",\"qps\":1000.0,"
      "\"qps_cached\":5000.0,\"p99_ms\":8.0}";
  auto report = DiffBenchJson(kBaseline, fresh_missing, Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok);  // missing keys are notes by default
  bool noted = false;
  for (const std::string& note : report->notes) {
    noted = noted || note.find("batched_qps") != std::string::npos;
  }
  EXPECT_TRUE(noted);

  Options strict;
  strict.fail_on_missing = true;
  report = DiffBenchJson(kBaseline, fresh_missing, strict);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);
}

TEST(BenchDiffTest, NewKeysInFreshRunAreNotes) {
  const std::string fresh =
      "{\"bench\":\"serving_throughput\",\"qps\":1000.0,"
      "\"batched_qps\":2000.0,\"qps_cached\":5000.0,\"p99_ms\":8.0,"
      "\"speedup_batched\":2.0,\"brand_new_metric\":1.0}";
  auto report = DiffBenchJson(kBaseline, fresh, Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok);
  bool noted = false;
  for (const std::string& note : report->notes) {
    noted = noted || note.find("brand_new_metric") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiffTest, DifferentBenchNamesAreAnError) {
  const std::string other = "{\"bench\":\"shard_scaling\",\"qps\":1000.0}";
  auto report = DiffBenchJson(kBaseline, other, Options{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchDiffTest, MalformedInputIsAParseError) {
  auto report = DiffBenchJson("not json", kBaseline, Options{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  report = DiffBenchJson(kBaseline, "{\"bench\":\"x\",\"qps\":[1]}",
                         Options{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  report = DiffBenchJson("{\"qps\":1.0}", "{\"qps\":1.0}", Options{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistoryRecordTest, CarriesProvenanceVerdictAndDeltas) {
  const std::string fresh =
      "{\"bench\":\"serving_throughput\",\"git_sha\":\"def5678\","
      "\"timestamp\":\"2026-08-09T12:00:00Z\",\"qps\":1500.0,"
      "\"batched_qps\":2000.0,\"qps_cached\":5000.0,\"p99_ms\":8.0,"
      "\"speedup_batched\":2.0}";
  auto report = DiffBenchJson(kBaseline, fresh, Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);  // qps +50% breaks the ±25% default gate

  auto record = HistoryRecord(fresh, *report);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  // The record is itself one parseable flat JSONL line.
  auto parsed = obs::ParseJsonLine(*record);
  ASSERT_TRUE(parsed.ok()) << *record;
  EXPECT_EQ(obs::FindKey(*parsed, "record")->string_value, "bench_diff");
  EXPECT_EQ(obs::FindKey(*parsed, "bench")->string_value,
            "serving_throughput");
  EXPECT_EQ(obs::FindKey(*parsed, "git_sha")->string_value, "def5678");
  EXPECT_EQ(obs::FindKey(*parsed, "timestamp")->string_value,
            "2026-08-09T12:00:00Z");
  EXPECT_FALSE(obs::FindKey(*parsed, "ok")->bool_value);
  ASSERT_NE(obs::FindKey(*parsed, "d_qps"), nullptr);
  EXPECT_NEAR(obs::FindKey(*parsed, "d_qps")->number, 0.5, 1e-12);
  ASSERT_NE(obs::FindKey(*parsed, "d_batched_qps"), nullptr);
  EXPECT_NEAR(obs::FindKey(*parsed, "d_batched_qps")->number, 0.0, 1e-12);
}

TEST(HistoryRecordTest, MissingProvenanceRendersEmptyStrings) {
  const std::string fresh = "{\"bench\":\"b\",\"qps\":100.0}";
  auto report =
      DiffBenchJson("{\"bench\":\"b\",\"qps\":100.0}", fresh, Options{});
  ASSERT_TRUE(report.ok());
  auto record = HistoryRecord(fresh, *report);
  ASSERT_TRUE(record.ok());
  auto parsed = obs::ParseJsonLine(*record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(obs::FindKey(*parsed, "git_sha")->string_value, "");
  EXPECT_EQ(obs::FindKey(*parsed, "timestamp")->string_value, "");
  EXPECT_TRUE(obs::FindKey(*parsed, "ok")->bool_value);
}

TEST(HistoryRecordTest, NamelessFreshRunIsAnError) {
  Report report;
  auto record = HistoryRecord("{\"qps\":1.0}", report);
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(HistoryRecord("not json", report).ok());
}

TEST(BenchDiffTest, ZeroBaselineOnlyFailsWhenFreshIsNonZero) {
  const std::string zero_base = "{\"bench\":\"b\",\"qps\":0.0}";
  auto report = DiffBenchJson(zero_base, "{\"bench\":\"b\",\"qps\":0.0}",
                              Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok);
  report = DiffBenchJson(zero_base, "{\"bench\":\"b\",\"qps\":10.0}",
                         Options{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok);
}

}  // namespace
}  // namespace halk::benchdiff
