// Randomized planner-equivalence suite: the served planner path must be
// *bit*-identical to per-branch Evaluator::TopK — same entities, same
// float distances — across every query structure, for duplicate-subtree
// micro-batches, and on subtree-cache-warm as well as cold runs. Every
// comparison below is exact (EXPECT_EQ on float vectors).
#include <cstdint>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/topk.h"
#include "kg/groups.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/server.h"

namespace halk::serving {
namespace {

using query::StructureId;

class PlannerEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 47;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(9);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 3;
    model_ = new core::HalkModel(config, grouping_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete grouping_;
    delete dataset_;
    model_ = nullptr;
    grouping_ = nullptr;
    dataset_ = nullptr;
  }

  /// Reference ranking straight off the evaluator's exhaustive scores.
  static std::vector<core::ScoredEntity> Reference(
      const query::QueryGraph& query, int64_t k) {
    core::Evaluator evaluator(model_);
    return core::TopKFromDistances(evaluator.ScoreAllEntities(query), k);
  }

  static void ExpectBitIdentical(const TopKAnswer& served,
                                 const query::QueryGraph& query, int64_t k) {
    const std::vector<core::ScoredEntity> expected = Reference(query, k);
    ASSERT_EQ(served.entities.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(served.entities[i], expected[i].entity) << "rank " << i;
      EXPECT_EQ(served.distances[i], expected[i].distance) << "rank " << i;
    }
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
  static core::HalkModel* model_;
};

kg::Dataset* PlannerEquivalenceTest::dataset_ = nullptr;
kg::NodeGrouping* PlannerEquivalenceTest::grouping_ = nullptr;
core::HalkModel* PlannerEquivalenceTest::model_ = nullptr;

TEST_F(PlannerEquivalenceTest, BitIdenticalToEvaluatorAcrossAllStructures) {
  ServerOptions options;
  options.num_workers = 2;
  options.enable_cache = false;  // force the planner path on every answer
  QueryServer server(model_, &dataset_->train, options);
  core::Evaluator evaluator(model_);
  query::QuerySampler sampler(&dataset_->train, 61);
  for (StructureId s : query::AllStructures()) {
    auto queries = sampler.SampleMany(s, 3);
    ASSERT_TRUE(queries.ok()) << query::StructureName(s);
    for (const query::GroundedQuery& q : *queries) {
      Result<TopKAnswer> served = server.Answer(q.graph, 10);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      EXPECT_EQ(served->entities, evaluator.TopK(q.graph, 10))
          << query::StructureName(s);
      ExpectBitIdentical(*served, q.graph, 10);
    }
  }
  EXPECT_GT(server.metrics()->CounterValue("plan.requests"), 0);
  EXPECT_EQ(server.metrics()->CounterValue("plan.fallback"), 0);
}

TEST_F(PlannerEquivalenceTest, PlannerAndLegacyPathsAgreeBitExactly) {
  ServerOptions planned;
  planned.num_workers = 2;
  planned.enable_cache = false;
  ServerOptions legacy = planned;
  legacy.use_planner = false;
  QueryServer with_planner(model_, &dataset_->train, planned);
  QueryServer without_planner(model_, &dataset_->train, legacy);
  query::QuerySampler sampler(&dataset_->train, 67);
  for (StructureId s : query::AllStructures()) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << query::StructureName(s);
    Result<TopKAnswer> a = with_planner.Answer(q->graph, 12);
    Result<TopKAnswer> b = without_planner.Answer(q->graph, 12);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->entities, b->entities) << query::StructureName(s);
    EXPECT_EQ(a->distances, b->distances) << query::StructureName(s);
  }
  EXPECT_EQ(with_planner.metrics()->CounterValue("plan.fallback"), 0);
  EXPECT_EQ(without_planner.metrics()->CounterValue("plan.requests"), 0);
}

TEST_F(PlannerEquivalenceTest, DuplicateSubtreeBatchesStayBitIdentical) {
  // A micro-batch hand-built from a shared subtree library: every query
  // extends the same 1p/2p prefixes, so the planner merges aggressively
  // across requests — and each answer must still match its own solo
  // evaluation.
  ServerOptions options;
  options.num_workers = 1;  // one worker => whole batch in one chunk
  options.max_batch_size = 16;
  options.batch_linger = std::chrono::microseconds(20000);
  options.enable_cache = false;
  QueryServer server(model_, &dataset_->train, options);

  std::vector<query::QueryGraph> queries;
  for (int64_t tail_relation = 0; tail_relation < 4; ++tail_relation) {
    // p(p(a7, r2), tail) — all four share the inner hop.
    query::QueryGraph g;
    g.SetTarget(g.AddProjection(
        g.AddProjection(g.AddAnchor(7), 2), tail_relation));
    queries.push_back(g);
    // i(p(a7, r2), p(a9, tail)) — intersections sharing the same hop.
    query::QueryGraph h;
    int shared = h.AddProjection(h.AddAnchor(7), 2);
    int other = h.AddProjection(h.AddAnchor(9), tail_relation);
    h.SetTarget(h.AddIntersection({shared, other}));
    queries.push_back(h);
  }
  // Exact duplicates in the same batch.
  queries.push_back(queries[0]);
  queries.push_back(queries[1]);

  std::vector<std::future<Result<TopKAnswer>>> futures;
  for (const query::QueryGraph& g : queries) {
    auto submitted = server.Submit(g, 10);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<TopKAnswer> served = futures[i].get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectBitIdentical(*served, queries[i], 10);
  }
  // The shared prefix must actually have been merged.
  const int64_t total = server.metrics()->CounterValue("plan.nodes");
  const int64_t unique =
      server.metrics()->CounterValue("plan.unique_nodes");
  EXPECT_LT(unique, total);
}

TEST_F(PlannerEquivalenceTest, CacheWarmRunsMatchColdRuns) {
  ServerOptions options;
  options.num_workers = 1;
  options.enable_cache = false;  // isolate the *subtree* cache
  QueryServer server(model_, &dataset_->train, options);
  ASSERT_NE(server.subtree_cache(), nullptr);
  query::QuerySampler sampler(&dataset_->train, 71);

  std::vector<query::GroundedQuery> queries;
  for (StructureId s : {StructureId::k2p, StructureId::k2i,
                        StructureId::kPip, StructureId::k2ipp}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }

  std::vector<TopKAnswer> cold;
  for (const query::GroundedQuery& q : queries) {
    Result<TopKAnswer> served = server.Answer(q.graph, 10);
    ASSERT_TRUE(served.ok());
    cold.push_back(*served);
  }
  EXPECT_GT(server.subtree_cache()->size(), 0u);

  for (size_t i = 0; i < queries.size(); ++i) {
    Result<TopKAnswer> warm = server.Answer(queries[i].graph, 10);
    ASSERT_TRUE(warm.ok());
    EXPECT_FALSE(warm->from_cache);  // answer cache is off
    EXPECT_EQ(warm->entities, cold[i].entities);
    EXPECT_EQ(warm->distances, cold[i].distances);
    ExpectBitIdentical(*warm, queries[i].graph, 10);
  }
  EXPECT_GT(server.metrics()->CounterValue("plan.subtree_cache_hits"), 0);

  // Invalidation keeps answers bit-identical, just slower.
  for (int64_t r = 0; r < dataset_->train.num_relations(); ++r) {
    server.subtree_cache()->InvalidateRelation(r);
  }
  EXPECT_EQ(server.subtree_cache()->size(), 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<TopKAnswer> again = server.Answer(queries[i].graph, 10);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->entities, cold[i].entities);
    EXPECT_EQ(again->distances, cold[i].distances);
  }
}

TEST_F(PlannerEquivalenceTest, ShardedPlannerPathMatchesEvaluator) {
  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 3;
  options.enable_cache = false;
  QueryServer server(model_, &dataset_->train, options);
  query::QuerySampler sampler(&dataset_->train, 83);
  for (StructureId s : {StructureId::k2p, StructureId::k2u,
                        StructureId::k2in, StructureId::k3ipp}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok());
    Result<TopKAnswer> served = server.Answer(q->graph, 10);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->coverage, 1.0);
    ExpectBitIdentical(*served, q->graph, 10);
  }
}

TEST_F(PlannerEquivalenceTest, FeedbackKeepsAnswersBitIdentical) {
  // Cardinality feedback may only reorder evaluation *within* a depth
  // level; rankings must stay bit-identical to the evaluator. The same
  // workload runs twice — the first pass populates the stats store with
  // sampled actuals, the second plans with EWMA-overridden sched_rows —
  // and both passes are checked exactly.
  ServerOptions options;
  options.num_workers = 2;
  options.enable_cache = false;  // force the planner path on every answer
  options.use_feedback = true;
  options.feedback_min_samples = 1;  // every repeat consults the store
  QueryServer server(model_, &dataset_->train, options);
  ASSERT_NE(server.query_stats(), nullptr);
  for (int pass = 0; pass < 2; ++pass) {
    // Re-seeded per pass so both passes serve the *same* queries.
    query::QuerySampler replay(&dataset_->train, 97);
    for (StructureId s : query::AllStructures()) {
      auto queries = replay.SampleMany(s, 2);
      ASSERT_TRUE(queries.ok()) << query::StructureName(s);
      for (const query::GroundedQuery& q : *queries) {
        Result<TopKAnswer> served = server.Answer(q.graph, 10);
        ASSERT_TRUE(served.ok()) << served.status().ToString();
        ExpectBitIdentical(*served, q.graph, 10);
      }
    }
  }
  // The second pass actually consulted feedback: the store accumulated
  // per-subtree cardinalities on the first.
  EXPECT_GT(server.query_stats()->feedback_size(), 0u);
  EXPECT_EQ(server.metrics()->CounterValue("plan.fallback"), 0);
}

TEST_F(PlannerEquivalenceTest, ExplainDescribesTheServedPlan) {
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(model_, &dataset_->train, options);
  query::QuerySampler sampler(&dataset_->train, 89);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  Result<std::string> text = server.Explain(q->graph);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("plan:"), std::string::npos);
  EXPECT_NE(text->find("intersection"), std::string::npos);
  EXPECT_NE(text->find("rows~"), std::string::npos);

  // After serving the query its subtrees are cached and explain says so.
  ASSERT_TRUE(server.Answer(q->graph, 5).ok());
  Result<std::string> warm = server.Explain(q->graph);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find(" cached"), std::string::npos);

  ServerOptions off = options;
  off.use_planner = false;
  QueryServer legacy(model_, &dataset_->train, off);
  EXPECT_FALSE(legacy.Explain(q->graph).ok());
}

}  // namespace
}  // namespace halk::serving
