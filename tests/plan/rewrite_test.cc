// Ported from tests/query/optimizer_test.cc when the heuristic pass moved
// into the planner (plan/rewrite.h): the same rewrites must hold when
// requested through the planner path (PlannerOptions::apply_rewrites),
// which plan_test.cc covers at the plan level.
#include "plan/rewrite.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "query/executor.h"
#include "query/sampler.h"
#include "query/structures.h"

namespace halk::plan {
namespace {

using query::OpType;
using query::QueryGraph;
using query::QueryNode;
using query::StructureId;

class RewriteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 200;
    opt.num_relations = 8;
    opt.num_triples = 1400;
    opt.seed = 71;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static kg::Dataset* dataset_;
};

kg::Dataset* RewriteTest::dataset_ = nullptr;

TEST_F(RewriteTest, DoubleNegationEliminated) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.SetTarget(g.AddNegation(g.AddNegation(p)));
  QueryGraph n = RewriteQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  EXPECT_EQ(n.ToString(), "p(a1,r0)");
}

TEST_F(RewriteTest, NestedIntersectionsFlattened) {
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddIntersection({g.AddIntersection({a, b}), c}));
  QueryGraph n = RewriteQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kIntersection);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(RewriteTest, NestedUnionsFlattened) {
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddUnion({g.AddUnion({a, b}), c}));
  QueryGraph n = RewriteQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kUnion);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(RewriteTest, DifferenceMinuendFlattened) {
  // D(D(a, b), c) -> D(a, b, c).
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int c = g.AddProjection(g.AddAnchor(3), 2);
  g.SetTarget(g.AddDifference({g.AddDifference({a, b}), c}));
  QueryGraph n = RewriteQuery(g);
  const QueryNode& target = n.nodes()[static_cast<size_t>(n.target())];
  EXPECT_EQ(target.op, OpType::kDifference);
  EXPECT_EQ(target.inputs.size(), 3u);
}

TEST_F(RewriteTest, IntermediateNegationBecomesDifference) {
  // p(i(a, ¬b)) — the negation is intermediate, so the paper's preference
  // rewrites it into a difference.
  QueryGraph g;
  int a = g.AddProjection(g.AddAnchor(1), 0);
  int b = g.AddProjection(g.AddAnchor(2), 1);
  int i = g.AddIntersection({a, g.AddNegation(b)});
  g.SetTarget(g.AddProjection(i, 2));
  QueryGraph n = RewriteQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  EXPECT_TRUE(n.HasOp(OpType::kDifference));
}

TEST_F(RewriteTest, TailNegationKeptByDefault) {
  // 2in: i(a, ¬b) at the target — negation is the better tail operator,
  // so the default options keep it.
  QueryGraph g = query::MakeStructure(StructureId::k2in);
  QueryGraph n = RewriteQuery(g);
  EXPECT_TRUE(n.HasOp(OpType::kNegation));
  EXPECT_FALSE(n.HasOp(OpType::kDifference));

  RewriteOptions opt;
  opt.rewrite_tail_negation = true;
  QueryGraph n2 = RewriteQuery(g, opt);
  EXPECT_FALSE(n2.HasOp(OpType::kNegation));
  EXPECT_TRUE(n2.HasOp(OpType::kDifference));
}

TEST_F(RewriteTest, PreservesSemanticsOnRandomQueries) {
  query::QuerySampler sampler(&dataset_->test, 9);
  RewriteOptions aggressive;
  aggressive.rewrite_tail_negation = true;
  for (StructureId s : query::AllStructures()) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok()) << query::StructureName(s);
    for (const RewriteOptions& opt : {RewriteOptions(), aggressive}) {
      QueryGraph n = RewriteQuery(q->graph, opt);
      ASSERT_TRUE(n.Validate(/*grounded=*/true).ok())
          << query::StructureName(s);
      auto before = query::ExecuteQuery(q->graph, dataset_->test);
      auto after = query::ExecuteQuery(n, dataset_->test);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(*before, *after) << query::StructureName(s);
    }
  }
}

TEST_F(RewriteTest, HandcraftedDeepNest) {
  // ¬¬(i(i(a, ¬¬b), ¬c)) under a projection; normalization must produce
  // a flat difference feeding the projection with identical semantics.
  query::QuerySampler sampler(&dataset_->test, 11);
  auto seed_query = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(seed_query.ok());
  const auto& nodes = seed_query->graph.nodes();
  const QueryNode& inter =
      nodes[static_cast<size_t>(seed_query->graph.target())];

  QueryGraph g;
  int a = g.AddProjection(
      g.AddAnchor(nodes[static_cast<size_t>(
                            nodes[static_cast<size_t>(inter.inputs[0])]
                                .inputs[0])]
                      .anchor_entity),
      nodes[static_cast<size_t>(inter.inputs[0])].relation);
  int b = g.AddProjection(
      g.AddAnchor(nodes[static_cast<size_t>(
                            nodes[static_cast<size_t>(inter.inputs[1])]
                                .inputs[0])]
                      .anchor_entity),
      nodes[static_cast<size_t>(inter.inputs[1])].relation);
  int c = g.AddProjection(g.AddAnchor(0), 0);
  int bb = g.AddNegation(g.AddNegation(b));
  int i1 = g.AddIntersection({a, bb});
  int i2 = g.AddIntersection({i1, g.AddNegation(c)});
  int nn = g.AddNegation(g.AddNegation(i2));
  g.SetTarget(g.AddProjection(nn, 1));

  QueryGraph n = RewriteQuery(g);
  EXPECT_FALSE(n.HasOp(OpType::kNegation));
  auto before = query::ExecuteQuery(g, dataset_->test);
  auto after = query::ExecuteQuery(n, dataset_->test);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(RewriteTest, RewrittenGraphHasNoUnreachableNodes) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.AddProjection(g.AddAnchor(2), 1);  // orphan
  g.SetTarget(g.AddNegation(g.AddNegation(p)));
  QueryGraph n = RewriteQuery(g);
  EXPECT_EQ(static_cast<size_t>(n.num_nodes()),
            n.TopologicalOrder().size());
}

}  // namespace
}  // namespace halk::plan
