#include "plan/executor.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "kg/groups.h"
#include "kg/synthetic.h"
#include "plan/planner.h"
#include "query/dnf.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/subtree_cache.h"

namespace halk::plan {
namespace {

using query::StructureId;

/// The executor's contract is *bit*-identity with EmbedQueries, so every
/// float comparison below is exact (EXPECT_EQ, not NEAR).
class PlanExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 13;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(5);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 7;
    model_ = new core::HalkModel(config, grouping_);
    planner_ = new Planner(&dataset_->train.stats(),
                           dataset_->train.num_entities());
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete model_;
    delete grouping_;
    delete dataset_;
    planner_ = nullptr;
    model_ = nullptr;
    grouping_ = nullptr;
    dataset_ = nullptr;
  }

  static void ExpectRowEqual(const core::EmbeddingBatch& got, int64_t grow,
                             const core::EmbeddingBatch& want,
                             int64_t wrow) {
    const int64_t dim = model_->config().dim;
    const float* ga = got.a.data();
    const float* gb = got.b.data();
    const float* wa = want.a.data();
    const float* wb = want.b.data();
    for (int64_t c = 0; c < dim; ++c) {
      EXPECT_EQ(ga[grow * dim + c], wa[wrow * dim + c]) << "col " << c;
      EXPECT_EQ(gb[grow * dim + c], wb[wrow * dim + c]) << "col " << c;
    }
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
  static core::HalkModel* model_;
  static Planner* planner_;
};

kg::Dataset* PlanExecutorTest::dataset_ = nullptr;
kg::NodeGrouping* PlanExecutorTest::grouping_ = nullptr;
core::HalkModel* PlanExecutorTest::model_ = nullptr;
Planner* PlanExecutorTest::planner_ = nullptr;

TEST_F(PlanExecutorTest, MatchesEmbedQueriesBitExactlyAcrossStructures) {
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  query::QuerySampler sampler(&dataset_->train, 31);
  for (StructureId s : query::AllStructures()) {
    auto queries = sampler.SampleMany(s, 2);
    ASSERT_TRUE(queries.ok()) << query::StructureName(s);
    for (const query::GroundedQuery& q : *queries) {
      for (const query::QueryGraph& branch : query::ToDnf(q.graph)) {
        Plan plan = planner_->BuildPlan({{0, &branch}});
        core::EmbeddingBatch got = executor.Execute(plan);
        core::EmbeddingBatch want = model_->EmbedQueries({&branch});
        ASSERT_EQ(plan.roots.size(), 1u);
        ExpectRowEqual(got, 0, want, 0);
      }
    }
  }
}

TEST_F(PlanExecutorTest, DuplicateBranchesEvaluateOnce) {
  query::QuerySampler sampler(&dataset_->train, 17);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  const query::QueryGraph& g = q->graph;
  Plan plan = planner_->BuildPlan({{0, &g}, {1, &g}, {2, &g}});
  ASSERT_EQ(plan.roots.size(), 3u);
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  ExecStats stats;
  core::EmbeddingBatch got = executor.Execute(plan, &stats);
  // One evaluation per *unique* node, not per branch instance.
  EXPECT_EQ(stats.evaluated, static_cast<int64_t>(plan.nodes.size()));
  EXPECT_EQ(plan.total_nodes, 3 * static_cast<int64_t>(plan.nodes.size()));
  // All three output rows come from the same slot.
  ExpectRowEqual(got, 1, got, 0);
  ExpectRowEqual(got, 2, got, 0);
  core::EmbeddingBatch want = model_->EmbedQueries({&g});
  ExpectRowEqual(got, 0, want, 0);
}

TEST_F(PlanExecutorTest, WarmSubtreeCacheShortCircuitsWholePlan) {
  query::QuerySampler sampler(&dataset_->train, 23);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  serving::SubtreeCache cache(1 << 20);
  PlanExecutor executor(model_, model_->AsOperatorModel(), &cache);
  Plan plan = planner_->BuildPlan({{0, &q->graph}});

  ExecSchedule cold = executor.Prepare(plan);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  EXPECT_GT(cold.stats.evaluated, 0);
  core::EmbeddingBatch first = executor.Run(plan, &cold);

  // Every non-anchor subtree is now cached; a hit at the root prunes the
  // entire sub-DAG, so nothing is evaluated on the warm run.
  ExecSchedule warm = executor.Prepare(plan);
  EXPECT_EQ(warm.stats.cache_hits, 1);
  EXPECT_EQ(warm.stats.evaluated, 0);
  EXPECT_GT(warm.stats.skipped, 0);
  core::EmbeddingBatch second = executor.Run(plan, &warm);
  ExpectRowEqual(second, 0, first, 0);
}

TEST_F(PlanExecutorTest, RelationInvalidationForcesPartialReevaluation) {
  // 2p chain anchor -> p1(r0) -> p2(r1): invalidating r1 evicts only the
  // root entry, so the warm run hits the intermediate hop and evaluates
  // exactly the root again. Built by hand so the two hop relations are
  // guaranteed distinct.
  query::QueryGraph g;
  g.SetTarget(g.AddProjection(g.AddProjection(g.AddAnchor(3), 0), 1));
  serving::SubtreeCache cache(1 << 20);
  PlanExecutor executor(model_, model_->AsOperatorModel(), &cache);
  Plan plan = planner_->BuildPlan({{0, &g}});
  ExecStats stats;
  core::EmbeddingBatch first = executor.Execute(plan, &stats);

  const PlanNode& root = plan.node(plan.roots[0].node);
  ASSERT_EQ(root.op, query::OpType::kProjection);
  const int64_t tail_relation = root.payload;
  EXPECT_GE(cache.InvalidateRelation(tail_relation), 1u);

  ExecSchedule warm = executor.Prepare(plan);
  EXPECT_EQ(warm.stats.cache_hits, 1);   // the surviving first hop
  EXPECT_EQ(warm.stats.evaluated, 1);    // just the evicted root
  core::EmbeddingBatch second = executor.Run(plan, &warm);
  ExpectRowEqual(second, 0, first, 0);
}

TEST_F(PlanExecutorTest, RecyclesSlotsOnDeepChains) {
  query::QuerySampler sampler(&dataset_->train, 37);
  auto q = sampler.Sample(StructureId::k3p);
  ASSERT_TRUE(q.ok());
  Plan plan = planner_->BuildPlan({{0, &q->graph}});
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  ExecStats stats;
  (void)executor.Execute(plan, &stats);
  EXPECT_EQ(stats.evaluated, static_cast<int64_t>(plan.nodes.size()));
  EXPECT_EQ(plan.max_depth, 3);  // anchor + three hops
  EXPECT_EQ(stats.op_batches, static_cast<int64_t>(plan.max_depth) + 1);
  EXPECT_GE(stats.slots_reused, 1);
  EXPECT_GT(stats.arena_bytes, 0u);
}

TEST_F(PlanExecutorTest, WorksWithoutNodeGrouping) {
  core::ModelConfig config = model_->config();
  config.seed = 19;
  core::HalkModel plain(config, nullptr);
  PlanExecutor executor(&plain, plain.AsOperatorModel(), nullptr);
  query::QuerySampler sampler(&dataset_->train, 41);
  for (StructureId s : {StructureId::k2i, StructureId::k3i}) {
    auto q = sampler.Sample(s);
    ASSERT_TRUE(q.ok());
    Plan plan = planner_->BuildPlan({{0, &q->graph}});
    core::EmbeddingBatch got = executor.Execute(plan);
    core::EmbeddingBatch want = plain.EmbedQueries({&q->graph});
    const int64_t dim = config.dim;
    const float* ga = got.a.data();
    const float* wa = want.a.data();
    for (int64_t c = 0; c < dim; ++c) EXPECT_EQ(ga[c], wa[c]);
  }
}

TEST_F(PlanExecutorTest, MixedStructureBatchSharesLeaves) {
  // Two hand-built queries over the same anchor/relation pair: a 1p and a
  // 2p extending it. The 1p target node *is* the 2p's first hop, so the
  // plan has 3 unique nodes for 5 instances and both rows match
  // per-query embeds.
  query::QueryGraph one;
  one.SetTarget(one.AddProjection(one.AddAnchor(3), 1));
  query::QueryGraph two;
  two.SetTarget(
      two.AddProjection(two.AddProjection(two.AddAnchor(3), 1), 2));
  Plan plan = planner_->BuildPlan({{0, &one}, {1, &two}});
  EXPECT_EQ(plan.nodes.size(), 3u);
  EXPECT_EQ(plan.total_nodes, 5);
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  core::EmbeddingBatch got = executor.Execute(plan);
  ExpectRowEqual(got, 0, model_->EmbedQueries({&one}), 0);
  ExpectRowEqual(got, 1, model_->EmbedQueries({&two}), 0);
}

}  // namespace
}  // namespace halk::plan
