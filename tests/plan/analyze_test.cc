#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/halk_model.h"
#include "kg/groups.h"
#include "kg/synthetic.h"
#include "obs/query_stats.h"
#include "plan/executor.h"
#include "plan/explain.h"
#include "plan/planner.h"
#include "query/dnf.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/subtree_cache.h"

namespace halk::plan {
namespace {

using query::StructureId;

class AnalyzeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = 150;
    opt.num_relations = 6;
    opt.num_triples = 900;
    opt.seed = 13;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    Rng rng(5);
    grouping_ = new kg::NodeGrouping(
        kg::NodeGrouping::Random(dataset_->train.num_entities(), 8, &rng));
    grouping_->BuildAdjacency(dataset_->train);
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 7;
    model_ = new core::HalkModel(config, grouping_);
    planner_ = new Planner(&dataset_->train.stats(),
                           dataset_->train.num_entities());
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete model_;
    delete grouping_;
    delete dataset_;
    planner_ = nullptr;
    model_ = nullptr;
    grouping_ = nullptr;
    dataset_ = nullptr;
  }

  static ExecOptions Collect() {
    ExecOptions options;
    options.collect_actuals = true;
    // Probe the whole toy entity table: the "sample" is exhaustive, so
    // actual_rows is the exact member count.
    options.sample_entities = dataset_->train.num_entities();
    return options;
  }

  static kg::Dataset* dataset_;
  static kg::NodeGrouping* grouping_;
  static core::HalkModel* model_;
  static Planner* planner_;
};

kg::Dataset* AnalyzeTest::dataset_ = nullptr;
kg::NodeGrouping* AnalyzeTest::grouping_ = nullptr;
core::HalkModel* AnalyzeTest::model_ = nullptr;
Planner* AnalyzeTest::planner_ = nullptr;

TEST(QErrorTest, SymmetricClampedRatio) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 100.0), 10.0);
  // Both sides clamp to 1, so sub-row estimates never divide by ~0.
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.2, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 0.0), 5.0);
}

TEST_F(AnalyzeTest, ActualsAreOffByDefault) {
  query::QuerySampler sampler(&dataset_->train, 31);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  Plan plan = planner_->BuildPlan({{0, &q->graph}});
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  ExecStats stats;
  (void)executor.Execute(plan, &stats);
  EXPECT_TRUE(stats.actuals.empty());
}

TEST_F(AnalyzeTest, CollectsPerNodeActualsWhenEnabled) {
  query::QuerySampler sampler(&dataset_->train, 31);
  auto q = sampler.Sample(StructureId::k2i);
  ASSERT_TRUE(q.ok());
  Plan plan = planner_->BuildPlan({{0, &q->graph}});
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  ExecStats stats;
  core::EmbeddingBatch with = executor.Execute(plan, &stats, Collect());
  ASSERT_EQ(stats.actuals.size(), plan.nodes.size());
  const int64_t n = dataset_->train.num_entities();
  for (const NodeActuals& a : stats.actuals) {
    EXPECT_TRUE(a.evaluated);
    EXPECT_FALSE(a.cache_hit);
    EXPECT_GE(a.wall_ns, 0);
    // HalkModel exposes the arc membership threshold, so every node gets
    // a sampled row count within the table bounds.
    EXPECT_GE(a.actual_rows, 0.0);
    EXPECT_LE(a.actual_rows, static_cast<double>(n));
  }

  // Collection must not perturb the operator math: the embeddings are
  // bit-identical to an analytics-off run.
  core::EmbeddingBatch without = executor.Execute(plan);
  const int64_t dim = model_->config().dim;
  for (int64_t c = 0; c < dim; ++c) {
    EXPECT_EQ(with.a.data()[c], without.a.data()[c]) << "col " << c;
    EXPECT_EQ(with.b.data()[c], without.b.data()[c]) << "col " << c;
  }
}

TEST_F(AnalyzeTest, CachedNodesStillGetActualRows) {
  query::QuerySampler sampler(&dataset_->train, 23);
  auto q = sampler.Sample(StructureId::k2p);
  ASSERT_TRUE(q.ok());
  serving::SubtreeCache cache(1 << 20);
  PlanExecutor executor(model_, model_->AsOperatorModel(), &cache);
  Plan plan = planner_->BuildPlan({{0, &q->graph}});

  ExecSchedule cold = executor.Prepare(plan, /*trace=*/{}, Collect());
  (void)executor.Run(plan, &cold);

  // Warm: the root hits the cache and prunes its sub-DAG; the hit node is
  // flagged and still probed (via the gathered cached-embedding batch),
  // while pruned nodes stay unmeasured.
  ExecSchedule warm = executor.Prepare(plan, /*trace=*/{}, Collect());
  ASSERT_EQ(warm.stats.cache_hits, 1);
  core::EmbeddingBatch out = executor.Run(plan, &warm);
  (void)out;
  ASSERT_EQ(warm.stats.actuals.size(), plan.nodes.size());
  const int32_t root = plan.roots[0].node;
  const NodeActuals& hit = warm.stats.actuals[static_cast<size_t>(root)];
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.evaluated);
  EXPECT_GE(hit.actual_rows, 0.0);
  int64_t unmeasured = 0;
  for (const NodeActuals& a : warm.stats.actuals) {
    if (!a.evaluated && !a.cache_hit) {
      EXPECT_LT(a.actual_rows, 0.0);
      ++unmeasured;
    }
  }
  EXPECT_EQ(unmeasured, warm.stats.skipped);
}

TEST_F(AnalyzeTest, ExplainAnalyzeRendersEstimatesActualsAndQErrors) {
  query::QuerySampler sampler(&dataset_->train, 41);
  auto q = sampler.Sample(StructureId::kIp);
  ASSERT_TRUE(q.ok());
  Plan plan = planner_->BuildPlan({{0, &q->graph}});
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  ExecStats stats;
  (void)executor.Execute(plan, &stats, Collect());

  ExplainOptions opt;
  opt.num_entities = dataset_->train.num_entities();
  const std::string text = ExplainAnalyze(plan, stats, opt);
  EXPECT_NE(text.find("rows~"), std::string::npos);
  EXPECT_NE(text.find("act~"), std::string::npos);
  EXPECT_NE(text.find(" q="), std::string::npos);
  EXPECT_NE(text.find("analyze: "), std::string::npos);
  EXPECT_NE(text.find("worst q-error"), std::string::npos);
  EXPECT_NE(text.find("roots:"), std::string::npos);
  // Every measured node renders a numeric actual, so the unmeasured
  // placeholder must be absent on an exhaustive-probe run.
  EXPECT_EQ(text.find("act~-"), std::string::npos);

  // Without actuals the renderer degrades to placeholders instead of
  // inventing numbers.
  ExecStats empty;
  const std::string bare = ExplainAnalyze(plan, empty, opt);
  EXPECT_NE(bare.find("act~-"), std::string::npos);
  EXPECT_EQ(bare.find("worst q-error"), std::string::npos);
}

TEST_F(AnalyzeTest, FeedbackOverridesScheduleOrderOnly) {
  // Two independent 1p subtrees under one intersection: the cost model
  // orders the depth-1 level by est_rows; feedback claiming the opposite
  // cardinalities must flip the schedule order without touching est_rows
  // or the embedding result.
  query::QueryGraph g;
  const int left = g.AddProjection(g.AddAnchor(3), 0);
  const int right = g.AddProjection(g.AddAnchor(7), 1);
  g.SetTarget(g.AddIntersection({left, right}));

  Plan baseline = planner_->BuildPlan({{0, &g}});
  std::vector<int32_t> projections;
  for (size_t i = 0; i < baseline.nodes.size(); ++i) {
    if (baseline.nodes[i].op == query::OpType::kProjection) {
      projections.push_back(static_cast<int32_t>(i));
    }
  }
  ASSERT_EQ(projections.size(), 2u);
  // Schedule position of each projection in the baseline plan.
  auto schedule_pos = [](const Plan& plan, int32_t id) {
    for (size_t s = 0; s < plan.schedule.size(); ++s) {
      if (plan.schedule[s] == id) return s;
    }
    return plan.schedule.size();
  };
  const size_t first_pos = schedule_pos(baseline, projections[0]);
  const size_t second_pos = schedule_pos(baseline, projections[1]);
  const int32_t earlier =
      first_pos < second_pos ? projections[0] : projections[1];
  const int32_t later =
      first_pos < second_pos ? projections[1] : projections[0];

  // Feed observed cardinalities that invert the static order: the node
  // scheduled earlier (smaller est_rows) is "observed" huge, the later
  // one tiny.
  obs::QueryStatsStore feedback(8, /*feedback_capacity=*/8,
                                /*feedback_min_samples=*/1);
  feedback.RecordSubtreeRows(baseline.nodes[earlier].key, 140.0);
  feedback.RecordSubtreeRows(baseline.nodes[later].key, 1.0);

  PlannerOptions options;
  options.feedback = &feedback;
  Planner fed(&dataset_->train.stats(), dataset_->train.num_entities(),
              options);
  Plan overridden = fed.BuildPlan({{0, &g}});
  ASSERT_EQ(overridden.nodes.size(), baseline.nodes.size());

  // est_rows is untouched (q-errors keep grading the static model);
  // sched_rows carries the EWMA and flags provenance.
  for (size_t i = 0; i < baseline.nodes.size(); ++i) {
    EXPECT_EQ(overridden.nodes[i].est_rows, baseline.nodes[i].est_rows);
  }
  EXPECT_TRUE(overridden.nodes[earlier].from_feedback);
  EXPECT_TRUE(overridden.nodes[later].from_feedback);
  EXPECT_DOUBLE_EQ(overridden.nodes[earlier].sched_rows, 140.0);
  EXPECT_DOUBLE_EQ(overridden.nodes[later].sched_rows, 1.0);
  // The depth level re-sorted: the "tiny" node now runs first.
  EXPECT_LT(schedule_pos(overridden, later),
            schedule_pos(overridden, earlier));
  // ExplainPlan surfaces the override.
  EXPECT_NE(ExplainPlan(overridden, {}).find(" fb~"), std::string::npos);

  // Rows are bit-identical either way: ordering within a depth level
  // never changes operator math.
  PlanExecutor executor(model_, model_->AsOperatorModel(), nullptr);
  core::EmbeddingBatch a = executor.Execute(baseline);
  core::EmbeddingBatch b = executor.Execute(overridden);
  const int64_t dim = model_->config().dim;
  for (int64_t c = 0; c < dim; ++c) {
    EXPECT_EQ(a.a.data()[c], b.a.data()[c]) << "col " << c;
    EXPECT_EQ(a.b.data()[c], b.b.data()[c]) << "col " << c;
  }
}

TEST_F(AnalyzeTest, BaseModelWithoutThresholdLeavesRowsUnmeasured) {
  // A model that does not override MembershipThreshold reports -1, so
  // actual_rows stays unmeasured while timing still works.
  core::ModelConfig config = model_->config();
  config.rho = 0.0f;  // disables the arc-geometry threshold
  core::HalkModel flat(config, nullptr);
  query::QueryGraph g;
  g.SetTarget(g.AddProjection(g.AddAnchor(1), 0));
  Plan plan = planner_->BuildPlan({{0, &g}});
  PlanExecutor executor(&flat, flat.AsOperatorModel(), nullptr);
  ExecStats stats;
  (void)executor.Execute(plan, &stats, Collect());
  ASSERT_EQ(stats.actuals.size(), plan.nodes.size());
  for (const NodeActuals& a : stats.actuals) {
    EXPECT_TRUE(a.evaluated);
    EXPECT_LT(a.actual_rows, 0.0);
  }
}

}  // namespace
}  // namespace halk::plan
