#include "plan/planner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kg/stats.h"
#include "plan/cost_model.h"
#include "plan/explain.h"
#include "serving/subtree_cache.h"

namespace halk::plan {
namespace {

using query::OpType;
using query::QueryGraph;

QueryGraph Chain2p(int64_t anchor, int64_t r1, int64_t r2) {
  QueryGraph g;
  g.SetTarget(g.AddProjection(g.AddProjection(g.AddAnchor(anchor), r1), r2));
  return g;
}

QueryGraph Intersect2(int64_t a1, int64_t r1, int64_t a2, int64_t r2) {
  QueryGraph g;
  int p1 = g.AddProjection(g.AddAnchor(a1), r1);
  int p2 = g.AddProjection(g.AddAnchor(a2), r2);
  g.SetTarget(g.AddIntersection({p1, p2}));
  return g;
}

TEST(PlannerTest, SingleBranchPlanCoversReachableNodes) {
  QueryGraph g = Chain2p(1, 0, 1);
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g}});
  EXPECT_EQ(plan.nodes.size(), 3u);
  EXPECT_EQ(plan.total_nodes, 3);
  ASSERT_EQ(plan.roots.size(), 1u);
  EXPECT_EQ(plan.roots[0].request_index, 0u);
  EXPECT_EQ(plan.max_depth, 2);
  EXPECT_DOUBLE_EQ(plan.dedup_ratio(), 0.0);
  EXPECT_EQ(plan.node(plan.roots[0].node).op, OpType::kProjection);
}

TEST(PlannerTest, IdenticalBranchesAcrossRequestsMergeCompletely) {
  QueryGraph g1 = Chain2p(1, 0, 1);
  QueryGraph g2 = Chain2p(1, 0, 1);
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});
  EXPECT_EQ(plan.nodes.size(), 3u);  // second request is pure dedup
  EXPECT_EQ(plan.total_nodes, 6);
  EXPECT_DOUBLE_EQ(plan.dedup_ratio(), 0.5);
  ASSERT_EQ(plan.roots.size(), 2u);
  EXPECT_EQ(plan.roots[0].node, plan.roots[1].node);
  EXPECT_EQ(plan.roots[1].request_index, 1u);
  // Both roots anchor at the node: refcount counts each.
  EXPECT_EQ(plan.node(plan.roots[0].node).refcount, 2);
}

TEST(PlannerTest, SharedPrefixMergesAcrossRequests) {
  QueryGraph g1 = Chain2p(1, 0, 1);
  QueryGraph g2 = Chain2p(1, 0, 2);  // same anchor + first hop
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});
  EXPECT_EQ(plan.nodes.size(), 4u);  // anchor, shared hop, two tails
  EXPECT_EQ(plan.total_nodes, 6);
  ASSERT_EQ(plan.roots.size(), 2u);
  EXPECT_NE(plan.roots[0].node, plan.roots[1].node);
  // The shared first hop feeds both tails.
  const PlanNode& tail = plan.node(plan.roots[0].node);
  ASSERT_EQ(tail.num_inputs, 1u);
  EXPECT_EQ(plan.node(tail.inputs[0]).refcount, 2);
}

TEST(PlannerTest, SwappedBinaryIntersectionMerges) {
  QueryGraph g1 = Intersect2(1, 0, 2, 1);
  QueryGraph g2 = Intersect2(2, 1, 1, 0);  // same pair, swapped order
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});
  ASSERT_EQ(plan.roots.size(), 2u);
  EXPECT_EQ(plan.roots[0].node, plan.roots[1].node);
}

TEST(PlannerTest, ThreeInputIntersectionOrderIsSignificant) {
  // With three or more inputs the float fold is order-dependent, so the
  // fingerprint deliberately keeps stored order and the two targets must
  // NOT merge (their shared leaves still do).
  auto make = [](std::vector<int> order) {
    QueryGraph g;
    int p[3];
    p[0] = g.AddProjection(g.AddAnchor(1), 0);
    p[1] = g.AddProjection(g.AddAnchor(2), 1);
    p[2] = g.AddProjection(g.AddAnchor(3), 2);
    g.SetTarget(
        g.AddIntersection({p[order[0]], p[order[1]], p[order[2]]}));
    return g;
  };
  QueryGraph g1 = make({0, 1, 2});
  QueryGraph g2 = make({2, 1, 0});
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});
  ASSERT_EQ(plan.roots.size(), 2u);
  EXPECT_NE(plan.roots[0].node, plan.roots[1].node);
  // 7 nodes per branch, 6 shared leaves + 2 distinct intersections.
  EXPECT_EQ(plan.nodes.size(), 8u);
}

TEST(PlannerTest, DifferenceSubtrahendOrderIsSignificant) {
  auto make = [](int64_t s1, int64_t s2) {
    QueryGraph g;
    int m = g.AddProjection(g.AddAnchor(1), 0);
    int a = g.AddProjection(g.AddAnchor(2), s1);
    int b = g.AddProjection(g.AddAnchor(3), s2);
    g.SetTarget(g.AddDifference({m, a, b}));
    return g;
  };
  // d(m, a, b) vs d(m, b, a): subtrahends differ in order only — the
  // graphs denote the same set, but the softmax fold is order-dependent.
  QueryGraph g1 = make(1, 2);
  QueryGraph g2;
  {
    int m = g2.AddProjection(g2.AddAnchor(1), 0);
    int b = g2.AddProjection(g2.AddAnchor(3), 2);
    int a = g2.AddProjection(g2.AddAnchor(2), 1);
    g2.SetTarget(g2.AddDifference({m, b, a}));
  }
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});
  ASSERT_EQ(plan.roots.size(), 2u);
  EXPECT_NE(plan.roots[0].node, plan.roots[1].node);
}

TEST(PlannerTest, ScheduleIsTopologicalWithAscendingDepth) {
  QueryGraph g1 = Intersect2(1, 0, 2, 1);
  QueryGraph g2 = Chain2p(1, 0, 1);
  QueryGraph g3;
  {
    int p = g3.AddProjection(g3.AddAnchor(4), 2);
    g3.SetTarget(g3.AddNegation(p));
  }
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {0, &g2}, {1, &g3}});
  ASSERT_EQ(plan.schedule.size(), plan.nodes.size());
  std::vector<int> position(plan.nodes.size(), -1);
  for (size_t i = 0; i < plan.schedule.size(); ++i) {
    position[static_cast<size_t>(plan.schedule[i])] = static_cast<int>(i);
  }
  int32_t prev_depth = -1;
  double prev_rows = 0.0;
  for (size_t i = 0; i < plan.schedule.size(); ++i) {
    const PlanNode& n = plan.node(plan.schedule[i]);
    for (uint32_t j = 0; j < n.num_inputs; ++j) {
      EXPECT_LT(position[static_cast<size_t>(n.inputs[j])],
                static_cast<int>(i));
    }
    EXPECT_GE(n.depth, prev_depth);
    if (n.depth == prev_depth) {
      EXPECT_GE(n.est_rows, prev_rows);  // most selective first per level
    }
    prev_depth = n.depth;
    prev_rows = n.est_rows;
  }
}

TEST(PlannerTest, DeadNodesAreExcluded) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.AddProjection(g.AddAnchor(2), 1);  // orphan
  g.SetTarget(p);
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g}});
  EXPECT_EQ(plan.nodes.size(), 2u);
  EXPECT_EQ(plan.total_nodes, 2);
}

TEST(PlannerTest, RelationTagsCoverTheSubtree) {
  QueryGraph g = Chain2p(1, 3, 5);
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g}});
  const PlanNode& root = plan.node(plan.roots[0].node);
  ASSERT_EQ(root.num_relations, 2u);
  EXPECT_EQ(root.relations[0], 3);
  EXPECT_EQ(root.relations[1], 5);
  // Anchors carry no tags.
  for (const PlanNode& n : plan.nodes) {
    if (n.op == OpType::kAnchor) {
      EXPECT_EQ(n.num_relations, 0u);
    }
  }
}

TEST(PlannerTest, StatsDriveSelectivityOrderingWithinALevel) {
  // Relation 0 fans out to 4 tails per head; relation 1 to exactly 1.
  const std::vector<kg::Triple> triples = {
      {0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}, {5, 1, 6}};
  const kg::GraphStats stats = kg::GraphStats::Collect(10, 2, triples);
  Planner planner(&stats, 10);
  QueryGraph wide;  // 1p over the fat relation
  wide.SetTarget(wide.AddProjection(wide.AddAnchor(0), 0));
  QueryGraph narrow;
  narrow.SetTarget(narrow.AddProjection(narrow.AddAnchor(5), 1));
  Plan plan = planner.BuildPlan({{0, &wide}, {1, &narrow}});
  // Depth-1 level: the narrow projection (est 1 row) runs before the wide
  // one (est 4 rows).
  std::vector<int32_t> depth1;
  for (int32_t id : plan.schedule) {
    if (plan.node(id).depth == 1) depth1.push_back(id);
  }
  ASSERT_EQ(depth1.size(), 2u);
  EXPECT_EQ(plan.node(depth1[0]).payload, 1);
  EXPECT_EQ(plan.node(depth1[1]).payload, 0);
  EXPECT_LT(plan.node(depth1[0]).est_rows, plan.node(depth1[1]).est_rows);
}

TEST(PlannerTest, AppliesRewritesWhenEnabled) {
  QueryGraph g;
  int p = g.AddProjection(g.AddAnchor(1), 0);
  g.SetTarget(g.AddNegation(g.AddNegation(p)));
  PlannerOptions options;
  options.apply_rewrites = true;
  Planner planner(nullptr, 100, options);
  Plan plan = planner.BuildPlan({{0, &g}});
  for (const PlanNode& n : plan.nodes) {
    EXPECT_NE(n.op, OpType::kNegation);
  }
  EXPECT_EQ(plan.nodes.size(), 2u);
}

TEST(CostModelTest, PerOperatorEstimates) {
  // Relation 0: 3 edges from 1 head (fan-out 3); relation 1: empty.
  const std::vector<kg::Triple> triples = {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}};
  const kg::GraphStats stats = kg::GraphStats::Collect(100, 2, triples);
  const CostModel cost(&stats, 100);

  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kAnchor, 7, nullptr, 0), 1.0);

  const double one = 1.0;
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kProjection, 0, &one, 1), 3.0);
  // Unseen relation: neutral fan-out of 1.
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kProjection, 1, &one, 1), 1.0);

  const double pair[] = {10.0, 20.0};
  // Independence: 10 * 20 / 100 = 2.
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kIntersection, -1, pair, 2),
                   2.0);
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kUnion, -1, pair, 2), 30.0);
  // Negation complements against N.
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kNegation, -1, pair, 1), 90.0);

  const double diff[] = {10.0, 50.0};
  // 10 * (1 - 50/100) = 5.
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kDifference, -1, diff, 2), 5.0);

  // Estimates clamp to [1, N].
  const double big = 80.0;
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kProjection, 0, &big, 1),
                   100.0);
  const double tiny[] = {1.0, 1.0};
  EXPECT_GE(cost.EstimateRows(OpType::kIntersection, -1, tiny, 2), 1.0);

  EXPECT_DOUBLE_EQ(cost.Selectivity(50.0), 0.5);
  EXPECT_DOUBLE_EQ(cost.Selectivity(1000.0), 1.0);
}

TEST(CostModelTest, NullStatsAreNeutral) {
  const CostModel cost(nullptr, 100);
  const double one = 1.0;
  EXPECT_DOUBLE_EQ(cost.EstimateRows(OpType::kProjection, 0, &one, 1), 1.0);
}

TEST(ExplainTest, RendersScheduleWithDedupAndCacheAnnotations) {
  QueryGraph g1 = Chain2p(1, 0, 1);
  QueryGraph g2 = Chain2p(1, 0, 1);
  Planner planner(nullptr, 100);
  Plan plan = planner.BuildPlan({{0, &g1}, {1, &g2}});

  serving::SubtreeCache cache(1 << 16);
  serving::SubtreeCache::Entry warm;
  warm.row.assign(8, 0.0f);
  cache.Put(plan.node(plan.roots[0].node).key, warm);

  ExplainOptions options;
  options.num_entities = 100;
  options.cache = &cache;
  options.relation_name = [](int64_t id) {
    return "rel" + std::to_string(id);
  };
  options.entity_name = [](int64_t id) { return "e" + std::to_string(id); };
  const std::string text = ExplainPlan(plan, options);

  EXPECT_NE(text.find("3 nodes"), std::string::npos);
  EXPECT_NE(text.find("before dedup"), std::string::npos);
  EXPECT_NE(text.find("2 roots"), std::string::npos);
  EXPECT_NE(text.find("shared x2"), std::string::npos);
  EXPECT_NE(text.find(" cached"), std::string::npos);
  EXPECT_NE(text.find("rel0"), std::string::npos);
  EXPECT_NE(text.find("e1"), std::string::npos);
  EXPECT_NE(text.find("sel="), std::string::npos);
  EXPECT_NE(text.find("roots:"), std::string::npos);
  // The probe must not perturb hit statistics.
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

}  // namespace
}  // namespace halk::plan
