// NEGATIVE fixture for clang's -Wthread-safety analysis. This file is NOT
// part of any build target: the clang CI job compiles it with
// `-Wthread-safety -Werror -fsyntax-only` and asserts the compilation
// FAILS, proving the annotation plumbing in common/mutex.h and
// common/thread_annotations.h actually detects the races it exists to
// catch (a silently inert macro set would pass every positive build).
//
// Each violation below mirrors a real bug class the annotations guard
// against in src/serving and src/shard.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace halk {

class Account {
 public:
  // Violation 1: writes a guarded member without holding its mutex.
  void DepositUnlocked(int amount) { balance_ += amount; }

  // Violation 2: declares the requirement but the caller below ignores it.
  void DepositLocked(int amount) HALK_REQUIRES(mu_) { balance_ += amount; }
  void CallerWithoutLock() { DepositLocked(1); }

  // Violation 3: acquires but never releases (scoped-capability misuse is
  // the double-unlock / forgotten-unlock bug class).
  void LockLeak() { mu_.Lock(); }

 private:
  Mutex mu_;
  int balance_ HALK_GUARDED_BY(mu_) = 0;
};

}  // namespace halk
