#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace halk::lint {
namespace {

std::vector<Diagnostic> Lint(const std::string& path,
                             const std::string& text) {
  return LintFileContent(path, text, Options{}).diagnostics;
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule,
             int line = -1) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) {
                       return d.rule == rule &&
                              (line < 0 || d.line == line);
                     });
}

// ---------------------------------------------------------------------------
// StripCommentsAndStrings
// ---------------------------------------------------------------------------

TEST(StripTest, BlanksLineAndBlockComments) {
  const std::string in = "int x;  // new Foo\n/* delete p; */int y;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(out, "int x;            \n               int y;\n");
}

TEST(StripTest, BlanksStringAndCharLiterals) {
  const std::string in = "auto s = \"new X\"; char c = 'n';\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("new"), std::string::npos);
  // The surrounding code survives.
  EXPECT_NE(out.find("auto s ="), std::string::npos);
}

TEST(StripTest, HandlesEscapesInsideStrings) {
  const std::string in = R"(auto s = "a\"new\""; int z;)";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_NE(out.find("int z;"), std::string::npos);
}

TEST(StripTest, BlanksRawStrings) {
  const std::string in = "auto q = R\"(new Foo // delete)\"; int after;";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_EQ(out.find("delete"), std::string::npos);
  EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(StripTest, PreservesNewlinesInsideComments) {
  const std::string in = "/* a\nb\nc */int x;";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

// ---------------------------------------------------------------------------
// no-using-namespace-header
// ---------------------------------------------------------------------------

TEST(UsingNamespaceTest, FiresInHeader) {
  const auto diags = Lint("src/foo/bar.h", "using namespace std;\n");
  EXPECT_TRUE(HasRule(diags, "no-using-namespace-header", 1));
}

TEST(UsingNamespaceTest, SilentInSourceFile) {
  const auto diags = Lint("src/foo/bar.cc", "using namespace std;\n");
  EXPECT_FALSE(HasRule(diags, "no-using-namespace-header"));
}

TEST(UsingNamespaceTest, SilentInCommentAndSuppressedInline) {
  EXPECT_FALSE(HasRule(Lint("a.h", "// using namespace std;\n"),
                       "no-using-namespace-header"));
  EXPECT_FALSE(HasRule(
      Lint("a.h",
           "using namespace std;  "
           "// halk_lint:allow no-using-namespace-header\n"),
      "no-using-namespace-header"));
}

// ---------------------------------------------------------------------------
// no-raw-new-delete
// ---------------------------------------------------------------------------

TEST(RawNewDeleteTest, FiresOnNewAndDelete) {
  EXPECT_TRUE(HasRule(Lint("src/a.cc", "auto* p = new Foo();\n"),
                      "no-raw-new-delete", 1));
  EXPECT_TRUE(
      HasRule(Lint("src/a.cc", "delete p;\n"), "no-raw-new-delete", 1));
  EXPECT_TRUE(
      HasRule(Lint("src/a.cc", "delete[] arr;\n"), "no-raw-new-delete", 1));
}

TEST(RawNewDeleteTest, DefaultedSpecialMembersAreNotDeletes) {
  const auto diags =
      Lint("src/a.h", "Foo(const Foo&) = delete;\nFoo& operator=(const "
                      "Foo&) = delete;\n");
  EXPECT_FALSE(HasRule(diags, "no-raw-new-delete"));
}

TEST(RawNewDeleteTest, TensorArenaIsExempt) {
  EXPECT_FALSE(HasRule(Lint("src/tensor/arena.cc", "auto* p = new float[8];\n"),
                       "no-raw-new-delete"));
}

TEST(RawNewDeleteTest, IdentifiersContainingNewDoNotFire) {
  EXPECT_FALSE(HasRule(Lint("src/a.cc", "int renew_count = new_size;\n"),
                       "no-raw-new-delete"));
}

// ---------------------------------------------------------------------------
// no-std-mutex
// ---------------------------------------------------------------------------

TEST(StdMutexTest, FiresOnStdPrimitives) {
  EXPECT_TRUE(
      HasRule(Lint("src/a.h", "std::mutex mu_;\n"), "no-std-mutex", 1));
  EXPECT_TRUE(HasRule(Lint("src/a.cc", "std::lock_guard<std::mutex> l(m);\n"),
                      "no-std-mutex", 1));
  EXPECT_TRUE(HasRule(Lint("src/a.h", "std::condition_variable cv_;\n"),
                      "no-std-mutex", 1));
}

TEST(StdMutexTest, AnnotatedWrapperIsFine) {
  const auto diags =
      Lint("src/a.h", "halk::Mutex mu_;\nint x_ HALK_GUARDED_BY(mu_);\n");
  EXPECT_FALSE(HasRule(diags, "no-std-mutex"));
}

TEST(StdMutexTest, InlineAllowSuppresses) {
  const auto diags = Lint(
      "src/a.h", "std::mutex mu_;  // halk_lint:allow no-std-mutex — why\n");
  EXPECT_FALSE(HasRule(diags, "no-std-mutex"));
}

// ---------------------------------------------------------------------------
// mutex-guarded
// ---------------------------------------------------------------------------

TEST(MutexGuardedTest, UnguardedMutexMemberFires) {
  const auto diags = Lint("src/a.h", "class C {\n  Mutex mu_;\n  int x_;\n};\n");
  EXPECT_TRUE(HasRule(diags, "mutex-guarded", 2));
}

TEST(MutexGuardedTest, GuardedMutexMemberIsFine) {
  const auto diags = Lint(
      "src/a.h",
      "class C {\n  mutable Mutex mu_;\n  int x_ HALK_GUARDED_BY(mu_);\n};\n");
  EXPECT_FALSE(HasRule(diags, "mutex-guarded"));
}

TEST(MutexGuardedTest, PtGuardedAlsoCounts) {
  const auto diags =
      Lint("src/a.h",
           "class C {\n  Mutex mu_;\n  int* p_ HALK_PT_GUARDED_BY(mu_);\n};\n");
  EXPECT_FALSE(HasRule(diags, "mutex-guarded"));
}

TEST(MutexGuardedTest, StaticAndLocalMutexesAreSkipped) {
  EXPECT_FALSE(HasRule(Lint("src/a.cc", "static Mutex g_mu;\n"),
                       "mutex-guarded"));
}

// ---------------------------------------------------------------------------
// memory-order-comment
// ---------------------------------------------------------------------------

TEST(MemoryOrderTest, UncommentedRelaxedFires) {
  const auto diags =
      Lint("src/a.cc", "n_.fetch_add(1, std::memory_order_relaxed);\n");
  EXPECT_TRUE(HasRule(diags, "memory-order-comment", 1));
}

TEST(MemoryOrderTest, SameLineOrderCommentPasses) {
  const auto diags = Lint(
      "src/a.cc",
      "n_.fetch_add(1, std::memory_order_relaxed);  // order: counter only\n");
  EXPECT_FALSE(HasRule(diags, "memory-order-comment"));
}

TEST(MemoryOrderTest, CommentWithinTenLinesPasses) {
  std::string text = "// order: seqlock write protocol\n";
  for (int i = 0; i < 9; ++i) text += "int filler" + std::to_string(i) + ";\n";
  text += "seq_.store(s, std::memory_order_release);\n";
  EXPECT_FALSE(HasRule(Lint("src/a.cc", text), "memory-order-comment"));
}

TEST(MemoryOrderTest, CommentBeyondTenLinesFires) {
  std::string text = "// order: too far away\n";
  for (int i = 0; i < 11; ++i) text += "int filler" + std::to_string(i) + ";\n";
  text += "seq_.store(s, std::memory_order_release);\n";
  EXPECT_TRUE(HasRule(Lint("src/a.cc", text), "memory-order-comment"));
}

TEST(MemoryOrderTest, SeqCstNeedsNoComment) {
  EXPECT_FALSE(HasRule(Lint("src/a.cc", "n_.store(1);\n"),
                       "memory-order-comment"));
}

// ---------------------------------------------------------------------------
// nodiscard-status
// ---------------------------------------------------------------------------

TEST(NodiscardTest, HeaderDeclWithoutAttributeFires) {
  const auto diags = Lint("src/a.h", "Status Load(const std::string& p);\n");
  EXPECT_TRUE(HasRule(diags, "nodiscard-status", 1));
}

TEST(NodiscardTest, ResultDeclWithoutAttributeFires) {
  const auto diags =
      Lint("src/a.h", "Result<std::vector<int>> Parse(std::string s);\n");
  EXPECT_TRUE(HasRule(diags, "nodiscard-status", 1));
}

TEST(NodiscardTest, AttributeOnSameOrPrecedingLinePasses) {
  EXPECT_FALSE(HasRule(
      Lint("src/a.h", "[[nodiscard]] Status Load(const std::string& p);\n"),
      "nodiscard-status"));
  EXPECT_FALSE(HasRule(
      Lint("src/a.h", "[[nodiscard]]\nStatus Load(const std::string& p);\n"),
      "nodiscard-status"));
}

TEST(NodiscardTest, ConstructorsAndSourceFilesDoNotFire) {
  // `Status()` / `Result(T)` constructors have no function name after the
  // type, and .cc definitions are the declaration's responsibility.
  EXPECT_FALSE(HasRule(Lint("src/a.h", "Status() : code_(kOk) {}\n"),
                       "nodiscard-status"));
  EXPECT_FALSE(HasRule(
      Lint("src/a.cc", "Status Load(const std::string& p) { return {}; }\n"),
      "nodiscard-status"));
}

TEST(NodiscardTest, StatusHeaderRequiresClassLevelAttribute) {
  const auto bad = Lint("src/common/status.h",
                        "class Status {};\ntemplate <typename T>\nclass "
                        "Result {};\n");
  EXPECT_TRUE(HasRule(bad, "nodiscard-status"));
  const auto good =
      Lint("src/common/status.h",
           "class [[nodiscard]] Status {};\ntemplate <typename T>\nclass "
           "[[nodiscard]] Result {};\n");
  EXPECT_FALSE(HasRule(good, "nodiscard-status"));
}

TEST(NodiscardTest, FixInsertsAttributePreservingIndent) {
  Options fix;
  fix.fix = true;
  const std::string text =
      "class C {\n  Status Load(const std::string& p);\n};\n";
  FileResult result = LintFileContent("src/a.h", text, fix);
  ASSERT_TRUE(result.changed);
  EXPECT_NE(result.fixed_text.find(
                "  [[nodiscard]] Status Load(const std::string& p);"),
            std::string::npos);
  // The fixed finding is reported but marked as repaired.
  ASSERT_TRUE(HasRule(result.diagnostics, "nodiscard-status"));
  EXPECT_EQ(result.diagnostics[0].message.rfind("[fixed] ", 0), 0u);
  // Re-linting the fixed text is clean.
  EXPECT_FALSE(HasRule(Lint("src/a.h", result.fixed_text),
                       "nodiscard-status"));
}

// ---------------------------------------------------------------------------
// gitignore-hygiene
// ---------------------------------------------------------------------------

TEST(GitignoreTest, MissingFileIsOneFinding) {
  const auto diags = LintGitignore(".gitignore", "", /*exists=*/false);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "gitignore-hygiene");
}

TEST(GitignoreTest, CompleteFileIsClean) {
  const auto diags = LintGitignore(
      ".gitignore", "build/\nbuild-*/\nBENCH_*.json\nartifacts/\n",
      /*exists=*/true);
  EXPECT_TRUE(diags.empty());
}

TEST(GitignoreTest, BuildGlobCoversBothBuildPatterns) {
  const auto diags = LintGitignore(
      ".gitignore", "build*/\nBENCH_*.json\nartifacts/\n", /*exists=*/true);
  EXPECT_TRUE(diags.empty());
}

TEST(GitignoreTest, EachMissingPatternIsItsOwnFinding) {
  const auto diags =
      LintGitignore(".gitignore", "build/\n", /*exists=*/true);
  EXPECT_EQ(diags.size(), 3u);  // build-*/, BENCH_*.json, artifacts/
  for (const auto& d : diags) EXPECT_EQ(d.rule, "gitignore-hygiene");
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

TEST(AllowlistTest, ParsesEntriesAndEnforcesJustification) {
  std::vector<Diagnostic> diags;
  const auto entries = ParseAllowlist(
      "# header comment\n"
      "no-std-mutex src/common/mutex.h  # the annotated wrapper itself\n"
      "mutex-guarded src/legacy/  \n",
      "allow.txt", &diags);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].has_justification);
  EXPECT_FALSE(entries[1].has_justification);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "allowlist-justification");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(AllowlistTest, MalformedEntryIsASyntaxFinding) {
  std::vector<Diagnostic> diags;
  const auto entries = ParseAllowlist("just-a-rule\n", "allow.txt", &diags);
  EXPECT_TRUE(entries.empty());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "allowlist-syntax");
}

TEST(AllowlistTest, AllowedMatchesRuleAndPathSubstring) {
  std::vector<Diagnostic> diags;
  const auto entries = ParseAllowlist(
      "no-std-mutex common/mutex.h  # wrapper\n"
      "* src/generated/  # machine output\n",
      "allow.txt", &diags);
  EXPECT_TRUE(Allowed(entries, "no-std-mutex", "src/common/mutex.h"));
  EXPECT_FALSE(Allowed(entries, "mutex-guarded", "src/common/mutex.h"));
  EXPECT_FALSE(Allowed(entries, "no-std-mutex", "src/serving/server.h"));
  // A `*` rule suppresses everything under the path.
  EXPECT_TRUE(Allowed(entries, "no-raw-new-delete", "src/generated/x.cc"));
}

// ---------------------------------------------------------------------------
// profile-scope-literal
// ---------------------------------------------------------------------------

TEST(ProfileScopeLiteralTest, LiteralArgumentPasses) {
  const std::string code =
      "void Step() {\n"
      "  HALK_PROFILE_SCOPE(\"train/step\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/core/trainer.cc", code),
                       "profile-scope-literal"));
}

TEST(ProfileScopeLiteralTest, DynamicArgumentFires) {
  const std::string code =
      "void Step(const std::string& name) {\n"
      "  HALK_PROFILE_SCOPE(name.c_str());\n"
      "}\n";
  EXPECT_TRUE(HasRule(Lint("src/core/trainer.cc", code),
                      "profile-scope-literal", 2));
}

TEST(ProfileScopeLiteralTest, WrappedLiteralOnNextLinePasses) {
  const std::string code =
      "void Step() {\n"
      "  HALK_PROFILE_SCOPE(\n"
      "      \"train/a_rather_long_region_name\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/core/trainer.cc", code),
                       "profile-scope-literal"));
}

TEST(ProfileScopeLiteralTest, MacroDefinitionItselfIsExempt) {
  const std::string code =
      "#define HALK_PROFILE_SCOPE(name)                       \\\n"
      "  ::halk::obs::ProfileScope scope(Profiler::Global(), (name))\n";
  EXPECT_FALSE(HasRule(Lint("src/obs/profiler.h", code),
                       "profile-scope-literal"));
}

TEST(ProfileScopeLiteralTest, InlineAllowSuppresses) {
  const std::string code =
      "void Step(const char* name) {\n"
      "  HALK_PROFILE_SCOPE(name);  // halk_lint:allow profile-scope-literal\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/core/trainer.cc", code),
                       "profile-scope-literal"));
}

// ---------------------------------------------------------------------------
// Seeded-mutant negatives: the checkers catch the exact regressions the CI
// gates exist to prevent (tree is currently clean, so these prove the
// detection path end to end).
// ---------------------------------------------------------------------------

TEST(SeededMutantTest, DroppingGuardedByAnnotationIsCaught) {
  const std::string annotated =
      "class Cache {\n"
      "  mutable Mutex mu_;\n"
      "  size_t hits_ HALK_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(Lint("src/serving/c.h", annotated), "mutex-guarded"));
  // Mutant: someone strips the annotation.
  const std::string mutant =
      "class Cache {\n"
      "  mutable Mutex mu_;\n"
      "  size_t hits_ = 0;\n"
      "};\n";
  EXPECT_TRUE(HasRule(Lint("src/serving/c.h", mutant), "mutex-guarded", 2));
}

TEST(SeededMutantTest, RevertingToStdMutexIsCaught) {
  const std::string mutant =
      "class Cache {\n"
      "  mutable std::mutex mu_;\n"
      "  size_t hits_ HALK_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(HasRule(Lint("src/serving/c.h", mutant), "no-std-mutex", 2));
}

TEST(SeededMutantTest, DeletingOrderCommentIsCaught) {
  const std::string annotated =
      "// order: release pairs with acquire in health()\n"
      "health_.store(h, std::memory_order_release);\n";
  EXPECT_FALSE(
      HasRule(Lint("src/shard/w.cc", annotated), "memory-order-comment"));
  const std::string mutant =
      "health_.store(h, std::memory_order_release);\n";
  EXPECT_TRUE(
      HasRule(Lint("src/shard/w.cc", mutant), "memory-order-comment", 1));
}


TEST(SeededMutantTest, ProfileScopeVariableNameIsCaught) {
  const std::string literal =
      "void Eval() {\n"
      "  HALK_PROFILE_SCOPE(\"eval/score_all\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/core/evaluator.cc", literal),
                       "profile-scope-literal"));
  // Mutant: someone parameterizes the region name per query structure.
  const std::string mutant =
      "void Eval(const query::GroundedQuery& q) {\n"
      "  HALK_PROFILE_SCOPE(StructureName(q.structure));\n"
      "}\n";
  EXPECT_TRUE(HasRule(Lint("src/core/evaluator.cc", mutant),
                      "profile-scope-literal", 2));
}

// ---------------------------------------------------------------------------
// metric-name-convention
// ---------------------------------------------------------------------------

TEST(MetricNameTest, LowercaseDottedNamesPass) {
  const std::string code =
      "void Wire(serving::MetricsRegistry* r) {\n"
      "  r->GetCounter(\"serving.submitted\")->Increment();\n"
      "  r->GetGauge(\"shard.replica_health\", {{\"shard\", \"0\"}});\n"
      "  r->GetHistogram(\"slo.p99_us_fast\", {1.0});\n"
      "  (void)r->CounterValue(\"slo.alerts_fired\");\n"
      "  (void)r->GaugeChildren(\"shard.replica_health\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint("src/serving/wire.cc", code),
                       "metric-name-convention"));
}

TEST(MetricNameTest, NonconformingLiteralsFire) {
  EXPECT_TRUE(HasRule(
      Lint("src/a.cc", "r->GetCounter(\"Serving.Submitted\");\n"),
      "metric-name-convention", 1));
  EXPECT_TRUE(HasRule(
      Lint("src/a.cc", "r->GetGauge(\"shard-replica-health\");\n"),
      "metric-name-convention", 1));
  EXPECT_TRUE(HasRule(Lint("src/a.cc", "r->GetCounter(\"9lives\");\n"),
                      "metric-name-convention", 1));
  EXPECT_TRUE(HasRule(Lint("src/a.cc", "r->GetCounter(\"slo..burn\");\n"),
                      "metric-name-convention", 1));
  EXPECT_TRUE(HasRule(Lint("src/a.cc", "r->GetCounter(\"slo.burn.\");\n"),
                      "metric-name-convention", 1));
}

TEST(MetricNameTest, DynamicNamesAndWrappedLiteralsAreHandled) {
  // A computed name cannot be checked textually: skipped, not flagged.
  EXPECT_FALSE(HasRule(
      Lint("src/a.cc", "r->GetCounter(MetricNameFor(shard));\n"),
      "metric-name-convention"));
  // A literal wrapped onto the next line is still found...
  const std::string wrapped_good =
      "r->GetHistogram(\n"
      "    \"serving.latency_us\", bounds);\n";
  EXPECT_FALSE(HasRule(Lint("src/a.cc", wrapped_good),
                       "metric-name-convention"));
  // ...and still checked.
  const std::string wrapped_bad =
      "r->GetHistogram(\n"
      "    \"Serving.LatencyUs\", bounds);\n";
  EXPECT_TRUE(HasRule(Lint("src/a.cc", wrapped_bad),
                      "metric-name-convention", 1));
}

TEST(MetricNameTest, InlineAllowSuppresses) {
  const std::string code =
      "r->GetCounter(\"Legacy.Name\");  "
      "// halk_lint:allow metric-name-convention grandfathered dashboard\n";
  EXPECT_FALSE(HasRule(Lint("src/a.cc", code), "metric-name-convention"));
}

TEST(MetricNameTest, AnalyticsPlaneCallSitesAreCovered) {
  // The labeled per-operator form the analytics plane registers: the name
  // literal is checked even with ExponentialBounds and a labels argument
  // following it.
  const std::string good =
      "plan_node_us_[op] = metrics_.GetHistogram(\n"
      "    \"plan.node_us\", Histogram::ExponentialBounds(1.0, 2.0, 20),\n"
      "    {{\"op\", query::OpTypeName(op)}});\n"
      "plan_qerror_ = metrics_.GetHistogram(\n"
      "    \"plan.qerror\", Histogram::ExponentialBounds(1.0, 2.0, 16));\n";
  EXPECT_FALSE(HasRule(Lint("src/serving/server.cc", good),
                       "metric-name-convention"));
  // A CamelCase rename of either analytics family is caught at the call
  // site regardless of the trailing bounds/labels arguments.
  const std::string bad =
      "plan_qerror_ = metrics_.GetHistogram(\n"
      "    \"Plan.QError\", Histogram::ExponentialBounds(1.0, 2.0, 16));\n";
  EXPECT_TRUE(HasRule(Lint("src/serving/server.cc", bad),
                      "metric-name-convention", 1));
}

TEST(SeededMutantTest, CamelCaseMetricRenameIsCaught) {
  const std::string current =
      "latency_us_ = metrics->GetHistogram(\"serving.latency_us\", bounds);\n";
  EXPECT_FALSE(HasRule(Lint("src/serving/server.cc", current),
                       "metric-name-convention"));
  // Mutant: a rename to CamelCase would silently mint a second Prometheus
  // family and orphan every dashboard panel scraping the old one.
  const std::string mutant =
      "latency_us_ = metrics->GetHistogram(\"Serving.LatencyUs\", bounds);\n";
  EXPECT_TRUE(HasRule(Lint("src/serving/server.cc", mutant),
                      "metric-name-convention", 1));
}

// ---------------------------------------------------------------------------
// store-fixed-width-int
// ---------------------------------------------------------------------------

TEST(StoreFixedWidthIntTest, BareIntInStoreHeaderFires) {
  const std::string text =
      "struct ShardFileHeader {\n"
      "  unsigned version;\n"
      "  long entity_begin;\n"
      "  int dim;\n"
      "};\n";
  const std::vector<Diagnostic> diags = Lint("src/store/format.h", text);
  EXPECT_TRUE(HasRule(diags, "store-fixed-width-int", 2));
  EXPECT_TRUE(HasRule(diags, "store-fixed-width-int", 3));
  EXPECT_TRUE(HasRule(diags, "store-fixed-width-int", 4));
}

TEST(StoreFixedWidthIntTest, FixedWidthTypesAndSizeTPass) {
  const std::string text =
      "struct ShardFileHeader {\n"
      "  uint32_t version;\n"
      "  int64_t entity_begin;\n"
      "  uint64_t data_bytes;\n"
      "  size_t mapped_bytes;\n"
      "};\n";
  EXPECT_FALSE(
      HasRule(Lint("src/store/format.h", text), "store-fixed-width-int"));
}

TEST(StoreFixedWidthIntTest, ScopedToStoreHeadersOnly) {
  const std::string text = "int Count();\n";
  // Other subsystems' headers and store .cc files are out of scope.
  EXPECT_FALSE(
      HasRule(Lint("src/core/topk.h", text), "store-fixed-width-int"));
  EXPECT_FALSE(
      HasRule(Lint("src/store/store.cc", text), "store-fixed-width-int"));
  EXPECT_TRUE(
      HasRule(Lint("src/store/store.h", text), "store-fixed-width-int", 1));
}

TEST(StoreFixedWidthIntTest, CommentsAndInlineAllowAreExempt) {
  const std::string comment_only =
      "// the int widths here are prose, not code\n"
      "uint32_t dim;\n";
  EXPECT_FALSE(HasRule(Lint("src/store/format.h", comment_only),
                       "store-fixed-width-int"));
  const std::string allowed =
      "int fd;  // halk_lint:allow store-fixed-width-int host descriptor\n";
  EXPECT_FALSE(
      HasRule(Lint("src/store/shard_file.h", allowed),
              "store-fixed-width-int"));
}

}  // namespace
}  // namespace halk::lint
