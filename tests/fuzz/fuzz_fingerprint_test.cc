// Deterministic fuzzing of query fingerprint canonicalization: randomly
// generated grounded DAGs are re-expressed in ways that do not change the
// denoted query — commutative inputs permuted, node ids renumbered by a
// random topological rebuild, dead nodes appended — and the canonical
// fingerprint must be bit-identical across every re-expression, while
// semantically distinct queries must never collide.

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_harness.h"
#include "query/dag.h"
#include "query/fingerprint.h"

namespace halk::query {
namespace {

using fuzz::SplitMix64;

void Shuffle(std::vector<int>* v, SplitMix64& rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng.Below(i)]);
  }
}

/// Picks `count` distinct node ids from [0, pool).
std::vector<int> PickDistinct(int pool, int count, SplitMix64& rng) {
  std::vector<int> ids(pool);
  for (int i = 0; i < pool; ++i) ids[i] = i;
  Shuffle(&ids, rng);
  ids.resize(count);
  return ids;
}

/// A random grounded query DAG. Anchors draw entities from
/// [entity_base, entity_base + 100), so graphs built with different bases
/// are guaranteed semantically distinct (anchor sets are disjoint).
QueryGraph RandomGraph(int64_t entity_base, SplitMix64& rng) {
  QueryGraph g;
  const int num_anchors = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < num_anchors; ++i) {
    g.AddAnchor(entity_base + static_cast<int64_t>(rng.Below(100)));
  }
  const int num_ops = 1 + static_cast<int>(rng.Below(7));
  int last = 0;
  for (int i = 0; i < num_ops; ++i) {
    const int pool = g.num_nodes();
    switch (rng.Below(5)) {
      case 0:
      case 1:  // bias toward projections, the paper's dominant op
        last = g.AddProjection(static_cast<int>(rng.Below(pool)),
                               static_cast<int64_t>(rng.Below(50)));
        break;
      case 2: {
        if (pool < 2) { last = g.AddProjection(0, 1); break; }
        const int n = 2 + static_cast<int>(rng.Below(
                              std::min(pool - 1, 2)));
        last = g.AddIntersection(PickDistinct(pool, n, rng));
        break;
      }
      case 3: {
        if (pool < 2) { last = g.AddProjection(0, 2); break; }
        const int n = 2 + static_cast<int>(rng.Below(
                              std::min(pool - 1, 2)));
        if (rng.OneIn(2)) {
          last = g.AddUnion(PickDistinct(pool, n, rng));
        } else {
          last = g.AddDifference(PickDistinct(pool, n, rng));
        }
        break;
      }
      case 4:
        last = g.AddNegation(static_cast<int>(rng.Below(pool)));
        break;
    }
  }
  g.SetTarget(last);
  return g;
}

/// Same query, inputs of commutative operators permuted in place
/// (difference keeps its minuend, the subtrahend tail shuffles).
QueryGraph PermuteCommutative(const QueryGraph& g, SplitMix64& rng) {
  QueryGraph out = g;
  for (int id = 0; id < out.num_nodes(); ++id) {
    QueryNode& node = out.mutable_node(id);
    if (node.op == OpType::kIntersection || node.op == OpType::kUnion) {
      Shuffle(&node.inputs, rng);
    } else if (node.op == OpType::kDifference && node.inputs.size() > 2) {
      std::vector<int> tail(node.inputs.begin() + 1, node.inputs.end());
      Shuffle(&tail, rng);
      std::copy(tail.begin(), tail.end(), node.inputs.begin() + 1);
    }
  }
  return out;
}

/// Same query rebuilt under a random topological renumbering: node ids,
/// insertion order, and input-list storage all change; the denoted query
/// does not.
QueryGraph RandomRenumber(const QueryGraph& g, SplitMix64& rng) {
  const int n = g.num_nodes();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> consumers(n);
  for (int id = 0; id < n; ++id) {
    for (int input : g.nodes()[id].inputs) {
      ++indegree[id];
      consumers[input].push_back(id);
    }
  }
  std::vector<int> ready;
  for (int id = 0; id < n; ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  QueryGraph out;
  std::vector<int> remap(n, -1);
  while (!ready.empty()) {
    const size_t pick = rng.Below(ready.size());
    const int id = ready[pick];
    ready.erase(ready.begin() + static_cast<long>(pick));
    const QueryNode& node = g.nodes()[id];
    std::vector<int> inputs;
    inputs.reserve(node.inputs.size());
    for (int input : node.inputs) inputs.push_back(remap[input]);
    switch (node.op) {
      case OpType::kAnchor:
        remap[id] = out.AddAnchor(node.anchor_entity);
        break;
      case OpType::kProjection:
        remap[id] = out.AddProjection(inputs[0], node.relation);
        break;
      case OpType::kIntersection:
        remap[id] = out.AddIntersection(std::move(inputs));
        break;
      case OpType::kUnion:
        remap[id] = out.AddUnion(std::move(inputs));
        break;
      case OpType::kDifference:
        remap[id] = out.AddDifference(std::move(inputs));
        break;
      case OpType::kNegation:
        remap[id] = out.AddNegation(inputs[0]);
        break;
    }
    for (int consumer : consumers[id]) {
      if (--indegree[consumer] == 0) ready.push_back(consumer);
    }
  }
  out.SetTarget(remap[g.target()]);
  return out;
}

/// Appends nodes unreachable from the target; the canonical fingerprint
/// hashes only the target's sub-DAG.
QueryGraph WithDeadNodes(const QueryGraph& g, SplitMix64& rng) {
  QueryGraph out = g;
  const int target = out.target();
  const int dead_anchor =
      out.AddAnchor(static_cast<int64_t>(1000000 + rng.Below(100)));
  out.AddProjection(dead_anchor, static_cast<int64_t>(rng.Below(50)));
  out.SetTarget(target);
  return out;
}

TEST(FingerprintFuzzTest, CanonicalFingerprintIsInvariantUnderReexpression) {
  SplitMix64 rng(11);
  for (int round = 0; round < 400; ++round) {
    const QueryGraph g = RandomGraph(round * 1000, rng);
    ASSERT_TRUE(g.Validate(/*grounded=*/true).ok())
        << "generator bug at round " << round << ": " << g.ToString();
    const Fingerprint fp = CanonicalFingerprint(g);
    SCOPED_TRACE("round " + std::to_string(round) + " " + g.ToString());
    for (int variant = 0; variant < 4; ++variant) {
      EXPECT_EQ(CanonicalFingerprint(PermuteCommutative(g, rng)), fp);
      EXPECT_EQ(CanonicalFingerprint(RandomRenumber(g, rng)), fp);
      EXPECT_EQ(CanonicalFingerprint(WithDeadNodes(g, rng)), fp);
      EXPECT_EQ(CanonicalFingerprint(
                    RandomRenumber(PermuteCommutative(g, rng), rng)),
                fp);
    }
  }
}

TEST(FingerprintFuzzTest, DistinctQueriesDoNotCollide) {
  // Disjoint anchor-entity ranges make every generated graph a different
  // query, so every canonical fingerprint must be unique. 2000 graphs at
  // 128 bits: any collision is a canonicalization bug, not bad luck.
  SplitMix64 rng(23);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int round = 0; round < 2000; ++round) {
    const QueryGraph g = RandomGraph(round * 1000, rng);
    const Fingerprint fp = CanonicalFingerprint(g);
    EXPECT_TRUE(seen.insert({fp.hi, fp.lo}).second)
        << "collision at round " << round << ": " << g.ToString();
  }
}

TEST(FingerprintFuzzTest, GroundingChangesTheFingerprint) {
  SplitMix64 rng(31);
  for (int round = 0; round < 300; ++round) {
    QueryGraph g = RandomGraph(round * 1000, rng);
    const Fingerprint fp = CanonicalFingerprint(g);
    // Mutate one anchor entity or one relation reachable from the target;
    // the fingerprint must move.
    QueryGraph mutated = g;
    bool changed = false;
    for (int id = 0; id < mutated.num_nodes() && !changed; ++id) {
      QueryNode& node = mutated.mutable_node(id);
      if (node.op == OpType::kAnchor) {
        node.anchor_entity += 1;
        changed = true;
      }
    }
    ASSERT_TRUE(changed);
    // Node 0 is always an anchor and every leaf is an anchor, but the
    // mutated anchor might be dead; only assert when it is reachable.
    bool reachable = false;
    {
      std::vector<int> stack = {mutated.target()};
      std::vector<bool> seen_node(mutated.num_nodes(), false);
      while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        if (seen_node[id]) continue;
        seen_node[id] = true;
        if (id == 0) reachable = true;
        for (int input : mutated.nodes()[id].inputs) stack.push_back(input);
      }
    }
    if (reachable) {
      EXPECT_NE(CanonicalFingerprint(mutated), fp)
          << "round " << round << ": " << g.ToString();
    }
  }
}

}  // namespace
}  // namespace halk::query
