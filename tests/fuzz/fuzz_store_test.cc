#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_harness.h"
#include "store/format.h"
#include "store/snapshot.h"

namespace halk::store {
namespace {

/// Adversarial-input suite for the two store parsing surfaces: the text
/// manifest and the binary shard-file header. Both are documented as safe
/// on arbitrary bytes (clean Status, no crash, no OOB) — the property the
/// sanitizer CI jobs check here.

StoreSnapshot SampleSnapshot(int64_t num_entities, int shards,
                             bool with_params) {
  StoreSnapshot snap;
  snap.model_name = "HaLk";
  snap.config.num_entities = num_entities;
  snap.config.num_relations = 11;
  snap.config.dim = 16;
  snap.config.hidden = 32;
  snap.config.seed = 77;
  snap.has_params = with_params;
  snap.params_checksum = with_params ? 0xabcdef0123456789ULL : 0;
  const int64_t per = num_entities / shards;
  for (int i = 0; i < shards; ++i) {
    SnapshotShardEntry entry;
    entry.file = "entities-" + std::to_string(i) + ".halkstore";
    entry.entity_begin = i * per;
    entry.entity_end = (i == shards - 1) ? num_entities : (i + 1) * per;
    entry.header_checksum = 0x1000 + static_cast<uint64_t>(i);
    snap.shards.push_back(entry);
  }
  return snap;
}

TEST(FuzzStoreTest, ManifestParserNeverCrashesAndAcceptsOnlyRoundTrips) {
  const std::vector<std::string> corpus = {
      SerializeManifest(SampleSnapshot(100, 1, false)),
      SerializeManifest(SampleSnapshot(1000, 4, true)),
      SerializeManifest(SampleSnapshot(7, 7, true)),
  };
  const std::vector<std::string> tokens = {
      "halk-store-snapshot", "model", "num_entities", "num_relations",
      "dim", "hidden", "rho", "lambda", "eta", "gamma", "xi", "seed",
      "params", "params.halkblob", "shard", "checksum", "0x",
      ".halkstore", "HaLk", "\n", " 0 ", "-1", "18446744073709551615",
      "1e9999", "nan", "inf", "../", "/",
  };
  fuzz::RunCorpus(
      corpus, tokens, /*seed=*/20260809, /*iterations=*/3000,
      [](const std::string& input, const std::string& tag) {
        StoreSnapshot parsed;
        const Status status = ParseManifest(input, &parsed);
        if (!status.ok()) return;
        // Anything the strict parser accepts must serialize back to the
        // exact input — the manifest grammar has one canonical rendering.
        EXPECT_EQ(SerializeManifest(parsed), input) << tag;
        // And the accepted snapshot satisfies the parser's own contract.
        ASSERT_FALSE(parsed.shards.empty()) << tag;
        int64_t next = 0;
        for (const SnapshotShardEntry& entry : parsed.shards) {
          EXPECT_EQ(entry.entity_begin, next) << tag;
          EXPECT_LT(entry.entity_begin, entry.entity_end) << tag;
          next = entry.entity_end;
        }
        EXPECT_EQ(next, parsed.config.num_entities) << tag;
      });
}

TEST(FuzzStoreTest, HeaderParserNeverCrashesAndAcceptsOnlyValidGeometry) {
  // Corpus: serialized valid headers of varied geometry (partial tail
  // groups, single group, begin offsets) as raw byte strings.
  std::vector<std::string> corpus;
  for (const auto& [dim, rows_per_group, begin, end] :
       std::vector<std::tuple<uint32_t, uint32_t, int64_t, int64_t>>{
           {8, 64, 0, 1000}, {4, 16, 100, 116}, {32, 4096, 0, 1}}) {
    ShardFileHeader h;
    h.dim = dim;
    h.rows_per_group = rows_per_group;
    h.entity_begin = begin;
    h.entity_end = end;
    h.num_groups = static_cast<uint64_t>(
        (h.rows() + rows_per_group - 1) / rows_per_group);
    h.checksum_table_offset = kPageBytes;
    h.data_offset = AlignUp(
        kPageBytes + h.num_groups * dim * sizeof(uint64_t), kPageBytes);
    h.data_bytes = TotalDataBytes(h);
    std::string page(kPageBytes, '\0');
    SerializeHeader(h, reinterpret_cast<uint8_t*>(page.data()));
    corpus.push_back(page);
  }
  // Every corpus entry must parse before mutation.
  for (const std::string& page : corpus) {
    ShardFileHeader out;
    ASSERT_TRUE(ParseHeader(reinterpret_cast<const uint8_t*>(page.data()),
                            page.size(), &out)
                    .ok());
  }
  const std::vector<std::string> tokens = {
      std::string("HALKSHRD"), std::string(8, '\xff'), std::string(8, '\0')};
  fuzz::RunCorpus(
      corpus, tokens, /*seed=*/977, /*iterations=*/3000,
      [](const std::string& input, const std::string& tag) {
        ShardFileHeader out;
        const Status status = ParseHeader(
            reinterpret_cast<const uint8_t*>(input.data()), input.size(),
            &out);
        if (!status.ok()) return;
        // Accepted headers carry self-consistent, bounded geometry: every
        // derived quantity the reader trusts re-derives without overflow.
        EXPECT_GT(out.dim, 0u) << tag;
        EXPECT_LT(out.entity_begin, out.entity_end) << tag;
        EXPECT_EQ(out.data_bytes, TotalDataBytes(out)) << tag;
        int64_t rows = 0;
        for (uint64_t g = 0; g < out.num_groups; ++g) {
          rows += GroupRowCount(out, static_cast<int64_t>(g));
        }
        EXPECT_EQ(rows, out.rows()) << tag;
      });
}

}  // namespace
}  // namespace halk::store
