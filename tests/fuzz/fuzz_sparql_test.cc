// Deterministic fuzzing of the SPARQL lexer/parser surface: arbitrary
// bytes must produce either tokens/an AST or a clean ParseError — never a
// crash, hang, or (under the sanitizer CI matrix) UB — and every accepted
// query must survive a print -> parse -> print round trip as a fixed
// point. Seeds are fixed; failures reproduce from the tag in the message.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_harness.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

namespace halk::sparql {
namespace {

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> kCorpus = {
      "SELECT ?x WHERE { ?x <rel> <Const> . }",
      "SELECT ?t WHERE { <A> <r1> ?m . ?m <r2> ?t . }",
      "PREFIX ns: <http://example.org/> "
      "SELECT DISTINCT ?x WHERE { ?x ns:likes ns:Pizza . }",
      "SELECT ?x WHERE { ?x <r> <A> . FILTER NOT EXISTS { ?x <r> <B> . } }",
      "SELECT ?x WHERE { ?x <r> <A> . MINUS { ?x <r> <B> . } }",
      "SELECT ?x WHERE { { ?x <r> <A> . } UNION { ?x <r> <B> . } }",
      "SELECT ?x WHERE { { ?x <p> <A> . } UNION { ?x <p> <B> . } UNION "
      "{ ?x <p> <C> . } }",
      "SELECT ?x WHERE { <A> <r1> ?y . ?y <r2> ?x . "
      "FILTER NOT EXISTS { ?x <r3> <B> . MINUS { ?x <r4> <C> . } } }",
      "select $x where { $x :r :A . }  # lowercase + $-variables",
      "SELECT ?x WHERE { }",
  };
  return kCorpus;
}

const std::vector<std::string>& Dictionary() {
  static const std::vector<std::string> kTokens = {
      "SELECT",  "WHERE", "FILTER", "NOT",  "EXISTS", "MINUS",
      "UNION",   "PREFIX", "DISTINCT", "?x", "$y",     "<a>",
      ":rel",    "ns:b",  "{",      "}",    ".",      "<>",
      " # c\n",  "<http://e.org/x>",
  };
  return kTokens;
}

void CheckOneInput(const std::string& input, const std::string& tag) {
  SCOPED_TRACE(tag + " input: " + input);
  // Lexing and parsing must terminate and return through the Status
  // channel; any signal/sanitizer report here is the bug.
  Result<std::vector<Token>> tokens = Lex(input);
  Result<SelectQuery> parsed = Parse(input);
  if (!tokens.ok()) {
    // The parser lexes internally; a lexer error must surface as a parse
    // error, not an accepted query.
    EXPECT_FALSE(parsed.ok());
  }
  if (!parsed.ok()) {
    // Errors carry a message; that is the entire contract for rejects.
    EXPECT_FALSE(parsed.status().message().empty());
    return;
  }
  // Round trip: the printed form must re-parse, and printing the re-parse
  // must reproduce it byte for byte (printing is canonical).
  const std::string printed = ToSparql(*parsed);
  Result<SelectQuery> reparsed = Parse(printed);
  ASSERT_TRUE(reparsed.ok())
      << "accepted query failed to re-parse: " << printed << " — "
      << reparsed.status().ToString();
  EXPECT_EQ(ToSparql(*reparsed), printed);
}

TEST(SparqlFuzzTest, CorpusAloneParses) {
  for (const std::string& entry : Corpus()) {
    SCOPED_TRACE(entry);
    EXPECT_TRUE(Parse(entry).ok());
  }
}

TEST(SparqlFuzzTest, MutatedInputsNeverCrashAndRoundTrip) {
  for (const uint64_t seed : {1ULL, 2026ULL, 424242ULL}) {
    fuzz::RunCorpus(Corpus(), Dictionary(), seed, 4000, CheckOneInput);
  }
}

TEST(SparqlFuzzTest, RawByteSoupNeverCrashes) {
  // No corpus structure at all: pure byte noise, including NUL and high
  // bytes, at several lengths.
  fuzz::SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    std::string input(rng.Below(64), '\0');
    for (char& c : input) c = static_cast<char>(rng.Below(256));
    CheckOneInput(input, "byte soup iter=" + std::to_string(i));
  }
}

}  // namespace
}  // namespace halk::sparql
