#ifndef HALK_TESTS_FUZZ_FUZZ_HARNESS_H_
#define HALK_TESTS_FUZZ_FUZZ_HARNESS_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

/// A deterministic, corpus-driven mutation fuzzer: no libFuzzer, no
/// coverage feedback, just a seeded PRNG applying structured mutations to
/// checked-in corpus entries. Every run of a fuzz test executes the exact
/// same input sequence, so the `fuzz`-labeled ctest suites are ordinary
/// reproducible tests that happen to explore a large adversarial input
/// space — run them under ASan/UBSan/TSan (the sanitizer CI matrix does)
/// and a failure is a plain test failure with a reproducible seed.
namespace halk::fuzz {

/// SplitMix64 (Steele et al.): tiny, fast, and passes BigCrush — more than
/// enough to drive mutations. Deliberately not std::mt19937 so the stream
/// is stable across standard libraries.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

 private:
  uint64_t state_;
};

/// Applies 1..4 random byte/span-level mutations to `base`. `corpus` (may
/// be empty) feeds the splice mutation so crossover between entries is
/// possible; `tokens` (may be empty) feeds a dictionary mutation inserting
/// domain keywords whole, which reaches far deeper into parsers than byte
/// noise alone.
inline std::string Mutate(const std::string& base,
                          const std::vector<std::string>& corpus,
                          const std::vector<std::string>& tokens,
                          SplitMix64& rng) {
  std::string out = base;
  const int rounds = 1 + static_cast<int>(rng.Below(4));
  for (int round = 0; round < rounds; ++round) {
    switch (rng.Below(7)) {
      case 0:  // flip one byte
        if (!out.empty()) {
          out[rng.Below(out.size())] =
              static_cast<char>(rng.Below(256));
        }
        break;
      case 1:  // insert a random byte
        out.insert(out.begin() + static_cast<long>(rng.Below(out.size() + 1)),
                   static_cast<char>(rng.Below(256)));
        break;
      case 2: {  // erase a span
        if (out.empty()) break;
        const size_t at = rng.Below(out.size());
        const size_t len = 1 + rng.Below(out.size() - at);
        out.erase(at, rng.OneIn(4) ? len : 1 + rng.Below(8));
        break;
      }
      case 3: {  // duplicate a span in place
        if (out.empty()) break;
        const size_t at = rng.Below(out.size());
        const size_t len =
            std::min<size_t>(1 + rng.Below(16), out.size() - at);
        out.insert(at, out.substr(at, len));
        break;
      }
      case 4: {  // splice a random slice of another corpus entry
        if (corpus.empty()) break;
        const std::string& donor = corpus[rng.Below(corpus.size())];
        if (donor.empty()) break;
        const size_t from = rng.Below(donor.size());
        const size_t len = 1 + rng.Below(donor.size() - from);
        out.insert(rng.Below(out.size() + 1), donor.substr(from, len));
        break;
      }
      case 5: {  // insert a dictionary token
        if (tokens.empty()) break;
        out.insert(rng.Below(out.size() + 1),
                   tokens[rng.Below(tokens.size())]);
        break;
      }
      case 6:  // truncate
        if (!out.empty()) out.resize(rng.Below(out.size() + 1));
        break;
    }
    // Keep inputs bounded so quadratic consumers stay fast.
    if (out.size() > 4096) out.resize(4096);
  }
  return out;
}

/// Drives `fn` over every corpus entry unmutated (the corpus must always
/// pass) and then over `iterations` seeded mutants. The callback receives
/// the input and a reproduction tag ("seed=S iter=I") to embed in failure
/// messages.
inline void RunCorpus(
    const std::vector<std::string>& corpus,
    const std::vector<std::string>& tokens, uint64_t seed, int iterations,
    const std::function<void(const std::string&, const std::string&)>& fn) {
  for (size_t i = 0; i < corpus.size(); ++i) {
    fn(corpus[i], "corpus entry #" + std::to_string(i));
  }
  SplitMix64 rng(seed);
  for (int i = 0; i < iterations; ++i) {
    const std::string& base = corpus[rng.Below(corpus.size())];
    const std::string input = Mutate(base, corpus, tokens, rng);
    fn(input,
       "seed=" + std::to_string(seed) + " iter=" + std::to_string(i));
  }
}

}  // namespace halk::fuzz

#endif  // HALK_TESTS_FUZZ_FUZZ_HARNESS_H_
