// Deterministic fuzzing of the journal's flat JSON line parser: seeded
// mutations of real journal/bench lines (plus a dictionary of JSON
// syntax fragments) must never crash ParseJsonLine, and every accepted
// line must re-render through JsonLineBuilder into a line the parser
// accepts again with identical values (a full round-trip invariant).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_harness.h"
#include "obs/journal.h"

namespace halk::obs {
namespace {

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> kCorpus = {
      // Real journal shapes (header / step / eval) and a bench line.
      "{\"record\":\"header\",\"schema_version\":1,\"model\":\"halk\","
      "\"seed\":17,\"options_fingerprint\":\"9a3f\",\"steps\":600}",
      "{\"record\":\"step\",\"step\":42,\"structure\":\"2i\","
      "\"loss\":0.6931471805599453,\"grad_norm\":1.25,\"wall_ms\":3.5,"
      "\"forward_ops\":118,\"peak_graph_bytes\":45056}",
      "{\"record\":\"eval\",\"step\":200,\"mrr\":0.41,\"hits3\":0.55,"
      "\"num_queries\":60}",
      "{\"bench\":\"serving_throughput\",\"git_sha\":\"abc1234\","
      "\"qps\":1250.7,\"p99_ms\":8.25}",
      // Sharp edges the parser must keep handling.
      "{\"s\":\"esc \\\" \\\\ \\n \\u0041 \\ud83d\\ude00\"}",
      "{\"n\":-1.5e-300,\"z\":0,\"b\":true,\"x\":null}",
      "{}",
      "{\"a\":1",
      "{\"a\":{\"nested\":1}}",
  };
  return kCorpus;
}

const std::vector<std::string>& Tokens() {
  static const std::vector<std::string> kTokens = {
      "\"", "\\", "\\u", "\\ud800", "{", "}", "[", "]", ":", ",",
      "null", "true", "false", "1e309", "-0.0", "0x1", "NaN", "\x01\x7f",
  };
  return kTokens;
}

TEST(JournalFuzzTest, ParserNeverCrashesAndAcceptedLinesRoundTrip) {
  int accepted = 0;
  fuzz::RunCorpus(
      Corpus(), Tokens(), /*seed=*/2026, /*iterations=*/4000,
      [&accepted](const std::string& input, const std::string& tag) {
        auto parsed = ParseJsonLine(input);
        if (!parsed.ok()) return;  // rejecting is always fine; crashing isn't
        ++accepted;
        // Re-render what was understood and parse it back: the rebuilt
        // line must be accepted with the same keys and values.
        JsonLineBuilder builder;
        for (const auto& [key, value] : *parsed) {
          switch (value.kind) {
            case JsonValue::Kind::kNull:
              builder.Null(key);
              break;
            case JsonValue::Kind::kBool:
              builder.Bool(key, value.bool_value);
              break;
            case JsonValue::Kind::kNumber:
              builder.Num(key, value.number);
              break;
            case JsonValue::Kind::kString:
              builder.Str(key, value.string_value);
              break;
          }
        }
        auto reparsed = ParseJsonLine(builder.Finish());
        ASSERT_TRUE(reparsed.ok())
            << tag << ": rebuilt line rejected: " << builder.Finish();
        ASSERT_EQ(reparsed->size(), parsed->size()) << tag;
        for (size_t i = 0; i < parsed->size(); ++i) {
          const JsonValue& a = (*parsed)[i].second;
          const JsonValue& b = (*reparsed)[i].second;
          ASSERT_EQ((*reparsed)[i].first, (*parsed)[i].first) << tag;
          ASSERT_EQ(b.kind, a.kind) << tag;
          ASSERT_EQ(b.bool_value, a.bool_value) << tag;
          ASSERT_EQ(b.string_value, a.string_value) << tag;
          if (a.kind == JsonValue::Kind::kNumber) {
            // %.17g round-trips every finite double bit-exactly;
            // non-finite values were rendered as null and re-read as
            // such, which the kind check above already covered.
            ASSERT_EQ(b.number, a.number) << tag;
          }
        }
      });
  // The corpus holds well-formed lines, so the sweep must accept a
  // healthy share of inputs — a parser that rejects everything would
  // trivially pass the no-crash bar.
  EXPECT_GT(accepted, 100);
}

}  // namespace
}  // namespace halk::obs
