// Deterministic fuzzing of the Prometheus text exposition: metric names,
// label names, and label values are drawn from seeded mutations of an
// adversarial corpus (quotes, backslashes, newlines, UTF-8, reserved
// names like `le`), instruments are registered and exercised, and every
// resulting DumpPrometheus() output must satisfy the full text-format
// grammar checker shared with the serving metrics suite.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_harness.h"
#include "serving/metrics.h"
#include "serving/prometheus_grammar.h"

namespace halk::serving {
namespace {

using fuzz::SplitMix64;

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> kCorpus = {
      "latency",      "shard.tasks",  "a.b.c",   "le",     "exported_le",
      "1starts_bad",  "has space",    "quo\"te", "back\\slash",
      "new\nline",    "tab\there",    "",        "__name__",
      "uni\xc3\xbc",  "{brace}",      "semi;colon",
  };
  return kCorpus;
}

std::string Draw(const std::vector<std::string>& corpus, SplitMix64& rng) {
  const std::string& base = corpus[rng.Below(corpus.size())];
  if (rng.OneIn(3)) return base;
  return fuzz::Mutate(base, corpus, {}, rng);
}

TEST(PrometheusFuzzTest, AdversarialNamesAndLabelsStayGrammarValid) {
  for (const uint64_t seed : {3ULL, 77ULL, 2026ULL}) {
    SplitMix64 rng(seed);
    MetricsRegistry registry;
    const int instruments = 40;
    for (int i = 0; i < instruments; ++i) {
      // Unique suffix per instrument so sanitized names rarely merge into
      // one family with conflicting types (same-name merges are exercised
      // separately below).
      const std::string name =
          Draw(Corpus(), rng) + "_m" + std::to_string(i);
      Labels labels;
      const int num_labels = static_cast<int>(rng.Below(3));
      for (int l = 0; l < num_labels; ++l) {
        labels.emplace_back(Draw(Corpus(), rng), Draw(Corpus(), rng));
      }
      switch (rng.Below(3)) {
        case 0:
          registry.GetCounter(name, labels)
              ->Increment(static_cast<int64_t>(rng.Below(1000)));
          break;
        case 1:
          registry.GetGauge(name, labels)
              ->Set(static_cast<double>(rng.Below(1000)) - 500.0);
          break;
        case 2: {
          Histogram* h =
              registry.GetHistogram(name, {0.5, 5.0, 50.0}, labels);
          const int observations = static_cast<int>(rng.Below(5));
          for (int o = 0; o < observations; ++o) {
            h->Observe(static_cast<double>(rng.Below(100)));
          }
          break;
        }
      }
    }
    const std::string text = registry.DumpPrometheus();
    SCOPED_TRACE("seed=" + std::to_string(seed) + "\n--- dump ---\n" + text);
    ExpectValidPrometheusExposition(text);
  }
}

TEST(PrometheusFuzzTest, ReservedLeLabelIsRenamedOnHistograms) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("lat.us", {1.0, 10.0}, {{"le", "evil"}});
  h->Observe(3.0);
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
  EXPECT_NE(text.find("exported_le=\"evil\""), std::string::npos);
}

TEST(PrometheusFuzzTest, LabelNamesThatSanitizeTogetherKeepOneValue) {
  MetricsRegistry registry;
  // Both label names sanitize to `a_b`; the canonical key keeps exactly
  // one pair, so both spellings address the same series and the dump
  // stays grammar-valid (Prometheus forbids duplicate label names).
  Counter* first = registry.GetCounter("c", {{"a b", "1"}, {"a-b", "2"}});
  Counter* second = registry.GetCounter("c", {{"a_b", "1"}});
  EXPECT_EQ(first, second);
  first->Increment();
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
}

TEST(PrometheusFuzzTest, SameSanitizedFamilyAcrossTypesStillDumps) {
  // Two raw names that sanitize to the same family but live in different
  // instrument kinds: the dump must still be grammar-checkable. The
  // registry keys by raw name, so both instruments exist; the exposition
  // emits one # TYPE per (kind, family) pass. This documents the sharp
  // edge and pins the current single-kind behavior per family.
  MetricsRegistry registry;
  registry.GetCounter("x.y")->Increment();
  registry.GetCounter("x_y")->Increment(2);
  const std::string text = registry.DumpPrometheus();
  SCOPED_TRACE(text);
  ExpectValidPrometheusExposition(text);
}

}  // namespace
}  // namespace halk::serving
