#include "shard/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/topk.h"
#include "kg/synthetic.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/metrics.h"

namespace halk::shard {
namespace {

using query::StructureId;

/// Shared fixture: a synthetic KG (entity count divisible by the tested
/// shard counts, so coverage fractions are exact) and an untrained HaLk
/// model — sharded ranking is weight-independent.
class ShardTest : public ::testing::Test {
 protected:
  static constexpr int64_t kEntities = 200;

  static void SetUpTestSuite() {
    kg::SyntheticKgOptions opt;
    opt.num_entities = kEntities;
    opt.num_relations = 6;
    opt.num_triples = 1200;
    opt.seed = 21;
    dataset_ = new kg::Dataset(kg::GenerateSyntheticKg(opt));
    core::ModelConfig config;
    config.num_entities = dataset_->train.num_entities();
    config.num_relations = dataset_->train.num_relations();
    config.dim = 8;
    config.hidden = 16;
    config.seed = 5;
    model_ = new core::HalkModel(config, nullptr);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<query::GroundedQuery> SampleQueries(
      StructureId structure, int count, uint64_t seed) {
    query::QuerySampler sampler(&dataset_->train, seed);
    return sampler.SampleMany(structure, count).ValueOrDie();
  }

  static std::vector<int64_t> Entities(
      const std::vector<core::ScoredEntity>& entries) {
    std::vector<int64_t> out;
    for (const core::ScoredEntity& s : entries) out.push_back(s.entity);
    return out;
  }

  static kg::Dataset* dataset_;
  static core::HalkModel* model_;
};

kg::Dataset* ShardTest::dataset_ = nullptr;
core::HalkModel* ShardTest::model_ = nullptr;

TEST_F(ShardTest, RangesPartitionTheEntityTable) {
  ShardOptions options;
  options.num_shards = 7;  // does not divide 200: first shards get +1
  ShardCoordinator coordinator(model_, options);
  int64_t next = 0;
  for (int s = 0; s < coordinator.num_shards(); ++s) {
    const EntityRange range = coordinator.shard_range(s);
    EXPECT_EQ(range.begin, next);
    EXPECT_GE(range.size(), kEntities / 7);
    next = range.end;
  }
  EXPECT_EQ(next, kEntities);
}

TEST_F(ShardTest, DistancesToRangeMatchesFullScan) {
  query::GroundedQuery q = SampleQueries(StructureId::k2p, 1, 17)[0];
  std::vector<const query::QueryGraph*> single = {&q.graph};
  core::EmbeddingBatch embedding = model_->EmbedQueries(single);
  std::vector<float> all;
  model_->DistancesToAll(embedding, 0, &all);
  for (const auto& [begin, end] :
       std::vector<std::pair<int64_t, int64_t>>{
           {0, 50}, {50, 125}, {125, 200}, {0, 200}, {60, 60}}) {
    std::vector<float> slice;
    model_->DistancesToRange(embedding, 0, begin, end, &slice);
    ASSERT_EQ(static_cast<int64_t>(slice.size()), end - begin);
    for (int64_t i = begin; i < end; ++i) {
      EXPECT_EQ(slice[static_cast<size_t>(i - begin)],
                all[static_cast<size_t>(i)])
          << "entity " << i;
    }
  }
}

// Acceptance property: with all replicas healthy, the sharded ranking is
// identical to brute-force Evaluator::TopK for every structure, at every
// shard count.
TEST_F(ShardTest, EqualsEvaluatorForEveryStructureAndShardCount) {
  core::Evaluator evaluator(model_);
  for (int shards : {1, 2, 4, 8}) {
    ShardOptions options;
    options.num_shards = shards;
    ShardCoordinator coordinator(model_, options);
    for (StructureId s : query::AllStructures()) {
      for (const query::GroundedQuery& q : SampleQueries(s, 2, 301)) {
        ShardedTopK top = coordinator.TopK(q.graph, 10);
        ASSERT_TRUE(top.ok()) << top.status.ToString();
        EXPECT_EQ(top.coverage, 1.0);
        EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 10))
            << query::StructureName(s) << " with " << shards << " shards";
      }
    }
  }
}

TEST_F(ShardTest, KBeyondEntityCountReturnsFullRanking) {
  ShardOptions options;
  options.num_shards = 4;
  ShardCoordinator coordinator(model_, options);
  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 5)[0];
  ShardedTopK top = coordinator.TopK(q.graph, kEntities + 50);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(static_cast<int64_t>(top.entries.size()), kEntities);
}

TEST_F(ShardTest, SingleReplicaLossIsAnswerInvariant) {
  core::Evaluator evaluator(model_);
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 4;
  options.replication = 2;
  serving::MetricsRegistry metrics;
  ShardCoordinator coordinator(model_, options, &faults, &metrics);

  faults.SetDown(/*shard=*/1, /*replica=*/0, true);
  for (const query::GroundedQuery& q :
       SampleQueries(StructureId::k2i, 4, 33)) {
    ShardedTopK top = coordinator.TopK(q.graph, 10);
    ASSERT_TRUE(top.ok()) << top.status.ToString();
    EXPECT_EQ(top.coverage, 1.0);
    EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 10));
  }
  EXPECT_NE(coordinator.replica_health(1, 0), ReplicaHealth::kHealthy);
  EXPECT_EQ(coordinator.replica_health(1, 1), ReplicaHealth::kHealthy);
  EXPECT_GE(metrics.CounterValue("shard.failovers", {{"shard", "1"}}), 1);
  EXPECT_EQ(metrics.CounterValue("shard.partial_results"), 0);
  // The downed replica's health gauge mirrors its demotion; its sibling
  // stayed healthy (0).
  EXPECT_GT(
      metrics.GaugeValue("shard.replica_health",
                         {{"shard", "1"}, {"replica", "0"}}),
      0.0);
  EXPECT_EQ(
      metrics.GaugeValue("shard.replica_health",
                         {{"shard", "1"}, {"replica", "1"}}),
      0.0);
}

TEST_F(ShardTest, TransientFailureFailsOverOnce) {
  core::Evaluator evaluator(model_);
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 2;
  options.replication = 2;
  ShardCoordinator coordinator(model_, options, &faults);

  faults.FailNextCalls(/*shard=*/0, /*replica=*/0, 1);
  query::GroundedQuery q = SampleQueries(StructureId::k2p, 1, 44)[0];
  ShardedTopK top = coordinator.TopK(q.graph, 8);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 8));
  // The demoted replica is not re-picked while its twin stays healthy, so
  // it sits at suspect (one failure, far from the down threshold).
  ShardedTopK again = coordinator.TopK(q.graph, 8);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(coordinator.replica_health(0, 0), ReplicaHealth::kSuspect);
  EXPECT_EQ(coordinator.replica_health(0, 1), ReplicaHealth::kHealthy);
}

TEST_F(ShardTest, FullShardLossDegradesToPartialResult) {
  core::Evaluator evaluator(model_);
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 4;
  options.replication = 2;
  serving::MetricsRegistry metrics;
  ShardCoordinator coordinator(model_, options, &faults, &metrics);

  const int lost = 2;
  faults.SetShardDown(lost, options.replication, true);
  const EntityRange lost_range = coordinator.shard_range(lost);

  query::GroundedQuery q = SampleQueries(StructureId::k2i, 1, 55)[0];
  ShardedTopK top = coordinator.TopK(q.graph, 10);
  EXPECT_EQ(top.status.code(), StatusCode::kPartialResult);
  EXPECT_TRUE(top.partial());
  EXPECT_DOUBLE_EQ(top.coverage,
                   1.0 - static_cast<double>(lost_range.size()) / kEntities);

  // The entries are the exact top-k of the covered fraction: brute-force
  // ranking with the lost range filtered out.
  std::vector<float> dist = evaluator.ScoreAllEntities(q.graph);
  core::TopKAccumulator expected(10);
  for (int64_t e = 0; e < kEntities; ++e) {
    if (e >= lost_range.begin && e < lost_range.end) continue;
    expected.Push(e, dist[static_cast<size_t>(e)]);
  }
  EXPECT_EQ(top.entries, expected.Take());
  EXPECT_GE(metrics.CounterValue("shard.partial_results"), 1);

  // Reviving the shard restores exact full-coverage answers.
  faults.SetShardDown(lost, options.replication, false);
  ShardedTopK healed = coordinator.TopK(q.graph, 10);
  ASSERT_TRUE(healed.ok()) << healed.status.ToString();
  EXPECT_EQ(healed.coverage, 1.0);
  EXPECT_EQ(Entities(healed.entries), evaluator.TopK(q.graph, 10));
}

TEST_F(ShardTest, AllShardsDownIsUnavailable) {
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 2;
  options.replication = 1;
  ShardCoordinator coordinator(model_, options, &faults);
  faults.SetShardDown(0, 1, true);
  faults.SetShardDown(1, 1, true);
  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 66)[0];
  ShardedTopK top = coordinator.TopK(q.graph, 5);
  EXPECT_EQ(top.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(top.coverage, 0.0);
  EXPECT_TRUE(top.entries.empty());
}

TEST_F(ShardTest, RepeatedFailuresMarkReplicaDown) {
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 2;
  options.replication = 1;
  options.down_after_failures = 3;
  ShardCoordinator coordinator(model_, options, &faults);
  // With no twin, every request retries the sole replica, so the failure
  // streak climbs to the down threshold.
  faults.SetDown(0, 0, true);
  query::GroundedQuery q = SampleQueries(StructureId::k1p, 1, 77)[0];
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(coordinator.TopK(q.graph, 5).partial());
  }
  EXPECT_EQ(coordinator.replica_health(0, 0), ReplicaHealth::kDown);
  // Down replicas are still probed as a last resort, so a replica revived
  // behind the coordinator's back self-heals on the next request.
  faults.SetDown(0, 0, false);
  ShardedTopK healed = coordinator.TopK(q.graph, 5);
  ASSERT_TRUE(healed.ok()) << healed.status.ToString();
  EXPECT_EQ(coordinator.replica_health(0, 0), ReplicaHealth::kHealthy);
}

TEST_F(ShardTest, DegradedLatencyKeepsAnswersExact) {
  core::Evaluator evaluator(model_);
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 4;
  ShardCoordinator coordinator(model_, options, &faults);
  // A slow shard (no deadline) degrades latency, never correctness.
  faults.AddLatency(2, 0, std::chrono::microseconds(20000));
  query::GroundedQuery q = SampleQueries(StructureId::k2p, 1, 88)[0];
  ShardedTopK top = coordinator.TopK(q.graph, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.coverage, 1.0);
  EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 10));
}

TEST_F(ShardTest, DeadlineTriggersFailoverToFastReplica) {
  core::Evaluator evaluator(model_);
  ShardFaultInjector faults;
  ShardOptions options;
  options.num_shards = 2;
  options.replication = 2;
  ShardCoordinator coordinator(model_, options, &faults);
  // Replica (0,0) is slower than the whole-request deadline. The hedged
  // gather abandons it after half the budget and the instant twin answers
  // within the rest, so the request completes exactly despite it.
  faults.AddLatency(0, 0, std::chrono::microseconds(800000));
  query::GroundedQuery q = SampleQueries(StructureId::k2i, 1, 99)[0];
  ShardedTopK top =
      coordinator.TopK(q.graph, 10, std::chrono::microseconds(400000));
  ASSERT_TRUE(top.ok()) << top.status.ToString();
  EXPECT_EQ(top.coverage, 1.0);
  EXPECT_EQ(Entities(top.entries), evaluator.TopK(q.graph, 10));
  EXPECT_NE(coordinator.replica_health(0, 0), ReplicaHealth::kHealthy);
}

TEST_F(ShardTest, ConcurrentRequestsStayExact) {
  core::Evaluator evaluator(model_);
  ShardOptions options;
  options.num_shards = 4;
  options.replication = 2;
  ShardCoordinator coordinator(model_, options);

  std::vector<query::GroundedQuery> pool =
      SampleQueries(StructureId::k2i, 8, 111);
  std::vector<std::vector<int64_t>> expected;
  for (const query::GroundedQuery& q : pool) {
    expected.push_back(evaluator.TopK(q.graph, 7));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        const size_t idx = static_cast<size_t>(t * 10 + i) % pool.size();
        ShardedTopK top = coordinator.TopK(pool[idx].graph, 7);
        if (!top.ok() || Entities(top.entries) != expected[idx]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace halk::shard
