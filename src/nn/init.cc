#include "nn/init.h"

#include <cmath>

#include "common/logging.h"

namespace halk::nn {

void UniformInit(tensor::Tensor* t, float lo, float hi, Rng* rng) {
  HALK_CHECK(t != nullptr && t->defined());
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void NormalInit(tensor::Tensor* t, float stddev, Rng* rng) {
  HALK_CHECK(t != nullptr && t->defined());
  float* d = t->data();
  for (int64_t i = 0; i < t->numel(); ++i) {
    d[i] = static_cast<float>(rng->Normal()) * stddev;
  }
}

void XavierUniformInit(tensor::Tensor* t, int64_t fan_in, int64_t fan_out,
                       Rng* rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  UniformInit(t, -a, a, rng);
}

}  // namespace halk::nn
