#include "nn/module.h"

namespace halk::nn {

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const tensor::Tensor& p : Parameters()) total += p.numel();
  return total;
}

void Module::ZeroGrad() {
  for (tensor::Tensor p : Parameters()) p.ZeroGrad();
}

}  // namespace halk::nn
