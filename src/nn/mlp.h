#ifndef HALK_NN_MLP_H_
#define HALK_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace halk::nn {

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear (no activation
/// after the last layer). `dims` lists layer widths, e.g. {32, 64, 16}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& dims, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Sets every component of the final layer's bias to `value`. Used to
  /// shift the operating point of bounded output activations (e.g. start
  /// arclength heads near zero instead of the g(0) = π midpoint).
  void InitFinalBias(float value);

  /// Zeroes the final layer (weights and bias) so the MLP's output starts
  /// at exactly 0 — the standard initialization for residual correction
  /// heads, which must not perturb the base transformation at step 0.
  void ZeroInitFinalLayer();

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t in_features() const { return layers_.front()->in_features(); }
  int64_t out_features() const { return layers_.back()->out_features(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace halk::nn

#endif  // HALK_NN_MLP_H_
