#ifndef HALK_NN_ADAM_H_
#define HALK_NN_ADAM_H_

#include <vector>

#include "tensor/tensor.h"

namespace halk::nn {

/// Adam optimizer (Kingma & Ba, 2015) over a fixed parameter list — the
/// optimizer the paper trains HaLk with.
class Adam {
 public:
  struct Options {
    float lr = 1e-4f;  // paper: 0.0001
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
  };

  Adam(std::vector<tensor::Tensor> params, const Options& options);

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Clears gradients of all managed parameters.
  void ZeroGrad();

  int64_t step_count() const { return step_count_; }

  /// L2 norm over every parameter gradient seen by the last Step()
  /// (0 before the first step). Computed inside the update loop, so it
  /// costs two fused multiply-adds per element, not an extra pass.
  double last_grad_norm() const { return last_grad_norm_; }
  /// L2 norm of the last Step()'s applied parameter delta — the "is Adam
  /// still moving" signal the training journal records per step.
  double last_update_norm() const { return last_update_norm_; }

 private:
  std::vector<tensor::Tensor> params_;
  Options options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  int64_t step_count_ = 0;
  double last_grad_norm_ = 0.0;
  double last_update_norm_ = 0.0;
};

}  // namespace halk::nn

#endif  // HALK_NN_ADAM_H_
