#ifndef HALK_NN_DEEPSETS_H_
#define HALK_NN_DEEPSETS_H_

#include <memory>
#include <vector>

#include "nn/mlp.h"

namespace halk::nn {

/// Permutation-invariant set encoder (Zaheer et al., 2017):
/// `DeepSets({x_1..x_k}) = outer(mean_i inner(x_i))`. Each `x_i` is a
/// `[B, in]` tensor; the output is `[B, out]`. The mean aggregator makes the
/// result independent of the order of the inputs — the property the HaLk
/// intersection/difference arclength models rely on (Eqs. 8, 11 of the
/// paper).
class DeepSets : public Module {
 public:
  /// `inner_dims` maps element features to the latent space; `outer_dims`
  /// maps the aggregated latent to the output. inner_dims.back() must equal
  /// outer_dims.front().
  DeepSets(const std::vector<int64_t>& inner_dims,
           const std::vector<int64_t>& outer_dims, Rng* rng);

  tensor::Tensor Forward(const std::vector<tensor::Tensor>& elements) const;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  std::unique_ptr<Mlp> inner_;
  std::unique_ptr<Mlp> outer_;
};

}  // namespace halk::nn

#endif  // HALK_NN_DEEPSETS_H_
