#ifndef HALK_NN_MODULE_H_
#define HALK_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace halk::nn {

/// Base class for parameterized building blocks. Parameters are leaf
/// tensors with `requires_grad` set; optimizers consume `Parameters()`.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable leaves of this module (handles, not copies).
  virtual std::vector<tensor::Tensor> Parameters() const = 0;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const;

  /// Zeroes gradients of all parameters.
  void ZeroGrad();
};

}  // namespace halk::nn

#endif  // HALK_NN_MODULE_H_
