#ifndef HALK_NN_INIT_H_
#define HALK_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace halk::nn {

/// Fills in-place with U(lo, hi).
void UniformInit(tensor::Tensor* t, float lo, float hi, Rng* rng);

/// Fills in-place with N(0, stddev^2).
void NormalInit(tensor::Tensor* t, float stddev, Rng* rng);

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void XavierUniformInit(tensor::Tensor* t, int64_t fan_in, int64_t fan_out,
                       Rng* rng);

}  // namespace halk::nn

#endif  // HALK_NN_INIT_H_
