#include "nn/attention.h"

#include "common/logging.h"

namespace halk::nn {

using tensor::Tensor;

std::vector<Tensor> SoftmaxAcross(const std::vector<Tensor>& scores) {
  HALK_CHECK(!scores.empty());
  // Per-coordinate max over the list, detached: a constant shift leaves both
  // the softmax value and its gradient unchanged.
  Tensor shift = scores[0];
  for (size_t i = 1; i < scores.size(); ++i) {
    shift = tensor::Maximum(shift, scores[i]);
  }
  shift = shift.Detach();

  std::vector<Tensor> exps;
  exps.reserve(scores.size());
  Tensor denom;
  for (const Tensor& s : scores) {
    Tensor e = tensor::Exp(tensor::Sub(s, shift));
    denom = denom.defined() ? tensor::Add(denom, e) : e;
    exps.push_back(std::move(e));
  }
  std::vector<Tensor> weights;
  weights.reserve(exps.size());
  for (const Tensor& e : exps) weights.push_back(tensor::Div(e, denom));
  return weights;
}

Tensor WeightedSum(const std::vector<Tensor>& weights,
                   const std::vector<Tensor>& values) {
  HALK_CHECK_EQ(weights.size(), values.size());
  HALK_CHECK(!weights.empty());
  Tensor acc;
  for (size_t i = 0; i < weights.size(); ++i) {
    Tensor term = tensor::Mul(weights[i], values[i]);
    acc = acc.defined() ? tensor::Add(acc, term) : term;
  }
  return acc;
}

}  // namespace halk::nn
