#include "nn/mlp.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace halk::nn {

using tensor::Tensor;

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng) {
  HALK_CHECK_GE(dims.size(), 2u) << "MLP needs at least input and output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = tensor::Relu(h);
  }
  return h;
}

void Mlp::InitFinalBias(float value) {
  std::vector<Tensor> params = layers_.back()->Parameters();
  HALK_CHECK_EQ(params.size(), 2u) << "final layer has no bias";
  Tensor bias = params[1];
  std::fill(bias.data(), bias.data() + bias.numel(), value);
}

void Mlp::ZeroInitFinalLayer() {
  for (Tensor p : layers_.back()->Parameters()) {
    std::fill(p.data(), p.data() + p.numel(), 0.0f);
  }
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& layer : layers_) {
    for (const Tensor& p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace halk::nn
