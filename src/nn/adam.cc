#include "nn/adam.h"

#include <cmath>

#include "common/logging.h"

namespace halk::nn {

Adam::Adam(std::vector<tensor::Tensor> params, const Options& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Tensor& p : params_) {
    HALK_CHECK(p.defined());
    HALK_CHECK(p.requires_grad()) << "Adam given a non-trainable tensor";
    m_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));
  double grad_sq = 0.0;
  double update_sq = 0.0;
  for (size_t t = 0; t < params_.size(); ++t) {
    tensor::Tensor& p = params_[t];
    float* data = p.data();
    const float* grad = p.grad();
    std::vector<float>& m = m_[t];
    std::vector<float>& v = v_[t];
    const int64_t n = p.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float g = grad[i];
      m[static_cast<size_t>(i)] = b1 * m[static_cast<size_t>(i)] + (1.0f - b1) * g;
      v[static_cast<size_t>(i)] = b2 * v[static_cast<size_t>(i)] + (1.0f - b2) * g * g;
      const float mhat = m[static_cast<size_t>(i)] / bias1;
      const float vhat = v[static_cast<size_t>(i)] / bias2;
      const float delta = options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
      data[i] -= delta;
      grad_sq += static_cast<double>(g) * static_cast<double>(g);
      update_sq += static_cast<double>(delta) * static_cast<double>(delta);
    }
  }
  last_grad_norm_ = std::sqrt(grad_sq);
  last_update_norm_ = std::sqrt(update_sq);
}

void Adam::ZeroGrad() {
  for (tensor::Tensor& p : params_) p.ZeroGrad();
}

}  // namespace halk::nn
