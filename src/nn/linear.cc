#include "nn/linear.h"

#include "common/logging.h"
#include "nn/init.h"

namespace halk::nn {

using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  HALK_CHECK_GT(in_features, 0);
  HALK_CHECK_GT(out_features, 0);
  weight_ = Tensor::Zeros({in_features, out_features});
  XavierUniformInit(&weight_, in_features, out_features, rng);
  weight_.set_requires_grad(true);
  if (with_bias) {
    bias_ = Tensor::Zeros({out_features});
    bias_.set_requires_grad(true);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  HALK_CHECK_EQ(x.shape().rank(), 2);
  HALK_CHECK_EQ(x.shape().dim(1), in_features_);
  Tensor y = tensor::MatMul(x, weight_);
  if (bias_.defined()) y = tensor::Add(y, bias_);
  return y;
}

std::vector<Tensor> Linear::Parameters() const {
  std::vector<Tensor> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

}  // namespace halk::nn
