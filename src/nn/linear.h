#ifndef HALK_NN_LINEAR_H_
#define HALK_NN_LINEAR_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace halk::nn {

/// Affine map `y = x W + b` for `x: [B, in]`, `W: [in, out]`, `b: [out]`.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool with_bias = true);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  tensor::Tensor weight_;  // [in, out]
  tensor::Tensor bias_;    // [out] or undefined
};

}  // namespace halk::nn

#endif  // HALK_NN_LINEAR_H_
