#include "nn/deepsets.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace halk::nn {

using tensor::Tensor;

DeepSets::DeepSets(const std::vector<int64_t>& inner_dims,
                   const std::vector<int64_t>& outer_dims, Rng* rng) {
  HALK_CHECK(!inner_dims.empty() && !outer_dims.empty());
  HALK_CHECK_EQ(inner_dims.back(), outer_dims.front())
      << "inner output width must match outer input width";
  inner_ = std::make_unique<Mlp>(inner_dims, rng);
  outer_ = std::make_unique<Mlp>(outer_dims, rng);
}

Tensor DeepSets::Forward(const std::vector<Tensor>& elements) const {
  HALK_CHECK(!elements.empty());
  Tensor acc;
  for (const Tensor& x : elements) {
    Tensor h = inner_->Forward(x);
    acc = acc.defined() ? tensor::Add(acc, h) : h;
  }
  Tensor mean =
      tensor::MulScalar(acc, 1.0f / static_cast<float>(elements.size()));
  return outer_->Forward(mean);
}

std::vector<Tensor> DeepSets::Parameters() const {
  std::vector<Tensor> out = inner_->Parameters();
  for (const Tensor& p : outer_->Parameters()) out.push_back(p);
  return out;
}

}  // namespace halk::nn
