#ifndef HALK_NN_ATTENTION_H_
#define HALK_NN_ATTENTION_H_

#include <vector>

#include "tensor/ops.h"

namespace halk::nn {

/// Elementwise softmax across a list of equally-shaped score tensors:
/// `w_i = exp(s_i) / sum_j exp(s_j)`, computed per (batch, dimension)
/// coordinate. This is the normalization used by the HaLk semantic-average
/// center attention (Eqs. 7 and 10): each embedding dimension gets its own
/// attention distribution over the k inputs.
///
/// Scores are max-shifted per coordinate before exponentiation for numerical
/// stability; the shift is detached so gradients match plain softmax.
std::vector<tensor::Tensor> SoftmaxAcross(
    const std::vector<tensor::Tensor>& scores);

/// Weighted sum `sum_i w_i * x_i` with per-coordinate weights.
tensor::Tensor WeightedSum(const std::vector<tensor::Tensor>& weights,
                           const std::vector<tensor::Tensor>& values);

}  // namespace halk::nn

#endif  // HALK_NN_ATTENTION_H_
