#ifndef HALK_OBS_SLOW_QUERY_LOG_H_
#define HALK_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace halk::obs {

/// Bounded log of the traces of recent slow requests, keyed by query
/// fingerprint so a single hot pathological query occupies one entry no
/// matter how often it recurs (its hit count and latest/worst trace are
/// updated in place). Least-recently-slow entries are evicted beyond
/// `capacity`. Thread-safe; Offer is off the hot path (it only runs for
/// requests that already blew the threshold).
class SlowQueryLog {
 public:
  /// `threshold_ns` <= 0 rejects everything (a disabled log).
  SlowQueryLog(size_t capacity, int64_t threshold_ns);

  int64_t threshold_ns() const HALK_EXCLUDES(mu_);
  void set_threshold_ns(int64_t threshold_ns) HALK_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  /// Records `trace` under `fingerprint` when its duration is at or above
  /// the threshold; returns whether it was kept. An existing entry for the
  /// fingerprint is refreshed (hits + 1, latest trace, worst duration).
  /// `plan_nodes` / `dedup_ratio` describe the plan that served the
  /// request (0 off the planner path) — the same fields the query-stats
  /// store aggregates, so a slow entry joins to /queryz by fingerprint.
  bool Offer(const std::string& fingerprint, Trace trace,
             int64_t plan_nodes = 0, double dedup_ratio = 0.0)
      HALK_EXCLUDES(mu_);

  struct Entry {
    std::string fingerprint;
    Trace trace;          // the most recent qualifying trace
    /// Trace id of `trace`, retained standalone so a slow-log line can be
    /// joined to its exported Chrome trace / scraped histogram exemplar
    /// even after the trace's spans age out of the ring.
    uint64_t trace_id = 0;
    int64_t worst_ns = 0;  // slowest duration seen for this fingerprint
    int64_t hits = 0;      // qualifying requests, including evicted history
    /// Plan shape of the latest qualifying request: reachable plan nodes
    /// and the chunk plan's dedup ratio; 0 off the planner path.
    int64_t plan_nodes = 0;
    double dedup_ratio = 0.0;
  };

  /// Entries most-recently-slow first.
  std::vector<Entry> Entries() const HALK_EXCLUDES(mu_);
  size_t size() const HALK_EXCLUDES(mu_);
  void Clear() HALK_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  int64_t threshold_ns_ HALK_GUARDED_BY(mu_);
  std::list<Entry> entries_ HALK_GUARDED_BY(mu_);  // MRU at front
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      HALK_GUARDED_BY(mu_);
};

}  // namespace halk::obs

#endif  // HALK_OBS_SLOW_QUERY_LOG_H_
