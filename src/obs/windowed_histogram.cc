#include "obs/windowed_histogram.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace halk::obs {

WindowedHistogram::WindowedHistogram(std::vector<double> upper_bounds,
                                     int64_t slot_duration_ns, int num_slots,
                                     std::function<int64_t()> now_ns)
    : bounds_(std::move(upper_bounds)),
      slot_duration_ns_(slot_duration_ns),
      now_ns_(now_ns != nullptr ? std::move(now_ns) : NowNs),
      slots_(static_cast<size_t>(num_slots)) {
  HALK_CHECK(!bounds_.empty());
  HALK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  HALK_CHECK_GT(slot_duration_ns, 0);
  HALK_CHECK_GT(num_slots, 0);
  for (Slot& slot : slots_) {
    slot.counts =
        std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      // order: constructor runs before the histogram is shared.
      slot.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

bool WindowedHistogram::RotateToEpoch(Slot* slot, int64_t epoch) {
  // order: acquire pairs with the rotator's release epoch store, so a
  // writer that sees the fresh epoch also sees the zeroed arrays.
  int64_t cur = slot->epoch.load(std::memory_order_acquire);
  while (cur != epoch) {
    if (cur == kRotating) {
      // Another writer is zeroing this slot; spin until it publishes.
      cur = slot->epoch.load(std::memory_order_acquire);
      continue;
    }
    if (cur > epoch) {
      // This writer's clock read predates a rotation that already moved
      // the slot to a newer period: its observation belongs to a window
      // that has left the ring. Drop it (bounded, slot-boundary-only).
      return false;
    }
    // order: acq_rel — the winner both claims the slot and observes prior
    // writers' counts as retired; losers re-read via the acquire failure
    // order.
    if (slot->epoch.compare_exchange_weak(cur, kRotating,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      for (size_t b = 0; b <= bounds_.size(); ++b) {
        // order: zeroing is published by the release epoch store below.
        slot->counts[b].store(0, std::memory_order_relaxed);
      }
      slot->sum.store(0.0, std::memory_order_relaxed);
      // order: release publishes the zeroed slot to acquire readers.
      slot->epoch.store(epoch, std::memory_order_release);
      cur = epoch;
    }
  }
  return true;
}

void WindowedHistogram::Observe(double x) {
  const int64_t epoch = now_ns_() / slot_duration_ns_;
  Slot& slot = slots_[static_cast<size_t>(epoch) % slots_.size()];
  if (!RotateToEpoch(&slot, epoch)) return;
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  // order: monitoring words, as serving::Histogram::Observe; a rotation
  // racing these adds loses at most the in-flight observations of one
  // expiring slot.
  slot.counts[b].fetch_add(1, std::memory_order_relaxed);
  double current = slot.sum.load(std::memory_order_relaxed);
  while (!slot.sum.compare_exchange_weak(current, current + x,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
  }
}

WindowedHistogram::Snapshot WindowedHistogram::TakeSnapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  const int64_t now_epoch = now_ns_() / slot_duration_ns_;
  const int64_t oldest = now_epoch - static_cast<int64_t>(slots_.size()) + 1;
  for (const Slot& slot : slots_) {
    // order: acquire pairs with the rotator's release so in-window slots
    // are read post-zeroing; per-bucket reads stay monitoring-grade.
    const int64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > now_epoch) continue;  // expired/rotating
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      // order: monitoring snapshot; skew of in-flight adds is documented.
      out.counts[b] += slot.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += slot.sum.load(std::memory_order_relaxed);
  }
  for (int64_t c : out.counts) out.total += c;
  return out;
}

double WindowedHistogram::Snapshot::mean() const {
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double WindowedHistogram::Snapshot::Quantile(double q) const {
  return serving::Histogram::QuantileFromCounts(bounds, counts, q);
}

}  // namespace halk::obs
