#ifndef HALK_OBS_PROCESS_METRICS_H_
#define HALK_OBS_PROCESS_METRICS_H_

#include <cstdint>

#include "serving/metrics.h"

namespace halk::obs {

/// Point-in-time self-observation of this process, read from /proc (zeros
/// for any field the platform does not expose — the readers never fail).
struct ProcessSelfStats {
  int64_t rss_bytes = 0;    // VmRSS from /proc/self/status
  int64_t threads = 0;      // Threads from /proc/self/status
  int64_t open_fds = 0;     // entries of /proc/self/fd
  double uptime_seconds = 0.0;  // since the first stats read this process
};

/// Reads the current stats. Cheap enough for a per-scrape refresh (two
/// small /proc reads and a directory walk).
ProcessSelfStats ReadProcessSelfStats();

/// Exports the `process.*` gauge family (process.rss_bytes,
/// process.threads, process.open_fds, process.uptime_seconds) into
/// `registry` and installs a collection hook so every DumpPrometheus /
/// DumpText refreshes them — benches and the scrape endpoint read one
/// shared implementation instead of hand-rolling VmRSS parsing.
void RegisterProcessMetrics(serving::MetricsRegistry* registry);

}  // namespace halk::obs

#endif  // HALK_OBS_PROCESS_METRICS_H_
