#include "obs/trace.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::obs {

namespace {

/// Global tracer serial: thread-local ring caches key on it so a tracer
/// constructed at a recycled address never inherits stale ring pointers.
std::atomic<uint64_t> g_tracer_serial{1};

}  // namespace

double SpanRecord::annotation(const char* key, double fallback) const {
  for (int i = 0; i < num_annotations; ++i) {
    if (std::strcmp(annotations[i].key, key) == 0) {
      return annotations[i].value;
    }
  }
  return fallback;
}

bool SpanRecord::has_annotation(const char* key) const {
  for (int i = 0; i < num_annotations; ++i) {
    if (std::strcmp(annotations[i].key, key) == 0) return true;
  }
  return false;
}

Trace::Trace(uint64_t id, std::vector<SpanRecord> spans)
    : id_(id), spans_(std::move(spans)) {
  std::sort(spans_.begin(), spans_.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
}

const SpanRecord* Trace::Find(const char* name) const {
  for (const SpanRecord& s : spans_) {
    if (std::strcmp(s.name, name) == 0) return &s;
  }
  return nullptr;
}

std::vector<const SpanRecord*> Trace::FindAll(const char* name) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& s : spans_) {
    if (std::strcmp(s.name, name) == 0) out.push_back(&s);
  }
  return out;
}

int64_t Trace::duration_ns() const {
  if (spans_.empty()) return 0;
  for (const SpanRecord& s : spans_) {
    if (s.parent == 0) return s.duration_ns;
  }
  int64_t lo = spans_.front().start_ns;
  int64_t hi = lo;
  for (const SpanRecord& s : spans_) hi = std::max(hi, s.end_ns());
  return hi - lo;
}

std::string Trace::ToChromeJson() const {
  // Complete events ("ph":"X") with microsecond timestamps relative to the
  // earliest span, one virtual pid, real thread indices — loadable by
  // chrome://tracing and Perfetto as-is.
  int64_t origin_ns = spans_.empty() ? 0 : spans_.front().start_ns;
  for (const SpanRecord& s : spans_) {
    origin_ns = std::min(origin_ns, s.start_ns);
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << CEscape(s.name) << "\",\"cat\":\"halk\""
        << ",\"ph\":\"X\",\"ts\":"
        << StrFormat("%.3f",
                     static_cast<double>(s.start_ns - origin_ns) / 1000.0)
        << ",\"dur\":"
        << StrFormat("%.3f", static_cast<double>(s.duration_ns) / 1000.0)
        << ",\"pid\":1,\"tid\":" << s.thread << ",\"args\":{\"span\":" << s.id
        << ",\"parent\":" << s.parent << ",\"trace_id\":\""
        << StrFormat("%llx", static_cast<unsigned long long>(s.trace_id))
        << "\"";
    for (int i = 0; i < s.num_annotations; ++i) {
      out << ",\"" << CEscape(s.annotations[i].key)
          << "\":" << StrFormat("%g", s.annotations[i].value);
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"trace_id\":\"" << id_
      << "\"}}";
  return out.str();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One span slot of a ring. Every field is a relaxed atomic so concurrent
/// wrap-overwrite and collection stay TSan-clean; `seq` is the seqlock
/// word: 0 empty, odd mid-write, even published (2*ticket + 2).
struct Tracer::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint32_t> id{0};
  std::atomic<uint32_t> parent{0};
  std::atomic<const char*> name{""};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> duration_ns{0};
  std::atomic<int> num_annotations{0};
  std::atomic<const char*> ann_key[kMaxAnnotations];
  std::atomic<double> ann_value[kMaxAnnotations];
};

/// One thread's ring: the owning thread is the only writer, so `next` is a
/// plain monotone ticket and publication order is per-slot via `seq`.
struct Tracer::Ring {
  explicit Ring(size_t capacity, uint32_t thread_index)
      : slots(capacity), thread(thread_index) {}
  std::vector<Slot> slots;
  uint64_t next = 0;  // written by the owner thread only
  const uint32_t thread;
};

Tracer::Tracer(size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      // order: the serial only needs uniqueness, not ordering.
      serial_(g_tracer_serial.fetch_add(1, std::memory_order_relaxed)) {
  HALK_CHECK_GT(ring_capacity, 0u);
}

Tracer::~Tracer() = default;

uint64_t Tracer::StartTrace() {
  // order: the disabled-cost contract is exactly one relaxed load; id
  // allocation only needs uniqueness, not ordering.
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

uint32_t Tracer::NextSpanId() {
  // order: ids only need uniqueness; the seqlock publishes the payload.
  uint32_t id = next_span_.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = next_span_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Ring* Tracer::ThisThreadRing() {
  // Keyed by tracer serial, not address, so a tracer constructed at a
  // freed tracer's address starts with a fresh ring.
  thread_local std::unordered_map<uint64_t, Ring*> rings;
  auto it = rings.find(serial_);
  if (it != rings.end()) return it->second;
  MutexLock lock(rings_mu_);
  rings_.push_back(std::make_unique<Ring>(
      ring_capacity_, static_cast<uint32_t>(rings_.size())));
  Ring* ring = rings_.back().get();
  rings.emplace(serial_, ring);
  return ring;
}

void Tracer::Record(const SpanRecord& record) {
  if (record.trace_id == 0) return;
  Ring* ring = ThisThreadRing();
  const uint64_t ticket = ring->next++;
  Slot& slot = ring->slots[ticket % ring->slots.size()];
  // order: seqlock write protocol — odd seq (release) marks the payload
  // inconsistent, relaxed payload stores follow, and the final even seq
  // store (release) publishes them to acquire readers in Collect.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.id.store(record.id, std::memory_order_relaxed);
  slot.parent.store(record.parent, std::memory_order_relaxed);
  slot.name.store(record.name, std::memory_order_relaxed);
  slot.start_ns.store(record.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(record.duration_ns, std::memory_order_relaxed);
  const int n = std::min(record.num_annotations, kMaxAnnotations);
  // order: relaxed payload stores, published by the trailing release.
  slot.num_annotations.store(n, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    slot.ann_key[i].store(record.annotations[i].key,
                          std::memory_order_relaxed);
    slot.ann_value[i].store(record.annotations[i].value,
                            std::memory_order_relaxed);
  }
  // order: release pairs with the acquire seq load in Collect.
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

Trace Tracer::Collect(uint64_t trace_id) const {
  std::vector<SpanRecord> spans;
  if (trace_id == 0) return Trace(0, std::move(spans));
  std::vector<Ring*> rings;
  {
    MutexLock lock(rings_mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  for (Ring* ring : rings) {
    for (Slot& slot : ring->slots) {
      // order: seqlock read protocol — the acquire seq load pairs with the
      // writer's trailing release, making the relaxed payload loads below
      // observe a fully published record (re-validated by the fence +
      // relaxed re-read of seq at the end).
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
      if (slot.trace_id.load(std::memory_order_relaxed) != trace_id) {
        continue;
      }
      SpanRecord record;
      record.trace_id = trace_id;
      // order: relaxed payload reads, validated by the seq re-check below.
      record.id = slot.id.load(std::memory_order_relaxed);
      record.parent = slot.parent.load(std::memory_order_relaxed);
      record.name = slot.name.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      record.thread = ring->thread;
      record.num_annotations =
          std::min(slot.num_annotations.load(std::memory_order_relaxed),
                   kMaxAnnotations);
      // order: relaxed annotation reads, same seqlock validation.
      for (int i = 0; i < record.num_annotations; ++i) {
        record.annotations[i].key =
            slot.ann_key[i].load(std::memory_order_relaxed);
        record.annotations[i].value =
            slot.ann_value[i].load(std::memory_order_relaxed);
      }
      // order: the acquire fence orders the payload loads above before the
      // seq re-check, so an unchanged seq proves the reads were torn-free.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) {
        continue;  // overwritten mid-read; the replacement span is newer
      }
      spans.push_back(record);
    }
  }
  return Trace(trace_id, std::move(spans));
}

Trace Tracer::CollectRecent(size_t max_spans) const {
  std::vector<SpanRecord> spans;
  if (max_spans == 0) return Trace(0, std::move(spans));
  std::vector<Ring*> rings;
  {
    MutexLock lock(rings_mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  for (Ring* ring : rings) {
    for (Slot& slot : ring->slots) {
      // order: same seqlock read protocol as Collect — acquire seq load
      // pairs with the writer's trailing release; the relaxed payload
      // loads are validated by the fence + seq re-check.
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
      SpanRecord record;
      // order: relaxed payload reads, validated by the seq re-check below.
      record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      record.id = slot.id.load(std::memory_order_relaxed);
      record.parent = slot.parent.load(std::memory_order_relaxed);
      record.name = slot.name.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      record.thread = ring->thread;
      record.num_annotations =
          std::min(slot.num_annotations.load(std::memory_order_relaxed),
                   kMaxAnnotations);
      // order: relaxed annotation reads, same seqlock validation.
      for (int i = 0; i < record.num_annotations; ++i) {
        record.annotations[i].key =
            slot.ann_key[i].load(std::memory_order_relaxed);
        record.annotations[i].value =
            slot.ann_value[i].load(std::memory_order_relaxed);
      }
      // order: the acquire fence orders the payload loads above before the
      // seq re-check, so an unchanged seq proves the reads were torn-free.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) {
        continue;  // overwritten mid-read; the replacement span is newer
      }
      if (record.trace_id == 0) continue;
      spans.push_back(record);
    }
  }
  // Keep the newest `max_spans` by start time; the Trace constructor
  // re-sorts ascending for rendering.
  if (spans.size() > max_spans) {
    std::partial_sort(spans.begin(),
                      spans.begin() + static_cast<ptrdiff_t>(max_spans),
                      spans.end(),
                      [](const SpanRecord& a, const SpanRecord& b) {
                        return a.start_ns > b.start_ns;
                      });
    spans.resize(max_spans);
  }
  return Trace(0, std::move(spans));
}

uint32_t RecordSpan(const TraceContext& ctx, const char* name,
                    int64_t start_ns, int64_t end_ns,
                    std::initializer_list<Annotation> annotations,
                    uint32_t explicit_id) {
  if (!ctx.active()) return 0;
  SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.id = explicit_id != 0 ? explicit_id : ctx.tracer->NextSpanId();
  record.parent = ctx.parent;
  record.name = name;
  record.start_ns = start_ns;
  record.duration_ns = std::max<int64_t>(0, end_ns - start_ns);
  for (const Annotation& a : annotations) {
    if (record.num_annotations >= kMaxAnnotations) break;
    record.annotations[record.num_annotations++] = a;
  }
  ctx.tracer->Record(record);
  return record.id;
}

uint32_t RecordEvent(const TraceContext& ctx, const char* name,
                     std::initializer_list<Annotation> annotations) {
  if (!ctx.active()) return 0;
  const int64_t now = NowNs();
  return RecordSpan(ctx, name, now, now, annotations);
}

SpanGuard::SpanGuard(const TraceContext& ctx, const char* name) {
  if (!ctx.active()) return;
  ctx_ = ctx;
  name_ = name;
  start_ns_ = NowNs();
  id_ = ctx.tracer->NextSpanId();
  ended_ = false;
}

void SpanGuard::Annotate(const char* key, double value) {
  if (ended_ || num_annotations_ >= kMaxAnnotations) return;
  annotations_[num_annotations_++] = {key, value};
}

void SpanGuard::End() {
  if (ended_) return;
  ended_ = true;
  SpanRecord record;
  record.trace_id = ctx_.trace_id;
  record.id = id_;
  record.parent = ctx_.parent;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = NowNs() - start_ns_;
  record.num_annotations = num_annotations_;
  for (int i = 0; i < num_annotations_; ++i) {
    record.annotations[i] = annotations_[i];
  }
  ctx_.tracer->Record(record);
}

}  // namespace halk::obs
