#ifndef HALK_OBS_PROFILER_H_
#define HALK_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace halk::obs {

/// Upper bound on distinct (parent, name) regions per thread. The call
/// tree is a fixed-size append-only arena so readers never race a
/// reallocation; overflowing regions are counted but not recorded.
inline constexpr uint32_t kMaxProfileNodes = 1024;
/// Sentinel parent index of root regions.
inline constexpr uint32_t kProfileNoParent = 0xffffffffu;

/// One merged call-tree region of a ProfileSnapshot. `self_ns` is
/// `total_ns` minus the totals of the children (clamped at zero: a child
/// timed on another thread can overlap its parent's wall time).
struct ProfileEntry {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t self_ns = 0;
  std::vector<ProfileEntry> children;  // sorted by name
};

/// A flattened region with its full call path, e.g. "train/step;embed".
struct ProfileFlatEntry {
  std::string path;  // ';'-joined names from root to the region
  std::string name;  // leaf name
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t self_ns = 0;
};

/// A point-in-time aggregation of every thread's call tree, merged by
/// region path (same parent chain + same name = same entry, regardless of
/// which thread recorded it).
class ProfileSnapshot {
 public:
  ProfileSnapshot() = default;
  explicit ProfileSnapshot(std::vector<ProfileEntry> roots);

  bool empty() const { return roots_.empty(); }
  const std::vector<ProfileEntry>& roots() const { return roots_; }

  /// Sum of `total_ns` over every region named `name`, anywhere in the
  /// tree — the lookup the trainer's phase breakdown uses.
  int64_t TotalNs(const std::string& name) const;
  /// Sum of `count` over every region named `name`.
  int64_t Count(const std::string& name) const;

  /// Every region flattened depth-first with its ';'-joined path.
  std::vector<ProfileFlatEntry> Flatten() const;

  /// The `n` regions with the largest self time, descending.
  std::vector<ProfileFlatEntry> TopSelf(int n) const;

  /// Collapsed-stack flamegraph lines ("a;b;c <self_ns>\n"), the input
  /// format of flamegraph.pl / speedscope / inferno. Regions with zero
  /// self time are omitted (their time lives in their children).
  std::string ToCollapsed() const;

  /// chrome://tracing "trace event" JSON in the same shape as
  /// Trace::ToChromeJson(): complete "ph":"X" events, microsecond
  /// timestamps. An aggregate profile has no real timeline, so children
  /// are packed left-to-right inside their parent's extent; `count` and
  /// `self_us` ride along under `args`.
  std::string ToChromeJson() const;

 private:
  std::vector<ProfileEntry> roots_;
};

/// A scoped, hierarchical, thread-local CPU profiler: HALK_PROFILE_SCOPE
/// regions nest into a per-thread call tree keyed by (parent, region
/// name); Snapshot() merges every thread's tree by path into a
/// ProfileSnapshot with call counts and self/total time.
///
/// Hot-path discipline mirrors the Tracer: entering a scope when the
/// profiler is disabled costs one relaxed atomic load (no clock read, no
/// thread-local lookup); when enabled, enter/exit are lock-free — node
/// counters are relaxed atomics, the per-thread node arena is append-only
/// and published with a release store of its size, and the registry mutex
/// is touched only on a thread's first region and by Snapshot().
///
/// Region names must be string literals (or otherwise outlive the
/// profiler): nodes store the pointer. The halk_lint rule
/// `profile-scope-literal` enforces the literal part, which also keeps
/// flamegraph cardinality bounded by the number of call sites.
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler HALK_PROFILE_SCOPE records into.
  static Profiler& Global();

  void set_enabled(bool on) {
    // order: the flag only gates whether scopes record; no other state is
    // published through it.
    enabled_.store(on, std::memory_order_relaxed);
  }
  // order: hot-path check; a stale read delays capture by one scope.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Merges every thread's call tree, by path. Safe to call while other
  /// threads enter/exit scopes (counters may lag by the scopes in flight).
  ProfileSnapshot Snapshot() const HALK_EXCLUDES(states_mu_);

  /// Zeroes every region's count/total. The tree structure is kept (and
  /// scopes currently on some thread's stack keep their node), so Reset
  /// is safe to call concurrently with recording; a scope spanning the
  /// reset contributes its full duration to the fresh window.
  void Reset() HALK_EXCLUDES(states_mu_);

  /// Regions dropped because a thread exceeded kMaxProfileNodes.
  int64_t overflow_count() const;

 private:
  friend class ProfileScope;
  struct Node;
  struct ThreadState;

  ThreadState* ThisThreadState() HALK_EXCLUDES(states_mu_);

  std::atomic<bool> enabled_{false};
  const uint64_t serial_;  // distinguishes profilers in thread-local caches
  /// Guards growth of `states_` only; node access is lock-free by design
  /// (append-only arena per thread, one writer thread each).
  mutable Mutex states_mu_;
  std::vector<std::unique_ptr<ThreadState>> states_ HALK_GUARDED_BY(states_mu_);
};

/// RAII region: pushes onto this thread's region stack on construction,
/// pops and accumulates (count, duration) on destruction. When the
/// profiler is disabled at construction, both ends are no-ops.
class ProfileScope {
 public:
  ProfileScope(Profiler& profiler, const char* name);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  bool active() const { return state_ != nullptr; }

 private:
  Profiler::ThreadState* state_ = nullptr;
  uint32_t node_ = kProfileNoParent;
  uint32_t saved_current_ = kProfileNoParent;
  int64_t start_ns_ = 0;
};

#define HALK_PROFILE_CONCAT_INNER(a, b) a##b
#define HALK_PROFILE_CONCAT(a, b) HALK_PROFILE_CONCAT_INNER(a, b)

/// Times the enclosing scope as a region of the global profiler. `name`
/// must be a string literal (lint rule profile-scope-literal).
#define HALK_PROFILE_SCOPE(name)                            \
  ::halk::obs::ProfileScope HALK_PROFILE_CONCAT(            \
      halk_profile_scope_, __LINE__)(                       \
      ::halk::obs::Profiler::Global(), name)

}  // namespace halk::obs

#endif  // HALK_OBS_PROFILER_H_
