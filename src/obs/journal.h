#ifndef HALK_OBS_JOURNAL_H_
#define HALK_OBS_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace halk::obs {

/// One scalar value of a flat JSON object (journal lines and BENCH_*.json
/// are flat by construction; nested containers are rejected by the
/// parser).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;

  static JsonValue Null() { return JsonValue{}; }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind = Kind::kBool;
    v.bool_value = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind = Kind::kNumber;
    v.number = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind = Kind::kString;
    v.string_value = std::move(s);
    return v;
  }

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
};

/// A parsed flat JSON object, in key order of appearance.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// First value with the given key, or nullptr.
const JsonValue* FindKey(const JsonObject& object, const std::string& key);

/// Parses one journal/bench line: a flat JSON object whose values are
/// strings, numbers, booleans, or null. Nested objects/arrays, duplicate
/// trailing garbage, and malformed escapes are kParseError — never a
/// crash (the fuzz suite drives this on adversarial bytes).
[[nodiscard]] Result<JsonObject> ParseJsonLine(const std::string& line);

/// Incremental builder for one flat JSON line. Keys are emitted in
/// insertion order; values are rendered immediately (strings escaped,
/// doubles via %.17g so round-trips are exact, non-finite numbers as
/// null per JSON).
class JsonLineBuilder {
 public:
  JsonLineBuilder& Str(const std::string& key, const std::string& value);
  JsonLineBuilder& Num(const std::string& key, double value);
  JsonLineBuilder& Int(const std::string& key, int64_t value);
  JsonLineBuilder& Bool(const std::string& key, bool value);
  JsonLineBuilder& Null(const std::string& key);

  bool empty() const { return fields_.empty(); }
  /// The rendered object, e.g. `{"a":1,"b":"x"}`.
  std::string Finish() const;

 private:
  JsonLineBuilder& Raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// FNV-1a 64-bit over the bytes of `text`; the journal keys runs by
/// `seed` + this fingerprint of the rendered trainer options so two
/// journals are comparable iff their configurations match.
uint64_t Fnv1a64(const std::string& text);

/// Append-only JSONL training journal: one flat JSON object per line,
/// flushed per record so a crashed run keeps every completed step. Record
/// kinds are distinguished by the "record" key — "header" (seed, options
/// fingerprint, model, hyperparameters), "step" (loss, norms, tape op
/// totals, wall time), "eval" (held-out MRR / Hits@3) — see
/// docs/observability.md for the full schema table.
class TrainJournal {
 public:
  /// Opens (truncating) `path` for writing. kIOError if unwritable.
  [[nodiscard]] static Result<std::unique_ptr<TrainJournal>> Open(
      const std::string& path);
  /// Journal writing into a caller-owned stream (tests, stdout).
  static std::unique_ptr<TrainJournal> ToStream(std::ostream* out);

  /// Writes one record (appends the newline, flushes).
  void Write(const JsonLineBuilder& record) HALK_EXCLUDES(mu_);

  int64_t records_written() const HALK_EXCLUDES(mu_);
  const std::string& path() const { return path_; }

  /// Use Open / ToStream; public only for std::make_unique.
  TrainJournal(std::unique_ptr<std::ofstream> file, std::ostream* out,
               std::string path);

 private:
  const std::string path_;
  mutable Mutex mu_;
  std::unique_ptr<std::ofstream> file_ HALK_GUARDED_BY(mu_);
  std::ostream* out_ HALK_GUARDED_BY(mu_);  // file_.get() or caller-owned
  int64_t records_ HALK_GUARDED_BY(mu_) = 0;
};

/// Append-only JSONL serving request journal: one flat JSON object per
/// finished request, flushed per record (same persistence discipline as
/// TrainJournal), for offline latency/SLO analysis and joining with slow
/// traces. Fields: fingerprint (canonical query fingerprint, hex), status
/// (Status code name, "OK" on success), latency_us, k, coverage,
/// cache_hit, trace_id (hex, "0" when tracing was off), plan_nodes,
/// dedup_ratio (plan shape; 0 off the planner path) — see
/// docs/observability.md.
class ServeJournal {
 public:
  /// Opens (truncating) `path` for writing. kIOError if unwritable.
  [[nodiscard]] static Result<std::unique_ptr<ServeJournal>> Open(
      const std::string& path);
  /// Journal writing into a caller-owned stream (tests, stdout).
  static std::unique_ptr<ServeJournal> ToStream(std::ostream* out);

  /// One finished request. Off the submit hot path only in the sense that
  /// it runs at request completion; the write itself is a mutex-serialized
  /// flushed append, so only enable the journal when auditing.
  /// `plan_nodes` / `dedup_ratio` describe the plan that served the
  /// request (0 off the planner path) — the join columns shared with the
  /// query-stats store behind /queryz and with SlowQueryLog entries.
  void Record(const std::string& fingerprint, const std::string& status,
              double latency_us, int64_t k, double coverage, bool cache_hit,
              uint64_t trace_id, int64_t plan_nodes = 0,
              double dedup_ratio = 0.0) HALK_EXCLUDES(mu_);

  int64_t records_written() const HALK_EXCLUDES(mu_);
  const std::string& path() const { return path_; }

  /// Use Open / ToStream; public only for std::make_unique.
  ServeJournal(std::unique_ptr<std::ofstream> file, std::ostream* out,
               std::string path);

 private:
  const std::string path_;
  mutable Mutex mu_;
  std::unique_ptr<std::ofstream> file_ HALK_GUARDED_BY(mu_);
  std::ostream* out_ HALK_GUARDED_BY(mu_);  // file_.get() or caller-owned
  int64_t records_ HALK_GUARDED_BY(mu_) = 0;
};

}  // namespace halk::obs

#endif  // HALK_OBS_JOURNAL_H_
