#include "obs/process_metrics.h"

#include <dirent.h>

#include <cstdio>
#include <cstring>

#include "obs/trace.h"

namespace halk::obs {

namespace {

/// Parses the "VmRSS:" / "Threads:" lines of /proc/self/status. Absent
/// file or fields (non-Linux) leave the outputs at 0.
void ReadProcStatus(int64_t* rss_bytes, int64_t* threads) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long value = 0;
    if (std::sscanf(line, "VmRSS: %ld", &value) == 1) {
      *rss_bytes = static_cast<int64_t>(value) * 1024;  // reported in KiB
    } else if (std::sscanf(line, "Threads: %ld", &value) == 1) {
      *threads = static_cast<int64_t>(value);
    }
  }
  std::fclose(f);
}

int64_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  int64_t n = 0;
  while (const dirent* entry = readdir(dir)) {
    if (std::strcmp(entry->d_name, ".") == 0 ||
        std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    ++n;
  }
  closedir(dir);
  // The directory handle itself is one of the counted entries.
  return n > 0 ? n - 1 : 0;
}

/// Steady-clock anchor latched on the first read, so uptime is "seconds
/// since this process started observing itself" — monotone and immune to
/// wall-clock steps.
int64_t ProcessStartNs() {
  static const int64_t start_ns = NowNs();
  return start_ns;
}

}  // namespace

ProcessSelfStats ReadProcessSelfStats() {
  ProcessSelfStats stats;
  ReadProcStatus(&stats.rss_bytes, &stats.threads);
  stats.open_fds = CountOpenFds();
  stats.uptime_seconds =
      static_cast<double>(NowNs() - ProcessStartNs()) / 1e9;
  return stats;
}

void RegisterProcessMetrics(serving::MetricsRegistry* registry) {
  serving::Gauge* rss = registry->GetGauge("process.rss_bytes");
  serving::Gauge* threads = registry->GetGauge("process.threads");
  serving::Gauge* fds = registry->GetGauge("process.open_fds");
  serving::Gauge* uptime = registry->GetGauge("process.uptime_seconds");
  ProcessStartNs();  // anchor uptime at registration, not first scrape
  registry->AddCollectionHook([rss, threads, fds, uptime] {
    const ProcessSelfStats stats = ReadProcessSelfStats();
    rss->Set(static_cast<double>(stats.rss_bytes));
    threads->Set(static_cast<double>(stats.threads));
    fds->Set(static_cast<double>(stats.open_fds));
    uptime->Set(stats.uptime_seconds);
  });
}

}  // namespace halk::obs
