#include "obs/query_stats.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/journal.h"

namespace halk::obs {

namespace {

// Weight of the newest sample in the feedback EWMA: heavy enough to track
// KG updates within a few observations, light enough that one noisy probe
// cannot flip a schedule ordering for long.
constexpr double kFeedbackAlpha = 0.25;

static_assert(static_cast<size_t>(query::OpType::kNegation) + 1 ==
                  kNumOpKinds,
              "kNumOpKinds must cover every query::OpType");

}  // namespace

QueryStatsStore::QueryStatsStore(size_t capacity, size_t feedback_capacity,
                                 int64_t feedback_min_samples)
    : capacity_(std::max<size_t>(capacity, 1)),
      feedback_capacity_(std::max<size_t>(feedback_capacity, 1)),
      feedback_min_samples_(std::max<int64_t>(feedback_min_samples, 1)) {}

void QueryStatsStore::Record(const std::string& fingerprint,
                             const QueryObservation& observation) {
  MutexLock lock(mu_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    entries_.push_front(Stats{});
    entries_.front().fingerprint = fingerprint;
    index_[fingerprint] = entries_.begin();
    it = index_.find(fingerprint);
  } else {
    // LRU refresh: splice the entry to the front in place.
    entries_.splice(entries_.begin(), entries_, it->second);
    it->second = entries_.begin();
  }
  Stats& s = *it->second;
  s.hits += 1;
  if (observation.cache_hit) s.cache_hits += 1;
  s.latency_us.Add(observation.latency_us);
  if (!observation.structure.empty()) s.structure = observation.structure;
  if (observation.plan_nodes > 0) {
    s.plan_nodes = observation.plan_nodes;
    s.dedup_ratio = observation.dedup_ratio;
  }
  if (observation.worst_qerror > 0.0) {
    s.qerror.Add(observation.worst_qerror);
    s.worst_qerror = std::max(s.worst_qerror, observation.worst_qerror);
  }
  for (size_t op = 0; op < kNumOpKinds; ++op) {
    s.op_ns[op] += observation.op_ns[op];
  }
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().fingerprint);
    entries_.pop_back();
  }
}

void QueryStatsStore::RecordSubtreeRows(const query::Fingerprint& key,
                                        double actual_rows) {
  if (actual_rows < 0.0 || !std::isfinite(actual_rows)) return;
  MutexLock lock(feedback_mu_);
  auto it = feedback_.find(key);
  if (it == feedback_.end()) {
    feedback_lru_.push_front(key);
    FeedbackEntry entry;
    entry.rows = actual_rows;
    entry.samples = 1;
    entry.lru = feedback_lru_.begin();
    feedback_.emplace(key, entry);
  } else {
    FeedbackEntry& entry = it->second;
    entry.rows = (1.0 - kFeedbackAlpha) * entry.rows +
                 kFeedbackAlpha * actual_rows;
    entry.samples += 1;
    feedback_lru_.splice(feedback_lru_.begin(), feedback_lru_, entry.lru);
    entry.lru = feedback_lru_.begin();
  }
  while (feedback_.size() > feedback_capacity_) {
    feedback_.erase(feedback_lru_.back());
    feedback_lru_.pop_back();
  }
}

bool QueryStatsStore::ObservedRows(const query::Fingerprint& key,
                                   double* rows) const {
  MutexLock lock(feedback_mu_);
  const auto it = feedback_.find(key);
  if (it == feedback_.end() || it->second.samples < feedback_min_samples_) {
    return false;
  }
  *rows = it->second.rows;
  return true;
}

bool QueryStatsStore::Lookup(const std::string& fingerprint,
                             Stats* out) const {
  MutexLock lock(mu_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) return false;
  *out = *it->second;
  return true;
}

std::vector<QueryStatsStore::Stats> QueryStatsStore::TopByTime(
    size_t n) const {
  std::vector<Stats> all;
  {
    MutexLock lock(mu_);
    all.assign(entries_.begin(), entries_.end());
  }
  std::sort(all.begin(), all.end(), [](const Stats& a, const Stats& b) {
    const int64_t ta = a.total_op_ns();
    const int64_t tb = b.total_op_ns();
    if (ta != tb) return ta > tb;
    if (a.hits != b.hits) return a.hits > b.hits;
    if (a.latency_us.mean != b.latency_us.mean) {
      return a.latency_us.mean > b.latency_us.mean;
    }
    return a.fingerprint < b.fingerprint;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string QueryStatsStore::ToJson(size_t top_n) const {
  const std::vector<Stats> top = TopByTime(top_n);
  std::string out = "{\"queries\":[";
  for (size_t i = 0; i < top.size(); ++i) {
    const Stats& s = top[i];
    JsonLineBuilder line;
    line.Str("fingerprint", s.fingerprint)
        .Str("structure", s.structure)
        .Int("hits", s.hits)
        .Int("cache_hits", s.cache_hits)
        .Num("latency_us_mean", s.latency_us.mean)
        .Num("latency_us_stddev", std::sqrt(s.latency_us.Variance()))
        .Int("qerror_samples", s.qerror.count)
        .Num("qerror_mean", s.qerror.mean)
        .Num("qerror_worst", s.worst_qerror)
        .Int("plan_nodes", s.plan_nodes)
        .Num("dedup_ratio", s.dedup_ratio)
        .Num("node_us_total", static_cast<double>(s.total_op_ns()) / 1e3);
    for (size_t op = 0; op < kNumOpKinds; ++op) {
      line.Num(std::string("us_") +
                   query::OpTypeName(static_cast<query::OpType>(op)),
               static_cast<double>(s.op_ns[op]) / 1e3);
    }
    if (i > 0) out += ",";
    out += line.Finish();
  }
  out += "]}";
  return out;
}

size_t QueryStatsStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t QueryStatsStore::feedback_size() const {
  MutexLock lock(feedback_mu_);
  return feedback_.size();
}

void QueryStatsStore::Clear() {
  {
    MutexLock lock(mu_);
    entries_.clear();
    index_.clear();
  }
  MutexLock lock(feedback_mu_);
  feedback_.clear();
  feedback_lru_.clear();
}

}  // namespace halk::obs
