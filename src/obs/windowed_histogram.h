#ifndef HALK_OBS_WINDOWED_HISTOGRAM_H_
#define HALK_OBS_WINDOWED_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serving/metrics.h"

namespace halk::obs {

/// A rolling-window histogram: a ring of fixed-duration slots, each a
/// lock-free bucket array shaped like serving::Histogram, so "p99 over the
/// last five minutes" is answerable from a running server (the cumulative
/// Histogram can only answer "p99 since boot"). Observe is lock-free: it
/// maps the current time to a slot, lazily rotates the slot when its epoch
/// has expired (a CAS-elected rotator zeroes it; racing writers spin a few
/// instructions or, when they hold an already-obsolete epoch, drop the
/// observation — monitoring-grade loss at slot boundaries only), and
/// fetch_adds the bucket. Snapshot merges every slot whose epoch is inside
/// the window; concurrent observations may be missed or double-attributed
/// across the merge by the few in flight, exact once writers quiesce.
///
/// The clock is injectable so tests drive rotation deterministically; the
/// default is the tracer timebase NowNs (steady clock).
class WindowedHistogram {
 public:
  /// `upper_bounds` as serving::Histogram; the window covers `num_slots`
  /// slots of `slot_duration_ns` each (e.g. 10 slots of 30s = a 5-minute
  /// window whose resolution is 30s).
  WindowedHistogram(std::vector<double> upper_bounds,
                    int64_t slot_duration_ns, int num_slots,
                    std::function<int64_t()> now_ns = nullptr);

  void Observe(double x);

  /// Merged state of the slots currently inside the window.
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1, overflow last
    double sum = 0.0;
    int64_t total = 0;

    double mean() const;
    /// serving::Histogram::Quantile semantics over the merged counts.
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  int64_t window_ns() const {
    return slot_duration_ns_ * static_cast<int64_t>(slots_.size());
  }
  int64_t slot_duration_ns() const { return slot_duration_ns_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  /// One ring slot. `epoch` is the slot's current owner period
  /// (now / slot_duration), or kRotating while an elected writer zeroes
  /// the arrays.
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::unique_ptr<std::atomic<int64_t>[]> counts;  // bounds + overflow
    std::atomic<double> sum{0.0};
  };
  static constexpr int64_t kRotating = -2;

  /// Ensures `slot` belongs to `epoch`; returns false when this writer's
  /// epoch is already obsolete (drop the observation).
  bool RotateToEpoch(Slot* slot, int64_t epoch);

  const std::vector<double> bounds_;
  const int64_t slot_duration_ns_;
  const std::function<int64_t()> now_ns_;
  std::vector<Slot> slots_;
};

}  // namespace halk::obs

#endif  // HALK_OBS_WINDOWED_HISTOGRAM_H_
