#include "obs/profiler.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/trace.h"

namespace halk::obs {

namespace {

/// Global profiler serial: thread-local state caches key on it so a
/// profiler constructed at a recycled address never inherits another
/// profiler's per-thread trees (same idiom as the tracer serial).
std::atomic<uint64_t> g_profiler_serial{1};

}  // namespace

/// One call-tree region of one thread. A node is created the first time
/// its (parent, name) pair is entered on its thread and never moves or
/// dies; only its owner thread creates children under it, but Snapshot()
/// reads the counters from other threads, hence the relaxed atomics.
struct Profiler::Node {
  const char* name = "";
  uint32_t parent = kProfileNoParent;
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> total_ns{0};
};

/// Per-thread call-tree arena. The owning thread is the only writer;
/// Snapshot() threads read concurrently. `num_nodes` is the publication
/// point: nodes[0..num_nodes) are fully initialized once an acquire load
/// observes the size (the owner release-stores it after filling the slot).
struct Profiler::ThreadState {
  uint64_t thread_index = 0;
  std::array<Node, kMaxProfileNodes> nodes;
  std::atomic<uint32_t> num_nodes{0};
  std::atomic<int64_t> overflow{0};
  /// Index of the innermost open region on this thread (owner-only).
  uint32_t current = kProfileNoParent;

  /// Finds or creates the child of `parent` named `name`. Returns
  /// kProfileNoParent when the arena is full.
  uint32_t Intern(const char* name, uint32_t parent) {
    // order: acquire pairs with the release store below so the linear
    // scan only visits fully initialized nodes.
    const uint32_t n = num_nodes.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n; ++i) {
      if (nodes[i].parent == parent &&
          (nodes[i].name == name || std::strcmp(nodes[i].name, name) == 0)) {
        return i;
      }
    }
    if (n >= kMaxProfileNodes) {
      // order: statistic only; nothing is ordered against it.
      overflow.fetch_add(1, std::memory_order_relaxed);
      return kProfileNoParent;
    }
    nodes[n].name = name;
    nodes[n].parent = parent;
    // order: release publishes the name/parent writes above to Snapshot()
    // readers that acquire-load num_nodes.
    num_nodes.store(n + 1, std::memory_order_release);
    return n;
  }
};

Profiler::Profiler()
    // order: serial allocation is a plain unique-id fetch; no other data
    // is published through it.
    : serial_(g_profiler_serial.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() = default;

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // halk_lint:allow no-raw-new-delete intentionally leaked singleton
  return *profiler;
}

Profiler::ThreadState* Profiler::ThisThreadState() {
  // Keyed by profiler serial, not `this`, so a profiler constructed at a
  // recycled address never resolves to a stale state (tracer idiom).
  thread_local std::unordered_map<uint64_t, ThreadState*> states;
  auto it = states.find(serial_);
  if (it != states.end()) return it->second;
  MutexLock lock(states_mu_);
  states_.push_back(std::make_unique<ThreadState>());
  ThreadState* state = states_.back().get();
  state->thread_index = states_.size() - 1;
  states.emplace(serial_, state);
  return state;
}

int64_t Profiler::overflow_count() const {
  MutexLock lock(states_mu_);
  int64_t total = 0;
  for (const auto& s : states_) {
    // order: statistic only.
    total += s->overflow.load(std::memory_order_relaxed);
  }
  return total;
}

void Profiler::Reset() {
  MutexLock lock(states_mu_);
  for (const auto& s : states_) {
    // order: acquire pairs with Intern's release so only initialized
    // nodes are touched.
    const uint32_t n = s->num_nodes.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n; ++i) {
      // order: counters are independent statistics; tearing across the
      // pair during a concurrent scope exit is acceptable.
      s->nodes[i].count.store(0, std::memory_order_relaxed);
      s->nodes[i].total_ns.store(0, std::memory_order_relaxed);
    }
    // order: statistic only.
    s->overflow.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Mutable merge tree keyed by (parent chain, name).
struct MergeNode {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  std::unordered_map<std::string, MergeNode> children;
};

ProfileEntry Finalize(const std::string& name, const MergeNode& node) {
  ProfileEntry entry;
  entry.name = name;
  entry.count = node.count;
  entry.total_ns = node.total_ns;
  int64_t child_total = 0;
  entry.children.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    child_total += child.total_ns;
    entry.children.push_back(Finalize(child_name, child));
  }
  std::sort(entry.children.begin(), entry.children.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.name < b.name;
            });
  entry.self_ns = std::max<int64_t>(0, entry.total_ns - child_total);
  return entry;
}

}  // namespace

ProfileSnapshot Profiler::Snapshot() const {
  MergeNode root;
  MutexLock lock(states_mu_);
  for (const auto& s : states_) {
    // order: acquire pairs with Intern's release store of num_nodes.
    const uint32_t n = s->num_nodes.load(std::memory_order_acquire);
    // Walk nodes in creation order: a node's parent always has a smaller
    // index, so the parent's MergeNode exists by the time the child is
    // visited.
    std::vector<MergeNode*> merged(n, nullptr);
    for (uint32_t i = 0; i < n; ++i) {
      const Node& node = s->nodes[i];
      MergeNode& parent =
          node.parent == kProfileNoParent ? root : *merged[node.parent];
      MergeNode& m = parent.children[node.name];
      // order: counters are statistics; a scope exiting concurrently may
      // be counted with a lagging duration — acceptable for a snapshot.
      m.count += node.count.load(std::memory_order_relaxed);
      m.total_ns += node.total_ns.load(std::memory_order_relaxed);
      merged[i] = &m;
    }
  }
  std::vector<ProfileEntry> roots;
  roots.reserve(root.children.size());
  for (const auto& [name, node] : root.children) {
    roots.push_back(Finalize(name, node));
  }
  std::sort(roots.begin(), roots.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.name < b.name;
            });
  return ProfileSnapshot(std::move(roots));
}

ProfileScope::ProfileScope(Profiler& profiler, const char* name) {
  if (!profiler.enabled()) return;  // one relaxed load when disabled
  Profiler::ThreadState* state = profiler.ThisThreadState();
  const uint32_t node = state->Intern(name, state->current);
  if (node == kProfileNoParent) return;  // arena full: drop, stay inert
  state_ = state;
  node_ = node;
  saved_current_ = state->current;
  state->current = node;
  start_ns_ = NowNs();
}

ProfileScope::~ProfileScope() {
  if (state_ == nullptr) return;
  const int64_t elapsed = NowNs() - start_ns_;
  state_->current = saved_current_;
  Profiler::Node& node = state_->nodes[node_];
  // order: counters are independent statistics read relaxed by Snapshot.
  node.count.fetch_add(1, std::memory_order_relaxed);
  // order: same.
  node.total_ns.fetch_add(elapsed, std::memory_order_relaxed);
}

ProfileSnapshot::ProfileSnapshot(std::vector<ProfileEntry> roots)
    : roots_(std::move(roots)) {}

namespace {

void SumNamed(const std::vector<ProfileEntry>& entries,
              const std::string& name, int64_t* total_ns, int64_t* count) {
  for (const ProfileEntry& e : entries) {
    if (e.name == name) {
      *total_ns += e.total_ns;
      *count += e.count;
    }
    SumNamed(e.children, name, total_ns, count);
  }
}

void FlattenInto(const std::vector<ProfileEntry>& entries,
                 const std::string& prefix,
                 std::vector<ProfileFlatEntry>* out) {
  for (const ProfileEntry& e : entries) {
    ProfileFlatEntry flat;
    flat.path = prefix.empty() ? e.name : prefix + ";" + e.name;
    flat.name = e.name;
    flat.count = e.count;
    flat.total_ns = e.total_ns;
    flat.self_ns = e.self_ns;
    const std::string path = flat.path;
    out->push_back(std::move(flat));
    FlattenInto(e.children, path, out);
  }
}

}  // namespace

int64_t ProfileSnapshot::TotalNs(const std::string& name) const {
  int64_t total = 0;
  int64_t count = 0;
  SumNamed(roots_, name, &total, &count);
  return total;
}

int64_t ProfileSnapshot::Count(const std::string& name) const {
  int64_t total = 0;
  int64_t count = 0;
  SumNamed(roots_, name, &total, &count);
  return count;
}

std::vector<ProfileFlatEntry> ProfileSnapshot::Flatten() const {
  std::vector<ProfileFlatEntry> out;
  FlattenInto(roots_, "", &out);
  return out;
}

std::vector<ProfileFlatEntry> ProfileSnapshot::TopSelf(int n) const {
  std::vector<ProfileFlatEntry> flat = Flatten();
  std::sort(flat.begin(), flat.end(),
            [](const ProfileFlatEntry& a, const ProfileFlatEntry& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.path < b.path;
            });
  if (n >= 0 && flat.size() > static_cast<size_t>(n)) flat.resize(n);
  return flat;
}

std::string ProfileSnapshot::ToCollapsed() const {
  std::ostringstream out;
  for (const ProfileFlatEntry& e : Flatten()) {
    if (e.self_ns <= 0) continue;
    out << e.path << " " << e.self_ns << "\n";
  }
  return out.str();
}

namespace {

/// Emits one entry plus its children as chrome "complete" events, packing
/// children sequentially from the parent's start (aggregate profiles have
/// no real timeline to preserve).
void EmitChromeEvents(const ProfileEntry& entry, int64_t start_ns,
                      bool* first, std::ostringstream* out) {
  if (!*first) *out << ",";
  *first = false;
  *out << "{\"name\":\"" << CEscape(entry.name) << "\",\"cat\":\"halk\""
       << ",\"ph\":\"X\",\"ts\":"
       << StrFormat("%.3f", static_cast<double>(start_ns) / 1000.0)
       << ",\"dur\":"
       << StrFormat("%.3f", static_cast<double>(entry.total_ns) / 1000.0)
       << ",\"pid\":1,\"tid\":0,\"args\":{\"count\":" << entry.count
       << ",\"self_us\":"
       << StrFormat("%.3f", static_cast<double>(entry.self_ns) / 1000.0)
       << "}}";
  int64_t child_start = start_ns;
  for (const ProfileEntry& child : entry.children) {
    EmitChromeEvents(child, child_start, first, out);
    child_start += child.total_ns;
  }
}

}  // namespace

std::string ProfileSnapshot::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  int64_t start_ns = 0;
  for (const ProfileEntry& root : roots_) {
    EmitChromeEvents(root, start_ns, &first, &out);
    start_ns += root.total_ns;
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"source\":"
      << "\"halk_profiler\"}}";
  return out.str();
}

}  // namespace halk::obs
