#ifndef HALK_OBS_SLO_TRACKER_H_
#define HALK_OBS_SLO_TRACKER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/windowed_histogram.h"
#include "serving/metrics.h"

namespace halk::obs {

/// SLO configuration: two objectives (p99 latency, error rate) evaluated
/// over two rolling windows with burn-rate thresholds, the standard
/// multi-window multi-burn-rate alerting policy — the fast window catches
/// a sudden outage in minutes, the slow window keeps a slow leak from
/// paging, and an alert requires BOTH windows to burn.
struct SloOptions {
  /// Latency objective: at most `latency_budget` of requests may exceed
  /// `latency_objective_us` (i.e. the p(1 - latency_budget) target).
  double latency_objective_us = 100000.0;
  double latency_budget = 0.01;
  /// Error objective: at most `error_budget` of requests may fail.
  double error_budget = 0.001;

  /// Rolling windows, each a ring of `*_slots` slots.
  int64_t fast_window_ns = 5LL * 60 * 1000 * 1000 * 1000;  // 5 minutes
  int fast_slots = 10;
  int64_t slow_window_ns = 60LL * 60 * 1000 * 1000 * 1000;  // 1 hour
  int slow_slots = 12;

  /// An objective alerts when fast burn >= fast_burn_threshold AND slow
  /// burn >= slow_burn_threshold (burn 1.0 = consuming budget exactly at
  /// the sustainable rate). Defaults follow the SRE-workbook 5m/1h page
  /// policy: 14.4x spends 2% of a 30-day budget in an hour.
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;

  /// Injectable clock for deterministic tests; null = steady-clock NowNs.
  std::function<int64_t()> now_ns;
};

/// Point-in-time SLO evaluation (the /slo endpoint body, flattened).
struct SloStatus {
  int64_t requests_fast = 0;  // requests seen in the fast window
  int64_t requests_slow = 0;
  double p99_us_fast = 0.0;  // latency quantile over the fast window
  double latency_burn_fast = 0.0;
  double latency_burn_slow = 0.0;
  double error_burn_fast = 0.0;
  double error_burn_slow = 0.0;
  bool latency_alert = false;
  bool error_alert = false;

  /// One flat JSON object (journal-line grammar).
  std::string ToJson() const;
};

/// Tracks the serving SLOs over rolling windows and evaluates burn rates.
/// RecordRequest is lock-free (windowed bucket adds only) and sits on the
/// request-finish path; Evaluate snapshots the windows, computes burn
/// rates, latches alert transitions, and refreshes the `slo.*` instruments
/// when a registry was attached — RegisterMetrics arranges for that to
/// happen on every scrape via the registry's collection hook.
class SloTracker {
 public:
  explicit SloTracker(const SloOptions& options = {});

  /// Feed one finished request: its latency and whether it succeeded.
  void RecordRequest(double latency_us, bool ok);

  /// Evaluates both objectives over both windows now. Thread-safe; alert
  /// rising edges increment slo.alerts_fired exactly once per transition.
  SloStatus Evaluate() HALK_EXCLUDES(mu_);

  /// Exports slo.* gauges/counters into `registry` and installs a
  /// collection hook so every DumpPrometheus/DumpText re-evaluates first:
  ///   slo.latency_burn_fast / _slow, slo.error_burn_fast / _slow,
  ///   slo.p99_us_fast, slo.requests_fast,
  ///   slo.alert_active{objective="latency"|"errors"}, slo.alerts_fired.
  void RegisterMetrics(serving::MetricsRegistry* registry)
      HALK_EXCLUDES(mu_);

  const SloOptions& options() const { return options_; }

 private:
  /// Good/bad totals over one rolling window, encoded as a two-bucket
  /// WindowedHistogram (good lands in the finite bucket, bad in the
  /// overflow bucket) so the windowed rotation protocol is shared.
  class WindowedRatio {
   public:
    WindowedRatio(int64_t window_ns, int num_slots,
                  std::function<int64_t()> now_ns)
        : hist_({0.5}, window_ns / num_slots, num_slots,
                std::move(now_ns)) {}
    void Add(bool bad) { hist_.Observe(bad ? 1.0 : 0.0); }
    /// (bad, total) over the window.
    std::pair<int64_t, int64_t> Read() const {
      const WindowedHistogram::Snapshot s = hist_.TakeSnapshot();
      return {s.counts[1], s.total};
    }

   private:
    WindowedHistogram hist_;
  };

  const SloOptions options_;

  WindowedHistogram latency_fast_;  // latency distribution, fast window
  WindowedRatio latency_slo_fast_;  // over-objective ratio per window
  WindowedRatio latency_slo_slow_;
  WindowedRatio errors_fast_;
  WindowedRatio errors_slow_;

  mutable Mutex mu_;
  bool latency_alert_active_ HALK_GUARDED_BY(mu_) = false;
  bool error_alert_active_ HALK_GUARDED_BY(mu_) = false;
  int64_t alerts_fired_ HALK_GUARDED_BY(mu_) = 0;

  // Exported instruments; null until RegisterMetrics (stable afterwards).
  serving::Gauge* latency_burn_fast_gauge_ = nullptr;
  serving::Gauge* latency_burn_slow_gauge_ = nullptr;
  serving::Gauge* error_burn_fast_gauge_ = nullptr;
  serving::Gauge* error_burn_slow_gauge_ = nullptr;
  serving::Gauge* p99_fast_gauge_ = nullptr;
  serving::Gauge* requests_fast_gauge_ = nullptr;
  serving::Gauge* latency_alert_gauge_ = nullptr;
  serving::Gauge* error_alert_gauge_ = nullptr;
  serving::Counter* alerts_fired_counter_ = nullptr;
};

}  // namespace halk::obs

#endif  // HALK_OBS_SLO_TRACKER_H_
