#include "obs/journal.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace halk::obs {

const JsonValue* FindKey(const JsonObject& object, const std::string& key) {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent reader over one line. Positions are byte offsets;
/// every failure path reports one.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  Result<JsonObject> Parse() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    JsonObject object;
    SkipSpace();
    if (Consume('}')) {
      SkipSpace();
      return AtEnd() ? Result<JsonObject>(std::move(object))
                     : Error("trailing bytes after object");
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Error("expected string key");
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      JsonValue value;
      HALK_RETURN_NOT_OK(ParseValue(&value));
      object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    SkipSpace();
    if (!AtEnd()) return Error("trailing bytes after object");
    return object;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                        text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at byte " + std::to_string(pos_));
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  /// Appends `cp` as UTF-8. Unpaired surrogates become U+FFFD.
  static void AppendCodepoint(uint32_t cp, std::string* out) {
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (true) {
      if (AtEnd()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        // Raw control characters are invalid JSON but harmless to keep;
        // the journal never emits them and the fuzzer must not crash.
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-DFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            const size_t saved = pos_;
            pos_ += 2;
            uint32_t lo = 0;
            if (ParseHex4(&lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = saved;  // lone high surrogate → U+FFFD below
            }
          }
          AppendCodepoint(cp, out);
          break;
        }
        default:
          return false;
      }
    }
  }

  Status ParseValue(JsonValue* out) {
    const char c = Peek();
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return Error("malformed string");
      *out = JsonValue::String(std::move(s));
      return Status::OK();
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return Error("malformed literal");
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return Error("malformed literal");
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return Error("malformed literal");
      *out = JsonValue::Null();
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Error("nested containers are not valid in journal lines");
    }
    // Number: validate the JSON grammar shape, then let strtod convert.
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return Error("expected a value");
    }
    // JSON integer part: a single 0, or 1-9 followed by digits.
    if (Peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        return Error("leading zero in number");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Error("digit required after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Error("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    // Overflow to +-inf is rejected so every accepted value can be
    // re-rendered by JsonLineBuilder (which has no non-finite form).
    if (!std::isfinite(value)) return Error("number out of range");
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonObject> ParseJsonLine(const std::string& line) {
  return LineParser(line).Parse();
}

JsonLineBuilder& JsonLineBuilder::Raw(const std::string& key,
                                      std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonLineBuilder& JsonLineBuilder::Str(const std::string& key,
                                      const std::string& value) {
  return Raw(key, "\"" + CEscape(value) + "\"");
}

JsonLineBuilder& JsonLineBuilder::Num(const std::string& key, double value) {
  // JSON has no NaN/Inf; null keeps the line parseable.
  if (!std::isfinite(value)) return Null(key);
  return Raw(key, StrFormat("%.17g", value));
}

JsonLineBuilder& JsonLineBuilder::Int(const std::string& key, int64_t value) {
  return Raw(key, std::to_string(value));
}

JsonLineBuilder& JsonLineBuilder::Bool(const std::string& key, bool value) {
  return Raw(key, value ? "true" : "false");
}

JsonLineBuilder& JsonLineBuilder::Null(const std::string& key) {
  return Raw(key, "null");
}

std::string JsonLineBuilder::Finish() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, rendered] : fields_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + CEscape(key) + "\":" + rendered;
  }
  out += "}";
  return out;
}

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  return hash;
}

TrainJournal::TrainJournal(std::unique_ptr<std::ofstream> file,
                           std::ostream* out, std::string path)
    : path_(std::move(path)), file_(std::move(file)), out_(out) {}

Result<std::unique_ptr<TrainJournal>> TrainJournal::Open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) {
    return Status::IOError("cannot open journal file: " + path);
  }
  std::ostream* out = file.get();
  return std::make_unique<TrainJournal>(std::move(file), out, path);
}

std::unique_ptr<TrainJournal> TrainJournal::ToStream(std::ostream* out) {
  return std::make_unique<TrainJournal>(nullptr, out, "");
}

void TrainJournal::Write(const JsonLineBuilder& record) {
  const std::string line = record.Finish();
  MutexLock lock(mu_);
  (*out_) << line << "\n";
  out_->flush();
  ++records_;
}

int64_t TrainJournal::records_written() const {
  MutexLock lock(mu_);
  return records_;
}

ServeJournal::ServeJournal(std::unique_ptr<std::ofstream> file,
                           std::ostream* out, std::string path)
    : path_(std::move(path)), file_(std::move(file)), out_(out) {}

Result<std::unique_ptr<ServeJournal>> ServeJournal::Open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) {
    return Status::IOError("cannot open serve journal file: " + path);
  }
  std::ostream* out = file.get();
  return std::make_unique<ServeJournal>(std::move(file), out, path);
}

std::unique_ptr<ServeJournal> ServeJournal::ToStream(std::ostream* out) {
  return std::make_unique<ServeJournal>(nullptr, out, "");
}

void ServeJournal::Record(const std::string& fingerprint,
                          const std::string& status, double latency_us,
                          int64_t k, double coverage, bool cache_hit,
                          uint64_t trace_id, int64_t plan_nodes,
                          double dedup_ratio) {
  JsonLineBuilder record;
  record.Str("record", "serve")
      .Str("fingerprint", fingerprint)
      .Str("status", status)
      .Num("latency_us", latency_us)
      .Int("k", k)
      .Num("coverage", coverage)
      .Bool("cache_hit", cache_hit)
      .Str("trace_id",
           StrFormat("%llx", static_cast<unsigned long long>(trace_id)))
      .Int("plan_nodes", plan_nodes)
      .Num("dedup_ratio", dedup_ratio);
  const std::string line = record.Finish();
  MutexLock lock(mu_);
  (*out_) << line << "\n";
  out_->flush();
  ++records_;
}

int64_t ServeJournal::records_written() const {
  MutexLock lock(mu_);
  return records_;
}

}  // namespace halk::obs
