#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

namespace halk::obs {

SlowQueryLog::SlowQueryLog(size_t capacity, int64_t threshold_ns)
    : capacity_(std::max<size_t>(capacity, 1)), threshold_ns_(threshold_ns) {}

int64_t SlowQueryLog::threshold_ns() const {
  MutexLock lock(mu_);
  return threshold_ns_;
}

void SlowQueryLog::set_threshold_ns(int64_t threshold_ns) {
  MutexLock lock(mu_);
  threshold_ns_ = threshold_ns;
}

bool SlowQueryLog::Offer(const std::string& fingerprint, Trace trace,
                         int64_t plan_nodes, double dedup_ratio) {
  const int64_t duration = trace.duration_ns();
  MutexLock lock(mu_);
  if (threshold_ns_ <= 0 || duration < threshold_ns_) return false;
  const uint64_t trace_id = trace.id();
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    Entry refreshed = std::move(*it->second);
    entries_.erase(it->second);
    refreshed.trace = std::move(trace);
    refreshed.trace_id = trace_id;
    refreshed.worst_ns = std::max(refreshed.worst_ns, duration);
    refreshed.hits += 1;
    refreshed.plan_nodes = plan_nodes;
    refreshed.dedup_ratio = dedup_ratio;
    entries_.push_front(std::move(refreshed));
    it->second = entries_.begin();
    return true;
  }
  entries_.push_front(Entry{fingerprint, std::move(trace), trace_id,
                            duration, 1, plan_nodes, dedup_ratio});
  index_[fingerprint] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().fingerprint);
    entries_.pop_back();
  }
  return true;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  MutexLock lock(mu_);
  return {entries_.begin(), entries_.end()};
}

size_t SlowQueryLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  index_.clear();
}

}  // namespace halk::obs
