#ifndef HALK_OBS_TRACE_H_
#define HALK_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace halk::obs {

/// Upper bound on key/value annotations per span. Spans are fixed-size POD
/// slots in a lock-free ring, so the bound is a compile-time constant; the
/// widest span today (a replica scan) uses six.
inline constexpr int kMaxAnnotations = 8;

/// One numeric key/value annotation. Keys must be string literals (or
/// otherwise outlive the tracer): the ring stores the pointer, not a copy.
struct Annotation {
  const char* key = nullptr;
  double value = 0.0;
};

/// A completed span, as assembled by Tracer::Collect. Times are
/// steady-clock nanoseconds (comparable within a process, not wall-clock).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint32_t id = 0;      // unique within the tracer, never 0
  uint32_t parent = 0;  // 0 = root span of its trace
  const char* name = "";
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  uint32_t thread = 0;  // dense per-tracer thread index
  int num_annotations = 0;
  Annotation annotations[kMaxAnnotations];

  int64_t end_ns() const { return start_ns + duration_ns; }
  /// Value of the named annotation, or `fallback` when absent.
  double annotation(const char* key, double fallback = 0.0) const;
  bool has_annotation(const char* key) const;
};

/// An assembled per-request trace: every span collected for one trace id,
/// sorted by (start time, span id).
class Trace {
 public:
  Trace() = default;
  Trace(uint64_t id, std::vector<SpanRecord> spans);

  uint64_t id() const { return id_; }
  bool empty() const { return spans_.empty(); }
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// First span (by start time) with the given name, or nullptr.
  const SpanRecord* Find(const char* name) const;
  std::vector<const SpanRecord*> FindAll(const char* name) const;

  /// Duration of the root span (parent == 0); when no root was recorded,
  /// the span-envelope (max end - min start). 0 for an empty trace.
  int64_t duration_ns() const;

  /// chrome://tracing / Perfetto "trace event" JSON: an object with a
  /// `traceEvents` array of complete ("ph":"X") events, timestamps in
  /// microseconds relative to the trace start, annotations under `args`.
  std::string ToChromeJson() const;

 private:
  uint64_t id_ = 0;
  std::vector<SpanRecord> spans_;
};

/// Steady-clock now in nanoseconds (the span timebase).
int64_t NowNs();

/// Produces per-request traces at near-zero cost when disabled. Completed
/// spans are recorded into a lock-free per-thread ring buffer (single
/// writer per ring; seqlock-published fixed-size slots, no allocation on
/// the hot path); Collect scans every ring for a trace id and assembles
/// the spans into a Trace. Rings wrap: a span older than `ring_capacity`
/// newer spans on its thread is silently lost, which bounds memory and
/// makes recording O(1) regardless of uptime.
///
/// Disabled-cost contract: StartTrace does one relaxed atomic load and
/// returns 0; every span helper no-ops on a zero trace id (a pointer/zero
/// check, no clock read, no ring write).
class Tracer {
 public:
  explicit Tracer(size_t ring_capacity = 4096);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    // order: enabling tracing only toggles whether ids are handed out; no
    // other state is published through the flag.
    enabled_.store(on, std::memory_order_relaxed);
  }
  // order: hot-path check; stale reads just delay span capture one request.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// A fresh nonzero trace id when enabled; 0 when disabled (downstream
  /// span calls all no-op on 0).
  uint64_t StartTrace();

  /// Allocates a span id (tracer-unique, never 0).
  uint32_t NextSpanId();

  /// Records a completed span into this thread's ring. `record.id` must be
  /// nonzero (use NextSpanId); no-ops when `record.trace_id` is 0.
  void Record(const SpanRecord& record);

  /// Snapshot of every span currently held for `trace_id`, sorted by start
  /// time. Safe to call while other threads record (seqlock reads skip
  /// slots mid-write); spans lost to ring wrap are absent.
  Trace Collect(uint64_t trace_id) const;

  /// Snapshot of the most recent `max_spans` spans across every thread
  /// ring, regardless of trace id (the /traces endpoint body). The result
  /// is a Trace with id 0 holding spans of many requests; each span keeps
  /// its own trace_id (ToChromeJson emits it under args). Same seqlock
  /// guarantees as Collect.
  Trace CollectRecent(size_t max_spans) const;

  size_t ring_capacity() const { return ring_capacity_; }

 private:
  struct Slot;
  struct Ring;

  Ring* ThisThreadRing() HALK_EXCLUDES(rings_mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint32_t> next_span_{1};
  const size_t ring_capacity_;
  const uint64_t serial_;  // distinguishes tracers in thread-local caches
  /// Guards growth of `rings_` only; slot access is lock-free by design
  /// (each Ring has one writer thread, readers go through the seqlock).
  mutable Mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_ HALK_GUARDED_BY(rings_mu_);
};

/// The handle threaded through a request path: which tracer, which trace,
/// and the span to parent new children under. Inactive contexts (null
/// tracer or zero trace id) make every span operation a no-op, so
/// call sites never branch on "is tracing on".
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint32_t parent = 0;

  bool active() const { return tracer != nullptr && trace_id != 0; }
  /// Same trace, reparented under `parent_span`.
  TraceContext Child(uint32_t parent_span) const {
    return {tracer, trace_id, parent_span};
  }
};

/// Records a span with explicit endpoints — for phases timed after the
/// fact, like queue wait (start stamped at submit, recorded at pickup).
/// Returns the span id (0 when the context is inactive). `explicit_id`
/// nonzero reuses a pre-allocated id (e.g. a root span whose id children
/// already reference).
uint32_t RecordSpan(const TraceContext& ctx, const char* name,
                    int64_t start_ns, int64_t end_ns,
                    std::initializer_list<Annotation> annotations = {},
                    uint32_t explicit_id = 0);

/// Records a zero-duration marker span (failover, hedged-wait expiry, ...).
uint32_t RecordEvent(const TraceContext& ctx, const char* name,
                     std::initializer_list<Annotation> annotations = {});

/// RAII span: stamps the clock on construction, records on End() or
/// destruction. On an inactive context every method is a cheap no-op.
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(const TraceContext& ctx, const char* name);
  ~SpanGuard() { End(); }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  bool active() const { return ctx_.active() && !ended_; }
  uint32_t id() const { return id_; }
  /// Context for children of this span.
  TraceContext child_context() const { return ctx_.Child(id_); }

  void Annotate(const char* key, double value);
  /// Records the span now (idempotent).
  void End();

 private:
  TraceContext ctx_;
  const char* name_ = "";
  int64_t start_ns_ = 0;
  uint32_t id_ = 0;
  int num_annotations_ = 0;
  Annotation annotations_[kMaxAnnotations];
  bool ended_ = true;
};

}  // namespace halk::obs

#endif  // HALK_OBS_TRACE_H_
