#ifndef HALK_OBS_QUERY_STATS_H_
#define HALK_OBS_QUERY_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "query/fingerprint.h"
#include "query/ops.h"

namespace halk::obs {

/// Number of query::OpType kinds the per-operator time breakdown tracks
/// (anchor, projection, intersection, union, difference, negation).
inline constexpr size_t kNumOpKinds = 6;

/// Welford online mean/variance accumulator — numerically stable across
/// the millions of observations a hot fingerprint can collect.
struct Welford {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  double Variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }
};

/// One finished request's analytics, fed by the serving engine. Plan
/// fields are zero for requests served off the planner path (legacy
/// batching, whole-answer cache hits).
struct QueryObservation {
  /// Structure-fingerprint hex (layout with grounding masked), "" when
  /// the request never reached the planner.
  std::string structure;
  double latency_us = 0.0;
  bool cache_hit = false;
  int64_t plan_nodes = 0;    // plan nodes reachable from the request's roots
  double dedup_ratio = 0.0;  // the owning chunk plan's merged fraction
  /// Worst per-node q-error across the request's measured nodes; 0 when
  /// none were measured.
  double worst_qerror = 0.0;
  /// Attributed operator wall ns, indexed by static_cast<size_t>(OpType).
  std::array<int64_t, kNumOpKinds> op_ns{};
};

/// Bounded fingerprint-keyed aggregate of per-query runtime statistics —
/// the backing store of the `/queryz` telemetry endpoint and the
/// planner's cardinality-feedback source. Keys are canonical query
/// fingerprints (hex), the same join key SlowQueryLog entries and
/// ServeJournal lines carry; eviction is least-recently-served, like
/// SlowQueryLog. A second, independently bounded map keyed by *subtree*
/// fingerprints holds EWMA observed cardinalities for feedback
/// (plan/planner.h consults ObservedRows for schedule ordering only).
/// Thread-safe.
class QueryStatsStore {
 public:
  /// Per-fingerprint aggregate (a snapshot copy; safe to hold).
  struct Stats {
    std::string fingerprint;  // canonical fingerprint hex (the key)
    std::string structure;    // latest structure-fingerprint hex
    int64_t hits = 0;
    int64_t cache_hits = 0;
    Welford latency_us;
    Welford qerror;           // per-request worst node q-error, when measured
    double worst_qerror = 0.0;
    int64_t plan_nodes = 0;    // latest
    double dedup_ratio = 0.0;  // latest
    std::array<int64_t, kNumOpKinds> op_ns{};
    int64_t total_op_ns() const {
      int64_t total = 0;
      for (const int64_t ns : op_ns) total += ns;
      return total;
    }
  };

  /// `capacity` bounds distinct query fingerprints, `feedback_capacity`
  /// distinct subtree fingerprints; `feedback_min_samples` observations
  /// are required before ObservedRows trusts a subtree's EWMA.
  explicit QueryStatsStore(size_t capacity, size_t feedback_capacity = 4096,
                           int64_t feedback_min_samples = 2);

  /// Folds one finished request into its fingerprint's aggregate (created
  /// or LRU-refreshed).
  void Record(const std::string& fingerprint,
              const QueryObservation& observation) HALK_EXCLUDES(mu_);

  /// Folds one sampled subtree cardinality into the feedback EWMA for
  /// `key` (a plan node's evaluation-order-preserving fingerprint).
  void RecordSubtreeRows(const query::Fingerprint& key, double actual_rows)
      HALK_EXCLUDES(feedback_mu_);

  /// True (and `*rows` set to the EWMA) when the subtree has at least
  /// feedback_min_samples observations. Read-only: never reorders the LRU.
  bool ObservedRows(const query::Fingerprint& key, double* rows) const
      HALK_EXCLUDES(feedback_mu_);

  /// Aggregate for one fingerprint, if retained.
  bool Lookup(const std::string& fingerprint, Stats* out) const
      HALK_EXCLUDES(mu_);

  /// Top aggregates by total attributed operator time (ties: hits, then
  /// mean latency, then fingerprint for determinism).
  std::vector<Stats> TopByTime(size_t n) const HALK_EXCLUDES(mu_);

  /// The `/queryz` payload: `{"queries":[{...}, ...]}` with one flat
  /// object per retained fingerprint, TopByTime order, at most `top_n`.
  /// Per-operator times render as `us_<op>` keys (us_projection, ...).
  std::string ToJson(size_t top_n) const HALK_EXCLUDES(mu_);

  size_t size() const HALK_EXCLUDES(mu_);
  size_t feedback_size() const HALK_EXCLUDES(feedback_mu_);
  int64_t feedback_min_samples() const { return feedback_min_samples_; }
  void Clear() HALK_EXCLUDES(mu_) HALK_EXCLUDES(feedback_mu_);

 private:
  struct FeedbackEntry {
    double rows = 0.0;  // EWMA of sampled actual rows
    int64_t samples = 0;
    std::list<query::Fingerprint>::iterator lru;
  };

  const size_t capacity_;
  const size_t feedback_capacity_;
  const int64_t feedback_min_samples_;

  mutable Mutex mu_;
  std::list<Stats> entries_ HALK_GUARDED_BY(mu_);  // MRU at front
  std::unordered_map<std::string, std::list<Stats>::iterator> index_
      HALK_GUARDED_BY(mu_);

  mutable Mutex feedback_mu_;
  std::list<query::Fingerprint> feedback_lru_ HALK_GUARDED_BY(feedback_mu_);
  std::unordered_map<query::Fingerprint, FeedbackEntry,
                     query::FingerprintHash>
      feedback_ HALK_GUARDED_BY(feedback_mu_);
};

}  // namespace halk::obs

#endif  // HALK_OBS_QUERY_STATS_H_
