#include "obs/slo_tracker.h"

#include <utility>

#include "obs/journal.h"

namespace halk::obs {

namespace {

/// Burn rate of one window: observed bad fraction over the budgeted
/// fraction. 0 when the window is empty (no traffic is not an outage).
double BurnRate(std::pair<int64_t, int64_t> bad_total, double budget) {
  const auto [bad, total] = bad_total;
  if (total == 0 || budget <= 0.0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / budget;
}

}  // namespace

std::string SloStatus::ToJson() const {
  JsonLineBuilder line;
  line.Int("requests_fast", requests_fast)
      .Int("requests_slow", requests_slow)
      .Num("p99_us_fast", p99_us_fast)
      .Num("latency_burn_fast", latency_burn_fast)
      .Num("latency_burn_slow", latency_burn_slow)
      .Num("error_burn_fast", error_burn_fast)
      .Num("error_burn_slow", error_burn_slow)
      .Bool("latency_alert", latency_alert)
      .Bool("error_alert", error_alert);
  return line.Finish();
}

SloTracker::SloTracker(const SloOptions& options)
    : options_(options),
      latency_fast_(serving::Histogram::ExponentialBounds(1.0, 2.0, 26),
                    options.fast_window_ns / options.fast_slots,
                    options.fast_slots, options.now_ns),
      latency_slo_fast_(options.fast_window_ns, options.fast_slots,
                        options.now_ns),
      latency_slo_slow_(options.slow_window_ns, options.slow_slots,
                        options.now_ns),
      errors_fast_(options.fast_window_ns, options.fast_slots,
                   options.now_ns),
      errors_slow_(options.slow_window_ns, options.slow_slots,
                   options.now_ns) {}

void SloTracker::RecordRequest(double latency_us, bool ok) {
  latency_fast_.Observe(latency_us);
  const bool over_objective = latency_us > options_.latency_objective_us;
  latency_slo_fast_.Add(over_objective);
  latency_slo_slow_.Add(over_objective);
  errors_fast_.Add(!ok);
  errors_slow_.Add(!ok);
}

SloStatus SloTracker::Evaluate() {
  SloStatus status;
  const WindowedHistogram::Snapshot latency = latency_fast_.TakeSnapshot();
  status.requests_fast = latency.total;
  status.p99_us_fast = latency.Quantile(0.99);
  status.requests_slow = errors_slow_.Read().second;
  status.latency_burn_fast =
      BurnRate(latency_slo_fast_.Read(), options_.latency_budget);
  status.latency_burn_slow =
      BurnRate(latency_slo_slow_.Read(), options_.latency_budget);
  status.error_burn_fast =
      BurnRate(errors_fast_.Read(), options_.error_budget);
  status.error_burn_slow =
      BurnRate(errors_slow_.Read(), options_.error_budget);
  status.latency_alert =
      status.latency_burn_fast >= options_.fast_burn_threshold &&
      status.latency_burn_slow >= options_.slow_burn_threshold;
  status.error_alert =
      status.error_burn_fast >= options_.fast_burn_threshold &&
      status.error_burn_slow >= options_.slow_burn_threshold;

  // Rising-edge latching: transitions are counted under the lock, so a
  // transition is attributed to exactly one concurrent Evaluate.
  int64_t new_transitions = 0;
  {
    MutexLock lock(mu_);
    if (status.latency_alert && !latency_alert_active_) ++new_transitions;
    if (status.error_alert && !error_alert_active_) ++new_transitions;
    latency_alert_active_ = status.latency_alert;
    error_alert_active_ = status.error_alert;
    alerts_fired_ += new_transitions;
  }

  if (latency_burn_fast_gauge_ != nullptr) {
    latency_burn_fast_gauge_->Set(status.latency_burn_fast);
    latency_burn_slow_gauge_->Set(status.latency_burn_slow);
    error_burn_fast_gauge_->Set(status.error_burn_fast);
    error_burn_slow_gauge_->Set(status.error_burn_slow);
    p99_fast_gauge_->Set(status.p99_us_fast);
    requests_fast_gauge_->Set(static_cast<double>(status.requests_fast));
    latency_alert_gauge_->Set(status.latency_alert ? 1.0 : 0.0);
    error_alert_gauge_->Set(status.error_alert ? 1.0 : 0.0);
    if (new_transitions > 0) {
      alerts_fired_counter_->Increment(new_transitions);
    }
  }
  return status;
}

void SloTracker::RegisterMetrics(serving::MetricsRegistry* registry) {
  latency_burn_fast_gauge_ = registry->GetGauge("slo.latency_burn_fast");
  latency_burn_slow_gauge_ = registry->GetGauge("slo.latency_burn_slow");
  error_burn_fast_gauge_ = registry->GetGauge("slo.error_burn_fast");
  error_burn_slow_gauge_ = registry->GetGauge("slo.error_burn_slow");
  p99_fast_gauge_ = registry->GetGauge("slo.p99_us_fast");
  requests_fast_gauge_ = registry->GetGauge("slo.requests_fast");
  latency_alert_gauge_ =
      registry->GetGauge("slo.alert_active", {{"objective", "latency"}});
  error_alert_gauge_ =
      registry->GetGauge("slo.alert_active", {{"objective", "errors"}});
  alerts_fired_counter_ = registry->GetCounter("slo.alerts_fired");
  registry->AddCollectionHook([this] { Evaluate(); });
}

}  // namespace halk::obs
