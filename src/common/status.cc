#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace halk {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kPartialResult:
      return "PartialResult";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace halk
