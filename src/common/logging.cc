#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"

namespace halk {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// All log output funnels through one mutex-guarded sink so that messages
// from concurrent threads (serving workers in particular) never interleave
// mid-line.
Mutex& SinkMutex() {
  static Mutex mu;
  return mu;
}

void EmitLine(const std::string& line) {
  MutexLock lock(SinkMutex());
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // order: the level is an isolated filter word; no data rides on it.
  g_level.store(level, std::memory_order_relaxed);
}
// order: same isolated word; stale reads misfilter at most one message.
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // order: filter check only; see SetLogLevel.
  if (level_ >= g_level.load(std::memory_order_relaxed)) {
    EmitLine(stream_.str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal

}  // namespace halk
