#ifndef HALK_COMMON_STATUS_H_
#define HALK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace halk {

/// Error category for a failed operation. Mirrors the Arrow/RocksDB idiom:
/// fallible library-boundary APIs return Status (or Result<T>) instead of
/// throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kParseError,
  kInternal,
  kNotImplemented,
  kUnavailable,       // transient overload; the caller may retry later
  kDeadlineExceeded,  // the operation's deadline passed before completion
  kPartialResult,     // degraded success: an answer computed over only part
                      // of the data (e.g. a shard with no live replica)
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy in the OK case.
/// `[[nodiscard]]` at class level: every expression that produces a Status
/// and drops it is a compile-time warning (an error under -Werror CI), the
/// RocksDB "no status left behind" discipline. halk_lint additionally
/// requires fallible function *declarations* to carry [[nodiscard]] so the
/// contract is visible at the API surface.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PartialResult(std::string msg) {
    return Status(StatusCode::kPartialResult, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error Status, so `return value;` and
  /// `return Status::...;` both work inside functions returning Result<T>.
  Result(T value) : v_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  /// Requires ok().
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or aborts with the error message if not ok().
  T ValueOrDie() &&;

 private:
  std::variant<T, Status> v_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(status());
  return std::get<T>(std::move(v_));
}

/// Propagates a non-OK Status to the caller.
#define HALK_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::halk::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#define HALK_CONCAT_IMPL(a, b) a##b
#define HALK_CONCAT(a, b) HALK_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which must be declared by the caller,
/// e.g. `HALK_ASSIGN_OR_RETURN(auto x, MakeX());`).
#define HALK_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto HALK_CONCAT(_halk_result_, __LINE__) = (rexpr);         \
  if (!HALK_CONCAT(_halk_result_, __LINE__).ok())              \
    return HALK_CONCAT(_halk_result_, __LINE__).status();      \
  lhs = std::move(HALK_CONCAT(_halk_result_, __LINE__)).value()

}  // namespace halk

#endif  // HALK_COMMON_STATUS_H_
