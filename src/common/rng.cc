#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace halk {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  HALK_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HALK_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  HALK_CHECK_GE(n, k);
  HALK_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index vector; O(n) memory, fine at our
  // scale (n = number of entities, a few thousand).
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = i + static_cast<int64_t>(
                              UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  HALK_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HALK_CHECK_GE(w, 0.0);
    total += w;
  }
  HALK_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace halk
