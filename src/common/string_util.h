#ifndef HALK_COMMON_STRING_UTIL_H_
#define HALK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace halk {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes backslash, double quote, and control characters (\n, \r, \t,
/// other controls as \uXXXX) so `s` can be embedded in a double-quoted
/// JSON string or Prometheus label value.
std::string CEscape(std::string_view s);

}  // namespace halk

#endif  // HALK_COMMON_STRING_UTIL_H_
