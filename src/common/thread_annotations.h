#ifndef HALK_COMMON_THREAD_ANNOTATIONS_H_
#define HALK_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (the Abseil/RocksDB practice):
/// lock discipline is declared next to the data it protects and checked at
/// compile time by `clang -Wthread-safety -Werror` (the `thread-safety` CI
/// job). Under any other compiler every macro expands to nothing, so GCC
/// builds are unaffected.
///
/// The annotations only bite on capability-annotated mutex types — use
/// `halk::Mutex` / `halk::MutexLock` / `halk::CondVar` from
/// "common/mutex.h" rather than `std::mutex`, which libstdc++ does not
/// annotate. See docs/static_analysis.md for the conventions.

#if defined(__clang__) && defined(__has_attribute)
#define HALK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HALK_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (mutex-like).
#define HALK_CAPABILITY(name) HALK_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type that acquires a capability for its lifetime.
#define HALK_SCOPED_CAPABILITY HALK_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given mutex: reads and
/// writes are only legal while it is held.
#define HALK_GUARDED_BY(x) HALK_THREAD_ANNOTATION(guarded_by(x))

/// Like HALK_GUARDED_BY, but for the data a pointer/smart-pointer member
/// points at (the pointer itself is unguarded).
#define HALK_PT_GUARDED_BY(x) HALK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the mutex(es) before calling.
#define HALK_REQUIRES(...) \
  HALK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that callers must hold the mutex(es) at least shared.
#define HALK_REQUIRES_SHARED(...) \
  HALK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the mutex(es) (the function
/// acquires them itself; calling with them held would deadlock).
#define HALK_EXCLUDES(...) HALK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared).
#define HALK_ACQUIRE(...) \
  HALK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HALK_ACQUIRE_SHARED(...) \
  HALK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define HALK_RELEASE(...) \
  HALK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HALK_RELEASE_SHARED(...) \
  HALK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define HALK_TRY_ACQUIRE(result, ...) \
  HALK_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Returns a reference to the mutex guarding the annotated data.
#define HALK_RETURN_CAPABILITY(x) HALK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis. Every use
/// must carry a justification comment (halk_lint's catalog documents the
/// convention).
#define HALK_NO_THREAD_SAFETY_ANALYSIS \
  HALK_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HALK_COMMON_THREAD_ANNOTATIONS_H_
