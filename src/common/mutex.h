#ifndef HALK_COMMON_MUTEX_H_
#define HALK_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace halk {

/// A `std::mutex` annotated as a thread-safety capability, so clang's
/// `-Wthread-safety` analysis can verify lock discipline: members declared
/// `HALK_GUARDED_BY(mu_)` may only be touched while `mu_` is held, and
/// functions declared `HALK_REQUIRES(mu_)` may only be called with it held.
/// libstdc++'s own `std::mutex` carries no annotations, which is why the
/// repo rule (halk_lint: no-std-mutex) bans it outside this wrapper.
class HALK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HALK_ACQUIRE() { mu_.lock(); }
  void Unlock() HALK_RELEASE() { mu_.unlock(); }
  bool TryLock() HALK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // halk_lint:allow no-std-mutex — the annotated wrapper
};

/// RAII lock over Mutex — the annotated replacement for
/// `std::lock_guard<std::mutex>`.
class HALK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HALK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() HALK_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait/WaitUntil require the mutex
/// held (checked by the analysis); internally they adopt the underlying
/// std::mutex for the wait, so there is zero overhead over
/// `std::condition_variable` + `std::unique_lock`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  void Wait(Mutex& mu) HALK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` is true (re-checking after each wakeup).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) HALK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Waits until `pred()` is true or `deadline` passes; returns pred().
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) HALK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_until(lock, deadline, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace halk

#endif  // HALK_COMMON_MUTEX_H_
