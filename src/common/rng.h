#ifndef HALK_COMMON_RNG_H_
#define HALK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace halk {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// splitmix64). All randomness in the library flows through explicitly
/// seeded Rng instances so that experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace halk

#endif  // HALK_COMMON_RNG_H_
