#ifndef HALK_COMMON_LOGGING_H_
#define HALK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace halk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by HALK_LOG; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Each message is formatted
/// in a thread-local buffer and written to the shared sink under a mutex,
/// so concurrent threads never interleave partial lines.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after emitting the accumulated message.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define HALK_LOG(level)                                                   \
  ::halk::internal::LogMessage(::halk::LogLevel::k##level, __FILE__,      \
                               __LINE__)                                  \
      .stream()

/// Invariant check: aborts (with file/line and message) when `cond` is false.
/// Used for programmer errors; recoverable errors use Status instead.
#define HALK_CHECK(cond)                                                \
  if (!(cond))                                                          \
  ::halk::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define HALK_CHECK_EQ(a, b) HALK_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define HALK_CHECK_NE(a, b) HALK_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define HALK_CHECK_LT(a, b) HALK_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define HALK_CHECK_LE(a, b) HALK_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define HALK_CHECK_GT(a, b) HALK_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define HALK_CHECK_GE(a, b) HALK_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#define HALK_CHECK_OK(expr)                                    \
  do {                                                         \
    ::halk::Status _st = (expr);                               \
    HALK_CHECK(_st.ok()) << _st.ToString();                    \
  } while (0)

}  // namespace halk

#endif  // HALK_COMMON_LOGGING_H_
