#include "plan/cost_model.h"

#include <algorithm>

namespace halk::plan {

CostModel::CostModel(const kg::GraphStats* stats, int64_t num_entities)
    : stats_(stats), num_entities_(num_entities) {}

double CostModel::Clamp(double rows) const {
  if (rows < 1.0) rows = 1.0;
  if (num_entities_ > 0 && rows > static_cast<double>(num_entities_)) {
    rows = static_cast<double>(num_entities_);
  }
  return rows;
}

double CostModel::EstimateRows(query::OpType op, int64_t payload,
                               const double* input_rows,
                               size_t num_inputs) const {
  const double n = num_entities_ > 0 ? static_cast<double>(num_entities_) : 0;
  switch (op) {
    case query::OpType::kAnchor:
      return 1.0;
    case query::OpType::kProjection: {
      const double in = num_inputs > 0 ? input_rows[0] : 1.0;
      double fanout = 1.0;
      if (stats_ != nullptr) {
        fanout = stats_->relation(payload).avg_out_fanout;
        if (fanout <= 0.0) fanout = 1.0;  // unseen relation: neutral
      }
      return Clamp(in * fanout);
    }
    case query::OpType::kIntersection: {
      // Independence: multiply selectivities, i.e. ∏ rows / N^(k-1).
      if (num_inputs == 0) return 1.0;
      double rows = input_rows[0];
      for (size_t i = 1; i < num_inputs; ++i) {
        rows *= n > 0 ? input_rows[i] / n : 1.0;
      }
      double bound = input_rows[0];
      for (size_t i = 1; i < num_inputs; ++i) {
        bound = std::min(bound, input_rows[i]);
      }
      return Clamp(std::min(rows, bound));
    }
    case query::OpType::kUnion: {
      double rows = 0.0;
      for (size_t i = 0; i < num_inputs; ++i) rows += input_rows[i];
      return Clamp(rows);
    }
    case query::OpType::kDifference: {
      // Minuend minus the expected overlap with each subtrahend.
      if (num_inputs == 0) return 1.0;
      double rows = input_rows[0];
      for (size_t i = 1; i < num_inputs; ++i) {
        rows *= n > 0 ? std::max(0.0, 1.0 - input_rows[i] / n) : 1.0;
      }
      return Clamp(std::min(rows, input_rows[0]));
    }
    case query::OpType::kNegation: {
      const double in = num_inputs > 0 ? input_rows[0] : 1.0;
      return Clamp(n - in);
    }
  }
  return 1.0;
}

double CostModel::Selectivity(double rows) const {
  if (num_entities_ <= 0) return 1.0;
  const double s = rows / static_cast<double>(num_entities_);
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace halk::plan
