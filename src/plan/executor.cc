#include "plan/executor.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "kg/groups.h"
#include "plan/arena.h"
#include "tensor/tensor.h"

namespace halk::plan {

namespace {

using core::ArcBatch;
using query::OpType;
using tensor::Tensor;

// Cap on subtree_cache_hit marker events per prepared plan, so a hot
// cache cannot flood the trace ring.
constexpr int kMaxCacheHitEvents = 16;

// Sampled cardinality of the set that `embedding` row `row` denotes:
// probes deterministic entity blocks spread across the table, counts how
// many fall within the model's membership threshold, and scales to the
// full table. Negative when the model has no membership notion. The probe
// reads DistancesToRange only — it can never perturb operator outputs.
double SampledActualRows(const core::QueryModel& model,
                         const core::EmbeddingBatch& embedding, int64_t row,
                         int64_t sample) {
  const int64_t n = model.config().num_entities;
  if (n <= 0 || sample <= 0) return -1.0;
  const double tau = model.MembershipThreshold(embedding, row);
  if (tau < 0.0) return -1.0;
  const int64_t s = std::min(sample, n);
  // A few contiguous blocks rather than one: arc membership correlates
  // with entity id on grouped KGs, so one block from the table's head
  // would bias the estimate.
  const int64_t num_blocks = s >= 64 ? 4 : 1;
  const int64_t per_block = (s + num_blocks - 1) / num_blocks;
  int64_t probed = 0;
  int64_t within = 0;
  std::vector<float> dist;
  for (int64_t b = 0; b < num_blocks; ++b) {
    const int64_t begin = (n * b) / num_blocks;
    const int64_t end = std::min(begin + per_block, n);
    if (begin >= end) continue;
    model.DistancesToRange(embedding, row, begin, end, &dist);
    for (const float d : dist) {
      if (static_cast<double>(d) <= tau) ++within;
    }
    probed += end - begin;
  }
  if (probed == 0) return -1.0;
  return static_cast<double>(within) * static_cast<double>(n) /
         static_cast<double>(probed);
}

}  // namespace

PlanExecutor::PlanExecutor(const core::QueryModel* model,
                           core::OperatorModel* ops,
                           serving::SubtreeCache* cache)
    : model_(model), ops_(ops), cache_(cache) {
  HALK_CHECK(model_ != nullptr);
  HALK_CHECK(ops_ != nullptr);
}

ExecSchedule PlanExecutor::Prepare(const Plan& plan,
                                   const obs::TraceContext& trace,
                                   const ExecOptions& options) const {
  const size_t n = plan.nodes.size();
  const size_t row_floats = static_cast<size_t>(2 * model_->config().dim);
  ExecSchedule sched;
  sched.options = options;
  sched.needed.assign(n, 0);
  sched.cached.assign(n, 0);
  sched.cached_entries.resize(n);
  sched.stats.nodes = static_cast<int64_t>(n);
  if (options.collect_actuals) sched.stats.actuals.assign(n, NodeActuals{});

  for (const PlanRoot& root : plan.roots) {
    sched.needed[static_cast<size_t>(root.node)] = 1;
  }

  // Reverse schedule = consumers before inputs (all consumers sit at a
  // strictly greater depth), so needed flags propagate top-down and a
  // cache hit prunes its whole sub-DAG from the probe frontier.
  int hit_events = 0;
  for (size_t idx = plan.schedule.size(); idx-- > 0;) {
    const int32_t id = plan.schedule[idx];
    if (!sched.needed[static_cast<size_t>(id)]) {
      ++sched.stats.skipped;
      continue;
    }
    const PlanNode& node = plan.node(id);
    if (cache_ != nullptr && node.op != OpType::kAnchor) {
      serving::SubtreeCache::Entry entry;
      if (cache_->Get(node.key, &entry) && entry.row.size() == row_floats) {
        sched.cached[static_cast<size_t>(id)] = 1;
        sched.cached_entries[static_cast<size_t>(id)] = std::move(entry);
        ++sched.stats.cache_hits;
        if (hit_events < kMaxCacheHitEvents) {
          obs::RecordEvent(trace, "subtree_cache_hit",
                           {{"node", static_cast<double>(id)}});
          ++hit_events;
        }
        continue;  // inputs stay un-needed unless another consumer asks
      }
      ++sched.stats.cache_misses;
    }
    for (uint32_t j = 0; j < node.num_inputs; ++j) {
      sched.needed[static_cast<size_t>(node.inputs[j])] = 1;
    }
  }

  // Batch the nodes to evaluate per depth level, grouped by (op, arity),
  // keeping the schedule's most-selective-first order within each batch.
  int32_t batch_depth = -1;
  size_t level_start = 0;
  for (int32_t id : plan.schedule) {
    if (!sched.needed[static_cast<size_t>(id)] ||
        sched.cached[static_cast<size_t>(id)]) {
      continue;
    }
    const PlanNode& node = plan.node(id);
    if (node.depth != batch_depth) {
      batch_depth = node.depth;
      level_start = sched.batches.size();
    }
    ExecSchedule::OpBatch* target = nullptr;
    for (size_t b = level_start; b < sched.batches.size(); ++b) {
      if (sched.batches[b].op == node.op &&
          sched.batches[b].arity == node.num_inputs) {
        target = &sched.batches[b];
        break;
      }
    }
    if (target == nullptr) {
      sched.batches.push_back({node.op, node.num_inputs, {}});
      target = &sched.batches.back();
    }
    target->node_ids.push_back(id);
    ++sched.stats.evaluated;
  }
  sched.stats.op_batches = static_cast<int64_t>(sched.batches.size());
  return sched;
}

core::EmbeddingBatch PlanExecutor::Run(const Plan& plan,
                                       ExecSchedule* schedule,
                                       const obs::TraceContext& trace) const {
  ExecSchedule& sched = *schedule;
  const size_t n = plan.nodes.size();
  const int64_t dim = model_->config().dim;
  const size_t row_floats = static_cast<size_t>(2 * dim);

  const bool collect = !sched.stats.actuals.empty();
  const int64_t sample = sched.options.sample_entities;

  Arena exec_arena;
  std::vector<float*> slot(n, nullptr);
  std::vector<float*> free_list;
  bool last_alloc_reused = false;
  auto alloc_slot = [&](int32_t id) {
    if (!free_list.empty()) {
      slot[static_cast<size_t>(id)] = free_list.back();
      free_list.pop_back();
      ++sched.stats.slots_reused;
      last_alloc_reused = true;
    } else {
      slot[static_cast<size_t>(id)] =
          static_cast<float*>(exec_arena.Allocate(
              row_floats * sizeof(float), alignof(float)));
      last_alloc_reused = false;
    }
    return slot[static_cast<size_t>(id)];
  };

  // Live consumer counts over what actually runs: edges from evaluated
  // nodes plus one per root (roots are read at output assembly, so their
  // slots never recycle mid-run).
  std::vector<int32_t> live(n, 0);
  for (const ExecSchedule::OpBatch& batch : sched.batches) {
    for (int32_t id : batch.node_ids) {
      const PlanNode& node = plan.node(id);
      for (uint32_t j = 0; j < node.num_inputs; ++j) {
        ++live[static_cast<size_t>(node.inputs[j])];
      }
    }
  }
  for (const PlanRoot& root : plan.roots) {
    ++live[static_cast<size_t>(root.node)];
  }
  auto release = [&](int32_t id) {
    if (--live[static_cast<size_t>(id)] == 0) {
      free_list.push_back(slot[static_cast<size_t>(id)]);
    }
  };

  // Materialize cache hits.
  std::vector<int32_t> cached_ids;
  for (int32_t id : plan.schedule) {
    if (sched.needed[static_cast<size_t>(id)] &&
        sched.cached[static_cast<size_t>(id)]) {
      std::memcpy(alloc_slot(id),
                  sched.cached_entries[static_cast<size_t>(id)].row.data(),
                  row_floats * sizeof(float));
      if (collect) {
        NodeActuals& a = sched.stats.actuals[static_cast<size_t>(id)];
        a.cache_hit = true;
        a.slot_reused = last_alloc_reused;
        cached_ids.push_back(id);
      }
    }
  }
  // Sampled actual-rows probe for the cache-served nodes (one gathered
  // batch, so the model call count stays bounded).
  if (!cached_ids.empty()) {
    const size_t m = cached_ids.size();
    std::vector<float> centers(m * static_cast<size_t>(dim));
    std::vector<float> lengths(m * static_cast<size_t>(dim));
    for (size_t i = 0; i < m; ++i) {
      const float* src = slot[static_cast<size_t>(cached_ids[i])];
      std::memcpy(centers.data() + i * static_cast<size_t>(dim), src,
                  static_cast<size_t>(dim) * sizeof(float));
      std::memcpy(lengths.data() + i * static_cast<size_t>(dim), src + dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
    const core::EmbeddingBatch probe{
        Tensor::FromVector({static_cast<int64_t>(m), dim},
                           std::move(centers)),
        Tensor::FromVector({static_cast<int64_t>(m), dim},
                           std::move(lengths))};
    for (size_t i = 0; i < m; ++i) {
      sched.stats.actuals[static_cast<size_t>(cached_ids[i])].actual_rows =
          SampledActualRows(*model_, probe, static_cast<int64_t>(i), sample);
    }
  }

  // Group vectors for the intersection z factor. A plan node is a fully
  // grounded subtree, so its group vector is request-independent; the
  // fold below replicates core::NodeGroupVectors exactly (input order is
  // preserved by the plan), keeping z — and thus the embeddings —
  // bit-identical to EmbedQueries.
  const kg::NodeGrouping* grouping = ops_->operator_grouping();
  std::vector<std::vector<float>> groups;
  if (grouping != nullptr) {
    groups.resize(n);
    for (int32_t id : plan.schedule) {
      const PlanNode& node = plan.node(id);
      std::vector<float>& out = groups[static_cast<size_t>(id)];
      switch (node.op) {
        case OpType::kAnchor:
          out = grouping->OneHot(node.payload);
          break;
        case OpType::kProjection:
          out = grouping->Project(
              groups[static_cast<size_t>(node.inputs[0])], node.payload);
          break;
        case OpType::kIntersection: {
          out = groups[static_cast<size_t>(node.inputs[0])];
          for (uint32_t j = 1; j < node.num_inputs; ++j) {
            out = kg::NodeGrouping::Intersect(
                out, groups[static_cast<size_t>(node.inputs[j])]);
          }
          break;
        }
        case OpType::kDifference:
          out = groups[static_cast<size_t>(node.inputs[0])];
          break;
        case OpType::kNegation:
          out = grouping->AllGroups();
          break;
        case OpType::kUnion:
          HALK_CHECK(false) << "union node in a plan";
          break;
      }
    }
  }

  // Assembles input position `j` of every node in the batch into one
  // [B, d] arc batch from the producers' slots.
  auto gather_input = [&](const ExecSchedule::OpBatch& batch,
                          uint32_t j) -> ArcBatch {
    const size_t rows = batch.node_ids.size();
    std::vector<float> centers(rows * static_cast<size_t>(dim));
    std::vector<float> lengths(rows * static_cast<size_t>(dim));
    for (size_t i = 0; i < rows; ++i) {
      const PlanNode& node = plan.node(batch.node_ids[i]);
      const float* src = slot[static_cast<size_t>(node.inputs[j])];
      HALK_CHECK(src != nullptr);
      std::memcpy(centers.data() + i * static_cast<size_t>(dim), src,
                  static_cast<size_t>(dim) * sizeof(float));
      std::memcpy(lengths.data() + i * static_cast<size_t>(dim), src + dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
    const int64_t b = static_cast<int64_t>(rows);
    return {Tensor::FromVector({b, dim}, std::move(centers)),
            Tensor::FromVector({b, dim}, std::move(lengths))};
  };

  for (ExecSchedule::OpBatch& batch : sched.batches) {
    const size_t rows = batch.node_ids.size();
    const bool timed = trace.active() || collect;
    const int64_t start_ns = timed ? obs::NowNs() : 0;
    ArcBatch result;
    switch (batch.op) {
      case OpType::kAnchor: {
        std::vector<int64_t> entities;
        entities.reserve(rows);
        for (int32_t id : batch.node_ids) {
          entities.push_back(plan.node(id).payload);
        }
        result = ops_->EmbedAnchors(entities);
        break;
      }
      case OpType::kProjection: {
        ArcBatch input = gather_input(batch, 0);
        std::vector<int64_t> relations;
        relations.reserve(rows);
        for (int32_t id : batch.node_ids) {
          relations.push_back(plan.node(id).payload);
        }
        result = ops_->Projection(input, relations);
        break;
      }
      case OpType::kIntersection: {
        std::vector<ArcBatch> inputs;
        inputs.reserve(batch.arity);
        for (uint32_t j = 0; j < batch.arity; ++j) {
          inputs.push_back(gather_input(batch, j));
        }
        std::vector<Tensor> z;
        if (grouping != nullptr) {
          for (uint32_t j = 0; j < batch.arity; ++j) {
            std::vector<float> tiled(rows * static_cast<size_t>(dim));
            for (size_t i = 0; i < rows; ++i) {
              const PlanNode& node = plan.node(batch.node_ids[i]);
              const float zi = kg::NodeGrouping::Similarity(
                  groups[static_cast<size_t>(node.inputs[j])],
                  groups[static_cast<size_t>(batch.node_ids[i])]);
              for (int64_t c = 0; c < dim; ++c) {
                tiled[i * static_cast<size_t>(dim) +
                      static_cast<size_t>(c)] = zi;
              }
            }
            z.push_back(Tensor::FromVector({static_cast<int64_t>(rows), dim},
                                           std::move(tiled)));
          }
        }
        result = ops_->Intersection(inputs, z);
        break;
      }
      case OpType::kDifference: {
        std::vector<ArcBatch> inputs;
        inputs.reserve(batch.arity);
        for (uint32_t j = 0; j < batch.arity; ++j) {
          inputs.push_back(gather_input(batch, j));
        }
        result = ops_->Difference(inputs);
        break;
      }
      case OpType::kNegation:
        result = ops_->Negation(gather_input(batch, 0));
        break;
      case OpType::kUnion:
        HALK_CHECK(false) << "union node in a plan";
        break;
    }

    const float* centers = result.center.data();
    const float* lengths = result.length.data();
    for (size_t i = 0; i < rows; ++i) {
      const int32_t id = batch.node_ids[i];
      float* dst = alloc_slot(id);
      if (collect) {
        sched.stats.actuals[static_cast<size_t>(id)].slot_reused =
            last_alloc_reused;
      }
      std::memcpy(dst, centers + i * static_cast<size_t>(dim),
                  static_cast<size_t>(dim) * sizeof(float));
      std::memcpy(dst + dim, lengths + i * static_cast<size_t>(dim),
                  static_cast<size_t>(dim) * sizeof(float));
      if (cache_ != nullptr && batch.op != OpType::kAnchor) {
        const PlanNode& node = plan.node(id);
        serving::SubtreeCache::Entry entry;
        entry.row.assign(dst, dst + row_floats);
        entry.relations.assign(node.relations,
                               node.relations + node.num_relations);
        cache_->Put(node.key, std::move(entry));
      }
    }
    // The batch's wall stops here, before the membership probes — the
    // analytics must never inflate the numbers it reports.
    const int64_t end_ns = timed ? obs::NowNs() : 0;
    if (collect) {
      const int64_t per_node_ns =
          (end_ns - start_ns) / static_cast<int64_t>(rows);
      const core::EmbeddingBatch probe{result.center, result.length};
      for (size_t i = 0; i < rows; ++i) {
        NodeActuals& a =
            sched.stats.actuals[static_cast<size_t>(batch.node_ids[i])];
        a.evaluated = true;
        a.wall_ns = per_node_ns;
        a.actual_rows =
            SampledActualRows(*model_, probe, static_cast<int64_t>(i),
                              sample);
      }
    }
    for (int32_t id : batch.node_ids) {
      const PlanNode& node = plan.node(id);
      for (uint32_t j = 0; j < node.num_inputs; ++j) {
        release(node.inputs[j]);
      }
    }
    if (trace.active()) {
      obs::RecordSpan(trace, "node_eval", start_ns, end_ns,
                      {{"op", static_cast<double>(batch.op)},
                       {"rows", static_cast<double>(rows)},
                       {"arity", static_cast<double>(batch.arity)}});
    }
  }
  sched.stats.arena_bytes = exec_arena.bytes_allocated();

  // One output row per root, in roots order.
  const size_t num_roots = plan.roots.size();
  std::vector<float> centers(num_roots * static_cast<size_t>(dim));
  std::vector<float> lengths(num_roots * static_cast<size_t>(dim));
  for (size_t r = 0; r < num_roots; ++r) {
    const float* src = slot[static_cast<size_t>(plan.roots[r].node)];
    HALK_CHECK(src != nullptr);
    std::memcpy(centers.data() + r * static_cast<size_t>(dim), src,
                static_cast<size_t>(dim) * sizeof(float));
    std::memcpy(lengths.data() + r * static_cast<size_t>(dim), src + dim,
                static_cast<size_t>(dim) * sizeof(float));
  }
  const int64_t b = static_cast<int64_t>(num_roots);
  return {Tensor::FromVector({b, dim}, std::move(centers)),
          Tensor::FromVector({b, dim}, std::move(lengths))};
}

core::EmbeddingBatch PlanExecutor::Execute(const Plan& plan, ExecStats* stats,
                                           const ExecOptions& options) const {
  ExecSchedule sched = Prepare(plan, /*trace=*/{}, options);
  core::EmbeddingBatch out = Run(plan, &sched);
  if (stats != nullptr) *stats = std::move(sched.stats);
  return out;
}

}  // namespace halk::plan
