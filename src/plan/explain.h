#ifndef HALK_PLAN_EXPLAIN_H_
#define HALK_PLAN_EXPLAIN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "plan/cost_model.h"
#include "plan/plan.h"
#include "serving/subtree_cache.h"

namespace halk::plan {

struct ExplainOptions {
  /// Pretty-printers for anchor entities / projection relations; ids are
  /// printed raw when null.
  std::function<std::string(int64_t)> entity_name;
  std::function<std::string(int64_t)> relation_name;
  /// When set, each node is annotated with whether the subtree cache
  /// currently holds it (a non-mutating probe; hit rates are unaffected).
  const serving::SubtreeCache* cache = nullptr;
  /// Entity count behind the selectivity column; <= 0 hides it.
  int64_t num_entities = 0;
};

/// Renders a plan's evaluation schedule for humans: one line per node in
/// execution order with the operator, its payload/inputs, the cost
/// model's estimated rows and selectivity, and dedup (`shared xN`) /
/// cache (`cached`) annotations — the payload of the sparql_endpoint
/// `.explain` command.
std::string ExplainPlan(const Plan& plan, const ExplainOptions& options = {});

}  // namespace halk::plan

#endif  // HALK_PLAN_EXPLAIN_H_
