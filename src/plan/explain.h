#ifndef HALK_PLAN_EXPLAIN_H_
#define HALK_PLAN_EXPLAIN_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "plan/cost_model.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "serving/subtree_cache.h"

namespace halk::plan {

struct ExplainOptions {
  /// Pretty-printers for anchor entities / projection relations; ids are
  /// printed raw when null.
  std::function<std::string(int64_t)> entity_name;
  std::function<std::string(int64_t)> relation_name;
  /// When set, each node is annotated with whether the subtree cache
  /// currently holds it (a non-mutating probe; hit rates are unaffected).
  const serving::SubtreeCache* cache = nullptr;
  /// Entity count behind the selectivity column; <= 0 hides it.
  int64_t num_entities = 0;
};

/// Renders a plan's evaluation schedule for humans: one line per node in
/// execution order with the operator, its payload/inputs, the cost
/// model's estimated rows and selectivity, and dedup (`shared xN`) /
/// cache (`cached`) annotations — the payload of the sparql_endpoint
/// `.explain` command.
std::string ExplainPlan(const Plan& plan, const ExplainOptions& options = {});

/// q-error of one cardinality estimate: max(est/actual, actual/est) with
/// both clamped to >= 1 row, so it is symmetric, >= 1, and finite for
/// empty results. 1.0 is a perfect estimate.
inline double QError(double est_rows, double actual_rows) {
  const double est = std::max(est_rows, 1.0);
  const double actual = std::max(actual_rows, 1.0);
  return est > actual ? est / actual : actual / est;
}

/// EXPLAIN ANALYZE: the ExplainPlan tree joined with one execution's
/// per-node actuals (`stats.actuals`, collected by PlanExecutor under
/// ExecOptions::collect_actuals) — estimated vs. sampled-actual rows,
/// per-node q-error, attributed wall time, and cache / slot-reuse flags —
/// plus a summary footer (evaluated / cached / skipped counts, total
/// operator wall, worst q-error). Nodes the execution never materialized
/// render `act~-`. The payload of the sparql_endpoint `.analyze` command.
std::string ExplainAnalyze(const Plan& plan, const ExecStats& stats,
                           const ExplainOptions& options = {});

}  // namespace halk::plan

#endif  // HALK_PLAN_EXPLAIN_H_
