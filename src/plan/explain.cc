#include "plan/explain.h"

#include <cstdio>
#include <sstream>

#include "query/ops.h"

namespace halk::plan {

namespace {

std::string Name(const std::function<std::string(int64_t)>& pretty,
                 int64_t id) {
  return pretty ? pretty(id) : std::to_string(id);
}

// The `op payload/inputs` cell shared by ExplainPlan and ExplainAnalyze.
std::string NodeDetail(const PlanNode& n, const ExplainOptions& options) {
  switch (n.op) {
    case query::OpType::kAnchor:
      return Name(options.entity_name, n.payload);
    case query::OpType::kProjection:
      return "[#" + std::to_string(n.inputs[0]) +
             "] r=" + Name(options.relation_name, n.payload);
    default: {
      std::string detail = "[";
      for (uint32_t j = 0; j < n.num_inputs; ++j) {
        if (j > 0) detail += ", ";
        detail += "#" + std::to_string(n.inputs[j]);
      }
      detail += "]";
      return detail;
    }
  }
}

}  // namespace

std::string ExplainPlan(const Plan& plan, const ExplainOptions& options) {
  std::ostringstream out;
  char buf[64];
  out << "plan: " << plan.nodes.size() << " nodes";
  if (plan.total_nodes > static_cast<int64_t>(plan.nodes.size())) {
    std::snprintf(buf, sizeof(buf), " (%lld before dedup, %.0f%% merged)",
                  static_cast<long long>(plan.total_nodes),
                  plan.dedup_ratio() * 100.0);
    out << buf;
  }
  out << ", " << plan.roots.size() << " roots, depth " << plan.max_depth
      << "\n";

  for (size_t seq = 0; seq < plan.schedule.size(); ++seq) {
    const int32_t id = plan.schedule[seq];
    const PlanNode& n = plan.node(id);
    std::snprintf(buf, sizeof(buf), "%3zu  #%-3d %-12s ", seq + 1, id,
                  query::OpTypeName(n.op));
    out << buf;

    std::snprintf(buf, sizeof(buf), "%-24s ",
                  NodeDetail(n, options).c_str());
    out << buf;

    std::snprintf(buf, sizeof(buf), "rows~%-9.1f", n.est_rows);
    out << buf;
    if (options.num_entities > 0) {
      std::snprintf(buf, sizeof(buf), " sel=%-8.4f",
                    n.est_rows / static_cast<double>(options.num_entities));
      out << buf;
    }
    if (n.from_feedback) {
      std::snprintf(buf, sizeof(buf), " fb~%.1f", n.sched_rows);
      out << buf;
    }
    if (n.refcount > 1) out << " shared x" << n.refcount;
    if (options.cache != nullptr && n.op != query::OpType::kAnchor &&
        options.cache->Contains(n.key)) {
      out << " cached";
    }
    out << "\n";
  }

  out << "roots:";
  for (const PlanRoot& root : plan.roots) {
    out << " [request " << root.request_index << " branch " << root.item_index
        << " -> #" << root.node << "]";
  }
  out << "\n";
  return out.str();
}

std::string ExplainAnalyze(const Plan& plan, const ExecStats& stats,
                           const ExplainOptions& options) {
  std::ostringstream out;
  char buf[96];
  out << "plan: " << plan.nodes.size() << " nodes";
  if (plan.total_nodes > static_cast<int64_t>(plan.nodes.size())) {
    std::snprintf(buf, sizeof(buf), " (%lld before dedup, %.0f%% merged)",
                  static_cast<long long>(plan.total_nodes),
                  plan.dedup_ratio() * 100.0);
    out << buf;
  }
  out << ", " << plan.roots.size() << " roots, depth " << plan.max_depth
      << "\n";

  const bool have_actuals = stats.actuals.size() == plan.nodes.size();
  int64_t total_wall_ns = 0;
  double worst_q = 0.0;
  int64_t measured = 0;

  for (size_t seq = 0; seq < plan.schedule.size(); ++seq) {
    const int32_t id = plan.schedule[seq];
    const PlanNode& n = plan.node(id);
    std::snprintf(buf, sizeof(buf), "%3zu  #%-3d %-12s ", seq + 1, id,
                  query::OpTypeName(n.op));
    out << buf;
    std::snprintf(buf, sizeof(buf), "%-24s ",
                  NodeDetail(n, options).c_str());
    out << buf;
    std::snprintf(buf, sizeof(buf), "rows~%-9.1f", n.est_rows);
    out << buf;

    const NodeActuals* a =
        have_actuals ? &stats.actuals[static_cast<size_t>(id)] : nullptr;
    if (a != nullptr && a->actual_rows >= 0.0) {
      const double q = QError(n.est_rows, a->actual_rows);
      std::snprintf(buf, sizeof(buf), " act~%-9.1f q=%-7.2f",
                    a->actual_rows, q);
      out << buf;
      worst_q = std::max(worst_q, q);
      ++measured;
    } else {
      out << " act~-         q=-     ";
    }
    if (a != nullptr && a->evaluated) {
      std::snprintf(buf, sizeof(buf), " t=%.0fus",
                    static_cast<double>(a->wall_ns) / 1000.0);
      out << buf;
      total_wall_ns += a->wall_ns;
    }
    if (n.from_feedback) {
      std::snprintf(buf, sizeof(buf), " fb~%.1f", n.sched_rows);
      out << buf;
    }
    if (n.refcount > 1) out << " shared x" << n.refcount;
    if (a != nullptr) {
      if (a->cache_hit) out << " [cached]";
      if (a->slot_reused) out << " [reused]";
      if (!a->evaluated && !a->cache_hit) out << " [skipped]";
    }
    out << "\n";
  }

  out << "roots:";
  for (const PlanRoot& root : plan.roots) {
    out << " [request " << root.request_index << " branch " << root.item_index
        << " -> #" << root.node << "]";
  }
  out << "\n";

  std::snprintf(buf, sizeof(buf),
                "analyze: %lld evaluated, %lld cached, %lld skipped, "
                "%lld op batches, wall %.0fus",
                static_cast<long long>(stats.evaluated),
                static_cast<long long>(stats.cache_hits),
                static_cast<long long>(stats.skipped),
                static_cast<long long>(stats.op_batches),
                static_cast<double>(total_wall_ns) / 1000.0);
  out << buf;
  if (measured > 0) {
    std::snprintf(buf, sizeof(buf), ", worst q-error %.2f over %lld nodes",
                  worst_q, static_cast<long long>(measured));
    out << buf;
  }
  out << "\n";
  return out.str();
}

}  // namespace halk::plan
