#include "plan/explain.h"

#include <cstdio>
#include <sstream>

#include "query/ops.h"

namespace halk::plan {

namespace {

std::string Name(const std::function<std::string(int64_t)>& pretty,
                 int64_t id) {
  return pretty ? pretty(id) : std::to_string(id);
}

}  // namespace

std::string ExplainPlan(const Plan& plan, const ExplainOptions& options) {
  std::ostringstream out;
  char buf[64];
  out << "plan: " << plan.nodes.size() << " nodes";
  if (plan.total_nodes > static_cast<int64_t>(plan.nodes.size())) {
    std::snprintf(buf, sizeof(buf), " (%lld before dedup, %.0f%% merged)",
                  static_cast<long long>(plan.total_nodes),
                  plan.dedup_ratio() * 100.0);
    out << buf;
  }
  out << ", " << plan.roots.size() << " roots, depth " << plan.max_depth
      << "\n";

  for (size_t seq = 0; seq < plan.schedule.size(); ++seq) {
    const int32_t id = plan.schedule[seq];
    const PlanNode& n = plan.node(id);
    std::snprintf(buf, sizeof(buf), "%3zu  #%-3d %-12s ", seq + 1, id,
                  query::OpTypeName(n.op));
    out << buf;

    std::string detail;
    switch (n.op) {
      case query::OpType::kAnchor:
        detail = Name(options.entity_name, n.payload);
        break;
      case query::OpType::kProjection:
        detail = "[#" + std::to_string(n.inputs[0]) +
                 "] r=" + Name(options.relation_name, n.payload);
        break;
      default: {
        detail = "[";
        for (uint32_t j = 0; j < n.num_inputs; ++j) {
          if (j > 0) detail += ", ";
          detail += "#" + std::to_string(n.inputs[j]);
        }
        detail += "]";
        break;
      }
    }
    std::snprintf(buf, sizeof(buf), "%-24s ", detail.c_str());
    out << buf;

    std::snprintf(buf, sizeof(buf), "rows~%-9.1f", n.est_rows);
    out << buf;
    if (options.num_entities > 0) {
      std::snprintf(buf, sizeof(buf), " sel=%-8.4f",
                    n.est_rows / static_cast<double>(options.num_entities));
      out << buf;
    }
    if (n.refcount > 1) out << " shared x" << n.refcount;
    if (options.cache != nullptr && n.op != query::OpType::kAnchor &&
        options.cache->Contains(n.key)) {
      out << " cached";
    }
    out << "\n";
  }

  out << "roots:";
  for (const PlanRoot& root : plan.roots) {
    out << " [request " << root.request_index << " branch " << root.item_index
        << " -> #" << root.node << "]";
  }
  out << "\n";
  return out.str();
}

}  // namespace halk::plan
