#ifndef HALK_PLAN_PLANNER_H_
#define HALK_PLAN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/query_stats.h"
#include "plan/cost_model.h"
#include "plan/plan.h"
#include "plan/rewrite.h"
#include "query/dag.h"

namespace halk::plan {

struct PlannerOptions {
  /// Run the algebraic rewrite pass (plan/rewrite.h) on each branch before
  /// planning. Off by default on the serving path: the rewrites are exact
  /// set identities, but they change which neural operators run, so served
  /// answers would no longer be bit-identical to Evaluator::TopK on the
  /// unrewritten graph.
  bool apply_rewrites = false;
  RewriteOptions rewrites;
  /// Cardinality-feedback source (not owned; must outlive the planner;
  /// null disables). When a subtree's fingerprint has enough observed
  /// actual-rows samples, the EWMA replaces the cost model's estimate in
  /// PlanNode::sched_rows — so each depth level is ordered by *measured*
  /// selectivity. est_rows is never touched, operator math never reads
  /// sched_rows, and every consumer still runs at a strictly greater
  /// depth, so served rankings stay bit-identical by construction (the
  /// randomized equivalence suite proves it with feedback on).
  const obs::QueryStatsStore* feedback = nullptr;
};

/// One union-free branch to plan: `graph` must be grounded and
/// union-free (serving expands unions to DNF first, keeping per-branch
/// min-scoring outside the plan). The pointer must outlive BuildPlan.
struct PlanItem {
  size_t request_index = 0;
  const query::QueryGraph* graph = nullptr;
};

/// The cost-based micro-batch planner: hash-conses the compute DAGs of
/// many branches into one arena-allocated Plan, merging every subtree
/// whose evaluation-order-preserving fingerprint repeats — within a
/// request or across requests — and ordering each depth level by estimated
/// selectivity. Stateless and const after construction, so one instance
/// serves every worker thread concurrently.
class Planner {
 public:
  /// `stats` (may be null, not owned) feeds the cost model;
  /// `num_entities` bounds cardinality estimates.
  Planner(const kg::GraphStats* stats, int64_t num_entities,
          const PlannerOptions& options = {});

  /// Builds one shared plan over a micro-batch of branches; roots come out
  /// in `items` order.
  Plan BuildPlan(const std::vector<PlanItem>& items) const;

  const CostModel& cost_model() const { return cost_; }

 private:
  CostModel cost_;
  PlannerOptions options_;
};

}  // namespace halk::plan

#endif  // HALK_PLAN_PLANNER_H_
