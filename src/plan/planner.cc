#include "plan/planner.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "query/fingerprint.h"

namespace halk::plan {

Planner::Planner(const kg::GraphStats* stats, int64_t num_entities,
                 const PlannerOptions& options)
    : cost_(stats, num_entities), options_(options) {}

Plan Planner::BuildPlan(const std::vector<PlanItem>& items) const {
  Plan plan;
  std::unordered_map<query::Fingerprint, int32_t, query::FingerprintHash>
      dedup;
  std::vector<double> input_rows;
  std::vector<int64_t> relation_tags;

  for (size_t item_index = 0; item_index < items.size(); ++item_index) {
    HALK_CHECK(items[item_index].graph != nullptr);
    // The rewritten graph (when enabled) only needs to live for this
    // iteration: everything the plan keeps is copied into its arena.
    query::QueryGraph rewritten;
    const query::QueryGraph* g = items[item_index].graph;
    if (options_.apply_rewrites) {
      rewritten = RewriteQuery(*g, options_.rewrites);
      g = &rewritten;
    }
    HALK_CHECK_GE(g->target(), 0) << "planning a target-less query";

    const std::vector<query::Fingerprint> fps =
        query::SubtreeFingerprints(*g);
    const size_t num_nodes = static_cast<size_t>(g->num_nodes());

    // Only the sub-DAG reachable from the target enters the plan. DNF
    // branches may carry dead union nodes, so union-freedom is enforced
    // on the reachable set, not the whole node array.
    std::vector<char> reachable(num_nodes, 0);
    std::vector<int> stack = {g->target()};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<size_t>(id)]) continue;
      reachable[static_cast<size_t>(id)] = 1;
      HALK_CHECK(g->nodes()[static_cast<size_t>(id)].op !=
                 query::OpType::kUnion)
          << "plan inputs must be union-free (expand to DNF first)";
      for (int in : g->nodes()[static_cast<size_t>(id)].inputs) {
        stack.push_back(in);
      }
    }

    std::vector<int32_t> plan_id(num_nodes, -1);
    for (int id : g->TopologicalOrder()) {
      if (!reachable[static_cast<size_t>(id)]) continue;
      ++plan.total_nodes;
      auto [it, inserted] = dedup.try_emplace(fps[static_cast<size_t>(id)],
                                              -1);
      if (!inserted) {
        plan_id[static_cast<size_t>(id)] = it->second;
        continue;
      }

      const query::QueryNode& n = g->nodes()[static_cast<size_t>(id)];
      PlanNode pn;
      pn.op = n.op;
      pn.key = fps[static_cast<size_t>(id)];
      switch (n.op) {
        case query::OpType::kAnchor:
          pn.payload = n.anchor_entity;
          break;
        case query::OpType::kProjection:
          pn.payload = n.relation;
          break;
        default:
          break;
      }

      pn.num_inputs = static_cast<uint32_t>(n.inputs.size());
      int32_t* inputs = plan.arena.AllocateArray<int32_t>(n.inputs.size());
      input_rows.clear();
      relation_tags.clear();
      if (n.op == query::OpType::kProjection) {
        relation_tags.push_back(n.relation);
      }
      for (size_t j = 0; j < n.inputs.size(); ++j) {
        const int32_t in_id =
            plan_id[static_cast<size_t>(n.inputs[j])];
        HALK_CHECK_GE(in_id, 0);
        inputs[j] = in_id;
        const PlanNode& in = plan.nodes[static_cast<size_t>(in_id)];
        input_rows.push_back(in.est_rows);
        pn.depth = std::max(pn.depth, in.depth + 1);
        relation_tags.insert(relation_tags.end(), in.relations,
                             in.relations + in.num_relations);
      }
      pn.inputs = inputs;
      pn.est_rows = cost_.EstimateRows(pn.op, pn.payload, input_rows.data(),
                                       input_rows.size());
      pn.sched_rows = pn.est_rows;
      if (options_.feedback != nullptr) {
        double observed = 0.0;
        if (options_.feedback->ObservedRows(pn.key, &observed)) {
          pn.sched_rows = observed;
          pn.from_feedback = true;
        }
      }
      std::sort(relation_tags.begin(), relation_tags.end());
      relation_tags.erase(
          std::unique(relation_tags.begin(), relation_tags.end()),
          relation_tags.end());
      pn.relations =
          plan.arena.CopyArray(relation_tags.data(), relation_tags.size());
      pn.num_relations = static_cast<uint32_t>(relation_tags.size());

      const int32_t new_id = static_cast<int32_t>(plan.nodes.size());
      plan.nodes.push_back(pn);
      plan.max_depth = std::max(plan.max_depth, pn.depth);
      it->second = new_id;
      plan_id[static_cast<size_t>(id)] = new_id;
    }

    PlanRoot root;
    root.item_index = item_index;
    root.request_index = items[item_index].request_index;
    root.node = plan_id[static_cast<size_t>(g->target())];
    plan.roots.push_back(root);
  }

  // Static refcounts over the *unique* graph: one per DAG edge plus one
  // per root anchored at the node.
  for (const PlanNode& n : plan.nodes) {
    for (uint32_t j = 0; j < n.num_inputs; ++j) {
      ++plan.nodes[static_cast<size_t>(n.inputs[j])].refcount;
    }
  }
  for (const PlanRoot& root : plan.roots) {
    ++plan.nodes[static_cast<size_t>(root.node)].refcount;
  }

  plan.schedule.resize(plan.nodes.size());
  for (size_t i = 0; i < plan.schedule.size(); ++i) {
    plan.schedule[i] = static_cast<int32_t>(i);
  }
  std::sort(plan.schedule.begin(), plan.schedule.end(),
            [&plan](int32_t a, int32_t b) {
              const PlanNode& na = plan.nodes[static_cast<size_t>(a)];
              const PlanNode& nb = plan.nodes[static_cast<size_t>(b)];
              if (na.depth != nb.depth) return na.depth < nb.depth;
              if (na.sched_rows != nb.sched_rows) {
                return na.sched_rows < nb.sched_rows;
              }
              return a < b;
            });
  return plan;
}

}  // namespace halk::plan
