#ifndef HALK_PLAN_EXECUTOR_H_
#define HALK_PLAN_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/operator_model.h"
#include "core/query_model.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "serving/subtree_cache.h"

namespace halk::plan {

/// Counters of one plan execution; the server exports them as `plan.*`
/// metrics and annotates them onto the embed span.
struct ExecStats {
  int64_t nodes = 0;         // unique plan nodes
  int64_t evaluated = 0;     // nodes actually computed
  int64_t cache_hits = 0;    // subtrees answered from the cache
  int64_t cache_misses = 0;  // probed but absent
  int64_t skipped = 0;       // needed by no evaluated node (cached above)
  int64_t op_batches = 0;    // batched operator calls issued
  int64_t slots_reused = 0;  // embedding slots recycled via refcounts
  size_t arena_bytes = 0;    // execution arena footprint
};

/// A prepared execution: per-node subtree-cache results, the set of nodes
/// that still need computing, and the batched operator calls that will
/// produce them. Preparation is separated from evaluation so the serving
/// path gets distinct batch_assembly / embed trace phases.
struct ExecSchedule {
  struct OpBatch {
    query::OpType op = query::OpType::kAnchor;
    uint32_t arity = 0;
    /// Plan-node ids, most selective first (the plan's schedule order).
    std::vector<int32_t> node_ids;
  };

  std::vector<OpBatch> batches;
  /// Per plan node: value must be materialized (root, or input of an
  /// evaluated node).
  std::vector<uint8_t> needed;
  /// Per plan node: answered by the subtree cache.
  std::vector<uint8_t> cached;
  /// Per plan node: the cache payload when `cached` (empty otherwise).
  std::vector<serving::SubtreeCache::Entry> cached_entries;
  ExecStats stats;
};

/// The shared-graph executor: evaluates a Plan level by level, batching
/// all same-operator nodes of a depth into one operator call, so each
/// unique subtree is materialized exactly once per micro-batch — and not
/// at all when the subtree cache already holds it (a hit skips the whole
/// sub-DAG below, not just the node). Embedding rows live in a per-run
/// bump arena; per-node reference counts recycle slots as consumers
/// drain, so peak memory tracks the widest level, not the whole DAG.
///
/// Stateless between calls: one instance serves every worker thread
/// concurrently (the cache has its own lock).
class PlanExecutor {
 public:
  /// `model` supplies the config; `ops` the operator dispatch (for
  /// HalkModel they are the same object). `cache` may be null. None are
  /// owned; all must outlive the executor.
  PlanExecutor(const core::QueryModel* model, core::OperatorModel* ops,
               serving::SubtreeCache* cache);

  /// Probes the subtree cache top-down (a hit prunes the subtree below
  /// it from the probe frontier) and assembles batched operator calls.
  /// `trace` (may be inactive) receives subtree_cache_hit marker events.
  ExecSchedule Prepare(const Plan& plan,
                       const obs::TraceContext& trace = {}) const;

  /// Evaluates the prepared schedule; returns one embedding row per plan
  /// root, in roots order, bit-identical to a per-branch EmbedQueries
  /// walk. `trace` parents per-batch node_eval spans. `schedule->stats`
  /// accumulates execution counters.
  core::EmbeddingBatch Run(const Plan& plan, ExecSchedule* schedule,
                           const obs::TraceContext& trace = {}) const;

  /// Prepare + Run in one step (tests, offline evaluation).
  core::EmbeddingBatch Execute(const Plan& plan,
                               ExecStats* stats = nullptr) const;

  serving::SubtreeCache* cache() const { return cache_; }

 private:
  const core::QueryModel* model_;  // not owned
  core::OperatorModel* ops_;       // not owned
  serving::SubtreeCache* cache_;   // not owned, may be null
};

}  // namespace halk::plan

#endif  // HALK_PLAN_EXECUTOR_H_
