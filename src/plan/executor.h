#ifndef HALK_PLAN_EXECUTOR_H_
#define HALK_PLAN_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/operator_model.h"
#include "core/query_model.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "serving/subtree_cache.h"

namespace halk::plan {

/// Per-node actuals of one execution, collected only when
/// ExecOptions::collect_actuals is set. `actual_rows` is a sampled
/// membership estimate: the count of probed entities within the model's
/// MembershipThreshold, scaled to the full table; negative means the node
/// was never materialized (skipped) or the model has no membership notion.
struct NodeActuals {
  int64_t wall_ns = 0;        // attributed share of the op batch's wall
  double actual_rows = -1.0;  // sampled cardinality estimate
  bool evaluated = false;     // computed by an operator call this run
  bool cache_hit = false;     // materialized from the subtree cache
  bool slot_reused = false;   // landed in a recycled embedding slot
};

/// Knobs of one plan execution, fixed at Prepare time.
struct ExecOptions {
  /// Collect NodeActuals (EXPLAIN ANALYZE, the serving analytics plane).
  /// Off costs nothing: no clock reads, no probes, no allocation.
  bool collect_actuals = false;
  /// Entities probed per node for the actual-rows estimate; the count of
  /// in-threshold entities is scaled by num_entities / sampled.
  int64_t sample_entities = 256;
};

/// Counters of one plan execution; the server exports them as `plan.*`
/// metrics and annotates them onto the embed span.
struct ExecStats {
  int64_t nodes = 0;         // unique plan nodes
  int64_t evaluated = 0;     // nodes actually computed
  int64_t cache_hits = 0;    // subtrees answered from the cache
  int64_t cache_misses = 0;  // probed but absent
  int64_t skipped = 0;       // needed by no evaluated node (cached above)
  int64_t op_batches = 0;    // batched operator calls issued
  int64_t slots_reused = 0;  // embedding slots recycled via refcounts
  size_t arena_bytes = 0;    // execution arena footprint
  /// Indexed by plan-node id; empty unless ExecOptions::collect_actuals.
  std::vector<NodeActuals> actuals;
};

/// A prepared execution: per-node subtree-cache results, the set of nodes
/// that still need computing, and the batched operator calls that will
/// produce them. Preparation is separated from evaluation so the serving
/// path gets distinct batch_assembly / embed trace phases.
struct ExecSchedule {
  struct OpBatch {
    query::OpType op = query::OpType::kAnchor;
    uint32_t arity = 0;
    /// Plan-node ids, most selective first (the plan's schedule order).
    std::vector<int32_t> node_ids;
  };

  std::vector<OpBatch> batches;
  /// Per plan node: value must be materialized (root, or input of an
  /// evaluated node).
  std::vector<uint8_t> needed;
  /// Per plan node: answered by the subtree cache.
  std::vector<uint8_t> cached;
  /// Per plan node: the cache payload when `cached` (empty otherwise).
  std::vector<serving::SubtreeCache::Entry> cached_entries;
  ExecOptions options;
  ExecStats stats;
};

/// The shared-graph executor: evaluates a Plan level by level, batching
/// all same-operator nodes of a depth into one operator call, so each
/// unique subtree is materialized exactly once per micro-batch — and not
/// at all when the subtree cache already holds it (a hit skips the whole
/// sub-DAG below, not just the node). Embedding rows live in a per-run
/// bump arena; per-node reference counts recycle slots as consumers
/// drain, so peak memory tracks the widest level, not the whole DAG.
///
/// Stateless between calls: one instance serves every worker thread
/// concurrently (the cache has its own lock).
class PlanExecutor {
 public:
  /// `model` supplies the config; `ops` the operator dispatch (for
  /// HalkModel they are the same object). `cache` may be null. None are
  /// owned; all must outlive the executor.
  PlanExecutor(const core::QueryModel* model, core::OperatorModel* ops,
               serving::SubtreeCache* cache);

  /// Probes the subtree cache top-down (a hit prunes the subtree below
  /// it from the probe frontier) and assembles batched operator calls.
  /// `trace` (may be inactive) receives subtree_cache_hit marker events.
  /// `options` fixes the analytics mode for the subsequent Run.
  ExecSchedule Prepare(const Plan& plan, const obs::TraceContext& trace = {},
                       const ExecOptions& options = {}) const;

  /// Evaluates the prepared schedule; returns one embedding row per plan
  /// root, in roots order, bit-identical to a per-branch EmbedQueries
  /// walk. `trace` parents per-batch node_eval spans. `schedule->stats`
  /// accumulates execution counters — including per-node actuals when
  /// the schedule was prepared with collect_actuals (the membership
  /// probes run after each batch's wall clock stops, so timing never
  /// includes the analytics itself).
  core::EmbeddingBatch Run(const Plan& plan, ExecSchedule* schedule,
                           const obs::TraceContext& trace = {}) const;

  /// Prepare + Run in one step (tests, offline evaluation).
  core::EmbeddingBatch Execute(const Plan& plan, ExecStats* stats = nullptr,
                               const ExecOptions& options = {}) const;

  serving::SubtreeCache* cache() const { return cache_; }

 private:
  const core::QueryModel* model_;  // not owned
  core::OperatorModel* ops_;       // not owned
  serving::SubtreeCache* cache_;   // not owned, may be null
};

}  // namespace halk::plan

#endif  // HALK_PLAN_EXECUTOR_H_
