#include "plan/rewrite.h"

#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace halk::plan {

namespace {

using query::OpType;
using query::QueryGraph;
using query::QueryNode;

class Rewriter {
 public:
  Rewriter(const QueryGraph& old_graph, const RewriteOptions& options)
      : old_(old_graph), options_(options) {}

  QueryGraph Run() {
    const int target = Rebuild(old_.target());
    out_.SetTarget(target);
    HALK_CHECK_OK(out_.Validate(/*grounded=*/false));
    return std::move(out_);
  }

 private:
  const QueryNode& Node(int id) const {
    return old_.nodes()[static_cast<size_t>(id)];
  }

  // Follows ¬¬ chains: returns the node id with an even number of
  // negations stripped (when enabled).
  int StripDoubleNegation(int id) const {
    if (!options_.eliminate_double_negation) return id;
    while (Node(id).op == OpType::kNegation &&
           Node(Node(id).inputs[0]).op == OpType::kNegation) {
      id = Node(Node(id).inputs[0]).inputs[0];
    }
    return id;
  }

  // Collects the flattened input list of an associative node: children of
  // the same op are spliced in (difference only flattens the minuend).
  void Flatten(OpType op, int id, std::vector<int>* leaves) const {
    const QueryNode& n = Node(id);
    if (!options_.flatten_associative || n.op != op) {
      leaves->push_back(id);
      return;
    }
    if (op == OpType::kDifference) {
      // D(D(a, b...), c...) = D(a, b..., c...): splice the minuend only.
      Flatten(op, n.inputs[0], leaves);
      for (size_t i = 1; i < n.inputs.size(); ++i) {
        leaves->push_back(n.inputs[i]);
      }
      return;
    }
    for (int input : n.inputs) Flatten(op, input, leaves);
  }

  int Rebuild(int old_id) {
    old_id = StripDoubleNegation(old_id);
    auto it = memo_.find(old_id);
    if (it != memo_.end()) return it->second;

    const QueryNode& n = Node(old_id);
    int new_id = -1;
    switch (n.op) {
      case OpType::kAnchor:
        new_id = out_.AddAnchor(n.anchor_entity);
        break;
      case OpType::kProjection:
        new_id = out_.AddProjection(Rebuild(n.inputs[0]), n.relation);
        break;
      case OpType::kNegation:
        new_id = out_.AddNegation(Rebuild(n.inputs[0]));
        break;
      case OpType::kIntersection: {
        std::vector<int> leaves;
        for (int input : n.inputs) {
          Flatten(OpType::kIntersection, StripDoubleNegation(input),
                  &leaves);
        }
        // Partition into positive and negated conjuncts.
        std::vector<int> positives;
        std::vector<int> negated_bases;
        for (int leaf : leaves) {
          const int eff = StripDoubleNegation(leaf);
          if (Node(eff).op == OpType::kNegation) {
            negated_bases.push_back(
                StripDoubleNegation(Node(eff).inputs[0]));
          } else {
            positives.push_back(eff);
          }
        }
        const bool rewrite =
            !negated_bases.empty() && !positives.empty() &&
            (old_id != old_.target()
                 ? options_.prefer_difference_for_intermediate
                 : options_.rewrite_tail_negation);
        if (rewrite) {
          // I(a₁..aₖ, ¬b₁..¬bₘ) → D(I(a₁..aₖ), b₁..bₘ).
          std::vector<int> pos_new;
          for (int p : positives) pos_new.push_back(Rebuild(p));
          const int base = pos_new.size() == 1
                               ? pos_new[0]
                               : out_.AddIntersection(pos_new);
          std::vector<int> diff_inputs = {base};
          for (int b : negated_bases) diff_inputs.push_back(Rebuild(b));
          new_id = out_.AddDifference(std::move(diff_inputs));
        } else {
          std::vector<int> rebuilt;
          for (int leaf : leaves) rebuilt.push_back(Rebuild(leaf));
          new_id = rebuilt.size() == 1 ? rebuilt[0]
                                       : out_.AddIntersection(rebuilt);
        }
        break;
      }
      case OpType::kUnion: {
        std::vector<int> leaves;
        for (int input : n.inputs) Flatten(OpType::kUnion, input, &leaves);
        std::vector<int> rebuilt;
        for (int leaf : leaves) rebuilt.push_back(Rebuild(leaf));
        new_id =
            rebuilt.size() == 1 ? rebuilt[0] : out_.AddUnion(rebuilt);
        break;
      }
      case OpType::kDifference: {
        std::vector<int> leaves;
        Flatten(OpType::kDifference, old_id, &leaves);
        std::vector<int> rebuilt;
        for (int leaf : leaves) rebuilt.push_back(Rebuild(leaf));
        HALK_CHECK_GE(rebuilt.size(), 2u);
        new_id = out_.AddDifference(std::move(rebuilt));
        break;
      }
    }
    memo_.emplace(old_id, new_id);
    return new_id;
  }

  const QueryGraph& old_;
  RewriteOptions options_;
  QueryGraph out_;
  std::map<int, int> memo_;
};

}  // namespace

query::QueryGraph RewriteQuery(const query::QueryGraph& query,
                               const RewriteOptions& options) {
  HALK_CHECK_GE(query.target(), 0);
  Rewriter rewriter(query, options);
  return rewriter.Run();
}

query::QueryGraph RewriteQuery(const query::QueryGraph& query) {
  return RewriteQuery(query, RewriteOptions());
}

}  // namespace halk::plan
