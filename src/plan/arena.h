#ifndef HALK_PLAN_ARENA_H_
#define HALK_PLAN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace halk::plan {

/// Chunked bump allocator backing a plan's node arrays and the executor's
/// embedding slots. Allocation is a pointer bump; nothing is freed
/// individually — everything is released at once when the arena dies (or
/// Reset). Allocations never move, so pointers handed out stay valid for
/// the arena's lifetime. Not thread-safe; each plan / execution owns its
/// own arena.
class Arena {
 public:
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `alignment` must be a power of two. Never returns null; zero-byte
  /// requests return a valid, dereferenceable-for-zero-bytes pointer.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    size_t offset = Align(offset_, alignment);
    if (blocks_.empty() || offset + bytes > blocks_.back().size) {
      const size_t need = bytes + alignment;
      NewBlock(need > block_bytes_ ? need : block_bytes_);
      offset = Align(0, alignment);
    }
    char* p = blocks_.back().data.get() + offset;
    offset_ = offset + bytes;
    bytes_allocated_ += bytes;
    return p;
  }

  /// Zero-initialized array of a trivially-destructible T (the arena never
  /// runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    T* p = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    return p;
  }

  /// Arena-owned copy of `[src, src + count)`.
  template <typename T>
  T* CopyArray(const T* src, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    T* p = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    if (count > 0) std::memcpy(p, src, count * sizeof(T));
    return p;
  }

  /// Total bytes handed out (excluding alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Drops every block. Outstanding pointers become invalid.
  void Reset() {
    blocks_.clear();
    offset_ = 0;
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
  }

 private:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static size_t Align(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  void NewBlock(size_t size) {
    Block b;
    b.data = std::make_unique<char[]>(size);
    b.size = size;
    bytes_reserved_ += size;
    blocks_.push_back(std::move(b));
    offset_ = 0;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t offset_ = 0;  // within blocks_.back()
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace halk::plan

#endif  // HALK_PLAN_ARENA_H_
