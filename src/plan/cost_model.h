#ifndef HALK_PLAN_COST_MODEL_H_
#define HALK_PLAN_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "kg/stats.h"
#include "query/ops.h"

namespace halk::plan {

/// Cardinality estimation over plan nodes, fed by the per-relation
/// degree/fan-out statistics collected at KnowledgeGraph::Finalize()
/// (kg/stats.h). Estimates use the classic independence assumptions —
/// projections multiply by the relation's average out-fan-out,
/// intersections multiply selectivities — clamped to [1, N]. They drive
/// only *scheduling* (most-selective-first ordering within a depth level)
/// and explain output; they never change which operators run, so a bad
/// estimate can cost speed but not correctness.
class CostModel {
 public:
  /// `stats` may be null (no KG attached): every relation then gets a
  /// neutral fan-out of 1. `num_entities` caps estimates; <= 0 disables
  /// the cap.
  CostModel(const kg::GraphStats* stats, int64_t num_entities);

  /// Estimated result cardinality of one operator application over inputs
  /// with estimated cardinalities `input_rows[0..num_inputs)`. `payload`
  /// is the anchor entity or projection relation.
  double EstimateRows(query::OpType op, int64_t payload,
                      const double* input_rows, size_t num_inputs) const;

  /// `rows` normalized to (0, 1] by the entity count (1 when unknown).
  double Selectivity(double rows) const;

  int64_t num_entities() const { return num_entities_; }

 private:
  double Clamp(double rows) const;

  const kg::GraphStats* stats_;  // not owned, may be null
  int64_t num_entities_;
};

}  // namespace halk::plan

#endif  // HALK_PLAN_COST_MODEL_H_
