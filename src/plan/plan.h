#ifndef HALK_PLAN_PLAN_H_
#define HALK_PLAN_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plan/arena.h"
#include "query/fingerprint.h"
#include "query/ops.h"

namespace halk::plan {

/// One node of a shared compute DAG: a unique (sub)query across every
/// branch of a micro-batch. Nodes whose evaluation-order-preserving
/// subtree fingerprint (query::SubtreeFingerprints) matches are merged, so
/// identical subtrees — within one request or across requests — are
/// materialized once. Variable-length members live in the owning Plan's
/// arena.
struct PlanNode {
  query::OpType op = query::OpType::kAnchor;
  /// Anchor entity for kAnchor, relation for kProjection, else unused.
  int64_t payload = -1;
  /// Plan-node ids of the operator inputs, in evaluation order.
  const int32_t* inputs = nullptr;
  uint32_t num_inputs = 0;
  /// Dedup and intermediate-cache key.
  query::Fingerprint key;
  /// Sorted distinct relations appearing in the subtree — the cache
  /// invalidation tags (serving/subtree_cache.h).
  const int64_t* relations = nullptr;
  uint32_t num_relations = 0;
  /// Estimated result cardinality (plan/cost_model.h). Never overwritten
  /// by feedback, so EXPLAIN ANALYZE q-errors always grade the static
  /// cost model.
  double est_rows = 1.0;
  /// Cardinality the schedule sort actually uses: est_rows unless
  /// cardinality feedback (plan/planner.h) substituted an observed value.
  /// Only evaluation *order* reads it — operator math never does, so
  /// feedback cannot change served answers, only when a node runs within
  /// its depth level.
  double sched_rows = 1.0;
  /// sched_rows came from observed actuals rather than the cost model.
  bool from_feedback = false;
  /// Longest input chain below the node (anchors are 0). All consumers of
  /// a node sit at a strictly greater depth, so level-by-level execution
  /// is a valid topological order.
  int32_t depth = 0;
  /// Static consumer count: distinct DAG edges into the node plus one per
  /// plan root anchored at it. The executor refines this into live counts
  /// for embedding-slot reuse.
  int32_t refcount = 0;
};

/// One union-free branch root: plan node `node` answers branch
/// `item_index` of the planner's input, owned by request slot
/// `request_index`. A request with a union has one root per DNF branch;
/// its score is the min over them.
struct PlanRoot {
  size_t item_index = 0;
  size_t request_index = 0;
  int32_t node = -1;
};

/// A batched micro-plan: the deduplicated union of every input branch's
/// compute DAG plus a cost-ordered evaluation schedule. Move-only (owns
/// its arena); build with plan::Planner.
struct Plan {
  Plan() = default;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  Arena arena;
  /// Unique nodes; ids are indices into this vector.
  std::vector<PlanNode> nodes;
  /// One entry per input branch, in input order.
  std::vector<PlanRoot> roots;
  /// Topological order: ascending depth, then ascending sched_rows (most
  /// selective first — cheap intersections and projections run before
  /// expensive ones at the same level), then insertion id for stability.
  std::vector<int32_t> schedule;
  /// Node instances before dedup (sum over branches of reachable nodes).
  int64_t total_nodes = 0;
  int32_t max_depth = 0;

  const PlanNode& node(int32_t id) const {
    return nodes[static_cast<size_t>(id)];
  }

  /// Fraction of node evaluations merged away by dedup: 1 - unique/total.
  double dedup_ratio() const {
    return total_nodes > 0
               ? 1.0 - static_cast<double>(nodes.size()) /
                           static_cast<double>(total_nodes)
               : 0.0;
  }
};

}  // namespace halk::plan

#endif  // HALK_PLAN_PLAN_H_
