#ifndef HALK_PLAN_REWRITE_H_
#define HALK_PLAN_REWRITE_H_

#include "query/dag.h"

namespace halk::plan {

/// Rewrite options for RewriteQuery — the planner's algebraic
/// normalization pass (formerly query/optimizer.h). The defaults encode
/// the paper's empirically validated operator preferences (Sec. II-A: "the
/// order of operator selection should be projection > intersection/
/// difference > negation > union"; Sec. I: the difference operator is
/// better for multi-hop reasoning while negation suits the tail position).
struct RewriteOptions {
  /// ¬¬A → A.
  bool eliminate_double_negation = true;
  /// I(I(a, b), c) → I(a, b, c); same for unions and difference minuends.
  bool flatten_associative = true;
  /// I(a₁..aₖ, ¬b₁..¬bₘ) → D(I(a₁..aₖ), b₁..bₘ) for *intermediate* nodes
  /// (a downstream operator consumes them) — difference produces compact
  /// candidate sets that compound better over further hops.
  bool prefer_difference_for_intermediate = true;
  /// The same rewrite applied at the target node too. Off by default:
  /// negation is the better *tail* operation in the paper's study.
  bool rewrite_tail_negation = false;
};

/// Applies the semantics-preserving rewrites selected in `options` until a
/// fixed point and returns the normalized graph (unreachable nodes are
/// dropped). Every rewrite is an exact set identity — the rewritten query
/// denotes the same answer set — but it swaps which *neural* operators
/// run, so embeddings and rankings may shift. The serving planner therefore
/// leaves this off by default (PlannerOptions::apply_rewrites) to stay
/// bit-identical with Evaluator::TopK; training-time and offline pipelines
/// opt in.
query::QueryGraph RewriteQuery(const query::QueryGraph& query,
                               const RewriteOptions& options);

/// Rewrite with default options.
query::QueryGraph RewriteQuery(const query::QueryGraph& query);

}  // namespace halk::plan

#endif  // HALK_PLAN_REWRITE_H_
