#include "query/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.h"

namespace halk::query {

namespace {

// splitmix64 finalizer — a cheap, well-mixed 64-bit permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Two independently-seeded lanes give a 128-bit digest without pulling in
// a real hash library.
Fingerprint Combine(const Fingerprint& acc, uint64_t value) {
  Fingerprint out;
  out.hi = Mix64(acc.hi ^ Mix64(value ^ 0x517cc1b727220a95ULL));
  out.lo = Mix64(acc.lo ^ Mix64(value ^ 0x2545f4914f6cdd1dULL));
  return out;
}

Fingerprint HashNode(uint64_t op_tag, uint64_t payload,
                     std::vector<Fingerprint> inputs, size_t sort_from) {
  // `sort_from` = index of the first input whose order is irrelevant
  // (0 for fully commutative ops, 1 for difference, inputs.size() for
  // ordered ops). Sorting by (hi, lo) canonicalizes the commutative tail.
  Fingerprint h;
  h = Combine(h, op_tag);
  h = Combine(h, payload);
  auto cmp = [](const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  };
  std::sort(inputs.begin() + static_cast<std::ptrdiff_t>(sort_from),
            inputs.end(), cmp);
  for (const Fingerprint& in : inputs) {
    h = Combine(h, in.hi);
    h = Combine(h, in.lo);
  }
  return h;
}

}  // namespace

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

Fingerprint CanonicalFingerprint(const QueryGraph& query) {
  HALK_CHECK_GE(query.target(), 0) << "fingerprint of a target-less query";
  std::vector<Fingerprint> node_hash(
      static_cast<size_t>(query.num_nodes()));
  // TopologicalOrder lists inputs before consumers, so each node's input
  // hashes are ready when it is visited; nodes unreachable from the target
  // simply never feed into the target hash.
  for (int id : query.TopologicalOrder()) {
    const QueryNode& n = query.nodes()[static_cast<size_t>(id)];
    std::vector<Fingerprint> inputs;
    inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      inputs.push_back(node_hash[static_cast<size_t>(in)]);
    }
    uint64_t payload = 0;
    size_t sort_from = inputs.size();
    switch (n.op) {
      case OpType::kAnchor:
        payload = static_cast<uint64_t>(n.anchor_entity);
        break;
      case OpType::kProjection:
        payload = static_cast<uint64_t>(n.relation);
        break;
      case OpType::kIntersection:
      case OpType::kUnion:
        sort_from = 0;
        break;
      case OpType::kDifference:
        sort_from = 1;  // the minuend is positional, subtrahends are a set
        break;
      case OpType::kNegation:
        break;
    }
    node_hash[static_cast<size_t>(id)] =
        HashNode(static_cast<uint64_t>(n.op) + 1, payload, std::move(inputs),
                 sort_from);
  }
  return node_hash[static_cast<size_t>(query.target())];
}

std::vector<Fingerprint> SubtreeFingerprints(const QueryGraph& query) {
  std::vector<Fingerprint> node_hash(static_cast<size_t>(query.num_nodes()));
  for (int id : query.TopologicalOrder()) {
    const QueryNode& n = query.nodes()[static_cast<size_t>(id)];
    std::vector<Fingerprint> inputs;
    inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      inputs.push_back(node_hash[static_cast<size_t>(in)]);
    }
    uint64_t payload = 0;
    // Unlike CanonicalFingerprint, commutative inputs are only sorted when
    // there are exactly two of them. With two inputs every cross-input
    // reduction inside the neural operators (softmax denominators, deep-set
    // sums, min folds) is a single commutative binary float op, so i(a, b)
    // and i(b, a) produce bit-identical embeddings; with three or more the
    // accumulation order changes the floats, and difference subtrahends
    // always feed order-sensitive 3+-way sums through the minuend.
    size_t sort_from = inputs.size();
    switch (n.op) {
      case OpType::kAnchor:
        payload = static_cast<uint64_t>(n.anchor_entity);
        break;
      case OpType::kProjection:
        payload = static_cast<uint64_t>(n.relation);
        break;
      case OpType::kIntersection:
      case OpType::kUnion:
        if (inputs.size() == 2) sort_from = 0;
        break;
      case OpType::kDifference:
      case OpType::kNegation:
        break;
    }
    node_hash[static_cast<size_t>(id)] =
        HashNode(static_cast<uint64_t>(n.op) + 1, payload, std::move(inputs),
                 sort_from);
  }
  return node_hash;
}

Fingerprint StructureFingerprint(const QueryGraph& query) {
  Fingerprint h;
  h = Combine(h, static_cast<uint64_t>(query.num_nodes()));
  h = Combine(h, static_cast<uint64_t>(query.target()));
  for (const QueryNode& n : query.nodes()) {
    h = Combine(h, static_cast<uint64_t>(n.op) + 1);
    h = Combine(h, static_cast<uint64_t>(n.inputs.size()));
    for (int in : n.inputs) h = Combine(h, static_cast<uint64_t>(in));
  }
  return h;
}

}  // namespace halk::query
