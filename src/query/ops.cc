#include "query/ops.h"

namespace halk::query {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kAnchor:
      return "anchor";
    case OpType::kProjection:
      return "projection";
    case OpType::kIntersection:
      return "intersection";
    case OpType::kUnion:
      return "union";
    case OpType::kDifference:
      return "difference";
    case OpType::kNegation:
      return "negation";
  }
  return "?";
}

}  // namespace halk::query
