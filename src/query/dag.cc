#include "query/dag.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::query {

int QueryGraph::AddNode(QueryNode node) {
  for (int in : node.inputs) {
    HALK_CHECK_GE(in, 0);
    HALK_CHECK_LT(in, num_nodes()) << "inputs must be added before consumers";
  }
  nodes_.push_back(std::move(node));
  return num_nodes() - 1;
}

int QueryGraph::AddAnchor(int64_t entity) {
  QueryNode n;
  n.op = OpType::kAnchor;
  n.anchor_entity = entity;
  return AddNode(std::move(n));
}

int QueryGraph::AddProjection(int input, int64_t relation) {
  QueryNode n;
  n.op = OpType::kProjection;
  n.relation = relation;
  n.inputs = {input};
  return AddNode(std::move(n));
}

int QueryGraph::AddIntersection(std::vector<int> inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  QueryNode n;
  n.op = OpType::kIntersection;
  n.inputs = std::move(inputs);
  return AddNode(std::move(n));
}

int QueryGraph::AddUnion(std::vector<int> inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  QueryNode n;
  n.op = OpType::kUnion;
  n.inputs = std::move(inputs);
  return AddNode(std::move(n));
}

int QueryGraph::AddDifference(std::vector<int> inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  QueryNode n;
  n.op = OpType::kDifference;
  n.inputs = std::move(inputs);
  return AddNode(std::move(n));
}

int QueryGraph::AddNegation(int input) {
  QueryNode n;
  n.op = OpType::kNegation;
  n.inputs = {input};
  return AddNode(std::move(n));
}

void QueryGraph::SetTarget(int node) {
  HALK_CHECK_GE(node, 0);
  HALK_CHECK_LT(node, num_nodes());
  target_ = node;
}

QueryNode& QueryGraph::mutable_node(int id) {
  HALK_CHECK_GE(id, 0);
  HALK_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

Status QueryGraph::Validate(bool grounded) const {
  if (target_ < 0 || target_ >= num_nodes()) {
    return Status::InvalidArgument("query target not set");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const QueryNode& n = nodes_[i];
    for (int in : n.inputs) {
      if (in < 0 || in >= static_cast<int>(i)) {
        return Status::InvalidArgument(
            StrFormat("node %zu has invalid input %d", i, in));
      }
    }
    switch (n.op) {
      case OpType::kAnchor:
        if (!n.inputs.empty()) {
          return Status::InvalidArgument("anchor node with inputs");
        }
        if (grounded && n.anchor_entity < 0) {
          return Status::InvalidArgument("ungrounded anchor entity");
        }
        break;
      case OpType::kProjection:
        if (n.inputs.size() != 1) {
          return Status::InvalidArgument("projection arity must be 1");
        }
        if (grounded && n.relation < 0) {
          return Status::InvalidArgument("ungrounded projection relation");
        }
        break;
      case OpType::kNegation:
        if (n.inputs.size() != 1) {
          return Status::InvalidArgument("negation arity must be 1");
        }
        break;
      case OpType::kIntersection:
      case OpType::kUnion:
      case OpType::kDifference:
        if (n.inputs.size() < 2) {
          return Status::InvalidArgument(
              StrFormat("%s needs >= 2 inputs", OpTypeName(n.op)));
        }
        break;
    }
  }
  return Status::OK();
}

std::vector<int> QueryGraph::TopologicalOrder() const {
  // Nodes are appended with inputs preceding consumers, so insertion order
  // is already topological; return the reachable subset from target.
  std::vector<char> reachable(nodes_.size(), 0);
  std::vector<int> stack = {target_};
  if (target_ >= 0) reachable[static_cast<size_t>(target_)] = 1;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    for (int in : nodes_[static_cast<size_t>(id)].inputs) {
      if (!reachable[static_cast<size_t>(in)]) {
        reachable[static_cast<size_t>(in)] = 1;
        stack.push_back(in);
      }
    }
  }
  std::vector<int> order;
  for (int i = 0; i < num_nodes(); ++i) {
    if (reachable[static_cast<size_t>(i)]) order.push_back(i);
  }
  return order;
}

std::vector<int> QueryGraph::AnchorIds() const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[static_cast<size_t>(i)].op == OpType::kAnchor) out.push_back(i);
  }
  return out;
}

bool QueryGraph::HasOp(OpType op) const {
  for (const QueryNode& n : nodes_) {
    if (n.op == op) return true;
  }
  return false;
}

int QueryGraph::NumProjections() const {
  int count = 0;
  for (int id : TopologicalOrder()) {
    if (nodes_[static_cast<size_t>(id)].op == OpType::kProjection) ++count;
  }
  return count;
}

namespace {
void Render(const QueryGraph& g, int id, std::string* out) {
  const QueryNode& n = g.nodes()[static_cast<size_t>(id)];
  switch (n.op) {
    case OpType::kAnchor:
      *out += "a";
      *out += (n.anchor_entity >= 0 ? std::to_string(n.anchor_entity) : "?");
      return;
    case OpType::kProjection:
      *out += "p(";
      Render(g, n.inputs[0], out);
      *out += ",r";
      *out += (n.relation >= 0 ? std::to_string(n.relation) : "?");
      *out += ")";
      return;
    case OpType::kNegation:
      *out += "n(";
      Render(g, n.inputs[0], out);
      *out += ")";
      return;
    default: {
      *out += (n.op == OpType::kIntersection ? "i("
               : n.op == OpType::kUnion      ? "u("
                                             : "d(");
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        if (i > 0) *out += ",";
        Render(g, n.inputs[i], out);
      }
      *out += ")";
      return;
    }
  }
}
}  // namespace

std::string QueryGraph::ToString() const {
  if (target_ < 0) return "<no target>";
  std::string out;
  Render(*this, target_, &out);
  return out;
}

}  // namespace halk::query
