#ifndef HALK_QUERY_OPTIMIZER_H_
#define HALK_QUERY_OPTIMIZER_H_

#include "query/dag.h"

namespace halk::query {

/// Rewrite options for NormalizeQuery. The defaults encode the paper's
/// empirically validated operator preferences (Sec. II-A: "the order of
/// operator selection should be projection > intersection/difference >
/// negation > union"; Sec. I: the difference operator is better for
/// multi-hop reasoning while negation suits the tail position).
struct NormalizeOptions {
  /// ¬¬A → A.
  bool eliminate_double_negation = true;
  /// I(I(a, b), c) → I(a, b, c); same for unions and difference minuends.
  bool flatten_associative = true;
  /// I(a₁..aₖ, ¬b₁..¬bₘ) → D(I(a₁..aₖ), b₁..bₘ) for *intermediate* nodes
  /// (a downstream operator consumes them) — difference produces compact
  /// candidate sets that compound better over further hops.
  bool prefer_difference_for_intermediate = true;
  /// The same rewrite applied at the target node too. Off by default:
  /// negation is the better *tail* operation in the paper's study.
  bool rewrite_tail_negation = false;
};

/// Applies the semantics-preserving rewrites selected in `options` until a
/// fixed point and returns the normalized graph (unreachable nodes are
/// dropped). Every rewrite is an exact set identity; tests verify the
/// executor returns identical answers before and after.
QueryGraph NormalizeQuery(const QueryGraph& query,
                          const NormalizeOptions& options);

/// Normalization with default options.
QueryGraph NormalizeQuery(const QueryGraph& query);

}  // namespace halk::query

#endif  // HALK_QUERY_OPTIMIZER_H_
