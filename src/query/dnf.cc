#include "query/dnf.h"

#include "common/logging.h"

namespace halk::query {

namespace {

// Outermost (last in topological order) reachable union node, or -1.
// Expanding outermost-first keeps the branch count at the paper's
// N = prod_u |inputs(u)| over *reachable* unions, instead of duplicating
// branches for unions that become unreachable after substitution.
int FindUnion(const QueryGraph& g) {
  const std::vector<int> order = g.TopologicalOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (g.nodes()[static_cast<size_t>(*it)].op == OpType::kUnion) return *it;
  }
  return -1;
}

// Copy of `g` where every reference to node `u` is redirected to node `c`
// (c < u, so the graph stays topologically ordered).
QueryGraph Substitute(const QueryGraph& g, int u, int c) {
  QueryGraph out;
  for (int i = 0; i < g.num_nodes(); ++i) {
    QueryNode n = g.nodes()[static_cast<size_t>(i)];
    for (int& in : n.inputs) {
      if (in == u) in = c;
    }
    switch (n.op) {
      case OpType::kAnchor: {
        int id = out.AddAnchor(n.anchor_entity);
        HALK_CHECK_EQ(id, i);
        break;
      }
      case OpType::kProjection: {
        int id = out.AddProjection(n.inputs[0], n.relation);
        HALK_CHECK_EQ(id, i);
        break;
      }
      case OpType::kIntersection: {
        int id = out.AddIntersection(n.inputs);
        HALK_CHECK_EQ(id, i);
        break;
      }
      case OpType::kUnion: {
        int id = out.AddUnion(n.inputs);
        HALK_CHECK_EQ(id, i);
        break;
      }
      case OpType::kDifference: {
        int id = out.AddDifference(n.inputs);
        HALK_CHECK_EQ(id, i);
        break;
      }
      case OpType::kNegation: {
        int id = out.AddNegation(n.inputs[0]);
        HALK_CHECK_EQ(id, i);
        break;
      }
    }
  }
  out.SetTarget(g.target() == u ? c : g.target());
  return out;
}

void Expand(const QueryGraph& g, std::vector<QueryGraph>* branches) {
  const int u = FindUnion(g);
  if (u < 0) {
    branches->push_back(g);
    return;
  }
  const QueryNode& node = g.nodes()[static_cast<size_t>(u)];
  for (int input : node.inputs) {
    Expand(Substitute(g, u, input), branches);
  }
}

// Branch substitution distributes unions through projection, intersection,
// and difference *minuends* — all upward-monotone positions. It is unsound
// under negation or in a difference subtrahend (¬(A∪B) = ¬A ∩ ¬B), so such
// graphs are rejected. The paper's structures never place a union there.
void CheckMonotoneUnions(const QueryGraph& g, int id, bool non_monotone) {
  const QueryNode& n = g.nodes()[static_cast<size_t>(id)];
  HALK_CHECK(!(non_monotone && n.op == OpType::kUnion))
      << "union inside a negation/difference-subtrahend scope has no DNF "
         "branch expansion: "
      << g.ToString();
  for (size_t i = 0; i < n.inputs.size(); ++i) {
    const bool child_non_monotone =
        non_monotone || n.op == OpType::kNegation ||
        (n.op == OpType::kDifference && i > 0);
    CheckMonotoneUnions(g, n.inputs[i], child_non_monotone);
  }
}

}  // namespace

std::vector<QueryGraph> ToDnf(const QueryGraph& query) {
  HALK_CHECK_GE(query.target(), 0);
  CheckMonotoneUnions(query, query.target(), /*non_monotone=*/false);
  std::vector<QueryGraph> branches;
  Expand(query, &branches);
  return branches;
}

}  // namespace halk::query
