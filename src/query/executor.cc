#include "query/executor.h"

#include "common/logging.h"

namespace halk::query {

namespace {

using Bitmap = std::vector<uint8_t>;

Bitmap EvalNode(const kg::KnowledgeGraph& graph,
                const std::vector<Bitmap>& sets, const QueryNode& node) {
  const int64_t n = graph.num_entities();
  Bitmap out(static_cast<size_t>(n), 0);
  switch (node.op) {
    case OpType::kAnchor:
      out[static_cast<size_t>(node.anchor_entity)] = 1;
      break;
    case OpType::kProjection: {
      const Bitmap& in = sets[static_cast<size_t>(node.inputs[0])];
      for (int64_t e = 0; e < n; ++e) {
        if (!in[static_cast<size_t>(e)]) continue;
        for (int64_t t : graph.index().Tails(e, node.relation)) {
          out[static_cast<size_t>(t)] = 1;
        }
      }
      break;
    }
    case OpType::kIntersection: {
      out = sets[static_cast<size_t>(node.inputs[0])];
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        const Bitmap& in = sets[static_cast<size_t>(node.inputs[i])];
        for (int64_t e = 0; e < n; ++e) {
          out[static_cast<size_t>(e)] &= in[static_cast<size_t>(e)];
        }
      }
      break;
    }
    case OpType::kUnion: {
      for (int input : node.inputs) {
        const Bitmap& in = sets[static_cast<size_t>(input)];
        for (int64_t e = 0; e < n; ++e) {
          out[static_cast<size_t>(e)] |= in[static_cast<size_t>(e)];
        }
      }
      break;
    }
    case OpType::kDifference: {
      out = sets[static_cast<size_t>(node.inputs[0])];
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        const Bitmap& in = sets[static_cast<size_t>(node.inputs[i])];
        for (int64_t e = 0; e < n; ++e) {
          if (in[static_cast<size_t>(e)]) out[static_cast<size_t>(e)] = 0;
        }
      }
      break;
    }
    case OpType::kNegation: {
      const Bitmap& in = sets[static_cast<size_t>(node.inputs[0])];
      for (int64_t e = 0; e < n; ++e) {
        out[static_cast<size_t>(e)] = !in[static_cast<size_t>(e)];
      }
      break;
    }
  }
  return out;
}

std::vector<int64_t> ToSortedIds(const Bitmap& bitmap) {
  std::vector<int64_t> out;
  for (size_t e = 0; e < bitmap.size(); ++e) {
    if (bitmap[e]) out.push_back(static_cast<int64_t>(e));
  }
  return out;
}

Status CheckInputs(const QueryGraph& query, const kg::KnowledgeGraph& graph) {
  HALK_RETURN_NOT_OK(query.Validate(/*grounded=*/true));
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph not finalized");
  }
  for (const QueryNode& n : query.nodes()) {
    if (n.op == OpType::kAnchor && n.anchor_entity >= graph.num_entities()) {
      return Status::OutOfRange("anchor entity outside graph");
    }
    if (n.op == OpType::kProjection && n.relation >= graph.num_relations()) {
      return Status::OutOfRange("relation outside graph");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<int64_t>> ExecuteQuery(const QueryGraph& query,
                                          const kg::KnowledgeGraph& graph) {
  return ExecuteQuery(query, graph, obs::TraceContext{});
}

Result<std::vector<int64_t>> ExecuteQuery(const QueryGraph& query,
                                          const kg::KnowledgeGraph& graph,
                                          const obs::TraceContext& trace) {
  HALK_RETURN_NOT_OK(CheckInputs(query, graph));
  std::vector<Bitmap> sets(static_cast<size_t>(query.num_nodes()));
  for (int id : query.TopologicalOrder()) {
    obs::SpanGuard span(trace, "exec_node");
    const QueryNode& node = query.nodes()[static_cast<size_t>(id)];
    sets[static_cast<size_t>(id)] = EvalNode(graph, sets, node);
    if (span.active()) {
      span.Annotate("node", id);
      span.Annotate("op", static_cast<double>(node.op));
      int64_t cardinality = 0;
      for (uint8_t bit : sets[static_cast<size_t>(id)]) cardinality += bit;
      span.Annotate("result_size", static_cast<double>(cardinality));
    }
  }
  return ToSortedIds(sets[static_cast<size_t>(query.target())]);
}

Result<std::vector<std::vector<int64_t>>> ExecuteQueryAllNodes(
    const QueryGraph& query, const kg::KnowledgeGraph& graph) {
  HALK_RETURN_NOT_OK(CheckInputs(query, graph));
  std::vector<Bitmap> sets(static_cast<size_t>(query.num_nodes()));
  std::vector<std::vector<int64_t>> out(
      static_cast<size_t>(query.num_nodes()));
  for (int id : query.TopologicalOrder()) {
    sets[static_cast<size_t>(id)] =
        EvalNode(graph, sets, query.nodes()[static_cast<size_t>(id)]);
    out[static_cast<size_t>(id)] = ToSortedIds(sets[static_cast<size_t>(id)]);
  }
  return out;
}

}  // namespace halk::query
