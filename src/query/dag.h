#ifndef HALK_QUERY_DAG_H_
#define HALK_QUERY_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/ops.h"

namespace halk::query {

/// One node of a query computation graph. `anchor_entity`/`relation` are
/// -1 in structure templates and filled in by grounding.
struct QueryNode {
  OpType op = OpType::kAnchor;
  int64_t anchor_entity = -1;  // kAnchor only
  int64_t relation = -1;       // kProjection only
  std::vector<int> inputs;     // ids of producer nodes
};

/// A logical query as a directed acyclic computation graph (Fig. 1b/1c of
/// the paper). Nodes are appended bottom-up; the single `target()` node is
/// the query's answer variable.
class QueryGraph {
 public:
  QueryGraph() = default;

  int AddAnchor(int64_t entity = -1);
  int AddProjection(int input, int64_t relation = -1);
  int AddIntersection(std::vector<int> inputs);
  int AddUnion(std::vector<int> inputs);
  /// inputs[0] is the minuend; the result is inputs[0] minus the rest.
  int AddDifference(std::vector<int> inputs);
  int AddNegation(int input);

  void SetTarget(int node);
  int target() const { return target_; }

  const std::vector<QueryNode>& nodes() const { return nodes_; }
  QueryNode& mutable_node(int id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Structural well-formedness: target set, inputs in range and acyclic by
  /// construction, arities (projection/negation unary, set ops >= 2 inputs),
  /// and — when `grounded` — anchors/relations filled in.
  [[nodiscard]] Status Validate(bool grounded) const;

  /// Node ids in dependency order (inputs before consumers).
  std::vector<int> TopologicalOrder() const;

  /// Ids of all anchor nodes in insertion order.
  std::vector<int> AnchorIds() const;

  bool HasOp(OpType op) const;

  /// Number of projection edges — the "query size" axis of Table VI.
  int NumProjections() const;

  /// Debug rendering, e.g. "i(p(a0,r3), n(p(a1,r5)))".
  std::string ToString() const;

 private:
  int AddNode(QueryNode node);

  std::vector<QueryNode> nodes_;
  int target_ = -1;
};

}  // namespace halk::query

#endif  // HALK_QUERY_DAG_H_

