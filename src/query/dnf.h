#ifndef HALK_QUERY_DNF_H_
#define HALK_QUERY_DNF_H_

#include <vector>

#include "query/dag.h"

namespace halk::query {

/// Disjunctive-Normal-Form rewrite (Sec. III-F of the paper): every union
/// node is lifted to the top of the computation graph, yielding
/// N = prod_u |inputs(u)| union-free conjunctive branches. The answer to
/// the original query is the union of the branch answers; HaLk scores an
/// entity by its minimum distance over branches, so the union operator is
/// exact and non-parametric.
std::vector<QueryGraph> ToDnf(const QueryGraph& query);

}  // namespace halk::query

#endif  // HALK_QUERY_DNF_H_
