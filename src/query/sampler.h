#ifndef HALK_QUERY_SAMPLER_H_
#define HALK_QUERY_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "kg/graph.h"
#include "query/dag.h"
#include "query/structures.h"

namespace halk::query {

/// A structure template grounded against a concrete KG, with its exact
/// answer set. `easy_answers` are those already derivable from a smaller
/// split (filled by SplitEasyHard); ranking metrics are computed over
/// `hard_answers` with the easy ones filtered out, as in the paper's
/// protocol.
struct GroundedQuery {
  StructureId structure = StructureId::k1p;
  QueryGraph graph;
  std::vector<int64_t> answers;       // sorted, on the sampling graph
  std::vector<int64_t> easy_answers;  // sorted subset of answers
  std::vector<int64_t> hard_answers;  // answers \ easy_answers
};

/// Grounds query-structure templates against a KG with witness-based
/// backward sampling: a random witness answer is chosen for the target and
/// propagated down the DAG, so anchor/relation choices always admit at
/// least one witness path and EPFO parts are never vacuous. Queries whose
/// final answer set is empty or over the size cap are re-drawn.
class QuerySampler {
 public:
  struct Options {
    int max_attempts = 200;
    /// Answer-set cap for structures without negation.
    int64_t max_answers = 100;
    /// Negation answers are complements and naturally huge (the paper sees
    /// up to ~4000); they get a looser cap.
    int64_t max_answers_negation = 100000;
  };

  QuerySampler(const kg::KnowledgeGraph* graph, uint64_t seed);
  QuerySampler(const kg::KnowledgeGraph* graph, uint64_t seed,
               const Options& options);

  /// Samples one grounded query of the given structure.
  [[nodiscard]] Result<GroundedQuery> Sample(StructureId structure);

  /// Samples `count` queries (re-seeding internally between draws).
  [[nodiscard]] Result<std::vector<GroundedQuery>> SampleMany(StructureId structure,
                                                int count);

  /// Fills anchors/relations of a template in place; returns false if the
  /// witness walk dead-ends (caller retries). Exposed for tests.
  bool GroundTemplate(QueryGraph* graph);

 private:
  int64_t RandomEntityWithInEdge();

  const kg::KnowledgeGraph* graph_;
  Rng rng_;
  Options options_;
};

/// Splits `q->answers` into easy (answerable on `smaller`, typically the
/// next-smaller split of the dataset) and hard (requiring held-out edges).
void SplitEasyHard(GroundedQuery* q, const kg::KnowledgeGraph& smaller);

}  // namespace halk::query

#endif  // HALK_QUERY_SAMPLER_H_

