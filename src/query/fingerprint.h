#ifndef HALK_QUERY_FINGERPRINT_H_
#define HALK_QUERY_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "query/dag.h"

namespace halk::query {

/// A 128-bit query digest. Collisions are astronomically unlikely at cache
/// scale, so fingerprint equality is treated as query equality by the
/// serving layer.
struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }

  /// 32 hex digits, e.g. for log lines and cache dumps.
  std::string ToHex() const;
};

/// Hasher for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  size_t operator()(const Fingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Canonical content fingerprint of a grounded query: a Merkle-style hash
/// over the sub-DAG reachable from the target, including anchor entities
/// and relations. Input hashes of commutative operators (intersection,
/// union; difference subtrahends) are sorted, and node ids / insertion
/// order never enter the digest, so two graphs that denote the same query
/// — e.g. `i(a, b)` vs `i(b, a)`, or graphs with dead nodes — fingerprint
/// identically. This is the serving cache key.
Fingerprint CanonicalFingerprint(const QueryGraph& query);

/// Per-node subtree digests, indexed by node id — the planner's dedup and
/// intermediate-cache key (plan/planner.h). Like CanonicalFingerprint this
/// is a Merkle hash over ops, payloads, and input digests, but it is
/// *evaluation-order preserving*: commutative inputs are canonically sorted
/// only when a node has exactly two of them, because only then is the
/// cross-input float reduction a single commutative binary op and the
/// swapped embedding bit-identical. Three-plus-input folds and difference
/// subtrahends keep their stored order, so two subtrees sharing a digest
/// always produce bit-identical embedding rows. Every node is hashed,
/// reachable from the target or not.
std::vector<Fingerprint> SubtreeFingerprints(const QueryGraph& query);

/// Layout fingerprint: hashes the node array exactly as stored (ops and
/// input ids in order, grounding excluded). Two queries with equal layout
/// fingerprints have identical node numbering and op placement, which is
/// the precondition for batching them into one EmbedQueries call. Note
/// this is deliberately stricter than structural isomorphism.
Fingerprint StructureFingerprint(const QueryGraph& query);

}  // namespace halk::query

#endif  // HALK_QUERY_FINGERPRINT_H_
