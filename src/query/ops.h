#ifndef HALK_QUERY_OPS_H_
#define HALK_QUERY_OPS_H_

namespace halk::query {

/// The full set of first-order logical operations supported by HaLk
/// (Sec. II-A of the paper): the union of traditional FOL operations and
/// the newly-defined difference operation.
enum class OpType {
  kAnchor = 0,    // source node holding a constant entity
  kProjection,    // relation traversal P
  kIntersection,  // I
  kUnion,         // U
  kDifference,    // D (first input is the minuend)
  kNegation,      // N (complement w.r.t. the universal entity set)
};

/// Short lowercase name, e.g. "projection".
const char* OpTypeName(OpType op);

}  // namespace halk::query

#endif  // HALK_QUERY_OPS_H_
