#include "query/structures.h"

#include <unordered_map>

#include "common/logging.h"

namespace halk::query {

std::vector<StructureId> AllStructures() {
  return {StructureId::k1p,    StructureId::k2p,    StructureId::k3p,
          StructureId::k2i,    StructureId::k3i,    StructureId::kIp,
          StructureId::kPi,    StructureId::k2u,    StructureId::kUp,
          StructureId::k2d,    StructureId::k3d,    StructureId::kDp,
          StructureId::k2in,   StructureId::k3in,   StructureId::kPin,
          StructureId::kPni,   StructureId::kPip,   StructureId::kP3ip,
          StructureId::k2ipp,  StructureId::k2ippu, StructureId::k2ippd,
          StructureId::k3ipp,  StructureId::k3ippu, StructureId::k3ippd};
}

std::string StructureName(StructureId id) {
  switch (id) {
    case StructureId::k1p: return "1p";
    case StructureId::k2p: return "2p";
    case StructureId::k3p: return "3p";
    case StructureId::k2i: return "2i";
    case StructureId::k3i: return "3i";
    case StructureId::kIp: return "ip";
    case StructureId::kPi: return "pi";
    case StructureId::k2u: return "2u";
    case StructureId::kUp: return "up";
    case StructureId::k2d: return "2d";
    case StructureId::k3d: return "3d";
    case StructureId::kDp: return "dp";
    case StructureId::k2in: return "2in";
    case StructureId::k3in: return "3in";
    case StructureId::kPin: return "pin";
    case StructureId::kPni: return "pni";
    case StructureId::kPip: return "pip";
    case StructureId::kP3ip: return "p3ip";
    case StructureId::k2ipp: return "2ipp";
    case StructureId::k2ippu: return "2ippu";
    case StructureId::k2ippd: return "2ippd";
    case StructureId::k3ipp: return "3ipp";
    case StructureId::k3ippu: return "3ippu";
    case StructureId::k3ippd: return "3ippd";
  }
  return "?";
}

Result<StructureId> StructureFromName(const std::string& name) {
  for (StructureId id : AllStructures()) {
    if (StructureName(id) == name) return id;
  }
  return Status::NotFound("unknown query structure: " + name);
}

namespace {

// p-chain of `hops` projections from a fresh anchor; returns the last node.
int AddChain(QueryGraph* g, int hops) {
  int node = g->AddAnchor();
  for (int i = 0; i < hops; ++i) node = g->AddProjection(node);
  return node;
}

}  // namespace

QueryGraph MakeStructure(StructureId id) {
  QueryGraph g;
  switch (id) {
    case StructureId::k1p:
      g.SetTarget(AddChain(&g, 1));
      break;
    case StructureId::k2p:
      g.SetTarget(AddChain(&g, 2));
      break;
    case StructureId::k3p:
      g.SetTarget(AddChain(&g, 3));
      break;
    case StructureId::k2i:
      g.SetTarget(g.AddIntersection({AddChain(&g, 1), AddChain(&g, 1)}));
      break;
    case StructureId::k3i:
      g.SetTarget(g.AddIntersection(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)}));
      break;
    case StructureId::kIp: {
      int i = g.AddIntersection({AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(i));
      break;
    }
    case StructureId::kPi:
      g.SetTarget(g.AddIntersection({AddChain(&g, 2), AddChain(&g, 1)}));
      break;
    case StructureId::k2u:
      g.SetTarget(g.AddUnion({AddChain(&g, 1), AddChain(&g, 1)}));
      break;
    case StructureId::kUp: {
      int u = g.AddUnion({AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(u));
      break;
    }
    case StructureId::k2d:
      g.SetTarget(g.AddDifference({AddChain(&g, 1), AddChain(&g, 1)}));
      break;
    case StructureId::k3d:
      g.SetTarget(g.AddDifference(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)}));
      break;
    case StructureId::kDp: {
      int d = g.AddDifference({AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(d));
      break;
    }
    case StructureId::k2in: {
      int pos = AddChain(&g, 1);
      int neg = g.AddNegation(AddChain(&g, 1));
      g.SetTarget(g.AddIntersection({pos, neg}));
      break;
    }
    case StructureId::k3in: {
      int a = AddChain(&g, 1);
      int b = AddChain(&g, 1);
      int neg = g.AddNegation(AddChain(&g, 1));
      g.SetTarget(g.AddIntersection({a, b, neg}));
      break;
    }
    case StructureId::kPin: {
      int chain = AddChain(&g, 2);
      int neg = g.AddNegation(AddChain(&g, 1));
      g.SetTarget(g.AddIntersection({chain, neg}));
      break;
    }
    case StructureId::kPni: {
      int neg = g.AddNegation(AddChain(&g, 2));
      int pos = AddChain(&g, 1);
      g.SetTarget(g.AddIntersection({neg, pos}));
      break;
    }
    case StructureId::kPip: {
      int i = g.AddIntersection({AddChain(&g, 2), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(i));
      break;
    }
    case StructureId::kP3ip: {
      int i = g.AddIntersection(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(g.AddProjection(i)));
      break;
    }
    case StructureId::k2ipp: {
      int i = g.AddIntersection({AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(g.AddProjection(i)));
      break;
    }
    case StructureId::k2ippu: {
      int i = g.AddIntersection({AddChain(&g, 1), AddChain(&g, 1)});
      int pp = g.AddProjection(g.AddProjection(i));
      g.SetTarget(g.AddUnion({pp, AddChain(&g, 1)}));
      break;
    }
    case StructureId::k2ippd: {
      int i = g.AddIntersection({AddChain(&g, 1), AddChain(&g, 1)});
      int pp = g.AddProjection(g.AddProjection(i));
      g.SetTarget(g.AddDifference({pp, AddChain(&g, 1)}));
      break;
    }
    case StructureId::k3ipp: {
      int i = g.AddIntersection(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)});
      g.SetTarget(g.AddProjection(g.AddProjection(i)));
      break;
    }
    case StructureId::k3ippu: {
      int i = g.AddIntersection(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)});
      int pp = g.AddProjection(g.AddProjection(i));
      g.SetTarget(g.AddUnion({pp, AddChain(&g, 1)}));
      break;
    }
    case StructureId::k3ippd: {
      int i = g.AddIntersection(
          {AddChain(&g, 1), AddChain(&g, 1), AddChain(&g, 1)});
      int pp = g.AddProjection(g.AddProjection(i));
      g.SetTarget(g.AddDifference({pp, AddChain(&g, 1)}));
      break;
    }
  }
  HALK_CHECK_OK(g.Validate(/*grounded=*/false));
  return g;
}

std::vector<StructureId> TrainStructures() {
  return {StructureId::k1p,  StructureId::k2p,  StructureId::k3p,
          StructureId::k2i,  StructureId::k3i,  StructureId::k2d,
          StructureId::k3d,  StructureId::k2in, StructureId::k3in,
          StructureId::kPin, StructureId::kPni};
}

std::vector<StructureId> EpfoDifferenceStructures() {
  return {StructureId::k1p, StructureId::k2p, StructureId::k3p,
          StructureId::k2i, StructureId::k3i, StructureId::kIp,
          StructureId::kPi, StructureId::k2u, StructureId::kUp,
          StructureId::k2d, StructureId::k3d, StructureId::kDp};
}

std::vector<StructureId> EvalOnlyStructures() {
  return {StructureId::kIp, StructureId::kPi, StructureId::k2u,
          StructureId::kUp, StructureId::kDp};
}

std::vector<StructureId> NegationStructures() {
  return {StructureId::k2in, StructureId::k3in, StructureId::kPin,
          StructureId::kPni};
}

std::vector<StructureId> PruningStructures() {
  return {StructureId::k2ipp, StructureId::k2ippu, StructureId::k2ippd,
          StructureId::k3ipp, StructureId::k3ippu, StructureId::k3ippd};
}

}  // namespace halk::query
