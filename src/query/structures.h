#ifndef HALK_QUERY_STRUCTURES_H_
#define HALK_QUERY_STRUCTURES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/dag.h"

namespace halk::query {

/// The query structures of the paper's evaluation (Sec. IV-A): the 12
/// EPFO + difference structures from NewLook, the 4 negation structures
/// from ConE/MLPMix, and the 7 larger structures used in the pruning /
/// scalability studies (Sec. IV-D, IV-G).
enum class StructureId {
  k1p = 0,
  k2p,
  k3p,
  k2i,
  k3i,
  kIp,   // intersection then projection (eval-only)
  kPi,   // projection branch intersected with 1p (eval-only)
  k2u,   // union of two 1p (eval-only)
  kUp,   // union then projection (eval-only)
  k2d,   // difference of two 1p branches
  k3d,   // difference with three inputs
  kDp,   // difference then projection (eval-only)
  k2in,  // 1p ∧ ¬1p
  k3in,  // 1p ∧ 1p ∧ ¬1p
  kPin,  // 2p ∧ ¬1p
  kPni,  // ¬2p ∧ 1p
  // Large structures (pruning power + scalability).
  kPip,    // p(i(2p, 1p)) — query size 4
  kP3ip,   // p(p(3i)) — query size 5
  k2ipp,   // p(p(2i))
  k2ippu,  // u(p(p(2i)), 1p)
  k2ippd,  // d(p(p(2i)), 1p)
  k3ipp,   // p(p(3i))  [3 anchors]
  k3ippu,  // u(p(p(3i)), 1p)
  k3ippd,  // d(p(p(3i)), 1p)
};

/// All structures, in enum order.
std::vector<StructureId> AllStructures();

/// Lowercase paper name, e.g. "2in".
std::string StructureName(StructureId id);
[[nodiscard]] Result<StructureId> StructureFromName(const std::string& name);

/// Builds the ungrounded template (anchors/relations = -1) for a structure.
QueryGraph MakeStructure(StructureId id);

/// Structures seen during training (per the paper's protocol ip, pi, 2u,
/// up, dp are evaluated only).
std::vector<StructureId> TrainStructures();
/// The 12 structures of Tables I-II.
std::vector<StructureId> EpfoDifferenceStructures();
/// Evaluation-only generalization structures.
std::vector<StructureId> EvalOnlyStructures();
/// The 4 negation structures of Tables III-IV.
std::vector<StructureId> NegationStructures();
/// The 6 large structures of the pruning study (Fig. 6a).
std::vector<StructureId> PruningStructures();

}  // namespace halk::query

#endif  // HALK_QUERY_STRUCTURES_H_

