#ifndef HALK_QUERY_EXECUTOR_H_
#define HALK_QUERY_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "kg/graph.h"
#include "obs/trace.h"
#include "query/dag.h"

namespace halk::query {

/// Exact symbolic execution of a grounded query against a (finalized)
/// knowledge graph: each node evaluates to the set of entities satisfying
/// its sub-query under standard FOL semantics (negation complements w.r.t.
/// the full entity set; difference is minuend minus the union of the other
/// inputs). Returns the sorted answer set of the target node.
///
/// This is the ground-truth oracle for training labels, evaluation, and
/// the subgraph matcher's accuracy reference.
[[nodiscard]] Result<std::vector<int64_t>> ExecuteQuery(const QueryGraph& query,
                                          const kg::KnowledgeGraph& graph);

/// As ExecuteQuery, recording one `exec_node` span per evaluated node
/// (annotated with the node id, operator, and result-set size) under
/// `trace`. With an inactive context this is ExecuteQuery at no extra
/// cost beyond a per-node pointer check.
[[nodiscard]] Result<std::vector<int64_t>> ExecuteQuery(const QueryGraph& query,
                                          const kg::KnowledgeGraph& graph,
                                          const obs::TraceContext& trace);

/// As above, but also returns the entity set of every reachable node
/// (indexed by node id; unreachable nodes get empty sets). Used by the
/// pruning study to compare per-variable candidates.
[[nodiscard]] Result<std::vector<std::vector<int64_t>>> ExecuteQueryAllNodes(
    const QueryGraph& query, const kg::KnowledgeGraph& graph);

}  // namespace halk::query

#endif  // HALK_QUERY_EXECUTOR_H_

