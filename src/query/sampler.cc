#include "query/sampler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "query/executor.h"

namespace halk::query {

QuerySampler::QuerySampler(const kg::KnowledgeGraph* graph, uint64_t seed)
    : QuerySampler(graph, seed, Options()) {}

QuerySampler::QuerySampler(const kg::KnowledgeGraph* graph, uint64_t seed,
                           const Options& options)
    : graph_(graph), rng_(seed), options_(options) {
  HALK_CHECK(graph != nullptr);
  HALK_CHECK(graph->finalized());
  HALK_CHECK_GT(graph->num_triples(), 0);
}

int64_t QuerySampler::RandomEntityWithInEdge() {
  const auto& triples = graph_->triples();
  const size_t i = static_cast<size_t>(rng_.UniformInt(triples.size()));
  return triples[i].tail;
}

bool QuerySampler::GroundTemplate(QueryGraph* graph) {
  // Witness entity per node, assigned top-down (reverse topological order).
  std::vector<int64_t> witness(static_cast<size_t>(graph->num_nodes()), -1);
  std::vector<int> order = graph->TopologicalOrder();
  witness[static_cast<size_t>(graph->target())] = RandomEntityWithInEdge();

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int id = *it;
    QueryNode& node = graph->mutable_node(id);
    const int64_t w = witness[static_cast<size_t>(id)];
    HALK_CHECK_GE(w, 0) << "witness not propagated to node " << id;
    switch (node.op) {
      case OpType::kAnchor:
        node.anchor_entity = w;
        break;
      case OpType::kProjection: {
        // Pick a random incoming edge (h, r, w): relation first among those
        // with any head, then a head under it.
        std::vector<int64_t> rels;
        for (int64_t r = 0; r < graph_->num_relations(); ++r) {
          if (!graph_->index().Heads(w, r).empty()) rels.push_back(r);
        }
        if (rels.empty()) return false;  // dead end; caller retries
        const int64_t r =
            rels[static_cast<size_t>(rng_.UniformInt(rels.size()))];
        auto heads = graph_->index().Heads(w, r);
        node.relation = r;
        witness[static_cast<size_t>(node.inputs[0])] =
            heads[static_cast<size_t>(rng_.UniformInt(heads.size()))];
        break;
      }
      case OpType::kIntersection:
      case OpType::kUnion:
        for (int input : node.inputs) {
          witness[static_cast<size_t>(input)] = w;
        }
        break;
      case OpType::kDifference:
        // Minuend must contain the witness; subtrahends are grounded around
        // independent witnesses so the difference is usually non-trivial.
        witness[static_cast<size_t>(node.inputs[0])] = w;
        for (size_t i = 1; i < node.inputs.size(); ++i) {
          int64_t other = RandomEntityWithInEdge();
          for (int tries = 0; tries < 8 && other == w; ++tries) {
            other = RandomEntityWithInEdge();
          }
          witness[static_cast<size_t>(node.inputs[i])] = other;
        }
        break;
      case OpType::kNegation: {
        // The negated sub-query is grounded around a different witness so
        // that w stays outside it (checked exactly by the executor later).
        int64_t other = RandomEntityWithInEdge();
        for (int tries = 0; tries < 8 && other == w; ++tries) {
          other = RandomEntityWithInEdge();
        }
        witness[static_cast<size_t>(node.inputs[0])] = other;
        break;
      }
    }
  }
  return true;
}

Result<GroundedQuery> QuerySampler::Sample(StructureId structure) {
  const QueryGraph prototype = MakeStructure(structure);
  const bool has_negation = prototype.HasOp(OpType::kNegation);
  const int64_t cap =
      has_negation ? options_.max_answers_negation : options_.max_answers;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    QueryGraph g = prototype;
    if (!GroundTemplate(&g)) continue;
    HALK_ASSIGN_OR_RETURN(std::vector<int64_t> answers,
                          ExecuteQuery(g, *graph_));
    if (answers.empty() || static_cast<int64_t>(answers.size()) > cap) {
      continue;
    }
    GroundedQuery out;
    out.structure = structure;
    out.graph = std::move(g);
    out.answers = std::move(answers);
    out.hard_answers = out.answers;
    return out;
  }
  return Status::Internal(
      StrFormat("could not ground structure %s in %d attempts",
                StructureName(structure).c_str(), options_.max_attempts));
}

Result<std::vector<GroundedQuery>> QuerySampler::SampleMany(
    StructureId structure, int count) {
  std::vector<GroundedQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    HALK_ASSIGN_OR_RETURN(GroundedQuery q, Sample(structure));
    out.push_back(std::move(q));
  }
  return out;
}

void SplitEasyHard(GroundedQuery* q, const kg::KnowledgeGraph& smaller) {
  Result<std::vector<int64_t>> smaller_answers =
      ExecuteQuery(q->graph, smaller);
  HALK_CHECK(smaller_answers.ok()) << smaller_answers.status().ToString();
  q->easy_answers.clear();
  std::set_intersection(q->answers.begin(), q->answers.end(),
                        smaller_answers->begin(), smaller_answers->end(),
                        std::back_inserter(q->easy_answers));
  q->hard_answers.clear();
  std::set_difference(q->answers.begin(), q->answers.end(),
                      q->easy_answers.begin(), q->easy_answers.end(),
                      std::back_inserter(q->hard_answers));
}

}  // namespace halk::query
