#ifndef HALK_TENSOR_SHAPE_H_
#define HALK_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace halk::tensor {

/// Dimensions of a Tensor. The library works with rank-1 vectors `[d]` and
/// rank-2 batched matrices `[B, d]`; scalars are rank-1 tensors of size 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements (1 for rank-0).
  int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[32, 16]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace halk::tensor

#endif  // HALK_TENSOR_SHAPE_H_
