#include "tensor/tape.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace halk::tensor {

namespace {

// Iterative post-order DFS over the op graph; returns nodes such that every
// node appears after all nodes that consume it when iterated in reverse.
std::vector<TensorImpl*> TopoOrder(TensorImpl* root) {
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs.size()) {
      TensorImpl* child = top.node->inputs[top.next_input++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

/// The innermost accounting installed on this thread (null = disabled).
thread_local TapeAccounting* t_active_accounting = nullptr;

/// Full-graph footprint (data + gradient buffers), counting every
/// reachable node once, requires_grad or not.
int64_t GraphBytes(TensorImpl* root) {
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> stack = {root};
  visited.insert(root);
  int64_t bytes = 0;
  while (!stack.empty()) {
    TensorImpl* node = stack.back();
    stack.pop_back();
    bytes += static_cast<int64_t>((node->data.size() + node->grad.size()) *
                                  sizeof(float));
    for (const auto& in : node->inputs) {
      if (visited.insert(in.get()).second) stack.push_back(in.get());
    }
  }
  return bytes;
}

}  // namespace

int64_t EstimateForwardFlops(const TensorImpl& node) {
  const char* op = node.op_name;
  if (std::strcmp(op, "matmul") == 0 && node.inputs.size() == 2) {
    const Shape& a = node.inputs[0]->shape;
    const Shape& b = node.inputs[1]->shape;
    if (a.rank() == 2 && b.rank() == 2) {
      return 2 * a.dim(0) * a.dim(1) * b.dim(1);
    }
  }
  // Pure data movement computes nothing.
  for (const char* mover : {"reshape", "gather", "concat0", "concat1",
                            "slice_cols", "broadcast_row", "leaf", "detach"}) {
    if (std::strcmp(op, mover) == 0) return 0;
  }
  // Reductions touch every *input* element once.
  if (std::strcmp(op, "sum_all") == 0 || std::strcmp(op, "sum_dim") == 0) {
    return node.inputs.empty()
               ? 0
               : static_cast<int64_t>(node.inputs[0]->data.size());
  }
  // Everything else is elementwise over the output.
  return static_cast<int64_t>(node.data.size());
}

TapeAccounting::TapeAccounting() : previous_(t_active_accounting) {
  t_active_accounting = this;
}

TapeAccounting::~TapeAccounting() { t_active_accounting = previous_; }

TapeAccounting* TapeAccounting::Active() { return t_active_accounting; }

void TapeAccounting::RecordForward(const TensorImpl& node) {
  const int64_t flops = EstimateForwardFlops(node);
  const int64_t bytes =
      static_cast<int64_t>(node.data.size() * sizeof(float));
  TapeOpStats& op = stats_.forward[node.op_name];
  ++op.count;
  op.flops += flops;
  op.bytes += bytes;
  ++stats_.forward_nodes;
  stats_.forward_flops += flops;
  stats_.forward_bytes += bytes;
}

void TapeAccounting::RecordBackward(const TensorImpl& node) {
  // Reverse-mode propagates one gradient per input element touched; the
  // standard estimate is ~2x the forward op (one pass per input operand).
  const int64_t flops = 2 * EstimateForwardFlops(node);
  const int64_t bytes =
      static_cast<int64_t>(node.grad.size() * sizeof(float));
  TapeOpStats& op = stats_.backward[node.op_name];
  ++op.count;
  op.flops += flops;
  op.bytes += bytes;
  ++stats_.backward_nodes;
  stats_.backward_flops += flops;
  stats_.backward_bytes += bytes;
}

void TapeAccounting::RecordGraphBytes(int64_t bytes) {
  stats_.peak_graph_bytes = std::max(stats_.peak_graph_bytes, bytes);
}

void Backward(const Tensor& root) {
  HALK_CHECK(root.defined());
  HALK_CHECK_EQ(root.numel(), 1) << "Backward root must be scalar";
  HALK_CHECK(root.requires_grad())
      << "Backward called on a graph with no trainable inputs";

  TensorImpl* r = root.impl().get();
  std::vector<TensorImpl*> order = TopoOrder(r);
  r->EnsureGrad();
  r->grad[0] += 1.0f;
  TapeAccounting* accounting = TapeAccounting::Active();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward) {
      node->EnsureGrad();
      node->backward(node);
      if (accounting != nullptr) accounting->RecordBackward(*node);
    }
  }
  // Footprint is measured after the walk, when every node that will ever
  // hold a gradient buffer for this graph has one.
  if (accounting != nullptr) accounting->RecordGraphBytes(GraphBytes(r));
}

int64_t GraphSize(const Tensor& root) {
  HALK_CHECK(root.defined());
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> stack = {root.impl().get()};
  visited.insert(root.impl().get());
  while (!stack.empty()) {
    TensorImpl* node = stack.back();
    stack.pop_back();
    for (const auto& in : node->inputs) {
      if (visited.insert(in.get()).second) stack.push_back(in.get());
    }
  }
  return static_cast<int64_t>(visited.size());
}

}  // namespace halk::tensor
