#include "tensor/tape.h"

#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace halk::tensor {

namespace {

// Iterative post-order DFS over the op graph; returns nodes such that every
// node appears after all nodes that consume it when iterated in reverse.
std::vector<TensorImpl*> TopoOrder(TensorImpl* root) {
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs.size()) {
      TensorImpl* child = top.node->inputs[top.next_input++].get();
      if (child->requires_grad && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void Backward(const Tensor& root) {
  HALK_CHECK(root.defined());
  HALK_CHECK_EQ(root.numel(), 1) << "Backward root must be scalar";
  HALK_CHECK(root.requires_grad())
      << "Backward called on a graph with no trainable inputs";

  TensorImpl* r = root.impl().get();
  std::vector<TensorImpl*> order = TopoOrder(r);
  r->EnsureGrad();
  r->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward) {
      node->EnsureGrad();
      node->backward(node);
    }
  }
}

int64_t GraphSize(const Tensor& root) {
  HALK_CHECK(root.defined());
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> stack = {root.impl().get()};
  visited.insert(root.impl().get());
  while (!stack.empty()) {
    TensorImpl* node = stack.back();
    stack.pop_back();
    for (const auto& in : node->inputs) {
      if (visited.insert(in.get()).second) stack.push_back(in.get());
    }
  }
  return static_cast<int64_t>(visited.size());
}

}  // namespace halk::tensor
