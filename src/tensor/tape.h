#ifndef HALK_TENSOR_TAPE_H_
#define HALK_TENSOR_TAPE_H_

#include "tensor/tensor.h"

namespace halk::tensor {

/// Runs reverse-mode accumulation from `root` (a scalar: numel == 1).
/// Gradients are *accumulated* into `grad()` of every tensor reachable
/// through the op graph whose `requires_grad()` is set; call ZeroGrad (or
/// use an optimizer that does) between steps.
void Backward(const Tensor& root);

/// Number of nodes reachable from `root` through the autograd graph
/// (diagnostics/tests).
int64_t GraphSize(const Tensor& root);

}  // namespace halk::tensor

#endif  // HALK_TENSOR_TAPE_H_
