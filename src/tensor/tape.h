#ifndef HALK_TENSOR_TAPE_H_
#define HALK_TENSOR_TAPE_H_

#include <cstdint>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace halk::tensor {

/// Runs reverse-mode accumulation from `root` (a scalar: numel == 1).
/// Gradients are *accumulated* into `grad()` of every tensor reachable
/// through the op graph whose `requires_grad()` is set; call ZeroGrad (or
/// use an optimizer that does) between steps.
void Backward(const Tensor& root);

/// Number of nodes reachable from `root` through the autograd graph
/// (diagnostics/tests).
int64_t GraphSize(const Tensor& root);

/// Accounting bucket for one op name.
struct TapeOpStats {
  int64_t count = 0;  // nodes created (forward) / closures run (backward)
  int64_t flops = 0;  // estimated, see EstimateForwardFlops
  int64_t bytes = 0;  // output (forward) / gradient (backward) bytes
};

/// Totals accumulated while a TapeAccounting is installed, split forward
/// (op nodes recorded by MakeOpResult) vs backward (closures executed by
/// Backward()).
struct TapeStats {
  std::map<std::string, TapeOpStats> forward;
  std::map<std::string, TapeOpStats> backward;
  int64_t forward_nodes = 0;
  int64_t forward_flops = 0;
  int64_t forward_bytes = 0;
  int64_t backward_nodes = 0;
  int64_t backward_flops = 0;
  int64_t backward_bytes = 0;
  /// Largest single-graph footprint seen by a Backward() call: the sum of
  /// data+grad bytes over every node reachable from its root. A proxy for
  /// peak autograd memory (graphs are freed when the loss handle drops).
  int64_t peak_graph_bytes = 0;
};

/// Estimated FLOPs to compute `node`'s forward value. Elementwise ops
/// count one FLOP per output element (transcendentals included — this is
/// an op-mix estimate, not a cycle model); "matmul" counts the exact
/// 2·m·k·n multiply-adds from the input shapes; data-movement ops
/// (reshape/gather/concat/slice/broadcast) count zero.
int64_t EstimateForwardFlops(const TensorImpl& node);

/// Scoped, thread-local op accounting. While an instance is alive on a
/// thread, every MakeOpResult and Backward() on that thread accumulates
/// into its stats; instances nest (the innermost wins, the outer resumes
/// on destruction). When none is installed the overhead is one
/// thread-local pointer load per op. Single-threaded by design: the
/// trainer's graphs are built and differentiated on one thread.
class TapeAccounting {
 public:
  TapeAccounting();
  ~TapeAccounting();

  TapeAccounting(const TapeAccounting&) = delete;
  TapeAccounting& operator=(const TapeAccounting&) = delete;

  const TapeStats& stats() const { return stats_; }
  void Reset() { stats_ = TapeStats{}; }

  /// The accounting installed on this thread, or null.
  static TapeAccounting* Active();

  /// Internal hooks (tensor.cc / tape.cc).
  void RecordForward(const TensorImpl& node);
  void RecordBackward(const TensorImpl& node);
  void RecordGraphBytes(int64_t bytes);

 private:
  TapeStats stats_;
  TapeAccounting* previous_ = nullptr;
};

}  // namespace halk::tensor

#endif  // HALK_TENSOR_TAPE_H_
