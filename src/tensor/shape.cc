#include "tensor/shape.h"

#include "common/logging.h"

namespace halk::tensor {

int64_t Shape::dim(int i) const {
  HALK_CHECK_GE(i, 0);
  HALK_CHECK_LT(i, rank());
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace halk::tensor
