#include "tensor/ops.h"

#include <cmath>

#include "common/logging.h"

namespace halk::tensor {

namespace {

constexpr float kTwoPi = 6.283185307179586f;

// How operand indices map onto output indices for elementwise ops.
enum class Broadcast {
  kNone,     // same shape
  kScalar,   // operand has numel 1
  kRow,      // operand is [d], output is [B, d]
};

struct BinaryPlan {
  Shape out_shape;
  Broadcast a_kind;
  Broadcast b_kind;
  int64_t cols = 0;  // columns of the output (for kRow index math)
};

BinaryPlan ResolveBinary(const Tensor& a, const Tensor& b, const char* op) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  BinaryPlan plan;
  if (sa == sb) {
    plan = {sa, Broadcast::kNone, Broadcast::kNone, 0};
  } else if (sb.numel() == 1) {
    plan = {sa, Broadcast::kNone, Broadcast::kScalar, 0};
  } else if (sa.numel() == 1) {
    plan = {sb, Broadcast::kScalar, Broadcast::kNone, 0};
  } else if (sa.rank() == 2 && sb.rank() == 1 && sa.dim(1) == sb.dim(0)) {
    plan = {sa, Broadcast::kNone, Broadcast::kRow, sa.dim(1)};
  } else if (sa.rank() == 1 && sb.rank() == 2 && sb.dim(1) == sa.dim(0)) {
    plan = {sb, Broadcast::kRow, Broadcast::kNone, sb.dim(1)};
  } else {
    HALK_CHECK(false) << op << ": incompatible shapes " << sa.ToString()
                      << " and " << sb.ToString();
  }
  if (plan.cols == 0 && plan.out_shape.rank() == 2) {
    plan.cols = plan.out_shape.dim(1);
  }
  return plan;
}

inline size_t MapIndex(Broadcast kind, int64_t i, int64_t cols) {
  switch (kind) {
    case Broadcast::kNone:
      return static_cast<size_t>(i);
    case Broadcast::kScalar:
      return 0;
    case Broadcast::kRow:
      return static_cast<size_t>(i % cols);
  }
  return 0;
}

// Generic differentiable binary elementwise op. `f` computes the value,
// `dfda`/`dfdb` the partials given (a_val, b_val, out_val).
template <typename F, typename Da, typename Db>
Tensor BinaryOp(const Tensor& a, const Tensor& b, const char* name, F f,
                Da dfda, Db dfdb) {
  BinaryPlan plan = ResolveBinary(a, b, name);
  const int64_t n = plan.out_shape.numel();
  const int64_t cols = plan.cols;
  const Broadcast ka = plan.a_kind;
  const Broadcast kb = plan.b_kind;

  Tensor out = MakeOpResult(
      plan.out_shape, name, {a, b},
      [ka, kb, cols, dfda, dfdb](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        TensorImpl* ib = self->inputs[1].get();
        const int64_t n = static_cast<int64_t>(self->data.size());
        if (ia->requires_grad) {
          ia->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) {
            const size_t pa = MapIndex(ka, i, cols);
            const size_t pb = MapIndex(kb, i, cols);
            ia->grad[pa] += self->grad[static_cast<size_t>(i)] *
                            dfda(ia->data[pa], ib->data[pb],
                                 self->data[static_cast<size_t>(i)]);
          }
        }
        if (ib->requires_grad) {
          ib->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) {
            const size_t pa = MapIndex(ka, i, cols);
            const size_t pb = MapIndex(kb, i, cols);
            ib->grad[pb] += self->grad[static_cast<size_t>(i)] *
                            dfdb(ia->data[pa], ib->data[pb],
                                 self->data[static_cast<size_t>(i)]);
          }
        }
      });

  float* out_data = out.data();
  const float* da = a.data();
  const float* db = b.data();
  for (int64_t i = 0; i < n; ++i) {
    out_data[i] = f(da[MapIndex(ka, i, cols)], db[MapIndex(kb, i, cols)]);
  }
  return out;
}

// Generic differentiable unary elementwise op; `df` receives (in, out).
template <typename F, typename Df>
Tensor UnaryOp(const Tensor& a, const char* name, F f, Df df) {
  const int64_t n = a.numel();
  Tensor out = MakeOpResult(
      a.shape(), name, {a}, [df](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        if (!ia->requires_grad) return;
        ia->EnsureGrad();
        const size_t n = self->data.size();
        for (size_t i = 0; i < n; ++i) {
          ia->grad[i] += self->grad[i] * df(ia->data[i], self->data[i]);
        }
      });
  float* out_data = out.data();
  const float* da = a.data();
  for (int64_t i = 0; i < n; ++i) out_data[i] = f(da[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "add", [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "sub", [](float x, float y) { return x - y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "mul", [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; },
      [](float x, float, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "div", [](float x, float y) { return x / y; },
      [](float, float y, float) { return 1.0f / y; },
      [](float x, float y, float) { return -x / (y * y); });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, "neg", [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "add_scalar", [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, "mul_scalar", [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, "sin", [](float x) { return std::sin(x); },
      [](float x, float) { return std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, "cos", [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, "abs", [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, "exp", [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, "log", [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, "sqrt", [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, "square", [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      a, "softplus",
      [](float x) {
        // max(x, 0) + log1p(exp(-|x|)) avoids overflow on both tails.
        const float m = x > 0.0f ? x : 0.0f;
        return m + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

namespace special {

float DigammaScalar(float x) {
  // Recur up to the asymptotic region, then use the standard series.
  double result = 0.0;
  double v = x;
  while (v < 6.0) {
    result -= 1.0 / v;
    v += 1.0;
  }
  const double inv = 1.0 / v;
  const double inv2 = inv * inv;
  result += std::log(v) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return static_cast<float>(result);
}

float TrigammaScalar(float x) {
  double result = 0.0;
  double v = x;
  while (v < 6.0) {
    result += 1.0 / (v * v);
    v += 1.0;
  }
  const double inv = 1.0 / v;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)));
  return static_cast<float>(result);
}

}  // namespace special

Tensor Lgamma(const Tensor& a) {
  return UnaryOp(
      a, "lgamma", [](float x) { return std::lgamma(x); },
      [](float x, float) { return special::DigammaScalar(x); });
}

Tensor Digamma(const Tensor& a) {
  return UnaryOp(
      a, "digamma", [](float x) { return special::DigammaScalar(x); },
      [](float x, float) { return special::TrigammaScalar(x); });
}

Tensor Atan2(const Tensor& y, const Tensor& x) {
  HALK_CHECK(y.shape() == x.shape())
      << "atan2: shapes " << y.shape().ToString() << " vs "
      << x.shape().ToString();
  return BinaryOp(
      y, x, "atan2",
      [](float yy, float xx) { return std::atan2(yy, xx); },
      [](float yy, float xx, float) { return xx / (xx * xx + yy * yy); },
      [](float yy, float xx, float) { return -yy / (xx * xx + yy * yy); });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "minimum", [](float x, float y) { return x <= y ? x : y; },
      [](float x, float y, float) { return x <= y ? 1.0f : 0.0f; },
      [](float x, float y, float) { return x <= y ? 0.0f : 1.0f; });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, "maximum", [](float x, float y) { return x >= y ? x : y; },
      [](float x, float y, float) { return x >= y ? 1.0f : 0.0f; },
      [](float x, float y, float) { return x >= y ? 0.0f : 1.0f; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  HALK_CHECK_LE(lo, hi);
  return UnaryOp(
      a, "clamp",
      [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

Tensor Mod2Pi(const Tensor& a) {
  return UnaryOp(
      a, "mod_2pi",
      [](float x) {
        float r = std::fmod(x, kTwoPi);
        if (r < 0.0f) r += kTwoPi;
        return r;
      },
      [](float, float) { return 1.0f; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HALK_CHECK_EQ(a.shape().rank(), 2);
  HALK_CHECK_EQ(b.shape().rank(), 2);
  const int64_t rows = a.shape().dim(0);
  const int64_t inner = a.shape().dim(1);
  HALK_CHECK_EQ(inner, b.shape().dim(0));
  const int64_t cols = b.shape().dim(1);

  Tensor out = MakeOpResult(
      Shape({rows, cols}), "matmul", {a, b},
      [rows, inner, cols](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        TensorImpl* ib = self->inputs[1].get();
        if (ia->requires_grad) {
          ia->EnsureGrad();
          // dA = dC * B^T
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t k = 0; k < inner; ++k) {
              float acc = 0.0f;
              for (int64_t c = 0; c < cols; ++c) {
                acc += self->grad[static_cast<size_t>(r * cols + c)] *
                       ib->data[static_cast<size_t>(k * cols + c)];
              }
              ia->grad[static_cast<size_t>(r * inner + k)] += acc;
            }
          }
        }
        if (ib->requires_grad) {
          ib->EnsureGrad();
          // dB = A^T * dC
          for (int64_t k = 0; k < inner; ++k) {
            for (int64_t c = 0; c < cols; ++c) {
              float acc = 0.0f;
              for (int64_t r = 0; r < rows; ++r) {
                acc += ia->data[static_cast<size_t>(r * inner + k)] *
                       self->grad[static_cast<size_t>(r * cols + c)];
              }
              ib->grad[static_cast<size_t>(k * cols + c)] += acc;
            }
          }
        }
      });

  float* oc = out.data();
  const float* da = a.data();
  const float* db = b.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = 0; k < inner; ++k) {
      const float av = da[r * inner + k];
      if (av == 0.0f) continue;
      const float* brow = db + k * cols;
      float* orow = oc + r * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += av * brow[c];
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  HALK_CHECK(!parts.empty());
  const int rank = parts[0].shape().rank();
  if (rank == 1) {
    HALK_CHECK_EQ(axis, 0);
    int64_t total = 0;
    for (const Tensor& p : parts) {
      HALK_CHECK_EQ(p.shape().rank(), 1);
      total += p.numel();
    }
    std::vector<int64_t> sizes;
    for (const Tensor& p : parts) sizes.push_back(p.numel());
    Tensor out = MakeOpResult(
        Shape({total}), "concat0", parts, [sizes](TensorImpl* self) {
          size_t off = 0;
          for (size_t p = 0; p < self->inputs.size(); ++p) {
            TensorImpl* ip = self->inputs[p].get();
            const size_t n = static_cast<size_t>(sizes[p]);
            if (ip->requires_grad) {
              ip->EnsureGrad();
              for (size_t i = 0; i < n; ++i) ip->grad[i] += self->grad[off + i];
            }
            off += n;
          }
        });
    float* oc = out.data();
    for (const Tensor& p : parts) {
      const float* d = p.data();
      oc = std::copy(d, d + p.numel(), oc);
    }
    return out;
  }

  HALK_CHECK_EQ(rank, 2);
  HALK_CHECK_EQ(axis, 1);
  const int64_t rows = parts[0].shape().dim(0);
  int64_t total_cols = 0;
  std::vector<int64_t> widths;
  for (const Tensor& p : parts) {
    HALK_CHECK_EQ(p.shape().rank(), 2);
    HALK_CHECK_EQ(p.shape().dim(0), rows);
    widths.push_back(p.shape().dim(1));
    total_cols += p.shape().dim(1);
  }
  Tensor out = MakeOpResult(
      Shape({rows, total_cols}), "concat1", parts,
      [rows, total_cols, widths](TensorImpl* self) {
        int64_t col_off = 0;
        for (size_t p = 0; p < self->inputs.size(); ++p) {
          TensorImpl* ip = self->inputs[p].get();
          const int64_t w = widths[p];
          if (ip->requires_grad) {
            ip->EnsureGrad();
            for (int64_t r = 0; r < rows; ++r) {
              for (int64_t c = 0; c < w; ++c) {
                ip->grad[static_cast<size_t>(r * w + c)] +=
                    self->grad[static_cast<size_t>(r * total_cols + col_off + c)];
              }
            }
          }
          col_off += w;
        }
      });
  float* oc = out.data();
  int64_t col_off = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const float* d = parts[p].data();
    const int64_t w = widths[p];
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(d + r * w, d + (r + 1) * w, oc + r * total_cols + col_off);
    }
    col_off += w;
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end) {
  HALK_CHECK_EQ(a.shape().rank(), 2);
  const int64_t rows = a.shape().dim(0);
  const int64_t cols = a.shape().dim(1);
  HALK_CHECK_GE(begin, 0);
  HALK_CHECK_LT(begin, end);
  HALK_CHECK_LE(end, cols);
  const int64_t w = end - begin;
  Tensor out = MakeOpResult(
      Shape({rows, w}), "slice_cols", {a},
      [rows, cols, begin, w](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        if (!ia->requires_grad) return;
        ia->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < w; ++c) {
            ia->grad[static_cast<size_t>(r * cols + begin + c)] +=
                self->grad[static_cast<size_t>(r * w + c)];
          }
        }
      });
  float* oc = out.data();
  const float* d = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(d + r * cols + begin, d + r * cols + end, oc + r * w);
  }
  return out;
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  HALK_CHECK_EQ(a.numel(), shape.numel());
  Tensor out = MakeOpResult(shape, "reshape", {a}, [](TensorImpl* self) {
    TensorImpl* ia = self->inputs[0].get();
    if (!ia->requires_grad) return;
    ia->EnsureGrad();
    for (size_t i = 0; i < self->data.size(); ++i) ia->grad[i] += self->grad[i];
  });
  std::copy(a.data(), a.data() + a.numel(), out.data());
  return out;
}

Tensor SumAll(const Tensor& a) {
  Tensor out = MakeOpResult(Shape({1}), "sum_all", {a}, [](TensorImpl* self) {
    TensorImpl* ia = self->inputs[0].get();
    if (!ia->requires_grad) return;
    ia->EnsureGrad();
    const float g = self->grad[0];
    for (float& v : ia->grad) v += g;
  });
  float acc = 0.0f;
  const float* d = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += d[i];
  out.data()[0] = acc;
  return out;
}

Tensor MeanAll(const Tensor& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumDim(const Tensor& a, int dim) {
  HALK_CHECK_EQ(a.shape().rank(), 2);
  const int64_t rows = a.shape().dim(0);
  const int64_t cols = a.shape().dim(1);
  HALK_CHECK(dim == 0 || dim == 1);
  const Shape out_shape = (dim == 0) ? Shape({cols}) : Shape({rows});
  Tensor out = MakeOpResult(
      out_shape, "sum_dim", {a}, [rows, cols, dim](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        if (!ia->requires_grad) return;
        ia->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            const size_t o = static_cast<size_t>(dim == 0 ? c : r);
            ia->grad[static_cast<size_t>(r * cols + c)] += self->grad[o];
          }
        }
      });
  float* oc = out.data();
  const float* d = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      oc[dim == 0 ? c : r] += d[r * cols + c];
    }
  }
  return out;
}

Tensor MeanDim(const Tensor& a, int dim) {
  const int64_t denom = (dim == 0) ? a.shape().dim(0) : a.shape().dim(1);
  return MulScalar(SumDim(a, dim), 1.0f / static_cast<float>(denom));
}

Tensor Gather(const Tensor& table, const std::vector<int64_t>& rows) {
  HALK_CHECK_EQ(table.shape().rank(), 2);
  const int64_t n = table.shape().dim(0);
  const int64_t d = table.shape().dim(1);
  for (int64_t r : rows) {
    HALK_CHECK_GE(r, 0);
    HALK_CHECK_LT(r, n);
  }
  const int64_t batch = static_cast<int64_t>(rows.size());
  Tensor out = MakeOpResult(
      Shape({batch, d}), "gather", {table},
      [rows, d](TensorImpl* self) {
        TensorImpl* it = self->inputs[0].get();
        if (!it->requires_grad) return;
        it->EnsureGrad();
        for (size_t b = 0; b < rows.size(); ++b) {
          const size_t src = b * static_cast<size_t>(d);
          const size_t dst = static_cast<size_t>(rows[b]) * static_cast<size_t>(d);
          for (int64_t c = 0; c < d; ++c) {
            it->grad[dst + static_cast<size_t>(c)] +=
                self->grad[src + static_cast<size_t>(c)];
          }
        }
      });
  float* oc = out.data();
  const float* td = table.data();
  for (size_t b = 0; b < rows.size(); ++b) {
    const float* src = td + rows[b] * d;
    std::copy(src, src + d, oc + static_cast<int64_t>(b) * d);
  }
  return out;
}

Tensor BroadcastRow(const Tensor& a, int64_t batch) {
  HALK_CHECK_EQ(a.shape().rank(), 1);
  const int64_t d = a.shape().dim(0);
  Tensor out = MakeOpResult(
      Shape({batch, d}), "broadcast_row", {a},
      [batch, d](TensorImpl* self) {
        TensorImpl* ia = self->inputs[0].get();
        if (!ia->requires_grad) return;
        ia->EnsureGrad();
        for (int64_t b = 0; b < batch; ++b) {
          for (int64_t c = 0; c < d; ++c) {
            ia->grad[static_cast<size_t>(c)] +=
                self->grad[static_cast<size_t>(b * d + c)];
          }
        }
      });
  float* oc = out.data();
  const float* da = a.data();
  for (int64_t b = 0; b < batch; ++b) std::copy(da, da + d, oc + b * d);
  return out;
}

Tensor StopGradient(const Tensor& a) { return a.Detach(); }

}  // namespace halk::tensor
