#include "tensor/tensor.h"

#include "common/logging.h"
#include "tensor/tape.h"

namespace halk::tensor {

namespace {
std::shared_ptr<TensorImpl> NewLeaf(const Shape& shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(shape.numel()), 0.0f);
  return impl;
}
}  // namespace

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(NewLeaf(shape)); }

Tensor Tensor::Full(const Shape& shape, float value) {
  auto impl = NewLeaf(shape);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(impl);
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  HALK_CHECK_EQ(shape.numel(), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  return Tensor(impl);
}

Tensor Tensor::Scalar(float value) { return Full(Shape({1}), value); }

const Shape& Tensor::shape() const {
  HALK_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::numel() const { return shape().numel(); }

float* Tensor::data() {
  HALK_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  HALK_CHECK(defined());
  return impl_->data.data();
}

float Tensor::at(int64_t i) const {
  HALK_CHECK_GE(i, 0);
  HALK_CHECK_LT(i, numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::at(int64_t row, int64_t col) const {
  HALK_CHECK_EQ(shape().rank(), 2);
  const int64_t cols = shape().dim(1);
  HALK_CHECK_GE(row, 0);
  HALK_CHECK_LT(row, shape().dim(0));
  HALK_CHECK_GE(col, 0);
  HALK_CHECK_LT(col, cols);
  return impl_->data[static_cast<size_t>(row * cols + col)];
}

bool Tensor::requires_grad() const {
  HALK_CHECK(defined());
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  HALK_CHECK(defined());
  impl_->requires_grad = value;
  return *this;
}

float* Tensor::grad() {
  HALK_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad.data();
}

const std::vector<float>& Tensor::grad_vector() const {
  HALK_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  HALK_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  HALK_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->op_name = "detach";
  return Tensor(impl);
}

std::vector<float> Tensor::ToVector() const {
  HALK_CHECK(defined());
  return impl_->data;
}

Tensor MakeOpResult(const Shape& shape, const char* op_name,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl*)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(shape.numel()), 0.0f);
  impl->op_name = op_name;
  bool needs_grad = false;
  impl->inputs.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    HALK_CHECK(t.defined());
    needs_grad = needs_grad || t.requires_grad();
    impl->inputs.push_back(t.impl());
  }
  impl->requires_grad = needs_grad;
  if (needs_grad) impl->backward = std::move(backward);
  // One thread-local pointer load when accounting is off.
  if (TapeAccounting* accounting = TapeAccounting::Active()) {
    accounting->RecordForward(*impl);
  }
  return Tensor(impl);
}

}  // namespace halk::tensor
