#ifndef HALK_TENSOR_OPS_H_
#define HALK_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace halk::tensor {

// All ops are differentiable (reverse-mode) unless noted. Binary elementwise
// ops support limited broadcasting:
//   * identical shapes;
//   * either operand a scalar (numel == 1);
//   * a `[B, d]` matrix with a `[d]` row vector (broadcast over rows).

/// a + b.
Tensor Add(const Tensor& a, const Tensor& b);
/// a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// a * b (elementwise).
Tensor Mul(const Tensor& a, const Tensor& b);
/// a / b (elementwise). b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);
/// -a.
Tensor Neg(const Tensor& a);
/// a + s.
Tensor AddScalar(const Tensor& a, float s);
/// a * s.
Tensor MulScalar(const Tensor& a, float s);

Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
/// log(1 + exp(x)), computed stably; note -log(sigmoid(x)) == Softplus(-x).
Tensor Softplus(const Tensor& a);

/// log Γ(x) for x > 0; gradient is the digamma function ψ(x).
Tensor Lgamma(const Tensor& a);
/// ψ(x) = d/dx log Γ(x) for x > 0; gradient is the trigamma function ψ'(x).
Tensor Digamma(const Tensor& a);

namespace special {
/// Scalar digamma ψ(x), x > 0 (recurrence + asymptotic series).
float DigammaScalar(float x);
/// Scalar trigamma ψ'(x), x > 0.
float TrigammaScalar(float x);
}  // namespace special

/// Elementwise atan2(y, x); shapes must match. Returns angles in (-pi, pi].
Tensor Atan2(const Tensor& y, const Tensor& x);

/// Elementwise min/max; broadcasting as for Add. On ties gradient goes to a.
Tensor Minimum(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

/// Clamps into [lo, hi]; gradient 1 inside the interval, 0 outside.
Tensor Clamp(const Tensor& a, float lo, float hi);

/// Wraps angles into [0, 2*pi) with a pass-through (identity) gradient; the
/// wrap offset is piecewise constant so this is exact almost everywhere.
Tensor Mod2Pi(const Tensor& a);

/// Matrix product: `[B, I] x [I, O] -> [B, O]`.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Concatenation. rank-1 inputs with axis 0, or rank-2 inputs (equal rows)
/// with axis 1.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Columns [begin, end) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end);

/// View with a new shape (same numel).
Tensor Reshape(const Tensor& a, const Shape& shape);

/// Sum of all elements -> scalar `[1]`.
Tensor SumAll(const Tensor& a);
/// Mean of all elements -> scalar `[1]`.
Tensor MeanAll(const Tensor& a);

/// Reduction over one dimension of a rank-2 tensor:
/// dim 0: `[B, d] -> [d]`;  dim 1: `[B, d] -> [B]`.
Tensor SumDim(const Tensor& a, int dim);
Tensor MeanDim(const Tensor& a, int dim);

/// Embedding lookup: rows of `table` (`[N, d]`) at `rows` -> `[B, d]`.
/// Backward scatter-adds into the table gradient.
Tensor Gather(const Tensor& table, const std::vector<int64_t>& rows);

/// Explicitly tiles a `[d]` vector into `[B, d]`.
Tensor BroadcastRow(const Tensor& a, int64_t batch);

/// Stops gradient flow (alias of Tensor::Detach, for symmetry in op code).
Tensor StopGradient(const Tensor& a);

// Operator sugar for readable model code.
inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }

}  // namespace halk::tensor

#endif  // HALK_TENSOR_OPS_H_
