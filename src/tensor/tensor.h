#ifndef HALK_TENSOR_TENSOR_H_
#define HALK_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace halk::tensor {

struct TensorImpl;

/// Value-semantic handle to a node in the autograd graph. Copying a Tensor
/// copies the handle, not the buffer. Each differentiable op produced by
/// `halk::tensor` ops records its inputs and a backward closure; calling
/// `Backward(loss)` (tape.h) runs reverse-mode accumulation into `grad()`
/// of every reachable tensor with `requires_grad()`.
class Tensor {
 public:
  /// Null handle; `defined()` is false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Factory constructors. None of these require gradients by default.
  static Tensor Zeros(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  static Tensor Scalar(float value);

  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const;
  int64_t numel() const;

  /// Raw buffer access (row-major).
  float* data();
  const float* data() const;

  /// Element accessors for tests and glue code.
  float at(int64_t i) const;
  float at(int64_t row, int64_t col) const;

  bool requires_grad() const;
  /// Marks this tensor as a trainable leaf.
  Tensor& set_requires_grad(bool value);

  /// Gradient buffer; allocated (zero-filled) on first access.
  float* grad();
  const std::vector<float>& grad_vector() const;
  void ZeroGrad();

  /// A tensor sharing this buffer but cut off from the autograd graph.
  Tensor Detach() const;

  /// Copies out the contents.
  std::vector<float> ToVector() const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Internal node storage. Public because ops.cc and tape.cc manipulate it;
/// library users interact with Tensor only.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until needed
  bool requires_grad = false;
  const char* op_name = "leaf";
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  /// Propagates this node's grad into inputs' grads. Null for leaves.
  std::function<void(TensorImpl*)> backward;

  void EnsureGrad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};

/// Creates a non-leaf op result over `inputs`; requires_grad is inherited.
Tensor MakeOpResult(const Shape& shape, const char* op_name,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl*)> backward);

}  // namespace halk::tensor

#endif  // HALK_TENSOR_TENSOR_H_
