#include "store/convert.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "store/format.h"
#include "store/writer.h"

namespace halk::store {

namespace {

constexpr char kCkptMagic[8] = {'H', 'A', 'L', 'K', 'C', 'K', 'P', 'T'};
constexpr uint32_t kCkptVersion = 1;

}  // namespace

Status ReadLegacyCheckpoint(const std::string& path, LegacyCheckpoint* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  uint64_t hash = kFnvSeed;
  auto raw = [&](void* data, size_t n) -> bool {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in.good()) return false;
    hash = Fnv1a64(data, n, hash);
    return true;
  };
  char magic[8];
  if (!raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::ParseError("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  if (!raw(&version, sizeof(version)) || version != kCkptVersion) {
    return Status::ParseError(
        StrFormat("unsupported checkpoint version %u", version));
  }
  uint32_t name_len = 0;
  if (!raw(&name_len, sizeof(name_len)) || name_len > 256) {
    return Status::ParseError("bad model name length: " + path);
  }
  LegacyCheckpoint ckpt;
  ckpt.model_name.resize(name_len);
  if (!raw(ckpt.model_name.data(), name_len)) {
    return Status::ParseError("truncated checkpoint: " + path);
  }
  core::ModelConfig& c = ckpt.config;
  if (!(raw(&c.num_entities, sizeof(c.num_entities)) &&
        raw(&c.num_relations, sizeof(c.num_relations)) &&
        raw(&c.dim, sizeof(c.dim)) && raw(&c.hidden, sizeof(c.hidden)) &&
        raw(&c.rho, sizeof(c.rho)) && raw(&c.lambda, sizeof(c.lambda)) &&
        raw(&c.eta, sizeof(c.eta)) && raw(&c.gamma, sizeof(c.gamma)) &&
        raw(&c.xi, sizeof(c.xi)) && raw(&c.seed, sizeof(c.seed)))) {
    return Status::ParseError("truncated checkpoint config: " + path);
  }
  uint64_t num_tensors = 0;
  if (!raw(&num_tensors, sizeof(num_tensors)) || num_tensors > 4096) {
    return Status::ParseError("bad checkpoint tensor count: " + path);
  }
  ckpt.tensors.resize(num_tensors);
  for (uint64_t t = 0; t < num_tensors; ++t) {
    uint64_t numel = 0;
    if (!raw(&numel, sizeof(numel)) || numel > (uint64_t{1} << 34)) {
      return Status::ParseError(
          StrFormat("bad checkpoint tensor %llu size",
                    static_cast<unsigned long long>(t)));
    }
    ckpt.tensors[t].resize(static_cast<size_t>(numel));
    if (!raw(ckpt.tensors[t].data(), sizeof(float) * ckpt.tensors[t].size())) {
      return Status::ParseError("truncated checkpoint tensor data: " + path);
    }
  }
  const uint64_t computed = hash;
  uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in.good() || stored != computed) {
    return Status::ParseError("checkpoint checksum mismatch: " + path);
  }
  *out = std::move(ckpt);
  return Status::OK();
}

Status WriteLegacyCheckpoint(const std::string& path,
                             const LegacyCheckpoint& ckpt) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  uint64_t hash = kFnvSeed;
  auto raw = [&](const void* data, size_t n) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    hash = Fnv1a64(data, n, hash);
  };
  raw(kCkptMagic, sizeof(kCkptMagic));
  raw(&kCkptVersion, sizeof(kCkptVersion));
  const uint32_t name_len = static_cast<uint32_t>(ckpt.model_name.size());
  raw(&name_len, sizeof(name_len));
  raw(ckpt.model_name.data(), ckpt.model_name.size());
  const core::ModelConfig& c = ckpt.config;
  raw(&c.num_entities, sizeof(c.num_entities));
  raw(&c.num_relations, sizeof(c.num_relations));
  raw(&c.dim, sizeof(c.dim));
  raw(&c.hidden, sizeof(c.hidden));
  raw(&c.rho, sizeof(c.rho));
  raw(&c.lambda, sizeof(c.lambda));
  raw(&c.eta, sizeof(c.eta));
  raw(&c.gamma, sizeof(c.gamma));
  raw(&c.xi, sizeof(c.xi));
  raw(&c.seed, sizeof(c.seed));
  const uint64_t num_tensors = ckpt.tensors.size();
  raw(&num_tensors, sizeof(num_tensors));
  for (const std::vector<float>& t : ckpt.tensors) {
    const uint64_t numel = t.size();
    raw(&numel, sizeof(numel));
    raw(t.data(), sizeof(float) * t.size());
  }
  out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ConvertCheckpointToSnapshot(const std::string& blob_path,
                                   const std::string& dir,
                                   int64_t num_shards) {
  LegacyCheckpoint ckpt;
  HALK_RETURN_NOT_OK(ReadLegacyCheckpoint(blob_path, &ckpt));
  if (ckpt.tensors.empty()) {
    return Status::InvalidArgument("checkpoint carries no tensors");
  }
  const core::ModelConfig& c = ckpt.config;
  const uint64_t table_numel = static_cast<uint64_t>(c.num_entities) *
                               static_cast<uint64_t>(c.dim);
  if (ckpt.tensors[0].size() != table_numel) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint tensor 0 has %zu floats, expected %llu (the entity "
        "table)",
        ckpt.tensors[0].size(),
        static_cast<unsigned long long>(table_numel)));
  }
  SnapshotWriterOptions options;
  options.dir = dir;
  options.model_name = ckpt.model_name;
  options.config = c;
  options.num_shards = num_shards;
  std::unique_ptr<SnapshotWriter> writer;
  HALK_ASSIGN_OR_RETURN(writer, SnapshotWriter::Create(options));
  HALK_RETURN_NOT_OK(
      writer->AppendEntityRows(ckpt.tensors[0].data(), c.num_entities));
  std::vector<std::vector<float>> params(
      std::make_move_iterator(ckpt.tensors.begin() + 1),
      std::make_move_iterator(ckpt.tensors.end()));
  HALK_RETURN_NOT_OK(writer->SetParams(std::move(params)));
  return writer->Finish();
}

Status ConvertSnapshotToCheckpoint(const std::string& dir,
                                   const std::string& blob_path) {
  EmbeddingStore::OpenOptions options;
  options.verify_checksums = true;
  std::unique_ptr<EmbeddingStore> store;
  HALK_ASSIGN_OR_RETURN(store, EmbeddingStore::Open(dir, options));
  if (!store->snapshot().has_params) {
    return Status::InvalidArgument(
        "snapshot has no params blob; cannot reconstruct a full checkpoint");
  }
  std::string name;
  core::ModelConfig config;
  std::vector<std::vector<float>> params;
  uint64_t checksum = 0;
  HALK_RETURN_NOT_OK(ReadParamsBlob(dir + "/" + kParamsFileName, &name,
                                    &config, &params, &checksum));
  if (checksum != store->snapshot().params_checksum) {
    return Status::ParseError(
        "params blob checksum disagrees with the manifest");
  }
  LegacyCheckpoint ckpt;
  ckpt.model_name = name;
  ckpt.config = config;
  ckpt.tensors.resize(params.size() + 1);
  const int64_t n = store->num_entities();
  const int64_t d = store->dim();
  ckpt.tensors[0].resize(static_cast<size_t>(n * d));
  for (int64_t e = 0; e < n; ++e) {
    store->CopyRow(e, ckpt.tensors[0].data() + e * d);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    ckpt.tensors[i + 1] = std::move(params[i]);
  }
  return WriteLegacyCheckpoint(blob_path, ckpt);
}

Result<std::unique_ptr<core::HalkModel>> OpenServingModel(
    const EmbeddingStore& store, const kg::NodeGrouping* grouping) {
  const StoreSnapshot& snap = store.snapshot();
  if (snap.model_name != "HaLk") {
    return Status::InvalidArgument("snapshot is for model '" +
                                   snap.model_name + "', not 'HaLk'");
  }
  if (!snap.has_params) {
    return Status::InvalidArgument(
        "snapshot has no params blob; a serving model needs the operator "
        "weights");
  }
  std::string name;
  core::ModelConfig config;
  std::vector<std::vector<float>> params;
  uint64_t checksum = 0;
  HALK_RETURN_NOT_OK(ReadParamsBlob(store.dir() + "/" + kParamsFileName,
                                    &name, &config, &params, &checksum));
  if (checksum != snap.params_checksum) {
    return Status::ParseError(
        "params blob checksum disagrees with the manifest");
  }
  auto model = std::make_unique<core::HalkModel>(snap.config, grouping,
                                                 &store);
  // Store-backed Parameters() excludes the entity table, so blob tensor i
  // maps straight onto parameter i.
  std::vector<tensor::Tensor> dst = model->Parameters();
  if (dst.size() != params.size()) {
    return Status::InvalidArgument(
        StrFormat("params blob has %zu tensors, model expects %zu",
                  params.size(), dst.size()));
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (static_cast<size_t>(dst[i].numel()) != params[i].size()) {
      return Status::InvalidArgument(
          StrFormat("params tensor %zu shape mismatch", i));
    }
    std::copy(params[i].begin(), params[i].end(), dst[i].data());
  }
  return model;
}

}  // namespace halk::store
