#include "store/format.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::store {

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Field offsets inside the serialized header. Kept in one place so the
// writer and parser cannot drift.
constexpr uint64_t kOffMagic = 0;
constexpr uint64_t kOffVersion = 8;
constexpr uint64_t kOffDtype = 12;
constexpr uint64_t kOffDim = 16;
constexpr uint64_t kOffRowsPerGroup = 20;
constexpr uint64_t kOffEntityBegin = 24;
constexpr uint64_t kOffEntityEnd = 32;
constexpr uint64_t kOffPageBytes = 40;
constexpr uint64_t kOffNumGroups = 48;
constexpr uint64_t kOffTableOffset = 56;
constexpr uint64_t kOffDataOffset = 64;
constexpr uint64_t kOffDataBytes = 72;
constexpr uint64_t kOffTableChecksum = 80;
constexpr uint64_t kOffHeaderChecksum = 88;
static_assert(kOffHeaderChecksum + 8 == kHeaderBytes);

// Caps that keep all geometry arithmetic below comfortably inside uint64
// even on hostile input: 2^20 dims * 2^20 rows/group * 2^40 rows would
// overflow, so each factor is bounded first.
constexpr uint64_t kMaxDim = 1u << 20;
constexpr uint64_t kMaxRowsPerGroup = 1u << 20;
constexpr int64_t kMaxRows = int64_t{1} << 40;

template <typename T>
void Put(uint8_t* out, uint64_t offset, T value) {
  std::memcpy(out + offset, &value, sizeof(T));
}

template <typename T>
T Get(const uint8_t* data, uint64_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

}  // namespace

int64_t GroupRowCount(const ShardFileHeader& header, int64_t group) {
  const int64_t rows = header.rows();
  const int64_t begin = group * static_cast<int64_t>(header.rows_per_group);
  const int64_t end =
      std::min<int64_t>(rows, begin + static_cast<int64_t>(header.rows_per_group));
  return end - begin;
}

uint64_t GroupBlockBytes(const ShardFileHeader& header, int64_t group) {
  return AlignUp(
      static_cast<uint64_t>(GroupRowCount(header, group)) * sizeof(float),
      header.page_bytes);
}

uint64_t BlockOffset(const ShardFileHeader& header, int64_t group,
                     int64_t dim_index) {
  // Every group but the last is full, so full groups share one stride.
  const uint64_t full_block =
      AlignUp(static_cast<uint64_t>(header.rows_per_group) * sizeof(float),
              header.page_bytes);
  const uint64_t group_base =
      header.data_offset +
      static_cast<uint64_t>(group) * header.dim * full_block;
  return group_base +
         static_cast<uint64_t>(dim_index) * GroupBlockBytes(header, group);
}

uint64_t TotalDataBytes(const ShardFileHeader& header) {
  if (header.num_groups == 0) return 0;
  const uint64_t full_block =
      AlignUp(static_cast<uint64_t>(header.rows_per_group) * sizeof(float),
              header.page_bytes);
  const uint64_t last = header.num_groups - 1;
  return last * header.dim * full_block +
         header.dim * GroupBlockBytes(header, static_cast<int64_t>(last));
}

void SerializeHeader(const ShardFileHeader& header, uint8_t* out) {
  std::memset(out, 0, kPageBytes);
  std::memcpy(out + kOffMagic, kShardMagic, sizeof(kShardMagic));
  Put(out, kOffVersion, header.version);
  Put(out, kOffDtype, header.dtype);
  Put(out, kOffDim, header.dim);
  Put(out, kOffRowsPerGroup, header.rows_per_group);
  Put(out, kOffEntityBegin, header.entity_begin);
  Put(out, kOffEntityEnd, header.entity_end);
  Put(out, kOffPageBytes, header.page_bytes);
  Put(out, kOffNumGroups, header.num_groups);
  Put(out, kOffTableOffset, header.checksum_table_offset);
  Put(out, kOffDataOffset, header.data_offset);
  Put(out, kOffDataBytes, header.data_bytes);
  Put(out, kOffTableChecksum, header.table_checksum);
  Put(out, kOffHeaderChecksum, Fnv1a64(out, kOffHeaderChecksum));
}

Status ParseHeader(const uint8_t* data, size_t n, ShardFileHeader* out) {
  if (n < kHeaderBytes) {
    return Status::ParseError(
        StrFormat("shard header truncated: %zu of %llu bytes", n,
                  static_cast<unsigned long long>(kHeaderBytes)));
  }
  if (std::memcmp(data + kOffMagic, kShardMagic, sizeof(kShardMagic)) != 0) {
    return Status::ParseError("bad shard-file magic (not a .halkstore file)");
  }
  ShardFileHeader h;
  h.version = Get<uint32_t>(data, kOffVersion);
  h.dtype = Get<uint32_t>(data, kOffDtype);
  h.dim = Get<uint32_t>(data, kOffDim);
  h.rows_per_group = Get<uint32_t>(data, kOffRowsPerGroup);
  h.entity_begin = Get<int64_t>(data, kOffEntityBegin);
  h.entity_end = Get<int64_t>(data, kOffEntityEnd);
  h.page_bytes = Get<uint64_t>(data, kOffPageBytes);
  h.num_groups = Get<uint64_t>(data, kOffNumGroups);
  h.checksum_table_offset = Get<uint64_t>(data, kOffTableOffset);
  h.data_offset = Get<uint64_t>(data, kOffDataOffset);
  h.data_bytes = Get<uint64_t>(data, kOffDataBytes);
  h.table_checksum = Get<uint64_t>(data, kOffTableChecksum);
  h.header_checksum = Get<uint64_t>(data, kOffHeaderChecksum);

  const uint64_t computed = Fnv1a64(data, kOffHeaderChecksum);
  if (computed != h.header_checksum) {
    return Status::ParseError("shard header checksum mismatch");
  }
  if (h.version != kShardFormatVersion) {
    return Status::ParseError(
        StrFormat("unsupported shard format version %u", h.version));
  }
  if (h.dtype != kDtypeF32) {
    return Status::ParseError(StrFormat("unsupported dtype %u", h.dtype));
  }
  if (h.page_bytes != kPageBytes) {
    return Status::ParseError(
        StrFormat("unsupported page size %llu",
                  static_cast<unsigned long long>(h.page_bytes)));
  }
  if (h.dim == 0 || h.dim > kMaxDim) {
    return Status::ParseError(StrFormat("bad dim %u", h.dim));
  }
  if (h.rows_per_group == 0 || h.rows_per_group > kMaxRowsPerGroup) {
    return Status::ParseError(
        StrFormat("bad rows_per_group %u", h.rows_per_group));
  }
  if (h.entity_begin < 0 || h.entity_end <= h.entity_begin ||
      h.rows() > kMaxRows) {
    return Status::ParseError("bad entity range");
  }
  const uint64_t expected_groups =
      (static_cast<uint64_t>(h.rows()) + h.rows_per_group - 1) /
      h.rows_per_group;
  if (h.num_groups != expected_groups) {
    return Status::ParseError("group count inconsistent with entity range");
  }
  // Bounds num_groups * dim so every geometry product below stays far from
  // uint64 overflow on adversarial input (blocks are at most ~4 MiB each).
  if (h.num_groups > (uint64_t{1} << 32) / h.dim) {
    return Status::ParseError("shard geometry too large");
  }
  if (h.checksum_table_offset != kPageBytes) {
    return Status::ParseError("bad checksum-table offset");
  }
  const uint64_t table_bytes = h.num_groups * h.dim * sizeof(uint64_t);
  if (h.data_offset != AlignUp(kPageBytes + table_bytes, h.page_bytes)) {
    return Status::ParseError("bad data offset");
  }
  if (h.data_bytes != TotalDataBytes(h)) {
    return Status::ParseError("data size inconsistent with geometry");
  }
  *out = h;
  return Status::OK();
}

}  // namespace halk::store
