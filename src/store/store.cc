#include "store/store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace halk::store {

Result<std::unique_ptr<EmbeddingStore>> EmbeddingStore::Open(
    const std::string& dir, const OpenOptions& options) {
  const int64_t t0 = obs::NowNs();
  StoreSnapshot snap;
  HALK_RETURN_NOT_OK(LoadManifest(dir, &snap));

  auto store = std::unique_ptr<EmbeddingStore>(
      new EmbeddingStore());  // halk_lint:allow no-raw-new-delete private ctor
  store->dir_ = dir;
  store->snapshot_ = snap;
  store->files_.reserve(snap.shards.size());

  MappedShardFile::OpenOptions file_options;
  file_options.verify_checksums = options.verify_checksums;
  file_options.advice = options.advice;
  file_options.residency_window_bytes = options.residency_window_bytes;
  for (const SnapshotShardEntry& entry : snap.shards) {
    auto opened =
        MappedShardFile::Open(dir + "/" + entry.file, file_options);
    if (!opened.ok()) {
      if (options.metrics != nullptr &&
          opened.status().code() == StatusCode::kParseError) {
        options.metrics->GetCounter("store.checksum_failures")->Increment();
      }
      return opened.status();
    }
    std::unique_ptr<MappedShardFile> file = std::move(opened).value();
    const ShardFileHeader& h = file->header();
    if (h.entity_begin != entry.entity_begin ||
        h.entity_end != entry.entity_end) {
      return Status::ParseError(StrFormat(
          "%s: entity range [%lld, %lld) disagrees with manifest "
          "[%lld, %lld)",
          entry.file.c_str(), static_cast<long long>(h.entity_begin),
          static_cast<long long>(h.entity_end),
          static_cast<long long>(entry.entity_begin),
          static_cast<long long>(entry.entity_end)));
    }
    if (static_cast<int64_t>(h.dim) != snap.config.dim) {
      return Status::ParseError(
          StrFormat("%s: dim %u disagrees with manifest dim %lld",
                    entry.file.c_str(), h.dim,
                    static_cast<long long>(snap.config.dim)));
    }
    if (h.header_checksum != entry.header_checksum) {
      if (options.metrics != nullptr) {
        options.metrics->GetCounter("store.checksum_failures")->Increment();
      }
      return Status::ParseError(StrFormat(
          "%s: header checksum 0x%llx disagrees with manifest 0x%llx "
          "(file replaced or corrupted since snapshot)",
          entry.file.c_str(),
          static_cast<unsigned long long>(h.header_checksum),
          static_cast<unsigned long long>(entry.header_checksum)));
    }
    store->files_.push_back(std::move(file));
  }

  if (options.metrics != nullptr) {
    serving::MetricsRegistry* m = options.metrics;
    m->GetCounter("store.files_mapped")
        ->Increment(static_cast<int64_t>(store->files_.size()));
    m->GetGauge("store.bytes_mapped")
        ->Set(static_cast<double>(store->MappedBytes()));
    m->GetHistogram("store.map_us",
                    serving::Histogram::ExponentialBounds(100.0, 2.0, 20))
        ->Observe(static_cast<double>(obs::NowNs() - t0) / 1e3);
    store->resident_gauge_ = m->GetGauge("store.resident_bytes");
    store->UpdateResidencyMetrics();
    if (options.verify_checksums) {
      // Open already verified; record the (dominant) verify cost so dash-
      // boards can see what full verification costs at this table size.
      m->GetHistogram("store.verify_us",
                      serving::Histogram::ExponentialBounds(100.0, 2.0, 20))
          ->Observe(static_cast<double>(obs::NowNs() - t0) / 1e3);
    }
  }
  return store;
}

int64_t EmbeddingStore::FileFor(int64_t entity) const {
  // Files are contiguous and sorted by range; binary-search the begins.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(files_.size()) - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (files_[mid]->entity_begin() <= entity) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void EmbeddingStore::CopyRow(int64_t entity, float* out) const {
  HALK_CHECK(entity >= 0 && entity < num_entities());
  files_[FileFor(entity)]->CopyRow(entity, out);
}

void EmbeddingStore::AccumulateTopKRange(
    const std::vector<core::ArcConstants>& arcs, int64_t begin, int64_t end,
    core::TopKAccumulator* acc, core::ScanStats* stats) const {
  begin = std::max<int64_t>(begin, 0);
  end = std::min<int64_t>(end, num_entities());
  if (begin >= end) return;
  // A range may straddle shard-file boundaries (the serving shard count
  // need not match the file count); split it and let each file scan its
  // slice. Sequential order keeps the accumulator bound tightening across
  // files exactly as the in-RAM entity-major scan would.
  for (int64_t f = FileFor(begin);
       f < static_cast<int64_t>(files_.size()) &&
       files_[f]->entity_begin() < end;
       ++f) {
    files_[f]->Scan(arcs, begin, end, acc, stats);
  }
}

size_t EmbeddingStore::MappedBytes() const {
  size_t total = 0;
  for (const auto& f : files_) total += f->mapped_bytes();
  return total;
}

size_t EmbeddingStore::ResidentBytes() const {
  size_t total = 0;
  for (const auto& f : files_) total += f->ResidentBytes();
  return total;
}

void EmbeddingStore::DropResidency() const {
  for (const auto& f : files_) f->DropResidency();
}

Status EmbeddingStore::VerifyChecksums() const {
  for (const auto& f : files_) {
    HALK_RETURN_NOT_OK(f->VerifyChecksums());
  }
  return Status::OK();
}

void EmbeddingStore::UpdateResidencyMetrics() const {
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<double>(ResidentBytes()));
  }
}

}  // namespace halk::store
