#include "store/snapshot.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "store/format.h"

namespace halk::store {

namespace {

void AppendFloat(std::string* out, const char* key, float value) {
  // %.9g is float round-trip precision: the config survives the text form
  // bit-exactly, which the blob<->snapshot round-trip test relies on.
  out->append(StrFormat("%s %.9g\n", key, static_cast<double>(value)));
}

void AppendInt(std::string* out, const char* key, long long value) {
  out->append(StrFormat("%s %lld\n", key, value));
}

/// Splits one line into whitespace-separated tokens (single spaces only;
/// the serializer never emits doubles, and the parser rejects them via
/// token-count checks).
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

bool ParseI64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.size() < 3 || token[0] != '0' || token[1] != 'x') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str() + 2, &end, 16);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseF32(const std::string& token, float* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float v = std::strtof(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// A shard file name must be a plain file name — no path separators, so a
/// hostile manifest cannot point the reader outside its own directory.
bool SafeFileName(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

}  // namespace

std::string SerializeManifest(const StoreSnapshot& snapshot) {
  std::string out;
  AppendInt(&out, "halk-store-snapshot",
            static_cast<long long>(snapshot.version));
  out.append("model " + snapshot.model_name + "\n");
  const core::ModelConfig& c = snapshot.config;
  AppendInt(&out, "num_entities", static_cast<long long>(c.num_entities));
  AppendInt(&out, "num_relations", static_cast<long long>(c.num_relations));
  AppendInt(&out, "dim", static_cast<long long>(c.dim));
  AppendInt(&out, "hidden", static_cast<long long>(c.hidden));
  AppendFloat(&out, "rho", c.rho);
  AppendFloat(&out, "lambda", c.lambda);
  AppendFloat(&out, "eta", c.eta);
  AppendFloat(&out, "gamma", c.gamma);
  AppendFloat(&out, "xi", c.xi);
  out.append(StrFormat("seed %llu\n",
                       static_cast<unsigned long long>(c.seed)));
  if (snapshot.has_params) {
    out.append(StrFormat("params %s 0x%llx\n", kParamsFileName,
                         static_cast<unsigned long long>(
                             snapshot.params_checksum)));
  }
  for (const SnapshotShardEntry& s : snapshot.shards) {
    out.append(StrFormat(
        "shard %s %lld %lld 0x%llx\n", s.file.c_str(),
        static_cast<long long>(s.entity_begin),
        static_cast<long long>(s.entity_end),
        static_cast<unsigned long long>(s.header_checksum)));
  }
  out.append(StrFormat("checksum 0x%llx\n",
                       static_cast<unsigned long long>(
                           Fnv1a64(out.data(), out.size()))));
  return out;
}

Status ParseManifest(const std::string& text, StoreSnapshot* out) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::ParseError("manifest missing trailing newline");
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (pos != text.size()) {
    return Status::ParseError("manifest has bytes after the final newline");
  }
  if (lines.size() < 14) {
    return Status::ParseError("manifest truncated");
  }

  // The checksum line covers every byte before it.
  const std::vector<std::string> last = Tokens(lines.back());
  uint64_t declared = 0;
  if (last.size() != 2 || last[0] != "checksum" ||
      !ParseU64(last[1], &declared)) {
    return Status::ParseError("manifest missing checksum line");
  }
  const size_t body_bytes =
      text.size() - (lines.back().size() + 1);
  if (Fnv1a64(text.data(), body_bytes) != declared) {
    return Status::ParseError("manifest checksum mismatch");
  }

  StoreSnapshot snap;
  size_t i = 0;
  auto expect_i64 = [&](const char* key, int64_t lo, int64_t hi,
                        int64_t* dst) -> Status {
    if (i >= lines.size()) return Status::ParseError("manifest truncated");
    const std::vector<std::string> t = Tokens(lines[i]);
    int64_t v = 0;
    if (t.size() != 2 || t[0] != key || !ParseI64(t[1], &v) || v < lo ||
        v > hi) {
      return Status::ParseError(StrFormat("bad manifest line %zu: expected "
                                          "'%s <int>'",
                                          i + 1, key));
    }
    ++i;
    *dst = v;
    return Status::OK();
  };
  auto expect_f32 = [&](const char* key, float* dst) -> Status {
    if (i >= lines.size()) return Status::ParseError("manifest truncated");
    const std::vector<std::string> t = Tokens(lines[i]);
    if (t.size() != 2 || t[0] != key || !ParseF32(t[1], dst)) {
      return Status::ParseError(StrFormat("bad manifest line %zu: expected "
                                          "'%s <float>'",
                                          i + 1, key));
    }
    ++i;
    return Status::OK();
  };

  int64_t version = 0;
  HALK_RETURN_NOT_OK(expect_i64("halk-store-snapshot", 1, 1, &version));
  snap.version = static_cast<uint32_t>(version);
  {
    const std::vector<std::string> t = Tokens(lines[i]);
    if (t.size() != 2 || t[0] != "model" || t[1].size() > 256) {
      return Status::ParseError("bad manifest model line");
    }
    snap.model_name = t[1];
    ++i;
  }
  core::ModelConfig& c = snap.config;
  constexpr int64_t kMaxCount = int64_t{1} << 40;
  HALK_RETURN_NOT_OK(
      expect_i64("num_entities", 1, kMaxCount, &c.num_entities));
  HALK_RETURN_NOT_OK(
      expect_i64("num_relations", 1, kMaxCount, &c.num_relations));
  HALK_RETURN_NOT_OK(expect_i64("dim", 1, 1 << 20, &c.dim));
  HALK_RETURN_NOT_OK(expect_i64("hidden", 1, 1 << 20, &c.hidden));
  HALK_RETURN_NOT_OK(expect_f32("rho", &c.rho));
  HALK_RETURN_NOT_OK(expect_f32("lambda", &c.lambda));
  HALK_RETURN_NOT_OK(expect_f32("eta", &c.eta));
  HALK_RETURN_NOT_OK(expect_f32("gamma", &c.gamma));
  HALK_RETURN_NOT_OK(expect_f32("xi", &c.xi));
  {
    if (i >= lines.size()) return Status::ParseError("manifest truncated");
    const std::vector<std::string> t = Tokens(lines[i]);
    uint64_t seed = 0;
    if (t.size() != 2 || t[0] != "seed") {
      return Status::ParseError("bad manifest seed line");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t[1].c_str(), &end, 10);
    if (errno != 0 || end != t[1].c_str() + t[1].size()) {
      return Status::ParseError("bad manifest seed value");
    }
    seed = static_cast<uint64_t>(v);
    c.seed = seed;
    ++i;
  }

  if (i < lines.size()) {
    const std::vector<std::string> t = Tokens(lines[i]);
    if (!t.empty() && t[0] == "params") {
      if (t.size() != 3 || t[1] != kParamsFileName ||
          !ParseU64(t[2], &snap.params_checksum)) {
        return Status::ParseError("bad manifest params line");
      }
      snap.has_params = true;
      ++i;
    }
  }

  int64_t next_begin = 0;
  while (i + 1 < lines.size()) {  // everything before the checksum line
    const std::vector<std::string> t = Tokens(lines[i]);
    SnapshotShardEntry entry;
    if (t.size() != 5 || t[0] != "shard" || !SafeFileName(t[1]) ||
        !ParseI64(t[2], &entry.entity_begin) ||
        !ParseI64(t[3], &entry.entity_end) ||
        !ParseU64(t[4], &entry.header_checksum)) {
      return Status::ParseError(
          StrFormat("bad manifest shard line %zu", i + 1));
    }
    entry.file = t[1];
    if (entry.entity_begin != next_begin ||
        entry.entity_end <= entry.entity_begin ||
        entry.entity_end > c.num_entities) {
      return Status::ParseError(StrFormat(
          "manifest shard ranges must tile [0, num_entities) in order "
          "(line %zu)",
          i + 1));
    }
    next_begin = entry.entity_end;
    snap.shards.push_back(std::move(entry));
    ++i;
  }
  if (next_begin != c.num_entities) {
    return Status::ParseError(
        "manifest shards do not cover the full entity range");
  }
  *out = std::move(snap);
  return Status::OK();
}

Status LoadManifest(const std::string& dir, StoreSnapshot* out) {
  const std::string path = dir + "/" + kManifestFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Status parsed = ParseManifest(buf.str(), out);
  if (!parsed.ok()) {
    return Status(parsed.code(), path + ": " + parsed.message());
  }
  return Status::OK();
}

Status WriteManifest(const std::string& dir, const StoreSnapshot& snapshot) {
  const std::string path = dir + "/" + kManifestFileName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot create " + tmp);
    }
    out << SerializeManifest(snapshot);
    if (!out.good()) return Status::IOError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace halk::store
