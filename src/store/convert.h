#ifndef HALK_STORE_CONVERT_H_
#define HALK_STORE_CONVERT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/halk_model.h"
#include "kg/groups.h"
#include "store/store.h"

namespace halk::store {

/// A fully materialized legacy `--checkpoint` blob (HALKCKPT v1,
/// core/checkpoint.cc): model name, config, and every parameter tensor as
/// flat floats in HalkModel::Parameters() order (index 0 is the entity
/// table).
struct LegacyCheckpoint {
  std::string model_name;
  core::ModelConfig config;
  std::vector<std::vector<float>> tensors;
};

/// Reads a legacy checkpoint blob without needing a model instance (unlike
/// core::LoadCheckpoint, which loads into an existing model). Verifies the
/// trailing checksum.
[[nodiscard]] Status ReadLegacyCheckpoint(const std::string& path,
                                          LegacyCheckpoint* out);

/// Writes a legacy checkpoint blob byte-identically to core::SaveCheckpoint
/// of a model holding the same tensors — the compatibility guarantee the
/// blob -> snapshot -> blob round-trip test pins down.
[[nodiscard]] Status WriteLegacyCheckpoint(const std::string& path,
                                           const LegacyCheckpoint& ckpt);

/// Legacy blob -> store snapshot: entity table (tensor 0) streams into
/// `num_shards` shard files, the rest becomes the params blob.
[[nodiscard]] Status ConvertCheckpointToSnapshot(const std::string& blob_path,
                                                 const std::string& dir,
                                                 int64_t num_shards);

/// Store snapshot -> legacy blob (requires the snapshot to carry params).
/// Materializes the entity table in RAM — meant for legacy-scale models,
/// not the streamed million-entity stores.
[[nodiscard]] Status ConvertSnapshotToCheckpoint(const std::string& dir,
                                                 const std::string& blob_path);

/// Builds a serving HalkModel backed by an open store: the entity table
/// stays in the store's mappings (never copied into RAM) and the non-entity
/// operator parameters load from the snapshot's params blob. Requires
/// model_name "HaLk" and has_params. The store must outlive the model.
[[nodiscard]] Result<std::unique_ptr<core::HalkModel>> OpenServingModel(
    const EmbeddingStore& store, const kg::NodeGrouping* grouping);

}  // namespace halk::store

#endif  // HALK_STORE_CONVERT_H_
