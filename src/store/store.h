#ifndef HALK_STORE_STORE_H_
#define HALK_STORE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entity_source.h"
#include "serving/metrics.h"
#include "store/shard_file.h"
#include "store/snapshot.h"

namespace halk::store {

/// Non-owning view over one shard file of an open store: the handle a
/// ShardWorker holds to scan its slice of the entity table directly out of
/// the shared mapping. Copyable; valid while the owning EmbeddingStore
/// lives.
class ShardView {
 public:
  ShardView(const MappedShardFile* file) : file_(file) {}

  int64_t entity_begin() const { return file_->entity_begin(); }
  int64_t entity_end() const { return file_->entity_end(); }

  void CopyRow(int64_t entity, float* out) const {
    file_->CopyRow(entity, out);
  }
  void Scan(const std::vector<core::ArcConstants>& arcs, int64_t begin,
            int64_t end, core::TopKAccumulator* acc,
            core::ScanStats* stats) const {
    file_->Scan(arcs, begin, end, acc, stats);
  }
  size_t ResidentBytes() const { return file_->ResidentBytes(); }
  size_t mapped_bytes() const { return file_->mapped_bytes(); }

 private:
  const MappedShardFile* file_;
};

/// An open store snapshot: every shard file mapped read-only, presented to
/// the core as one immutable entity table ([0, num_entities) global ids).
/// Implements core::EntityScanSource so a HalkModel can serve directly out
/// of the mappings instead of an in-RAM tensor — the out-of-core path.
/// Thread-safe after Open: all members are immutable and the mappings are
/// shared, so any number of shard workers may scan concurrently.
class EmbeddingStore : public core::EntityScanSource {
 public:
  struct OpenOptions {
    /// Verify every column block checksum while opening. Faults in the
    /// whole table — leave off for out-of-core serving and run
    /// `halk_store verify` offline instead.
    bool verify_checksums = true;
    MappedShardFile::Advice advice = MappedShardFile::Advice::kNormal;
    /// Bounded-residency scans (MappedShardFile::OpenOptions): when
    /// non-zero, each scan drops its processed row-group pages once they
    /// exceed this many bytes, capping the per-scan resident footprint at
    /// about a window per shard file instead of the whole table. 0 leaves
    /// caching to the kernel.
    uint64_t residency_window_bytes = 0;
    /// When set, the store registers `store.*` metrics here.
    serving::MetricsRegistry* metrics = nullptr;
  };

  /// Opens `<dir>/MANIFEST.halksnap` and maps every shard file it lists.
  /// Rejects (clean Status, nothing mapped afterwards) manifests whose
  /// shard files are missing, fail header validation, or whose header
  /// checksum does not match the manifest entry.
  [[nodiscard]] static Result<std::unique_ptr<EmbeddingStore>> Open(
      const std::string& dir, const OpenOptions& options);

  // -- core::EntityScanSource --
  int64_t num_entities() const override {
    return snapshot_.config.num_entities;
  }
  int64_t dim() const override { return snapshot_.config.dim; }
  void CopyRow(int64_t entity, float* out) const override;
  void AccumulateTopKRange(const std::vector<core::ArcConstants>& arcs,
                           int64_t begin, int64_t end,
                           core::TopKAccumulator* acc,
                           core::ScanStats* stats) const override;

  const StoreSnapshot& snapshot() const { return snapshot_; }
  const std::string& dir() const { return dir_; }
  int64_t num_shard_files() const {
    return static_cast<int64_t>(files_.size());
  }
  /// View over shard file `i` (manifest order: ascending entity ranges).
  ShardView view(int64_t i) const { return ShardView(files_[i].get()); }

  /// Sum of mapped file bytes — the full on-disk table footprint.
  size_t MappedBytes() const;
  /// Sum of RAM-resident mapping bytes (mincore); the out-of-core claim is
  /// exactly that this stays well below MappedBytes() under bound-aware
  /// scans.
  size_t ResidentBytes() const;
  /// Drops resident pages across every mapping.
  void DropResidency() const;
  /// Re-verifies every column block of every file.
  [[nodiscard]] Status VerifyChecksums() const;
  /// Publishes ResidentBytes() to the `store.resident_bytes` gauge (no-op
  /// without a registry).
  void UpdateResidencyMetrics() const;

 private:
  EmbeddingStore() = default;

  /// Shard file index covering global entity id `entity`.
  int64_t FileFor(int64_t entity) const;

  std::string dir_;
  StoreSnapshot snapshot_;
  std::vector<std::unique_ptr<MappedShardFile>> files_;
  serving::Gauge* resident_gauge_ = nullptr;  // null without a registry
};

}  // namespace halk::store

#endif  // HALK_STORE_STORE_H_
