#ifndef HALK_STORE_SHARD_FILE_H_
#define HALK_STORE_SHARD_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/distance.h"
#include "core/query_model.h"
#include "core/topk.h"
#include "store/format.h"

namespace halk::store {

/// Streams row-major embedding rows into one immutable shard file
/// (store/format.h layout). The file is written to `<path>.tmp` and
/// renamed into place by Finish(), so a crashed or aborted write never
/// leaves a half-written `.halkstore` behind. Rows arrive in entity order;
/// each full group is transposed to its dimension-major column blocks and
/// flushed, so the writer holds one group (rows_per_group * dim floats) in
/// memory regardless of shard size.
class ShardFileWriter {
 public:
  ShardFileWriter(std::string path, uint32_t dim, int64_t entity_begin,
                  int64_t entity_end,
                  uint32_t rows_per_group = kDefaultRowsPerGroup);
  ~ShardFileWriter();

  ShardFileWriter(const ShardFileWriter&) = delete;
  ShardFileWriter& operator=(const ShardFileWriter&) = delete;

  /// Appends `n` rows (row-major, `n * dim` floats). kInvalidArgument when
  /// more rows arrive than the entity range holds.
  [[nodiscard]] Status Append(const float* rows, int64_t n);

  /// Flushes the tail group, writes the checksum table and header, fsyncs,
  /// and renames the temp file into place. Requires exactly
  /// entity_end - entity_begin appended rows.
  [[nodiscard]] Status Finish();

  const std::string& path() const { return path_; }
  /// Valid after Finish(): the header checksum, which transitively covers
  /// the checksum table and therefore every column block — the manifest
  /// stores it as the file's identity.
  uint64_t header_checksum() const { return header_.header_checksum; }

 private:
  [[nodiscard]] Status FlushGroup();

  std::string path_;
  std::string tmp_path_;
  ShardFileHeader header_;
  int64_t fd_ = -1;
  std::vector<float> group_rows_;        // row-major staging buffer
  std::vector<float> column_block_;      // one padded column block scratch
  int64_t buffered_rows_ = 0;
  int64_t appended_rows_ = 0;
  int64_t groups_flushed_ = 0;
  std::vector<uint64_t> block_checksums_;
  bool finished_ = false;
  Status deferred_error_;
};

/// One shard file opened read-only through mmap. The mapping is immutable
/// and shared: any number of threads may CopyRow/Scan concurrently. The
/// file is validated on open (magic, version, geometry, header checksum;
/// optionally every block checksum) and rejected with a clean Status — a
/// corrupt store never produces silently wrong rankings.
class MappedShardFile {
 public:
  /// madvise hint applied to the data region after mapping.
  enum class Advice { kNormal, kSequential, kRandom };

  struct OpenOptions {
    /// Reads and verifies every column block checksum up front. Touches the
    /// whole file (faults in every page), so large out-of-core stores
    /// verify through `halk_store verify` instead of at serve time.
    bool verify_checksums = true;
    Advice advice = Advice::kNormal;
    /// Bounded-residency scans: when non-zero, Scan() drops the pages of
    /// each processed row-group span (madvise MADV_DONTNEED) once the span
    /// exceeds this many bytes, so one scan keeps at most about a window's
    /// worth of the mapping resident instead of accumulating the whole
    /// table. 0 (default) leaves pages to the kernel's page cache — faster
    /// for repeated queries when the table fits in RAM. Dropped pages are
    /// refaulted on the next access; results are unaffected.
    uint64_t residency_window_bytes = 0;
  };

  [[nodiscard]] static Result<std::unique_ptr<MappedShardFile>> Open(
      const std::string& path, const OpenOptions& options);
  ~MappedShardFile();

  MappedShardFile(const MappedShardFile&) = delete;
  MappedShardFile& operator=(const MappedShardFile&) = delete;

  const ShardFileHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  int64_t entity_begin() const { return header_.entity_begin; }
  int64_t entity_end() const { return header_.entity_end; }

  /// Pointer to column block (group, dim_index): GroupRowCount(group)
  /// floats, dimension `dim_index` of every row in the group.
  const float* ColumnBlock(int64_t group, int64_t dim_index) const;
  int64_t GroupRows(int64_t group) const {
    return GroupRowCount(header_, group);
  }

  /// Copies global entity `entity`'s row (dim floats) out of the mapping.
  void CopyRow(int64_t entity, float* out) const;

  /// Bound-aware columnar top-k scan of global ids
  /// [max(begin, entity_begin), min(end, entity_end)): min arc distance
  /// over `arcs` per entity, exact w.r.t. the in-RAM kernel (see
  /// docs/storage.md for the exactness argument). Walks each row group
  /// dimension by dimension and skips the group's remaining column blocks
  /// once every (entity, arc) pair is pruned against the accumulator
  /// bound — skipped blocks are pages never read.
  void Scan(const std::vector<core::ArcConstants>& arcs, int64_t begin,
            int64_t end, core::TopKAccumulator* acc,
            core::ScanStats* stats) const;

  /// Re-reads every column block against the checksum table.
  [[nodiscard]] Status VerifyChecksums() const;

  size_t mapped_bytes() const { return map_len_; }
  /// Bytes of the mapping currently resident in RAM (mincore).
  size_t ResidentBytes() const;
  /// Drops resident pages (madvise MADV_DONTNEED on the read-only file
  /// mapping); subsequent access faults them back in from the file.
  void DropResidency() const;

 private:
  MappedShardFile() = default;

  /// madvise(MADV_DONTNEED) on [offset, offset + bytes) of the mapping;
  /// offsets must be page-aligned (group spans are, by construction).
  void DropRange(uint64_t offset, uint64_t bytes) const;

  std::string path_;
  ShardFileHeader header_;
  const uint8_t* map_ = nullptr;
  size_t map_len_ = 0;
  uint64_t residency_window_bytes_ = 0;
};

}  // namespace halk::store

#endif  // HALK_STORE_SHARD_FILE_H_
