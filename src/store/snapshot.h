#ifndef HALK_STORE_SNAPSHOT_H_
#define HALK_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_model.h"

namespace halk::store {

inline constexpr char kManifestFileName[] = "MANIFEST.halksnap";
inline constexpr char kParamsFileName[] = "params.halkblob";
inline constexpr uint32_t kSnapshotVersion = 1;

/// One shard file listed by a snapshot manifest.
struct SnapshotShardEntry {
  std::string file;            // name relative to the snapshot directory
  int64_t entity_begin = 0;
  int64_t entity_end = 0;
  /// The shard file's header checksum (which transitively covers its block
  /// checksum table): binding it into the manifest versions the exact file
  /// contents, not just the name.
  uint64_t header_checksum = 0;
};

/// A versioned, immutable set of shard files plus the model configuration
/// and (optionally) a non-entity parameter blob — the unit that supersedes
/// the monolithic `--checkpoint` blob for serving. A snapshot is a
/// directory: MANIFEST.halksnap, `*.halkstore` shard files covering entity
/// ids [0, config.num_entities) contiguously, and params.halkblob when the
/// model's trained operator weights ride along.
struct StoreSnapshot {
  uint32_t version = kSnapshotVersion;
  std::string model_name;
  core::ModelConfig config;
  bool has_params = false;
  uint64_t params_checksum = 0;
  std::vector<SnapshotShardEntry> shards;
};

/// Renders the manifest text: line-oriented `key value...` pairs ending in
/// a `checksum` line (FNV-1a-64 of every preceding byte). Floats print with
/// float round-trip precision so config survives text form bit-exactly.
std::string SerializeManifest(const StoreSnapshot& snapshot);

/// Strict parse of manifest text: fixed line order, no unknown keys, every
/// field range-checked, shard ranges required to tile
/// [0, config.num_entities) in order, and the trailing checksum verified.
/// Safe on adversarial input — this is the fuzzed surface.
[[nodiscard]] Status ParseManifest(const std::string& text,
                                   StoreSnapshot* out);

/// Reads and parses `<dir>/MANIFEST.halksnap`.
[[nodiscard]] Status LoadManifest(const std::string& dir, StoreSnapshot* out);

/// Atomically (tmp + rename) writes `<dir>/MANIFEST.halksnap`.
[[nodiscard]] Status WriteManifest(const std::string& dir,
                                   const StoreSnapshot& snapshot);

}  // namespace halk::store

#endif  // HALK_STORE_SNAPSHOT_H_
