#include "store/shard_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::store {

namespace {

Status WriteAllAt(int fd, const void* data, size_t n, uint64_t offset,
                  const std::string& path) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd, p + done, n - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("pwrite %s failed: %s", path.c_str(),
                                       std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

ShardFileWriter::ShardFileWriter(std::string path, uint32_t dim,
                                 int64_t entity_begin, int64_t entity_end,
                                 uint32_t rows_per_group)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  HALK_CHECK_GT(dim, 0u);
  HALK_CHECK_GT(rows_per_group, 0u);
  HALK_CHECK_GE(entity_begin, 0);
  HALK_CHECK_GT(entity_end, entity_begin);
  header_.dim = dim;
  header_.rows_per_group = rows_per_group;
  header_.entity_begin = entity_begin;
  header_.entity_end = entity_end;
  header_.num_groups =
      (static_cast<uint64_t>(header_.rows()) + rows_per_group - 1) /
      rows_per_group;
  header_.checksum_table_offset = kPageBytes;
  const uint64_t table_bytes =
      header_.num_groups * header_.dim * sizeof(uint64_t);
  header_.data_offset = AlignUp(kPageBytes + table_bytes, kPageBytes);
  header_.data_bytes = TotalDataBytes(header_);
  group_rows_.resize(static_cast<size_t>(rows_per_group) * dim);
  block_checksums_.reserve(
      static_cast<size_t>(header_.num_groups * header_.dim));

  const int fd = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    deferred_error_ = Status::IOError(StrFormat(
        "cannot create %s: %s", tmp_path_.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
}

ShardFileWriter::~ShardFileWriter() {
  if (fd_ >= 0) ::close(static_cast<int>(fd_));
  // An unfinished writer leaves nothing behind: the temp file is removed
  // and the final path was never created.
  if (!finished_) ::unlink(tmp_path_.c_str());
}

Status ShardFileWriter::Append(const float* rows, int64_t n) {
  HALK_RETURN_NOT_OK(deferred_error_);
  if (finished_) return Status::InvalidArgument("Append after Finish");
  if (appended_rows_ + n > header_.rows()) {
    return Status::InvalidArgument(StrFormat(
        "shard %s overflow: %lld rows appended into a range of %lld",
        path_.c_str(), static_cast<long long>(appended_rows_ + n),
        static_cast<long long>(header_.rows())));
  }
  const int64_t d = header_.dim;
  int64_t consumed = 0;
  while (consumed < n) {
    const int64_t room =
        static_cast<int64_t>(header_.rows_per_group) - buffered_rows_;
    const int64_t take = std::min(room, n - consumed);
    std::memcpy(group_rows_.data() + buffered_rows_ * d,
                rows + consumed * d,
                static_cast<size_t>(take * d) * sizeof(float));
    buffered_rows_ += take;
    consumed += take;
    appended_rows_ += take;
    if (buffered_rows_ == static_cast<int64_t>(header_.rows_per_group)) {
      HALK_RETURN_NOT_OK(FlushGroup());
    }
  }
  return Status::OK();
}

Status ShardFileWriter::FlushGroup() {
  const int64_t d = header_.dim;
  const int64_t rows = buffered_rows_;
  const uint64_t block_bytes = GroupBlockBytes(header_, groups_flushed_);
  HALK_CHECK_EQ(rows, GroupRowCount(header_, groups_flushed_));
  column_block_.assign(block_bytes / sizeof(float), 0.0f);
  for (int64_t j = 0; j < d; ++j) {
    // Transpose: dimension j of every buffered row, padding already zeroed.
    for (int64_t r = 0; r < rows; ++r) {
      column_block_[static_cast<size_t>(r)] =
          group_rows_[static_cast<size_t>(r * d + j)];
    }
    block_checksums_.push_back(
        Fnv1a64(column_block_.data(), block_bytes));
    HALK_RETURN_NOT_OK(WriteAllAt(static_cast<int>(fd_),
                                  column_block_.data(), block_bytes,
                                  BlockOffset(header_, groups_flushed_, j),
                                  tmp_path_));
  }
  ++groups_flushed_;
  buffered_rows_ = 0;
  return Status::OK();
}

Status ShardFileWriter::Finish() {
  HALK_RETURN_NOT_OK(deferred_error_);
  if (finished_) return Status::InvalidArgument("Finish called twice");
  if (appended_rows_ != header_.rows()) {
    return Status::InvalidArgument(StrFormat(
        "shard %s incomplete: %lld of %lld rows appended", path_.c_str(),
        static_cast<long long>(appended_rows_),
        static_cast<long long>(header_.rows())));
  }
  if (buffered_rows_ > 0) HALK_RETURN_NOT_OK(FlushGroup());
  HALK_CHECK_EQ(groups_flushed_, static_cast<int64_t>(header_.num_groups));

  const uint64_t table_bytes = block_checksums_.size() * sizeof(uint64_t);
  header_.table_checksum = Fnv1a64(block_checksums_.data(), table_bytes);
  HALK_RETURN_NOT_OK(WriteAllAt(static_cast<int>(fd_),
                                block_checksums_.data(), table_bytes,
                                header_.checksum_table_offset, tmp_path_));

  std::vector<uint8_t> header_page(kPageBytes);
  SerializeHeader(header_, header_page.data());
  header_.header_checksum = Fnv1a64(header_page.data(), kHeaderBytes - 8);
  HALK_RETURN_NOT_OK(WriteAllAt(static_cast<int>(fd_), header_page.data(),
                                kPageBytes, 0, tmp_path_));

  // Durability before visibility: data reaches the disk before the rename
  // publishes the file under its final name.
  if (::fsync(static_cast<int>(fd_)) != 0) {
    return Status::IOError(StrFormat("fsync %s failed: %s",
                                     tmp_path_.c_str(),
                                     std::strerror(errno)));
  }
  ::close(static_cast<int>(fd_));
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError(StrFormat("rename %s -> %s failed: %s",
                                     tmp_path_.c_str(), path_.c_str(),
                                     std::strerror(errno)));
  }
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<MappedShardFile>> MappedShardFile::Open(
    const std::string& path, const OpenOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("fstat %s failed", path.c_str()));
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kPageBytes) {
    ::close(fd);
    return Status::ParseError(StrFormat(
        "%s truncated: %llu bytes is smaller than one header page",
        path.c_str(), static_cast<unsigned long long>(file_bytes)));
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed either way.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError(StrFormat("mmap %s failed: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  auto file = std::unique_ptr<MappedShardFile>(
      new MappedShardFile());  // halk_lint:allow no-raw-new-delete private ctor
  file->path_ = path;
  file->map_ = static_cast<const uint8_t*>(map);
  file->map_len_ = file_bytes;

  Status parsed =
      ParseHeader(file->map_, file->map_len_, &file->header_);
  if (!parsed.ok()) {
    return Status(parsed.code(), path + ": " + parsed.message());
  }
  const ShardFileHeader& h = file->header_;
  if (file_bytes != h.data_offset + h.data_bytes) {
    return Status::ParseError(StrFormat(
        "%s size mismatch: %llu bytes on disk, header describes %llu",
        path.c_str(), static_cast<unsigned long long>(file_bytes),
        static_cast<unsigned long long>(h.data_offset + h.data_bytes)));
  }
  const uint64_t table_bytes = h.num_groups * h.dim * sizeof(uint64_t);
  if (Fnv1a64(file->map_ + h.checksum_table_offset, table_bytes) !=
      h.table_checksum) {
    return Status::ParseError(path + ": checksum table corrupt");
  }

  int advice = MADV_NORMAL;
  if (options.advice == Advice::kSequential) advice = MADV_SEQUENTIAL;
  if (options.advice == Advice::kRandom) advice = MADV_RANDOM;
  // Advisory only: a kernel that rejects the hint still serves the mapping.
  (void)::madvise(const_cast<uint8_t*>(file->map_), file->map_len_, advice);
  file->residency_window_bytes_ = options.residency_window_bytes;

  if (options.verify_checksums) {
    HALK_RETURN_NOT_OK(file->VerifyChecksums());
  }
  if (options.residency_window_bytes > 0) {
    // Bounded-residency serving starts cold: pages faulted while mapping
    // or validating (or left behind by the writer that just produced the
    // file) are dropped so the ceiling holds from the first scan on.
    // Dropping here, per file, also keeps the transient footprint of
    // opening a many-file store at one file rather than the whole table.
    file->DropResidency();
  }
  return file;
}

MappedShardFile::~MappedShardFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_len_);
  }
}

const float* MappedShardFile::ColumnBlock(int64_t group,
                                          int64_t dim_index) const {
  return reinterpret_cast<const float*>(
      map_ + BlockOffset(header_, group, dim_index));
}

void MappedShardFile::CopyRow(int64_t entity, float* out) const {
  HALK_CHECK_GE(entity, header_.entity_begin);
  HALK_CHECK_LT(entity, header_.entity_end);
  const int64_t local = entity - header_.entity_begin;
  const int64_t group = local / header_.rows_per_group;
  const int64_t row = local % header_.rows_per_group;
  const int64_t d = header_.dim;
  for (int64_t j = 0; j < d; ++j) {
    out[j] = ColumnBlock(group, j)[row];
  }
}

Status MappedShardFile::VerifyChecksums() const {
  const uint64_t* table = reinterpret_cast<const uint64_t*>(
      map_ + header_.checksum_table_offset);
  for (int64_t g = 0; g < static_cast<int64_t>(header_.num_groups); ++g) {
    const uint64_t block_bytes = GroupBlockBytes(header_, g);
    for (int64_t j = 0; j < static_cast<int64_t>(header_.dim); ++j) {
      const uint64_t expected = table[g * header_.dim + j];
      if (Fnv1a64(ColumnBlock(g, j), block_bytes) != expected) {
        return Status::ParseError(StrFormat(
            "%s: checksum mismatch in column block (group %lld, dim %lld)",
            path_.c_str(), static_cast<long long>(g),
            static_cast<long long>(j)));
      }
    }
  }
  return Status::OK();
}

void MappedShardFile::Scan(const std::vector<core::ArcConstants>& arcs,
                           int64_t begin, int64_t end,
                           core::TopKAccumulator* acc,
                           core::ScanStats* stats) const {
  const int64_t lo = std::max(begin, header_.entity_begin);
  const int64_t hi = std::min(end, header_.entity_end);
  if (lo >= hi || arcs.empty()) return;
  const int64_t d = header_.dim;
  const int64_t G = header_.rows_per_group;
  const size_t nb = arcs.size();

  // Per-(entity, arc) running outside/inside sums and alive flags for one
  // group, arc-major so the inner loop walks contiguous memory. The scan is
  // exact (docs/storage.md): each partial d_o + eta*d_i is a lower bound of
  // the final distance, so pruning a pair against the group-start admission
  // bound is conservative; a pair that survives every dimension carries the
  // bit-identical ArcPointDistance value (same per-dimension expressions,
  // same dimension order), and a pushed minimum can never be beaten by a
  // pruned arc of the same entity (its exact distance exceeds the bound).
  std::vector<float> sum_o(static_cast<size_t>(G) * nb);
  std::vector<float> sum_i(static_cast<size_t>(G) * nb);
  std::vector<uint8_t> alive(static_cast<size_t>(G) * nb);

  const int64_t first_group = (lo - header_.entity_begin) / G;
  const int64_t last_group = (hi - 1 - header_.entity_begin) / G;
  // Bounded-residency mode (OpenOptions::residency_window_bytes): the scan
  // walks groups in file order, so each completed span of groups can be
  // dropped from the mapping as soon as it exceeds the window — the scan's
  // resident footprint stays near the window size instead of growing to
  // the table. Concurrent scans over the same file refault dropped pages;
  // results are unaffected either way.
  const uint64_t window = residency_window_bytes_;
  int64_t drop_from = first_group;
  uint64_t drop_span_bytes = 0;
  for (int64_t g = first_group; g <= last_group; ++g) {
    const int64_t group_first = header_.entity_begin + g * G;
    const int64_t span_lo = std::max(lo, group_first);
    const int64_t span_hi = std::min(hi, group_first + GroupRows(g));
    const int64_t count = span_hi - span_lo;
    const int64_t r0 = span_lo - group_first;
    // The admission bound is frozen per group: it only tightens through
    // this scan's own pushes, which happen after the group completes, so
    // pruning against the group-start value stays conservative.
    const float bound = acc->bound();

    std::fill(sum_o.begin(), sum_o.begin() + count * nb, 0.0f);
    std::fill(sum_i.begin(), sum_i.begin() + count * nb, 0.0f);
    std::fill(alive.begin(), alive.begin() + count * nb, uint8_t{1});
    int64_t alive_pairs = count * static_cast<int64_t>(nb);

    int64_t dims_read = 0;
    for (int64_t j = 0; j < d && alive_pairs > 0; ++j) {
      ++dims_read;
      const float* col = ColumnBlock(g, j) + r0;
      for (size_t b = 0; b < nb; ++b) {
        const core::ArcConstants& arc = arcs[b];
        const float rho = arc.rho;
        const float eta = arc.eta;
        const float center = arc.center[static_cast<size_t>(j)];
        const float half_width = arc.half_width[static_cast<size_t>(j)];
        const float a_s = arc.a_s[static_cast<size_t>(j)];
        const float a_e = arc.a_e[static_cast<size_t>(j)];
        float* o = sum_o.data() + b * static_cast<size_t>(count);
        float* in = sum_i.data() + b * static_cast<size_t>(count);
        uint8_t* live = alive.data() + b * static_cast<size_t>(count);
        for (int64_t i = 0; i < count; ++i) {
          if (!live[i]) continue;
          // Same float expressions and accumulation order as
          // ArcPointDistanceBounded (core/distance.cc) — the bit-identity
          // contract of the store-backed scan.
          const float theta = col[i];
          const float to_center =
              2.0f * rho * std::fabs(std::sin((theta - center) / 2.0f));
          if (to_center > half_width) {
            const float to_start =
                2.0f * rho * std::fabs(std::sin((theta - a_s) / 2.0f));
            const float to_end =
                2.0f * rho * std::fabs(std::sin((theta - a_e) / 2.0f));
            o[i] += std::min(to_start, to_end);
            in[i] += half_width;
          } else {
            in[i] += to_center;
          }
          const float partial = o[i] + eta * in[i];
          if (partial > bound) {
            live[i] = 0;
            --alive_pairs;
          }
        }
      }
    }
    if (stats != nullptr) {
      stats->column_blocks_scanned += dims_read;
      stats->column_blocks_skipped += d - dims_read;
    }

    for (int64_t i = 0; i < count; ++i) {
      float dmin = std::numeric_limits<float>::infinity();
      bool any_alive = false;
      for (size_t b = 0; b < nb; ++b) {
        const size_t idx = b * static_cast<size_t>(count) +
                           static_cast<size_t>(i);
        if (!alive[idx]) continue;
        any_alive = true;
        const float full =
            sum_o[idx] + arcs[b].eta * sum_i[idx];
        dmin = std::min(dmin, full);
      }
      // dmin <= bound implies every pruned arc of this entity has a larger
      // exact distance, so dmin is the exact minimum over all arcs.
      if (any_alive && dmin <= bound) {
        acc->Push(span_lo + i, dmin);
      } else if (stats != nullptr) {
        ++stats->entities_pruned;
      }
    }

    if (window > 0) {
      drop_span_bytes += header_.dim * GroupBlockBytes(header_, g);
      if (drop_span_bytes >= window || g == last_group) {
        const uint64_t off = BlockOffset(header_, drop_from, 0);
        DropRange(off, BlockOffset(header_, g, 0) +
                           header_.dim * GroupBlockBytes(header_, g) - off);
        drop_from = g + 1;
        drop_span_bytes = 0;
      }
    }
  }
  if (stats != nullptr) stats->entities_scanned += hi - lo;
}

void MappedShardFile::DropRange(uint64_t offset, uint64_t bytes) const {
  (void)::madvise(const_cast<uint8_t*>(map_) + offset, bytes, MADV_DONTNEED);
}

size_t MappedShardFile::ResidentBytes() const {
  const size_t pages = (map_len_ + kPageBytes - 1) / kPageBytes;
  std::vector<unsigned char> resident(pages);
  if (::mincore(const_cast<uint8_t*>(map_), map_len_, resident.data()) != 0) {
    return 0;
  }
  size_t n = 0;
  for (unsigned char r : resident) {
    if (r & 1u) ++n;
  }
  return n * kPageBytes;
}

void MappedShardFile::DropResidency() const {
  // MADV_DONTNEED only drops this mapping's PTEs; the pages of a file-backed
  // mapping also live in the page cache, where mincore (ResidentBytes)
  // still finds them — e.g. right after the snapshot writer produced the
  // file. Evict those too so a post-drop residency measurement reflects
  // what subsequent scans actually touch. Both calls are best-effort.
  (void)::madvise(const_cast<uint8_t*>(map_), map_len_, MADV_DONTNEED);
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
}

}  // namespace halk::store
