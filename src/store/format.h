#ifndef HALK_STORE_FORMAT_H_
#define HALK_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace halk::store {

// On-disk layout of one immutable shard file (`*.halkstore`), version 1.
// All multi-byte fields are fixed-width little-endian integers (the store
// is written and mapped on the same host class; the magic makes an
// endianness mismatch a clean ParseError, not silent garbage).
//
//   [header page]        kPageBytes, fields at fixed offsets, zero padded,
//                        FNV-1a-64 checksummed.
//   [checksum table]     num_groups * dim uint64 block checksums, starting
//                        at kPageBytes, itself covered by
//                        header.table_checksum.
//   [column blocks]      starting at the next page boundary. Rows are
//                        batched into groups of `rows_per_group`; inside a
//                        group the data is dimension-major: block (g, j)
//                        holds dimension j of every row of group g,
//                        zero-padded to a page multiple. Only the last
//                        group may hold fewer rows.
//
// The group/columnar layout is what makes the store out-of-core: the
// bound-aware top-k scan walks a group dimension by dimension and stops
// touching its remaining blocks once every row is pruned, so most
// later-dimension pages are never faulted in (docs/storage.md).

inline constexpr char kShardMagic[8] = {'H', 'A', 'L', 'K',
                                        'S', 'H', 'R', 'D'};
inline constexpr uint32_t kShardFormatVersion = 1;
inline constexpr uint32_t kDtypeF32 = 1;
inline constexpr uint32_t kDefaultRowsPerGroup = 4096;
inline constexpr uint64_t kPageBytes = 4096;
inline constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

/// Rolling FNV-1a-64 — the same hash (seed and multiplier) as the legacy
/// checkpoint format, so tooling needs one checksum implementation.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = kFnvSeed);

/// Parsed shard-file header. Field order matches the serialized layout.
struct ShardFileHeader {
  uint32_t version = kShardFormatVersion;
  uint32_t dtype = kDtypeF32;
  uint32_t dim = 0;
  uint32_t rows_per_group = kDefaultRowsPerGroup;
  int64_t entity_begin = 0;          // global ids [entity_begin, entity_end)
  int64_t entity_end = 0;
  uint64_t page_bytes = kPageBytes;
  uint64_t num_groups = 0;
  uint64_t checksum_table_offset = 0;
  uint64_t data_offset = 0;
  uint64_t data_bytes = 0;
  uint64_t table_checksum = 0;       // FNV over the checksum table bytes
  uint64_t header_checksum = 0;      // FNV over the serialized bytes above

  int64_t rows() const { return entity_end - entity_begin; }
};

/// Serialized header size before zero padding (magic through
/// header_checksum); the header occupies the first kPageBytes of the file.
inline constexpr uint64_t kHeaderBytes = 96;

inline constexpr uint64_t AlignUp(uint64_t n, uint64_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

/// Renders `header` into `out` (which must hold kPageBytes), computing and
/// embedding header_checksum; bytes past kHeaderBytes are zeroed.
void SerializeHeader(const ShardFileHeader& header, uint8_t* out);

/// Strict parse of a shard-file header from the first `n` bytes of a file.
/// Validates magic, version, dtype, checksum, and full internal geometry
/// (group count, offsets, data size) with bounded arithmetic, so it is safe
/// on adversarial input — this is the fuzzed surface. Does not check `n`
/// against data_offset + data_bytes; the caller compares the file size.
[[nodiscard]] Status ParseHeader(const uint8_t* data, size_t n,
                                 ShardFileHeader* out);

/// Geometry helpers shared by the writer and the mapped reader. `group` is
/// an index in [0, num_groups); only the last group may be partial.
int64_t GroupRowCount(const ShardFileHeader& header, int64_t group);
/// Bytes of one padded column block of `group`.
uint64_t GroupBlockBytes(const ShardFileHeader& header, int64_t group);
/// File offset of column block (group, dim_index).
uint64_t BlockOffset(const ShardFileHeader& header, int64_t group,
                     int64_t dim_index);
/// Total bytes of all column blocks (== header.data_bytes when valid).
uint64_t TotalDataBytes(const ShardFileHeader& header);

}  // namespace halk::store

#endif  // HALK_STORE_FORMAT_H_
