#ifndef HALK_STORE_WRITER_H_
#define HALK_STORE_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/halk_model.h"
#include "core/query_model.h"
#include "store/shard_file.h"
#include "store/snapshot.h"

namespace halk::store {

/// Writes the non-entity parameter blob (`params.halkblob`): everything a
/// serving model needs besides the entity table, which lives in the shard
/// files. Same byte conventions as the legacy checkpoint (raw PODs, rolling
/// FNV-1a trailer) with its own magic. `tensors` is flat float data in
/// HalkModel::Parameters() order minus the entity table. On success
/// `*checksum` receives the blob's trailing checksum (what the manifest
/// binds).
[[nodiscard]] Status WriteParamsBlob(
    const std::string& path, const std::string& model_name,
    const core::ModelConfig& config,
    const std::vector<std::vector<float>>& tensors, uint64_t* checksum);

/// Reads a params blob back, verifying the trailing checksum. On success
/// `*checksum` receives it for comparison against the manifest.
[[nodiscard]] Status ReadParamsBlob(const std::string& path,
                                    std::string* model_name,
                                    core::ModelConfig* config,
                                    std::vector<std::vector<float>>* tensors,
                                    uint64_t* checksum);

struct SnapshotWriterOptions {
  std::string dir;
  std::string model_name = "HaLk";
  core::ModelConfig config;
  /// Shard *files* to split the entity table across (independent of the
  /// serving shard count — ranges may straddle file boundaries at scan
  /// time).
  int64_t num_shards = 1;
  uint32_t rows_per_group = kDefaultRowsPerGroup;
};

/// Streams an entity table into a snapshot directory: contiguous balanced
/// `entities-<i>.halkstore` files, optional params blob, and the manifest
/// written last (atomically) so a crashed writer never leaves a loadable
/// half-snapshot. Rows arrive in entity order; memory stays one row group
/// regardless of table size — the writer end of "out of core".
class SnapshotWriter {
 public:
  [[nodiscard]] static Result<std::unique_ptr<SnapshotWriter>> Create(
      const SnapshotWriterOptions& options);
  ~SnapshotWriter() = default;

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends `n` row-major rows (`n * config.dim` floats), splitting across
  /// file boundaries as needed.
  [[nodiscard]] Status AppendEntityRows(const float* rows, int64_t n);

  /// Optional non-entity parameters (HalkModel::Parameters() order minus
  /// the entity table). Call before Finish.
  [[nodiscard]] Status SetParams(std::vector<std::vector<float>> tensors);

  /// Finalizes every shard file, writes the params blob (if set) and the
  /// manifest. Requires exactly config.num_entities appended rows.
  [[nodiscard]] Status Finish();

 private:
  explicit SnapshotWriter(const SnapshotWriterOptions& options);

  SnapshotWriterOptions options_;
  StoreSnapshot snapshot_;
  std::vector<std::unique_ptr<ShardFileWriter>> writers_;
  std::vector<std::vector<float>> params_;
  bool has_params_ = false;
  int64_t appended_rows_ = 0;
  int64_t current_file_ = 0;
  bool finished_ = false;
};

/// Convenience: snapshots a trained in-RAM model — streams its entity angle
/// table into `num_shards` shard files and stores the remaining parameters
/// as the params blob.
[[nodiscard]] Status WriteModelSnapshot(const core::HalkModel& model,
                                        const std::string& dir,
                                        int64_t num_shards);

}  // namespace halk::store

#endif  // HALK_STORE_WRITER_H_
