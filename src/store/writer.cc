#include "store/writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "store/format.h"

namespace halk::store {

namespace {

constexpr char kParamsMagic[8] = {'H', 'A', 'L', 'K', 'P', 'R', 'M', 'B'};
constexpr uint32_t kParamsVersion = 1;

/// Rolling-FNV stream writer/reader matching the legacy checkpoint byte
/// conventions (core/checkpoint.cc): raw PODs, trailing u64 checksum that
/// covers every preceding byte.
class BlobWriter {
 public:
  explicit BlobWriter(std::ofstream* out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    Raw(&value, sizeof(T));
  }
  void Raw(const void* data, size_t n) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(n));
    hash_ = Fnv1a64(data, n, hash_);
  }
  uint64_t hash() const { return hash_; }

 private:
  std::ofstream* out_;
  uint64_t hash_ = kFnvSeed;
};

class BlobReader {
 public:
  explicit BlobReader(std::ifstream* in) : in_(in) {}

  template <typename T>
  bool Pod(T* value) {
    return Raw(value, sizeof(T));
  }
  bool Raw(void* data, size_t n) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_->good()) return false;
    hash_ = Fnv1a64(data, n, hash_);
    return true;
  }
  uint64_t hash() const { return hash_; }

 private:
  std::ifstream* in_;
  uint64_t hash_ = kFnvSeed;
};

void PutConfig(BlobWriter* w, const core::ModelConfig& c) {
  // Field order matches the legacy checkpoint so the two formats cannot
  // drift apart silently.
  w->Pod(c.num_entities);
  w->Pod(c.num_relations);
  w->Pod(c.dim);
  w->Pod(c.hidden);
  w->Pod(c.rho);
  w->Pod(c.lambda);
  w->Pod(c.eta);
  w->Pod(c.gamma);
  w->Pod(c.xi);
  w->Pod(c.seed);
}

bool GetConfig(BlobReader* r, core::ModelConfig* c) {
  return r->Pod(&c->num_entities) && r->Pod(&c->num_relations) &&
         r->Pod(&c->dim) && r->Pod(&c->hidden) && r->Pod(&c->rho) &&
         r->Pod(&c->lambda) && r->Pod(&c->eta) && r->Pod(&c->gamma) &&
         r->Pod(&c->xi) && r->Pod(&c->seed);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError(
      StrFormat("mkdir %s: %s", dir.c_str(), std::strerror(errno)));
}

}  // namespace

Status WriteParamsBlob(const std::string& path,
                       const std::string& model_name,
                       const core::ModelConfig& config,
                       const std::vector<std::vector<float>>& tensors,
                       uint64_t* checksum) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  BlobWriter w(&out);
  w.Raw(kParamsMagic, sizeof(kParamsMagic));
  w.Pod(kParamsVersion);
  const uint32_t name_len = static_cast<uint32_t>(model_name.size());
  w.Pod(name_len);
  w.Raw(model_name.data(), model_name.size());
  PutConfig(&w, config);
  const uint64_t num_tensors = tensors.size();
  w.Pod(num_tensors);
  for (const std::vector<float>& t : tensors) {
    const uint64_t numel = t.size();
    w.Pod(numel);
    w.Raw(t.data(), sizeof(float) * t.size());
  }
  const uint64_t h = w.hash();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!out.good()) return Status::IOError("write failed: " + tmp);
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  *checksum = h;
  return Status::OK();
}

Status ReadParamsBlob(const std::string& path, std::string* model_name,
                      core::ModelConfig* config,
                      std::vector<std::vector<float>>* tensors,
                      uint64_t* checksum) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  BlobReader r(&in);
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kParamsMagic, sizeof(kParamsMagic)) != 0) {
    return Status::ParseError("bad params-blob magic: " + path);
  }
  uint32_t version = 0;
  if (!r.Pod(&version) || version != kParamsVersion) {
    return Status::ParseError(
        StrFormat("unsupported params-blob version %u", version));
  }
  uint32_t name_len = 0;
  if (!r.Pod(&name_len) || name_len > 256) {
    return Status::ParseError("bad model name length: " + path);
  }
  std::string name(name_len, '\0');
  if (!r.Raw(name.data(), name_len)) {
    return Status::ParseError("truncated params blob: " + path);
  }
  core::ModelConfig c;
  if (!GetConfig(&r, &c)) {
    return Status::ParseError("truncated params-blob config: " + path);
  }
  uint64_t num_tensors = 0;
  if (!r.Pod(&num_tensors) || num_tensors > 4096) {
    return Status::ParseError("bad params-blob tensor count: " + path);
  }
  std::vector<std::vector<float>> staged(num_tensors);
  for (uint64_t t = 0; t < num_tensors; ++t) {
    uint64_t numel = 0;
    if (!r.Pod(&numel) || numel > (uint64_t{1} << 32)) {
      return Status::ParseError(
          StrFormat("bad params-blob tensor %llu size",
                    static_cast<unsigned long long>(t)));
    }
    staged[t].resize(static_cast<size_t>(numel));
    if (!r.Raw(staged[t].data(), sizeof(float) * staged[t].size())) {
      return Status::ParseError("truncated params-blob tensor data: " + path);
    }
  }
  const uint64_t computed = r.hash();
  uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in.good() || stored != computed) {
    return Status::ParseError("params-blob checksum mismatch: " + path);
  }
  *model_name = std::move(name);
  *config = c;
  *tensors = std::move(staged);
  *checksum = stored;
  return Status::OK();
}

SnapshotWriter::SnapshotWriter(const SnapshotWriterOptions& options)
    : options_(options) {}

Result<std::unique_ptr<SnapshotWriter>> SnapshotWriter::Create(
    const SnapshotWriterOptions& options) {
  const core::ModelConfig& c = options.config;
  if (c.num_entities <= 0 || c.dim <= 0) {
    return Status::InvalidArgument("snapshot config needs entities and dim");
  }
  if (options.num_shards <= 0 || options.num_shards > c.num_entities) {
    return Status::InvalidArgument(
        StrFormat("bad shard-file count %lld for %lld entities",
                  static_cast<long long>(options.num_shards),
                  static_cast<long long>(c.num_entities)));
  }
  if (options.rows_per_group == 0) {
    return Status::InvalidArgument("rows_per_group must be positive");
  }
  HALK_RETURN_NOT_OK(EnsureDir(options.dir));

  auto writer = std::unique_ptr<SnapshotWriter>(
      new SnapshotWriter(options));  // halk_lint:allow no-raw-new-delete private ctor
  writer->snapshot_.model_name = options.model_name;
  writer->snapshot_.config = c;
  // Balanced contiguous partition: the first `rem` files take one extra row.
  const int64_t base = c.num_entities / options.num_shards;
  const int64_t rem = c.num_entities % options.num_shards;
  int64_t begin = 0;
  for (int64_t i = 0; i < options.num_shards; ++i) {
    const int64_t end = begin + base + (i < rem ? 1 : 0);
    SnapshotShardEntry entry;
    entry.file = StrFormat("entities-%lld.halkstore",
                           static_cast<long long>(i));
    entry.entity_begin = begin;
    entry.entity_end = end;
    writer->snapshot_.shards.push_back(entry);
    writer->writers_.push_back(std::make_unique<ShardFileWriter>(
        options.dir + "/" + entry.file, static_cast<uint32_t>(c.dim), begin,
        end, options.rows_per_group));
    begin = end;
  }
  return writer;
}

Status SnapshotWriter::AppendEntityRows(const float* rows, int64_t n) {
  if (finished_) return Status::InvalidArgument("snapshot already finished");
  while (n > 0) {
    if (current_file_ >= static_cast<int64_t>(writers_.size())) {
      return Status::InvalidArgument("more rows than config.num_entities");
    }
    const SnapshotShardEntry& entry =
        snapshot_.shards[static_cast<size_t>(current_file_)];
    const int64_t room = entry.entity_end - appended_rows_;
    const int64_t take = std::min(room, n);
    HALK_RETURN_NOT_OK(
        writers_[static_cast<size_t>(current_file_)]->Append(rows, take));
    appended_rows_ += take;
    rows += take * options_.config.dim;
    n -= take;
    if (appended_rows_ == entry.entity_end) ++current_file_;
  }
  return Status::OK();
}

Status SnapshotWriter::SetParams(std::vector<std::vector<float>> tensors) {
  if (finished_) return Status::InvalidArgument("snapshot already finished");
  params_ = std::move(tensors);
  has_params_ = true;
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  if (finished_) return Status::InvalidArgument("snapshot already finished");
  if (appended_rows_ != options_.config.num_entities) {
    return Status::InvalidArgument(StrFormat(
        "snapshot got %lld of %lld entity rows",
        static_cast<long long>(appended_rows_),
        static_cast<long long>(options_.config.num_entities)));
  }
  for (size_t i = 0; i < writers_.size(); ++i) {
    HALK_RETURN_NOT_OK(writers_[i]->Finish());
    snapshot_.shards[i].header_checksum = writers_[i]->header_checksum();
  }
  if (has_params_) {
    snapshot_.has_params = true;
    HALK_RETURN_NOT_OK(WriteParamsBlob(
        options_.dir + "/" + kParamsFileName, snapshot_.model_name,
        snapshot_.config, params_, &snapshot_.params_checksum));
  }
  // Manifest last: its presence is what makes the directory a loadable
  // snapshot.
  HALK_RETURN_NOT_OK(WriteManifest(options_.dir, snapshot_));
  finished_ = true;
  return Status::OK();
}

Status WriteModelSnapshot(const core::HalkModel& model,
                          const std::string& dir, int64_t num_shards) {
  SnapshotWriterOptions options;
  options.dir = dir;
  options.model_name = model.name();
  options.config = model.config();
  options.num_shards = num_shards;
  std::unique_ptr<SnapshotWriter> writer;
  HALK_ASSIGN_OR_RETURN(writer, SnapshotWriter::Create(options));
  const tensor::Tensor& table = model.entity_angles();
  HALK_RETURN_NOT_OK(writer->AppendEntityRows(
      table.data(), options.config.num_entities));
  // Everything but the entity table (Parameters() index 0) rides in the
  // params blob.
  const std::vector<tensor::Tensor> params = model.Parameters();
  std::vector<std::vector<float>> tensors;
  tensors.reserve(params.size() - 1);
  for (size_t i = 1; i < params.size(); ++i) {
    const tensor::Tensor& p = params[i];
    tensors.emplace_back(p.data(), p.data() + p.numel());
  }
  HALK_RETURN_NOT_OK(writer->SetParams(std::move(tensors)));
  return writer->Finish();
}

}  // namespace halk::store
