#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace halk::net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

/// Writes all of `data`, tolerating partial writes and EINTR. MSG_NOSIGNAL
/// turns a peer hangup into EPIPE instead of killing the process.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

std::string QueryParam(const std::string& query, const std::string& key,
                       const std::string& fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

HttpServer::HttpServer(const Options& options) : options_(options) {
  HALK_CHECK_GT(options_.num_threads, 0);
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("socket(): " + std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return Status::Unavailable("bind(): " + std::string(strerror(errno)));
  }
  if (listen(fd, 64) < 0) {
    close(fd);
    return Status::Unavailable("listen(): " + std::string(strerror(errno)));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    close(fd);
    return Status::Unavailable("getsockname(): " +
                               std::string(strerror(errno)));
  }
  // order: a restarted server must re-enter the accept loops cleanly.
  stopping_.store(false, std::memory_order_relaxed);
  MutexLock lock(mu_);
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  threads_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this] { AcceptLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  // order: the exchange makes Stop idempotent; accept threads observe the
  // flag after their blocking accept is broken by shutdown() below.
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<std::thread> threads;
  int fd = -1;
  {
    MutexLock lock(mu_);
    fd = listen_fd_;
    listen_fd_ = -1;
    threads.swap(threads_);
  }
  if (fd >= 0) {
    // Unblocks every thread parked in accept(fd).
    shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (fd >= 0) close(fd);
}

int HttpServer::port() const {
  MutexLock lock(mu_);
  return port_;
}

void HttpServer::AcceptLoop() {
  int fd = -1;
  {
    MutexLock lock(mu_);
    fd = listen_fd_;
  }
  if (fd < 0) return;
  // order: a stale false costs one extra accept round, nothing more.
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down (Stop), or a transient kernel error; either
      // way the loop re-checks the stop flag and bails on shutdown.
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == ECONNABORTED) continue;
      break;
    }
    ServeConnection(conn);
    close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Read the request head (through the blank line); the telemetry
  // endpoints take no bodies, so anything after it is ignored.
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > options_.max_request_bytes) {
      SendAll(fd, RenderResponse({400, "text/plain; charset=utf-8",
                                  "request too large\n"}));
      return;
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer closed before a full request head
    head.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP request-target SP HTTP-version CRLF.
  const size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(fd, RenderResponse({400, "text/plain; charset=utf-8",
                                "malformed request line\n"}));
    return;
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.path = std::move(target);

  // Only origin-form targets are meaningful here; anything else (absolute
  // URIs, or junk that happened to split into three tokens) is malformed.
  if (request.path.empty() || request.path[0] != '/') {
    SendAll(fd, RenderResponse({400, "text/plain; charset=utf-8",
                                "malformed request line\n"}));
    return;
  }

  if (request.method != "GET") {
    SendAll(fd, RenderResponse({405, "text/plain; charset=utf-8",
                                "only GET is supported\n"}));
    return;
  }
  SendAll(fd, RenderResponse(Dispatch(request)));
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  Handler handler;
  {
    MutexLock lock(mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (handler == nullptr) {
    return {404, "text/plain; charset=utf-8",
            "no handler for " + request.path + "\n"};
  }
  return handler(request);
}

}  // namespace halk::net
