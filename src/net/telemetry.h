#ifndef HALK_NET_TELEMETRY_H_
#define HALK_NET_TELEMETRY_H_

#include <functional>
#include <string>

#include "net/http_server.h"
#include "obs/profiler.h"
#include "obs/slo_tracker.h"
#include "obs/trace.h"
#include "serving/metrics.h"

namespace halk::net {

/// What the telemetry endpoints read from. Every pointer is optional
/// (null = that endpoint reports the feature as absent) and must outlive
/// the HttpServer. The struct deliberately carries no serving/shard/store
/// types: the higher layers wire themselves in through the registry's
/// labeled gauges and the two callbacks, so halk_net stays below them in
/// the link order.
struct TelemetrySources {
  serving::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::Profiler* profiler = nullptr;
  obs::SloTracker* slo = nullptr;
  /// Extra readiness probe beyond shard health — e.g. the embedding
  /// store's snapshot checksum verification. Return a non-OK message to
  /// flip /readyz to 503. Null means "nothing extra to check".
  std::function<Status()> ready_check;
  /// Renders the top-N query-stats aggregates as JSON (the /queryz body).
  /// Wired by the serving layer as a thin forward to
  /// obs::QueryStatsStore::ToJson so halk_net needs no query/plan types.
  /// Null answers /queryz with 404.
  std::function<std::string(size_t top_n)> query_stats_json;
};

/// Shard-health verdict derived from the `shard.replica_health` labeled
/// gauges (0 healthy / 1 suspect / 2 down, one child per (shard,
/// replica)): healthy unless some shard has every replica down. A registry
/// without the family (unsharded serving) is healthy by definition.
struct ShardHealth {
  bool healthy = true;
  int shards = 0;        // distinct shards seen in the family
  int shards_down = 0;   // shards with no live replica
  int replicas_down = 0;  // replicas at health state 2 across all shards
};
ShardHealth EvaluateShardHealth(const serving::MetricsRegistry& metrics);

/// Registers the telemetry endpoint suite on `server`:
///   GET /metrics            Prometheus 0.0.4 text via DumpPrometheus
///   GET /healthz            200/503 from shard replica health (liveness)
///   GET /readyz             /healthz plus the ready_check callback
///   GET /traces?spans=N     recent spans as Chrome trace JSON (default
///                           256 spans)
///   GET /profile?seconds=N  collapsed flamegraph stacks from an N-second
///                           (default 1, capped at 30) profile window
///   GET /slo                SloTracker::Evaluate as flat JSON
///   GET /queryz?top=N       fingerprint-keyed query statistics (default
///                           10 structures, by attributed operator time)
/// Endpoints whose source pointer is null answer 404 (metrics/traces/
/// profile/slo/queryz) or treat the check as trivially passing
/// (healthz/readyz).
void RegisterTelemetryEndpoints(HttpServer* server,
                                const TelemetrySources& sources);

}  // namespace halk::net

#endif  // HALK_NET_TELEMETRY_H_
