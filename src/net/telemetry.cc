#include "net/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include "obs/journal.h"

namespace halk::net {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kPrometheusType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonType = "application/json; charset=utf-8";

/// Value of label `name` inside a canonical label string like
/// `{replica="0",shard="1"}`; "" when absent.
std::string LabelValue(const std::string& labels, const std::string& name) {
  const std::string needle = name + "=\"";
  size_t pos = labels.find(needle);
  while (pos != std::string::npos) {
    // Match only at a label-name boundary ('{' or ',').
    if (pos > 0 && (labels[pos - 1] == '{' || labels[pos - 1] == ',')) {
      const size_t start = pos + needle.size();
      const size_t end = labels.find('"', start);
      if (end == std::string::npos) return "";
      return labels.substr(start, end - start);
    }
    pos = labels.find(needle, pos + 1);
  }
  return "";
}

int ParseIntParam(const std::string& query, const std::string& key,
                  int fallback, int lo, int hi) {
  const std::string raw = QueryParam(query, key);
  if (raw.empty()) return fallback;
  const int value = std::atoi(raw.c_str());
  return std::clamp(value, lo, hi);
}

HttpResponse HealthResponse(const ShardHealth& health,
                            const std::string& not_ready_reason) {
  obs::JsonLineBuilder body;
  const bool ok = health.healthy && not_ready_reason.empty();
  body.Str("status", ok ? "ok" : "unavailable")
      .Int("shards", health.shards)
      .Int("shards_down", health.shards_down)
      .Int("replicas_down", health.replicas_down);
  if (!not_ready_reason.empty()) body.Str("reason", not_ready_reason);
  return {ok ? 200 : 503, kJsonType, body.Finish() + "\n"};
}

}  // namespace

ShardHealth EvaluateShardHealth(const serving::MetricsRegistry& metrics) {
  ShardHealth out;
  // One (shard, replica) gauge child per replica; 2 means down. A shard
  // is lost when every one of its replicas is down — exactly the
  // condition under which the coordinator serves partial coverage.
  std::map<std::string, std::pair<int, int>> per_shard;  // live, down
  for (const auto& [labels, value] :
       metrics.GaugeChildren("shard.replica_health")) {
    const std::string shard = LabelValue(labels, "shard");
    auto& [live, down] = per_shard[shard];
    if (value >= 2.0) {
      ++down;
      ++out.replicas_down;
    } else {
      ++live;
    }
  }
  out.shards = static_cast<int>(per_shard.size());
  for (const auto& [shard, counts] : per_shard) {
    if (counts.first == 0) ++out.shards_down;
  }
  out.healthy = out.shards_down == 0;
  return out;
}

void RegisterTelemetryEndpoints(HttpServer* server,
                                const TelemetrySources& sources) {
  serving::MetricsRegistry* metrics = sources.metrics;
  obs::Tracer* tracer = sources.tracer;
  obs::Profiler* profiler = sources.profiler;
  obs::SloTracker* slo = sources.slo;
  std::function<Status()> ready_check = sources.ready_check;

  server->Handle("/metrics", [metrics](const HttpRequest&) -> HttpResponse {
    if (metrics == nullptr) {
      return {404, kTextPlain, "no metrics registry attached\n"};
    }
    return {200, kPrometheusType, metrics->DumpPrometheus()};
  });

  server->Handle("/healthz", [metrics](const HttpRequest&) -> HttpResponse {
    const ShardHealth health = metrics == nullptr
                                   ? ShardHealth{}
                                   : EvaluateShardHealth(*metrics);
    return HealthResponse(health, "");
  });

  server->Handle(
      "/readyz", [metrics, ready_check](const HttpRequest&) -> HttpResponse {
        const ShardHealth health = metrics == nullptr
                                       ? ShardHealth{}
                                       : EvaluateShardHealth(*metrics);
        std::string reason;
        if (!health.healthy) {
          reason = "shard coverage lost";
        } else if (ready_check != nullptr) {
          const Status ready = ready_check();
          if (!ready.ok()) reason = ready.message();
        }
        return HealthResponse(health, reason);
      });

  server->Handle("/traces", [tracer](const HttpRequest& request)
                                -> HttpResponse {
    if (tracer == nullptr) {
      return {404, kTextPlain, "no tracer attached\n"};
    }
    const int spans = ParseIntParam(request.query, "spans", 256, 1, 65536);
    return {200, kJsonType,
            tracer->CollectRecent(static_cast<size_t>(spans))
                .ToChromeJson()};
  });

  server->Handle("/profile", [profiler](const HttpRequest& request)
                                 -> HttpResponse {
    if (profiler == nullptr) {
      return {404, kTextPlain, "no profiler attached\n"};
    }
    // Enable + reset, sample for the requested window, restore. The cap
    // bounds how long one request can pin a server thread; concurrent
    // /profile requests share the window (Reset/Snapshot are concurrent-
    // safe, the later reset just shortens the earlier window).
    const int seconds = ParseIntParam(request.query, "seconds", 1, 1, 30);
    const bool was_enabled = profiler->enabled();
    profiler->set_enabled(true);
    profiler->Reset();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    const obs::ProfileSnapshot snapshot = profiler->Snapshot();
    profiler->set_enabled(was_enabled);
    return {200, kTextPlain, snapshot.ToCollapsed()};
  });

  server->Handle("/slo", [slo](const HttpRequest&) -> HttpResponse {
    if (slo == nullptr) {
      return {404, kTextPlain, "no slo tracker attached\n"};
    }
    return {200, kJsonType, slo->Evaluate().ToJson() + "\n"};
  });

  std::function<std::string(size_t)> query_stats = sources.query_stats_json;
  server->Handle(
      "/queryz", [query_stats](const HttpRequest& request) -> HttpResponse {
        if (query_stats == nullptr) {
          return {404, kTextPlain, "no query stats store attached\n"};
        }
        const int top = ParseIntParam(request.query, "top", 10, 1, 1024);
        return {200, kJsonType,
                query_stats(static_cast<size_t>(top)) + "\n"};
      });
}

}  // namespace halk::net
