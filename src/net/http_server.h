#ifndef HALK_NET_HTTP_SERVER_H_
#define HALK_NET_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace halk::net {

/// One parsed request. Only the request line is interpreted (method,
/// path, raw query string); headers are read to the blank line and
/// discarded — every telemetry endpoint is header-agnostic.
struct HttpRequest {
  std::string method;  // e.g. "GET"
  std::string path;    // e.g. "/metrics" (no query string)
  std::string query;   // raw bytes after '?', "" when absent
};

/// Value of `key` in a raw `k=v&k2=v2` query string, or `fallback` when
/// absent. No percent-decoding (telemetry parameters are plain numerals).
std::string QueryParam(const std::string& query, const std::string& key,
                       const std::string& fallback = "");

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal embedded HTTP/1.1 server for the telemetry plane: POSIX
/// sockets, a blocking accept loop shared by a small thread pool, one
/// request per connection (`Connection: close`), GET only. Stdlib-only by
/// design — observability must not pull a dependency into the serving
/// binary. Not a general web server: no keep-alive, no TLS, no bodies;
/// bind it to loopback (the default) and put a real proxy in front for
/// anything public.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Numeric address to bind; loopback by default so the telemetry
    /// plane is host-local unless explicitly opened up.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    /// Threads blocking in accept(); each serves one connection at a time.
    int num_threads = 2;
    /// Request-head size bound; longer requests get 400 and a close.
    size_t max_request_bytes = 16 * 1024;
  };

  HttpServer() : HttpServer(Options()) {}
  explicit HttpServer(const Options& options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers the handler for an exact path. Call before Start.
  void Handle(const std::string& path, Handler handler)
      HALK_EXCLUDES(mu_);

  /// Binds, listens, and launches the accept threads. kUnavailable when
  /// the socket cannot be bound. Idempotent failure: a failed Start leaves
  /// the server stopped and restartable.
  [[nodiscard]] Status Start() HALK_EXCLUDES(mu_);

  /// Stops accepting, joins the pool, closes the socket. Idempotent; also
  /// run by the destructor. In-flight responses finish writing.
  void Stop() HALK_EXCLUDES(mu_);

  /// The bound port (the actual one when Options::port was 0); 0 before a
  /// successful Start.
  int port() const HALK_EXCLUDES(mu_);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) HALK_EXCLUDES(mu_);

  const Options options_;
  std::atomic<bool> stopping_{false};

  mutable Mutex mu_;
  std::map<std::string, Handler> handlers_ HALK_GUARDED_BY(mu_);
  int listen_fd_ HALK_GUARDED_BY(mu_) = -1;
  int port_ HALK_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> threads_ HALK_GUARDED_BY(mu_);
};

}  // namespace halk::net

#endif  // HALK_NET_HTTP_SERVER_H_
