#ifndef HALK_MATCHING_CANDIDATES_H_
#define HALK_MATCHING_CANDIDATES_H_

#include <vector>

#include "common/status.h"
#include "kg/graph.h"
#include "query/dag.h"

namespace halk::matching {

/// Exact candidate sets: one forward pass over the query DAG computes, for
/// every node, the set of data-graph entities that could bind to it given
/// only the *observed* edges. This is the tightest sound filter (used by
/// tests and the pruning study's ground truth); it costs a full symbolic
/// execution. Returns per-node sorted candidate lists (empty for
/// unreachable nodes).
[[nodiscard]] Result<std::vector<std::vector<int64_t>>> FilterCandidates(
    const query::QueryGraph& query, const kg::KnowledgeGraph& graph);

/// Local candidate filter in the spirit of G-Finder's LIG lookup: the
/// target's candidates are derived from *single-edge* evidence only —
/// a projection node admits every entity with an incoming edge of its
/// relation; set operations combine their children's candidate sets
/// (intersection takes the smallest child, difference the minuend,
/// negation/union fall back to broad sets). Much cheaper than full
/// execution but loose: the matcher's backtracking verification does the
/// real work, which is what gives matching engines their query-size-
/// dependent cost profile.
[[nodiscard]] Result<std::vector<int64_t>> LocalTargetCandidates(
    const query::QueryGraph& query, const kg::KnowledgeGraph& graph);

}  // namespace halk::matching

#endif  // HALK_MATCHING_CANDIDATES_H_

