#ifndef HALK_MATCHING_MATCHER_H_
#define HALK_MATCHING_MATCHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "kg/graph.h"
#include "query/dag.h"

namespace halk::matching {

/// Counters from one Match call (Table VI / Fig. 6 use the timings).
struct MatchStats {
  int64_t verification_steps = 0;  // recursive expansions performed
  int64_t candidates_checked = 0;  // target candidates verified
  double millis = 0.0;             // wall-clock of the whole match
};

/// Best-effort subgraph matcher in the spirit of G-Finder (Liu et al.,
/// BigData 2019): candidate filtering over the query DAG followed by
/// per-candidate backtracking verification that re-derives each binding
/// through explicit edge enumeration (no memoization across candidates —
/// the source of the query-size-exponential runtime the paper measures).
///
/// Like all matching-based systems it answers from *observed* edges only:
/// on incomplete KGs it misses answers that require held-out edges, which
/// is exactly the accuracy gap of Table VI.
class SubgraphMatcher {
 public:
  explicit SubgraphMatcher(const kg::KnowledgeGraph* graph);

  /// All entities that verifiably bind the query target. Sorted.
  [[nodiscard]] Result<std::vector<int64_t>> Match(const query::QueryGraph& query,
                                     MatchStats* stats = nullptr);

 private:
  bool Verify(const query::QueryGraph& query, int node, int64_t entity,
              MatchStats* stats) const;

  const kg::KnowledgeGraph* graph_;
};

}  // namespace halk::matching

#endif  // HALK_MATCHING_MATCHER_H_

