#include "matching/candidates.h"

#include <algorithm>
#include <numeric>

#include "query/executor.h"

namespace halk::matching {

Result<std::vector<std::vector<int64_t>>> FilterCandidates(
    const query::QueryGraph& query, const kg::KnowledgeGraph& graph) {
  // The exact per-node entity sets under observed-edge semantics are the
  // tightest sound filter; the symbolic executor computes them in one
  // set-at-a-time pass.
  return query::ExecuteQueryAllNodes(query, graph);
}

namespace {

// Entities with at least one incoming `relation` edge, sorted.
std::vector<int64_t> EntitiesWithIncoming(const kg::KnowledgeGraph& graph,
                                          int64_t relation) {
  std::vector<int64_t> out;
  for (int64_t e = 0; e < graph.num_entities(); ++e) {
    if (!graph.index().Heads(e, relation).empty()) out.push_back(e);
  }
  return out;
}

std::vector<int64_t> AllEntities(const kg::KnowledgeGraph& graph) {
  std::vector<int64_t> out(static_cast<size_t>(graph.num_entities()));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::vector<int64_t> NodeCandidates(const query::QueryGraph& query,
                                    const kg::KnowledgeGraph& graph,
                                    int node) {
  const query::QueryNode& n = query.nodes()[static_cast<size_t>(node)];
  switch (n.op) {
    case query::OpType::kAnchor:
      return {n.anchor_entity};
    case query::OpType::kProjection:
      return EntitiesWithIncoming(graph, n.relation);
    case query::OpType::kIntersection: {
      // Smallest child candidate set (cheapest sound choice).
      std::vector<int64_t> best;
      for (int input : n.inputs) {
        std::vector<int64_t> c = NodeCandidates(query, graph, input);
        if (best.empty() || c.size() < best.size()) best = std::move(c);
      }
      return best;
    }
    case query::OpType::kDifference:
      return NodeCandidates(query, graph, n.inputs[0]);
    case query::OpType::kUnion: {
      std::vector<int64_t> merged;
      for (int input : n.inputs) {
        std::vector<int64_t> c = NodeCandidates(query, graph, input);
        merged.insert(merged.end(), c.begin(), c.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      return merged;
    }
    case query::OpType::kNegation:
      // A complement admits anything.
      return AllEntities(graph);
  }
  return {};
}

}  // namespace

Result<std::vector<int64_t>> LocalTargetCandidates(
    const query::QueryGraph& query, const kg::KnowledgeGraph& graph) {
  HALK_RETURN_NOT_OK(query.Validate(/*grounded=*/true));
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph not finalized");
  }
  return NodeCandidates(query, graph, query.target());
}

}  // namespace halk::matching
