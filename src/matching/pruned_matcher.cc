#include "matching/pruned_matcher.h"

#include <chrono>

#include "common/logging.h"

namespace halk::matching {

PrunedMatcher::PrunedMatcher(core::HalkModel* model,
                             const kg::KnowledgeGraph* graph, int64_t top_k)
    : pruner_(model), graph_(graph), top_k_(top_k) {
  HALK_CHECK(graph != nullptr);
  HALK_CHECK(graph->finalized());
  HALK_CHECK_GT(top_k, 0);
}

Result<std::vector<int64_t>> PrunedMatcher::Match(
    const query::QueryGraph& query, MatchStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  core::PruneResult pruned = pruner_.Prune(query, *graph_, top_k_);
  SubgraphMatcher matcher(&pruned.induced);
  MatchStats local;
  HALK_ASSIGN_OR_RETURN(std::vector<int64_t> answers,
                        matcher.Match(query, &local));
  local.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace halk::matching
