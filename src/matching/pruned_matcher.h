#ifndef HALK_MATCHING_PRUNED_MATCHER_H_
#define HALK_MATCHING_PRUNED_MATCHER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/pruner.h"
#include "matching/matcher.h"

namespace halk::matching {

/// The HaLk + matcher pipeline of Sec. IV-D: a trained HaLk model supplies
/// top-k candidates per query variable, the data graph is restricted to the
/// induced subgraph, and the subgraph matcher runs on the (much smaller)
/// result. Trades a little recall for a large runtime reduction.
class PrunedMatcher {
 public:
  /// `top_k` is the per-variable candidate budget (the paper uses 20).
  PrunedMatcher(core::HalkModel* model, const kg::KnowledgeGraph* graph,
                int64_t top_k);

  /// Matches on the induced subgraph. `stats->millis` includes pruning.
  [[nodiscard]] Result<std::vector<int64_t>> Match(const query::QueryGraph& query,
                                     MatchStats* stats = nullptr);

 private:
  core::Pruner pruner_;
  const kg::KnowledgeGraph* graph_;
  int64_t top_k_;
};

}  // namespace halk::matching

#endif  // HALK_MATCHING_PRUNED_MATCHER_H_

