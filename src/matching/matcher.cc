#include "matching/matcher.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "matching/candidates.h"

namespace halk::matching {

SubgraphMatcher::SubgraphMatcher(const kg::KnowledgeGraph* graph)
    : graph_(graph) {
  HALK_CHECK(graph != nullptr);
  HALK_CHECK(graph->finalized());
}

bool SubgraphMatcher::Verify(const query::QueryGraph& query, int node,
                             int64_t entity, MatchStats* stats) const {
  ++stats->verification_steps;
  const query::QueryNode& n = query.nodes()[static_cast<size_t>(node)];
  switch (n.op) {
    case query::OpType::kAnchor:
      return entity == n.anchor_entity;
    case query::OpType::kProjection: {
      // Existential witness over incoming edges; each head is re-verified
      // from scratch (backtracking, no memo).
      for (int64_t head : graph_->index().Heads(entity, n.relation)) {
        if (Verify(query, n.inputs[0], head, stats)) return true;
      }
      return false;
    }
    case query::OpType::kIntersection: {
      for (int input : n.inputs) {
        if (!Verify(query, input, entity, stats)) return false;
      }
      return true;
    }
    case query::OpType::kUnion: {
      for (int input : n.inputs) {
        if (Verify(query, input, entity, stats)) return true;
      }
      return false;
    }
    case query::OpType::kDifference: {
      if (!Verify(query, n.inputs[0], entity, stats)) return false;
      for (size_t i = 1; i < n.inputs.size(); ++i) {
        if (Verify(query, n.inputs[i], entity, stats)) return false;
      }
      return true;
    }
    case query::OpType::kNegation:
      return !Verify(query, n.inputs[0], entity, stats);
  }
  return false;
}

Result<std::vector<int64_t>> SubgraphMatcher::Match(
    const query::QueryGraph& query, MatchStats* stats) {
  MatchStats local;
  const auto start = std::chrono::steady_clock::now();

  // Cheap local (single-edge) candidate lookup, then per-candidate
  // backtracking verification — the G-Finder cost profile: candidate sets
  // are loose, and the verification recursion grows with query size.
  HALK_ASSIGN_OR_RETURN(std::vector<int64_t> candidates,
                        LocalTargetCandidates(query, *graph_));

  std::vector<int64_t> answers;
  for (int64_t candidate : candidates) {
    ++local.candidates_checked;
    if (Verify(query, query.target(), candidate, &local)) {
      answers.push_back(candidate);
    }
  }
  std::sort(answers.begin(), answers.end());

  local.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace halk::matching
