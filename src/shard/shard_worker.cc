#include "shard/shard_worker.h"

#include <algorithm>

#include "common/logging.h"

namespace halk::shard {

const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
  }
  return "unknown";
}

ShardWorker::ShardWorker(const core::QueryModel* model, EntityRange range,
                         int shard_index, int replica_index,
                         ShardFaultInjector* faults, size_t queue_capacity,
                         int down_after_failures)
    : model_(model),
      range_(range),
      shard_index_(shard_index),
      replica_index_(replica_index),
      down_after_failures_(down_after_failures),
      faults_(faults),
      queue_(queue_capacity) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK_GE(range.begin, 0);
  HALK_CHECK_GE(range.end, range.begin);
  thread_ = std::thread([this] { Loop(); });
}

ShardWorker::~ShardWorker() { Stop(); }

void ShardWorker::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

Status ShardWorker::Submit(std::unique_ptr<ShardTask> task) {
  return queue_.TryPush(std::move(task));
}

void ShardWorker::MarkFailure() {
  const int streak = failure_streak_.fetch_add(1, std::memory_order_acq_rel) + 1;
  health_.store(static_cast<int>(streak >= down_after_failures_
                                     ? ReplicaHealth::kDown
                                     : ReplicaHealth::kSuspect),
                std::memory_order_release);
}

void ShardWorker::MarkSuccess() {
  failure_streak_.store(0, std::memory_order_release);
  health_.store(static_cast<int>(ReplicaHealth::kHealthy),
                std::memory_order_release);
}

void ShardWorker::Loop() {
  std::vector<std::unique_ptr<ShardTask>> batch;
  while (queue_.PopBatch(&batch, 1, std::chrono::microseconds::zero())) {
    Serve(batch[0].get());
    batch.clear();
  }
}

void ShardWorker::Serve(ShardTask* task) {
  tasks_served_.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr) {
    std::chrono::microseconds delay{0};
    const Status injected = faults_->OnCall(shard_index_, replica_index_, &delay);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    if (!injected.ok()) {
      task->result.set_value(injected);
      return;
    }
  }
  // A task the coordinator has already given up on is not worth scoring;
  // its promise result is never read, but must still be fulfilled.
  if (std::chrono::steady_clock::now() > task->deadline) {
    task->result.set_value(
        Status::DeadlineExceeded("shard task past its deadline"));
    return;
  }

  // Min over branches per entity in the owned range, streamed through the
  // model's bound-aware top-k kernel — the partial ranking the coordinator
  // k-way merges.
  const BranchSet& branches = *task->branches;
  std::vector<core::BranchRef> refs;
  refs.reserve(branches.rows.size());
  for (const auto& [embedding_index, row] : branches.rows) {
    refs.push_back({&branches.embeddings[embedding_index], row});
  }
  core::TopKAccumulator acc(task->k);
  model_->AccumulateTopKRange(refs, range_.begin, range_.end, &acc);
  task->result.set_value(acc.Take());
}

}  // namespace halk::shard
