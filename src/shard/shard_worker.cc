#include "shard/shard_worker.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>

#include "common/logging.h"

namespace halk::shard {

const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
  }
  return "unknown";
}

ShardWorker::ShardWorker(const core::QueryModel* model, EntityRange range,
                         int shard_index, int replica_index,
                         ShardFaultInjector* faults, size_t queue_capacity,
                         int down_after_failures,
                         serving::Histogram* scan_us,
                         serving::Gauge* health_gauge, int pin_cpu)
    : model_(model),
      range_(range),
      shard_index_(shard_index),
      replica_index_(replica_index),
      down_after_failures_(down_after_failures),
      faults_(faults),
      scan_us_(scan_us),
      health_gauge_(health_gauge),
      pin_cpu_(pin_cpu),
      queue_(queue_capacity) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK_GE(range.begin, 0);
  HALK_CHECK_GE(range.end, range.begin);
  thread_ = std::thread([this] { Loop(); });
}

ShardWorker::~ShardWorker() { Stop(); }

void ShardWorker::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

Status ShardWorker::Submit(std::unique_ptr<ShardTask> task) {
  return queue_.TryPush(std::move(task));
}

void ShardWorker::MarkFailure() {
  // order: acq_rel makes concurrent demotions agree on the streak count;
  // the release store pairs with the acquire load in health() so a
  // coordinator that observes kDown also observes the streak behind it.
  const int streak = failure_streak_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const int state = static_cast<int>(streak >= down_after_failures_
                                         ? ReplicaHealth::kDown
                                         : ReplicaHealth::kSuspect);
  health_.store(state, std::memory_order_release);
  if (health_gauge_ != nullptr) health_gauge_->Set(state);
}

void ShardWorker::MarkSuccess() {
  // order: release pairs with the acquire load in health(); clearing the
  // streak must not be reordered after the revive becomes visible.
  failure_streak_.store(0, std::memory_order_release);
  health_.store(static_cast<int>(ReplicaHealth::kHealthy),
                std::memory_order_release);
  if (health_gauge_ != nullptr) {
    health_gauge_->Set(static_cast<int>(ReplicaHealth::kHealthy));
  }
}

void ShardWorker::Loop() {
#ifdef __linux__
  if (pin_cpu_ >= 0) {
    // Best effort: a failed setaffinity (restricted cpuset, CPU offline)
    // just leaves the thread floating.
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(pin_cpu_), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  std::vector<std::unique_ptr<ShardTask>> batch;
  while (queue_.PopBatch(&batch, 1, std::chrono::microseconds::zero())) {
    Serve(batch[0].get());
    batch.clear();
  }
}

void ShardWorker::Serve(ShardTask* task) {
  // order: statistics counter; readers tolerate staleness.
  tasks_served_.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr) {
    std::chrono::microseconds delay{0};
    const Status injected = faults_->OnCall(shard_index_, replica_index_, &delay);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    if (!injected.ok()) {
      task->result.set_value(injected);
      return;
    }
  }
  // A task the coordinator has already given up on is not worth scoring;
  // its promise result is never read, but must still be fulfilled.
  if (std::chrono::steady_clock::now() > task->deadline) {
    task->result.set_value(
        Status::DeadlineExceeded("shard task past its deadline"));
    return;
  }

  // Min over branches per entity in the owned range, streamed through the
  // model's bound-aware top-k kernel — the partial ranking the coordinator
  // k-way merges.
  const BranchSet& branches = *task->branches;
  std::vector<core::BranchRef> refs;
  refs.reserve(branches.rows.size());
  for (const auto& [embedding_index, row] : branches.rows) {
    refs.push_back({&branches.embeddings[embedding_index], row});
  }
  obs::SpanGuard scan(task->trace, "replica_scan");
  core::TopKAccumulator acc(task->k);
  core::ScanStats stats;
  const int64_t scan_start = scan_us_ != nullptr ? obs::NowNs() : 0;
  model_->AccumulateTopKRange(refs, range_.begin, range_.end, &acc, &stats);
  if (scan_us_ != nullptr) {
    // The request's trace id rides along as the bucket exemplar so a slow
    // scraped scan bucket names a concrete trace.
    scan_us_->Observe(static_cast<double>(obs::NowNs() - scan_start) / 1e3,
                      task->trace.trace_id);
  }
  if (scan.active()) {
    scan.Annotate("shard", shard_index_);
    scan.Annotate("replica", replica_index_);
    scan.Annotate("entities_scanned",
                  static_cast<double>(stats.entities_scanned));
    scan.Annotate("entities_pruned",
                  static_cast<double>(stats.entities_pruned));
    scan.Annotate("early_exit_rate",
                  stats.entities_scanned == 0
                      ? 0.0
                      : static_cast<double>(stats.entities_pruned) /
                            static_cast<double>(stats.entities_scanned));
    if (stats.column_blocks_scanned + stats.column_blocks_skipped > 0) {
      // Store-backed scans only: pages read vs never faulted in.
      scan.Annotate("column_blocks_scanned",
                    static_cast<double>(stats.column_blocks_scanned));
      scan.Annotate("column_blocks_skipped",
                    static_cast<double>(stats.column_blocks_skipped));
    }
  }
  scan.End();
  task->result.set_value(acc.Take());
}

}  // namespace halk::shard
