#include "shard/coordinator.h"

#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "query/dnf.h"

namespace halk::shard {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

}  // namespace

ShardCoordinator::ShardCoordinator(core::QueryModel* model,
                                   const ShardOptions& options,
                                   ShardFaultInjector* faults,
                                   serving::MetricsRegistry* metrics)
    : model_(model),
      options_(options),
      num_entities_(model->config().num_entities),
      metrics_(metrics) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK_GT(options_.num_shards, 0);
  HALK_CHECK_GT(options_.replication, 0);
  HALK_CHECK_GT(options_.queue_capacity, 0u);
  HALK_CHECK_GT(options_.down_after_failures, 0);

  if (metrics_ != nullptr) {
    requests_ = metrics_->GetCounter("shard.requests");
    partials_ = metrics_->GetCounter("shard.partial_results");
    deadline_misses_ = metrics_->GetCounter("shard.deadline_misses");
    gather_us_ = metrics_->GetHistogram(
        "shard.gather_us", serving::Histogram::ExponentialBounds(1.0, 2.0, 26));
    for (int s = 0; s < options_.num_shards; ++s) {
      const serving::Labels shard_label = {{"shard", std::to_string(s)}};
      shard_tasks_.push_back(metrics_->GetCounter("shard.tasks", shard_label));
      shard_failovers_.push_back(
          metrics_->GetCounter("shard.failovers", shard_label));
    }
  }

  // Contiguous balanced partition: the first `num_entities % num_shards`
  // shards own one extra entity.
  const int64_t shards = options_.num_shards;
  const int64_t base = num_entities_ / shards;
  const int64_t extra = num_entities_ % shards;
  int64_t next = 0;
  workers_.reserve(static_cast<size_t>(shards * options_.replication));
  for (int s = 0; s < options_.num_shards; ++s) {
    const int64_t size = base + (s < extra ? 1 : 0);
    const EntityRange range{next, next + size};
    next += size;
    for (int r = 0; r < options_.replication; ++r) {
      serving::Histogram* scan_us = nullptr;
      serving::Gauge* health = nullptr;
      if (metrics_ != nullptr) {
        const serving::Labels replica_labels = {
            {"shard", std::to_string(s)}, {"replica", std::to_string(r)}};
        scan_us = metrics_->GetHistogram(
            "shard.scan_us",
            serving::Histogram::ExponentialBounds(1.0, 2.0, 26),
            replica_labels);
        health = metrics_->GetGauge("shard.replica_health", replica_labels);
      }
      int pin_cpu = -1;
      if (options_.pin_threads) {
        const unsigned cores = std::thread::hardware_concurrency();
        if (cores > 0) {
          pin_cpu = static_cast<int>(
              static_cast<unsigned>(s * options_.replication + r) % cores);
        }
      }
      workers_.push_back(std::make_unique<ShardWorker>(
          model, range, s, r, faults, options_.queue_capacity,
          options_.down_after_failures, scan_us, health, pin_cpu));
    }
  }
  HALK_CHECK_EQ(next, num_entities_);
}

ShardCoordinator::~ShardCoordinator() { Stop(); }

void ShardCoordinator::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& worker : workers_) worker->Stop();
}

ShardWorker* ShardCoordinator::worker(int shard, int replica) const {
  return workers_[static_cast<size_t>(shard * options_.replication + replica)]
      .get();
}

EntityRange ShardCoordinator::shard_range(int shard) const {
  return worker(shard, 0)->range();
}

ReplicaHealth ShardCoordinator::replica_health(int shard, int replica) const {
  return worker(shard, replica)->health();
}

int64_t ShardCoordinator::replica_tasks_served(int shard, int replica) const {
  return worker(shard, replica)->tasks_served();
}

int ShardCoordinator::PickReplica(int shard,
                                  const std::vector<bool>& tried) const {
  int suspect = -1;
  int last_resort = -1;
  for (int r = 0; r < options_.replication; ++r) {
    if (tried[static_cast<size_t>(r)]) continue;
    switch (worker(shard, r)->health()) {
      case ReplicaHealth::kHealthy:
        return r;
      case ReplicaHealth::kSuspect:
        if (suspect < 0) suspect = r;
        break;
      case ReplicaHealth::kDown:
        // Probed only when nothing better remains, so a replica revived
        // behind the coordinator's back can work its way back to healthy.
        if (last_resort < 0) last_resort = r;
        break;
    }
  }
  return suspect >= 0 ? suspect : last_resort;
}

ShardedTopK ShardCoordinator::TopKEmbedded(const BranchSet& branches,
                                           int64_t k,
                                           Clock::time_point deadline,
                                           const obs::TraceContext& trace) {
  const Clock::time_point start = Clock::now();
  if (requests_ != nullptr) requests_->Increment();

  // The scatter span covers dispatch plus the whole hedged gather; every
  // replica_scan, failover, and hedged-wait event nests under it. Merge is
  // a disjoint sibling so per-phase spans tile the request wall-clock.
  obs::SpanGuard scatter(trace, "scatter");
  const obs::TraceContext scatter_ctx = scatter.child_context();

  // Tasks share ownership of the branch set so a replica abandoned at the
  // deadline can finish (or fail) harmlessly after this call returns.
  auto shared = std::make_shared<const BranchSet>(branches);

  const int num_shards = options_.num_shards;
  const int replication = options_.replication;
  struct Attempt {
    std::future<Result<std::vector<core::ScoredEntity>>> future;
    int replica = -1;
  };
  std::vector<Attempt> attempts(static_cast<size_t>(num_shards));
  std::vector<std::vector<bool>> tried(
      static_cast<size_t>(num_shards),
      std::vector<bool>(static_cast<size_t>(replication), false));

  // Scatter to the next live untried replica; false when none remain.
  auto dispatch = [&](int shard) {
    while (true) {
      const int replica = PickReplica(shard, tried[static_cast<size_t>(shard)]);
      if (replica < 0) {
        attempts[static_cast<size_t>(shard)].replica = -1;
        return false;
      }
      tried[static_cast<size_t>(shard)][static_cast<size_t>(replica)] = true;
      auto task = std::make_unique<ShardTask>();
      task->branches = shared;
      task->k = k;
      task->deadline = deadline;
      task->trace = scatter_ctx;
      auto future = task->result.get_future();
      if (!shard_tasks_.empty()) {
        shard_tasks_[static_cast<size_t>(shard)]->Increment();
      }
      const Status submitted = worker(shard, replica)->Submit(std::move(task));
      if (!submitted.ok()) {
        worker(shard, replica)->MarkFailure();
        continue;  // queue full or stopped: treat as a failed call
      }
      attempts[static_cast<size_t>(shard)] = {std::move(future), replica};
      return true;
    }
  };

  for (int s = 0; s < num_shards; ++s) dispatch(s);

  // Replicas of `shard` not yet tried this request — candidates for a
  // failover attempt.
  auto untried_count = [&](int shard) {
    int n = 0;
    for (int r = 0; r < replication; ++r) {
      if (!tried[static_cast<size_t>(shard)][static_cast<size_t>(r)]) ++n;
    }
    return n;
  };

  // Gather with failover: a failed or deadline-missing replica is demoted
  // and the shard retries on the next live replica with the time left. The
  // wait is hedged — while untried replicas remain, an attempt only gets an
  // even split of the remaining budget, so one slow replica cannot consume
  // the whole deadline and leave its failover no time to run.
  std::vector<std::vector<core::ScoredEntity>> partials(
      static_cast<size_t>(num_shards));
  int64_t covered_entities = 0;
  int uncovered_shards = 0;
  for (int s = 0; s < num_shards; ++s) {
    Attempt& attempt = attempts[static_cast<size_t>(s)];
    bool covered = false;
    while (attempt.replica >= 0) {
      bool ready = true;
      if (deadline == kNoDeadline) {
        attempt.future.wait();
      } else {
        Clock::time_point attempt_deadline = deadline;
        const int spares = untried_count(s);
        const Clock::time_point now = Clock::now();
        if (spares > 0 && now < deadline) {
          attempt_deadline = now + (deadline - now) / (spares + 1);
        }
        ready = attempt.future.wait_until(attempt_deadline) ==
                std::future_status::ready;
      }
      if (!ready) {
        if (deadline_misses_ != nullptr) deadline_misses_->Increment();
        obs::RecordEvent(scatter_ctx, "hedged_wait_expired",
                         {{"shard", static_cast<double>(s)},
                          {"replica", static_cast<double>(attempt.replica)}});
        worker(s, attempt.replica)->MarkFailure();
        if (!shard_failovers_.empty()) {
          shard_failovers_[static_cast<size_t>(s)]->Increment();
        }
        obs::RecordEvent(scatter_ctx, "failover",
                         {{"shard", static_cast<double>(s)},
                          {"replica", static_cast<double>(attempt.replica)}});
        if (!dispatch(s)) break;
        continue;
      }
      Result<std::vector<core::ScoredEntity>> result = attempt.future.get();
      if (result.ok()) {
        worker(s, attempt.replica)->MarkSuccess();
        partials[static_cast<size_t>(s)] = std::move(*result);
        covered_entities += shard_range(s).size();
        covered = true;
        break;
      }
      worker(s, attempt.replica)->MarkFailure();
      if (!shard_failovers_.empty()) {
        shard_failovers_[static_cast<size_t>(s)]->Increment();
      }
      obs::RecordEvent(scatter_ctx, "failover",
                       {{"shard", static_cast<double>(s)},
                        {"replica", static_cast<double>(attempt.replica)}});
      if (!dispatch(s)) break;
    }
    if (!covered) ++uncovered_shards;
  }
  if (scatter.active()) {
    scatter.Annotate("shards", static_cast<double>(num_shards));
    scatter.Annotate("uncovered_shards", static_cast<double>(uncovered_shards));
  }
  scatter.End();

  ShardedTopK out;
  {
    obs::SpanGuard merge(trace, "merge");
    out.entries = core::MergeTopK(partials, k);
    if (merge.active()) {
      merge.Annotate("entries", static_cast<double>(out.entries.size()));
    }
  }
  out.coverage = num_entities_ == 0
                     ? 1.0
                     : static_cast<double>(covered_entities) /
                           static_cast<double>(num_entities_);
  if (uncovered_shards == 0) {
    out.status = Status::OK();
  } else if (covered_entities == 0) {
    out.status = Status::Unavailable("no shard replica available");
  } else {
    if (partials_ != nullptr) partials_->Increment();
    out.status = Status::PartialResult(
        std::to_string(uncovered_shards) + " of " +
        std::to_string(num_shards) + " shards unavailable");
  }
  if (gather_us_ != nullptr) {
    // Exemplar: a slow gather bucket in the scrape names this trace.
    gather_us_->Observe(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count(),
        trace.trace_id);
  }
  return out;
}

ShardedTopK ShardCoordinator::TopK(const query::QueryGraph& query, int64_t k,
                                   std::chrono::microseconds timeout) {
  // One single-row EmbedQueries per DNF branch, exactly as
  // Evaluator::ScoreAllEntities does, so healthy-path rankings match the
  // brute-force evaluator bit-for-bit.
  BranchSet branches;
  for (const query::QueryGraph& branch : query::ToDnf(query)) {
    std::vector<const query::QueryGraph*> single = {&branch};
    branches.embeddings.push_back(model_->EmbedQueries(single));
    branches.rows.emplace_back(branches.embeddings.size() - 1, 0);
  }
  const Clock::time_point deadline =
      timeout.count() > 0 ? Clock::now() + timeout : kNoDeadline;
  return TopKEmbedded(branches, k, deadline);
}

}  // namespace halk::shard
