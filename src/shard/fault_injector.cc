#include "shard/fault_injector.h"

namespace halk::shard {

void ShardFaultInjector::FailNextCalls(int shard, int replica, int n) {
  MutexLock lock(mu_);
  faults_[{shard, replica}].fail_next = n;
}

void ShardFaultInjector::AddLatency(int shard, int replica,
                                    std::chrono::microseconds latency) {
  MutexLock lock(mu_);
  faults_[{shard, replica}].latency = latency;
}

void ShardFaultInjector::SetDown(int shard, int replica, bool down) {
  MutexLock lock(mu_);
  faults_[{shard, replica}].down = down;
}

void ShardFaultInjector::SetShardDown(int shard, int num_replicas, bool down) {
  MutexLock lock(mu_);
  for (int r = 0; r < num_replicas; ++r) faults_[{shard, r}].down = down;
}

Status ShardFaultInjector::OnCall(int shard, int replica,
                                  std::chrono::microseconds* added_latency) {
  MutexLock lock(mu_);
  *added_latency = std::chrono::microseconds::zero();
  auto it = faults_.find({shard, replica});
  if (it == faults_.end()) return Status::OK();
  Fault& fault = it->second;
  *added_latency = fault.latency;
  if (fault.down) {
    return Status::Unavailable("injected: replica permanently down");
  }
  if (fault.fail_next > 0) {
    --fault.fail_next;
    return Status::Unavailable("injected: fail-next-call");
  }
  return Status::OK();
}

}  // namespace halk::shard
