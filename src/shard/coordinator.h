#ifndef HALK_SHARD_COORDINATOR_H_
#define HALK_SHARD_COORDINATOR_H_

#include <chrono>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/query_model.h"
#include "core/topk.h"
#include "obs/trace.h"
#include "query/dag.h"
#include "serving/metrics.h"
#include "shard/fault_injector.h"
#include "shard/shard_worker.h"

namespace halk::shard {

struct ShardOptions {
  /// Contiguous entity-table shards scored in parallel.
  int num_shards = 4;
  /// Replicas per shard; each replica is its own worker thread over the
  /// same range, so R > 1 buys availability, not throughput.
  int replication = 1;
  /// Per-replica task-queue capacity.
  size_t queue_capacity = 256;
  /// Consecutive failed calls before a replica is marked down and skipped
  /// by scatter (any later success revives it to healthy).
  int down_after_failures = 3;
  /// Pin each worker thread to CPU (shard * replication + replica) mod
  /// hardware_concurrency (best effort, Linux only). Keeps per-shard cache
  /// and page locality under out-of-core scans; benches at 10^6+ entities
  /// turn this on.
  bool pin_threads = false;
};

/// Outcome of one scatter-gather top-k. `coverage` is the fraction of the
/// entity table actually scored; `status` is OK at full coverage,
/// kPartialResult when at least one shard had no live replica (the entries
/// are still the exact top-k of the covered fraction), and kUnavailable
/// when nothing was covered at all.
struct ShardedTopK {
  std::vector<core::ScoredEntity> entries;
  double coverage = 1.0;
  Status status;

  bool ok() const { return status.ok(); }
  bool partial() const {
    return status.code() == StatusCode::kPartialResult;
  }
};

/// Scatter-gather ranking over a sharded entity store. The entity table is
/// partitioned into `num_shards` contiguous slabs; each slab is served by
/// `replication` ShardWorker threads holding read-only views of the trained
/// parameters. A request broadcasts its embedded DNF branches to one live
/// replica per shard, k-way merges the partial top-k heaps, and — because
/// every path orders by (distance, entity id) — reproduces Evaluator::TopK
/// bit-for-bit at any shard count while replicas are healthy.
///
/// Failure semantics: a replica that fails a call (or misses the request
/// deadline) is demoted and the shard fails over to the next live replica;
/// when no replica of a shard answers, the request degrades to a partial
/// result carrying its coverage instead of failing.
class ShardCoordinator {
 public:
  /// `model`, `faults` (optional), and `metrics` (optional) must outlive
  /// the coordinator. When `metrics` is given, the coordinator exports
  /// `shard.*` instruments: request/partial/deadline counters, gather
  /// latency, labeled per-shard `shard.tasks{shard=...}` /
  /// `shard.failovers{shard=...}` counters, per-replica
  /// `shard.scan_us{shard=...,replica=...}` scan-latency histograms, and
  /// `shard.replica_health{shard=...,replica=...}` gauges mirroring each
  /// replica's ReplicaHealth (0 healthy, 1 suspect, 2 down).
  ShardCoordinator(core::QueryModel* model, const ShardOptions& options,
                   ShardFaultInjector* faults = nullptr,
                   serving::MetricsRegistry* metrics = nullptr);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Scatter-gather over pre-embedded branches (min across branches per
  /// entity). `deadline` bounds the whole gather; waits are hedged so that
  /// while a shard still has untried replicas, one attempt only gets an
  /// even split of the remaining budget. A replica that misses its slice is
  /// abandoned (tasks own the BranchSet, so this is safe) and the shard
  /// fails over with the time left. With an active `trace`, the gather
  /// records a `scatter` span (per-replica `replica_scan` children plus
  /// `failover` / `hedged_wait_expired` events) and a sibling `merge` span.
  ShardedTopK TopKEmbedded(const BranchSet& branches, int64_t k,
                           std::chrono::steady_clock::time_point deadline =
                               std::chrono::steady_clock::time_point::max(),
                           const obs::TraceContext& trace = {});

  /// Convenience: DNF-expands and embeds `query` exactly as Evaluator does
  /// (one single-row EmbedQueries per branch), then scatter-gathers.
  /// `timeout` zero means no deadline.
  ShardedTopK TopK(
      const query::QueryGraph& query, int64_t k,
      std::chrono::microseconds timeout = std::chrono::microseconds::zero());

  /// Stops and joins every worker. Idempotent; also run by the destructor.
  void Stop();

  int num_shards() const { return options_.num_shards; }
  int replication() const { return options_.replication; }
  int64_t num_entities() const { return num_entities_; }
  EntityRange shard_range(int shard) const;
  ReplicaHealth replica_health(int shard, int replica) const;
  int64_t replica_tasks_served(int shard, int replica) const;

 private:
  ShardWorker* worker(int shard, int replica) const;
  /// First live replica of `shard` not yet tried this request (healthy
  /// preferred over suspect, lower index first); -1 when none remain.
  int PickReplica(int shard, const std::vector<bool>& tried) const;

  core::QueryModel* model_;
  const ShardOptions options_;
  const int64_t num_entities_;
  serving::MetricsRegistry* metrics_;  // may be null
  bool stopped_ = false;

  // workers_[shard * replication + replica]; all replicas of a shard own
  // the same entity range.
  std::vector<std::unique_ptr<ShardWorker>> workers_;

  // Metrics (null when no registry was given).
  serving::Counter* requests_ = nullptr;
  serving::Counter* partials_ = nullptr;
  serving::Counter* deadline_misses_ = nullptr;
  serving::Histogram* gather_us_ = nullptr;
  std::vector<serving::Counter*> shard_tasks_;      // per shard
  std::vector<serving::Counter*> shard_failovers_;  // per shard
};

}  // namespace halk::shard

#endif  // HALK_SHARD_COORDINATOR_H_
