#ifndef HALK_SHARD_FAULT_INJECTOR_H_
#define HALK_SHARD_FAULT_INJECTOR_H_

#include <chrono>
#include <map>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace halk::shard {

/// Deterministic fault injection for shard replicas, keyed by
/// (shard, replica). Tests arm it to kill replicas, slow them down, or
/// fail a bounded number of calls; production code simply never passes an
/// injector. Thread-safe: workers consult it concurrently with test
/// threads re-arming it.
class ShardFaultInjector {
 public:
  /// The next `n` calls served by (shard, replica) fail with kUnavailable.
  void FailNextCalls(int shard, int replica, int n) HALK_EXCLUDES(mu_);

  /// Every call served by (shard, replica) sleeps `latency` before
  /// computing — a degraded replica, not a failed one.
  void AddLatency(int shard, int replica, std::chrono::microseconds latency)
      HALK_EXCLUDES(mu_);

  /// Permanently downs (or, with false, revives) the replica: every call
  /// fails until cleared.
  void SetDown(int shard, int replica, bool down) HALK_EXCLUDES(mu_);

  /// Downs every replica of `shard` — the full-shard-outage scenario.
  void SetShardDown(int shard, int num_replicas, bool down)
      HALK_EXCLUDES(mu_);

  /// Consulted by the worker at the start of each call. Returns the
  /// injected failure (if any) and reports extra latency the worker must
  /// sleep through `added_latency` (always written; zero when unarmed).
  [[nodiscard]] Status OnCall(int shard, int replica,
                std::chrono::microseconds* added_latency) HALK_EXCLUDES(mu_);

 private:
  struct Fault {
    int fail_next = 0;
    bool down = false;
    std::chrono::microseconds latency{0};
  };

  Mutex mu_;
  std::map<std::pair<int, int>, Fault> faults_ HALK_GUARDED_BY(mu_);
};

}  // namespace halk::shard

#endif  // HALK_SHARD_FAULT_INJECTOR_H_

