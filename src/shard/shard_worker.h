#ifndef HALK_SHARD_SHARD_WORKER_H_
#define HALK_SHARD_SHARD_WORKER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/query_model.h"
#include "core/topk.h"
#include "obs/trace.h"
#include "serving/metrics.h"
#include "serving/request_queue.h"
#include "shard/fault_injector.h"

namespace halk::shard {

/// Half-open slice [begin, end) of the entity-id space owned by one shard.
struct EntityRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// The embedded form of one query after DNF expansion: each entry of
/// `rows` names row `second` of `embeddings[first]`. EmbeddingBatch holds
/// cheap value-semantic tensor handles, so a BranchSet shares the
/// underlying buffers rather than copying them.
struct BranchSet {
  std::vector<core::EmbeddingBatch> embeddings;
  std::vector<std::pair<size_t, int64_t>> rows;
};

/// A scatter task: score the worker's entity range against every branch
/// (min across branches per entity — the DNF union semantics) and return
/// the local top-k. Tasks own their BranchSet through a shared_ptr so a
/// task abandoned by the coordinator (deadline failover) can still run to
/// completion safely.
struct ShardTask {
  std::shared_ptr<const BranchSet> branches;
  int64_t k = 0;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Request trace handle; when active, the worker records a replica_scan
  /// span (shard/replica/scan counters annotated) under it.
  obs::TraceContext trace;
  std::promise<Result<std::vector<core::ScoredEntity>>> result;
};

/// Coordinator-visible availability of one replica. Healthy replicas are
/// preferred for scatter; a failure demotes to suspect; enough consecutive
/// failures (ShardOptions::down_after_failures) demote to down, and down
/// replicas are skipped until a later success path revives them.
enum class ReplicaHealth { kHealthy = 0, kSuspect = 1, kDown = 2 };

const char* ReplicaHealthName(ReplicaHealth health);

/// One replica of one shard: a dedicated thread draining its own bounded
/// task queue and computing partial distances over a contiguous read-only
/// view of the model's entity table (trained parameters are never copied).
class ShardWorker {
 public:
  /// `model`, `faults` (optional), and the instruments (optional) must
  /// outlive the worker. `scan_us` receives per-task scan latency;
  /// `health_gauge` mirrors the replica's ReplicaHealth as its numeric
  /// value (0 healthy, 1 suspect, 2 down). `pin_cpu` >= 0 pins the worker
  /// thread to that CPU (best effort, Linux only) so scans keep their cache
  /// and NUMA locality instead of migrating between cores.
  ShardWorker(const core::QueryModel* model, EntityRange range,
              int shard_index, int replica_index, ShardFaultInjector* faults,
              size_t queue_capacity, int down_after_failures,
              serving::Histogram* scan_us = nullptr,
              serving::Gauge* health_gauge = nullptr, int pin_cpu = -1);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Enqueues a task; kUnavailable when the queue is full or stopped.
  [[nodiscard]] Status Submit(std::unique_ptr<ShardTask> task);

  /// Closes the queue (pending tasks still drain) and joins the thread.
  /// Idempotent; also run by the destructor.
  void Stop();

  ReplicaHealth health() const {
    // order: acquire pairs with the release stores in MarkFailure /
    // MarkSuccess so health transitions are seen in order.
    return static_cast<ReplicaHealth>(
        health_.load(std::memory_order_acquire));
  }
  /// Demotes: healthy -> suspect, and to down after
  /// `down_after_failures` consecutive failures.
  void MarkFailure();
  /// Restores the replica to healthy and clears the failure streak.
  void MarkSuccess();

  const EntityRange& range() const { return range_; }
  int shard_index() const { return shard_index_; }
  int replica_index() const { return replica_index_; }
  int64_t tasks_served() const {
    // order: statistics read; staleness is acceptable.
    return tasks_served_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void Serve(ShardTask* task);

  const core::QueryModel* model_;
  const EntityRange range_;
  const int shard_index_;
  const int replica_index_;
  const int down_after_failures_;
  ShardFaultInjector* faults_;            // may be null
  serving::Histogram* scan_us_;           // may be null
  serving::Gauge* health_gauge_;          // may be null
  const int pin_cpu_;                     // -1 = unpinned

  serving::BoundedQueue<std::unique_ptr<ShardTask>> queue_;
  std::atomic<int> health_{static_cast<int>(ReplicaHealth::kHealthy)};
  std::atomic<int> failure_streak_{0};
  std::atomic<int64_t> tasks_served_{0};
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace halk::shard

#endif  // HALK_SHARD_SHARD_WORKER_H_

