#ifndef HALK_SPARQL_ADAPTOR_H_
#define HALK_SPARQL_ADAPTOR_H_

#include "common/status.h"
#include "kg/graph.h"
#include "query/dag.h"
#include "sparql/ast.h"

namespace halk::sparql {

/// The query Adaptor of Sec. IV-F (Fig. 7b): maps SPARQL graph patterns
/// onto HaLk's five logical operators and produces a grounded computation
/// graph ready for any QueryModel, the symbolic executor, or the matcher.
///
/// Mapping:
///   triple `(s, p, ?v)`             -> projection of s through p
///   triple `(?v, p, o)`             -> projection of o through `p_inv`
///                                      (requires the inverse relation to
///                                      exist in the KG's vocabulary)
///   several producers of ?v         -> intersection
///   `{A} UNION {B}` producing ?v    -> union
///   `MINUS {...}`                   -> difference
///   `FILTER NOT EXISTS {...}`       -> negation + intersection
///
/// Constraints (clearly reported as errors): single projection variable,
/// constant predicates, acyclic variable dependencies, and every variable
/// on the path to the target must have at least one producer.
[[nodiscard]] Result<query::QueryGraph> ToQueryGraph(const SelectQuery& select,
                                       const kg::KnowledgeGraph& kg);

/// Convenience wrapper: parse + adapt.
[[nodiscard]] Result<query::QueryGraph> CompileSparql(const std::string& text,
                                        const kg::KnowledgeGraph& kg);

}  // namespace halk::sparql

#endif  // HALK_SPARQL_ADAPTOR_H_

