#include "sparql/printer.h"

namespace halk::sparql {

namespace {

void AppendTerm(const Term& term, std::string* out) {
  if (term.is_variable()) {
    *out += '?';
    *out += term.text;
  } else {
    *out += '<';
    *out += term.text;
    *out += '>';
  }
}

void AppendGroup(const GroupPattern& group, std::string* out) {
  *out += "{ ";
  for (const TriplePattern& triple : group.triples) {
    AppendTerm(triple.subject, out);
    *out += ' ';
    AppendTerm(triple.predicate, out);
    *out += ' ';
    AppendTerm(triple.object, out);
    *out += " . ";
  }
  for (const std::vector<GroupPattern>& alternatives : group.unions) {
    for (size_t i = 0; i < alternatives.size(); ++i) {
      if (i > 0) *out += "UNION ";
      AppendGroup(alternatives[i], out);
      *out += ' ';
    }
  }
  for (const GroupPattern& inner : group.not_exists) {
    *out += "FILTER NOT EXISTS ";
    AppendGroup(inner, out);
    *out += ' ';
  }
  for (const GroupPattern& inner : group.minus) {
    *out += "MINUS ";
    AppendGroup(inner, out);
    *out += ' ';
  }
  *out += '}';
}

}  // namespace

std::string ToSparql(const GroupPattern& group) {
  std::string out;
  AppendGroup(group, &out);
  return out;
}

std::string ToSparql(const SelectQuery& query) {
  std::string out = "SELECT ?";
  out += query.target_variable;
  out += " WHERE ";
  AppendGroup(query.where, &out);
  return out;
}

}  // namespace halk::sparql
