#ifndef HALK_SPARQL_LEXER_H_
#define HALK_SPARQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace halk::sparql {

enum class TokenType {
  kKeyword,   // SELECT WHERE FILTER NOT EXISTS MINUS UNION PREFIX DISTINCT
  kVariable,  // ?name (text = name)
  kIri,       // :name, ns:name, <...> (text = local name)
  kLBrace,
  kRBrace,
  kDot,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keyword upper-cased; names as written
  int position = 0;  // byte offset, for error messages
};

/// Tokenizes a SPARQL-subset query. Keywords are case-insensitive; IRIs
/// are normalized to their local names (text after the last ':', '/', or
/// '#').
[[nodiscard]] Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace halk::sparql

#endif  // HALK_SPARQL_LEXER_H_

