#ifndef HALK_SPARQL_PARSER_H_
#define HALK_SPARQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sparql/ast.h"

namespace halk::sparql {

/// Parses a SPARQL-subset SELECT query:
///
///   PREFIX ns: <...>                       (accepted and ignored)
///   SELECT [DISTINCT] ?x WHERE {
///     ?x :rel :Const .                     basic graph pattern
///     :Const :rel ?y .
///     FILTER NOT EXISTS { ... }            -> negation
///     MINUS { ... }                        -> difference
///     { ... } UNION { ... }                -> union
///   }
///
/// Exactly one projection variable is supported (the paper targets
/// single-answer-variable logical queries).
[[nodiscard]] Result<SelectQuery> Parse(const std::string& input);

}  // namespace halk::sparql

#endif  // HALK_SPARQL_PARSER_H_

