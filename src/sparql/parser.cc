#include "sparql/parser.h"

#include "common/string_util.h"
#include "sparql/lexer.h"

namespace halk::sparql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> ParseQuery() {
    // PREFIX declarations (ignored: IRIs are normalized to local names).
    while (PeekKeyword("PREFIX")) {
      Advance();  // PREFIX
      if (Peek().type != TokenType::kIri) {
        return Error("expected prefix name after PREFIX");
      }
      Advance();  // ns (the ':' is folded into the IRI token)
      if (Peek().type != TokenType::kIri) {
        return Error("expected IRI after prefix name");
      }
      Advance();  // <...>
    }
    if (!PeekKeyword("SELECT")) return Error("expected SELECT");
    Advance();
    if (PeekKeyword("DISTINCT")) Advance();
    if (Peek().type != TokenType::kVariable) {
      return Error("expected a single projection variable after SELECT");
    }
    SelectQuery out;
    out.target_variable = Peek().text;
    Advance();
    if (Peek().type == TokenType::kVariable) {
      return Error("only one projection variable is supported");
    }
    if (!PeekKeyword("WHERE")) return Error("expected WHERE");
    Advance();
    HALK_ASSIGN_OR_RETURN(out.where, ParseGroup());
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing tokens after query");
    }
    return out;
  }

 private:
  Result<GroupPattern> ParseGroup() {
    if (Peek().type != TokenType::kLBrace) return ErrorG("expected '{'");
    Advance();
    GroupPattern group;
    while (Peek().type != TokenType::kRBrace) {
      if (Peek().type == TokenType::kEnd) return ErrorG("unterminated group");
      if (PeekKeyword("FILTER")) {
        Advance();
        if (!PeekKeyword("NOT")) return ErrorG("only FILTER NOT EXISTS is supported");
        Advance();
        if (!PeekKeyword("EXISTS")) return ErrorG("expected EXISTS after FILTER NOT");
        Advance();
        HALK_ASSIGN_OR_RETURN(GroupPattern inner, ParseGroup());
        group.not_exists.push_back(std::move(inner));
        continue;
      }
      if (PeekKeyword("MINUS")) {
        Advance();
        HALK_ASSIGN_OR_RETURN(GroupPattern inner, ParseGroup());
        group.minus.push_back(std::move(inner));
        continue;
      }
      if (Peek().type == TokenType::kLBrace) {
        // `{ A } UNION { B } [UNION { C }]...`
        std::vector<GroupPattern> alternatives;
        HALK_ASSIGN_OR_RETURN(GroupPattern first, ParseGroup());
        alternatives.push_back(std::move(first));
        while (PeekKeyword("UNION")) {
          Advance();
          HALK_ASSIGN_OR_RETURN(GroupPattern next, ParseGroup());
          alternatives.push_back(std::move(next));
        }
        if (alternatives.size() < 2) {
          return ErrorG("nested group without UNION");
        }
        group.unions.push_back(std::move(alternatives));
        continue;
      }
      // Triple pattern.
      HALK_ASSIGN_OR_RETURN(Term s, ParseTerm());
      HALK_ASSIGN_OR_RETURN(Term p, ParseTerm());
      HALK_ASSIGN_OR_RETURN(Term o, ParseTerm());
      if (p.is_variable()) {
        return ErrorG("variable predicates are not supported");
      }
      group.triples.push_back({std::move(s), std::move(p), std::move(o)});
      if (Peek().type == TokenType::kDot) Advance();
    }
    Advance();  // '}'
    return group;
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    if (t.type == TokenType::kVariable) {
      Advance();
      return Term{Term::Kind::kVariable, t.text};
    }
    if (t.type == TokenType::kIri) {
      Advance();
      return Term{Term::Kind::kIri, t.text};
    }
    return Status(StatusCode::kParseError,
                  StrFormat("expected term at offset %d", t.position));
  }

  const Token& Peek() const { return tokens_[index_]; }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  Status Error(const char* message) const {
    return Status::ParseError(
        StrFormat("%s (offset %d)", message, Peek().position));
  }
  // Same as Error; separate name keeps Result<GroupPattern> returns terse.
  Status ErrorG(const char* message) const { return Error(message); }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<SelectQuery> Parse(const std::string& input) {
  HALK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace halk::sparql
