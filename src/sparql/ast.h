#ifndef HALK_SPARQL_AST_H_
#define HALK_SPARQL_AST_H_

#include <string>
#include <vector>

namespace halk::sparql {

/// A term of a triple pattern: either a variable (`?x`) or a constant IRI
/// (`:Oscar`, `ns:Oscar`, `<http://example.org/Oscar>` — normalized to the
/// local name).
struct Term {
  enum class Kind { kVariable, kIri };
  Kind kind = Kind::kIri;
  std::string text;

  bool is_variable() const { return kind == Kind::kVariable; }
};

/// `subject predicate object .`
struct TriplePattern {
  Term subject;
  Term predicate;
  Term object;
};

/// A `{ ... }` group: basic graph pattern plus the three pattern operators
/// the HaLk Adaptor maps to logical operators (Fig. 7):
///   FILTER NOT EXISTS { ... }  ->  negation
///   MINUS { ... }              ->  difference
///   { ... } UNION { ... }      ->  union
struct GroupPattern {
  std::vector<TriplePattern> triples;
  std::vector<GroupPattern> not_exists;
  std::vector<GroupPattern> minus;
  /// Each entry is a list of >= 2 alternative groups.
  std::vector<std::vector<GroupPattern>> unions;
};

/// `SELECT ?target WHERE { ... }`.
struct SelectQuery {
  std::string target_variable;  // without the '?'
  GroupPattern where;
};

}  // namespace halk::sparql

#endif  // HALK_SPARQL_AST_H_
