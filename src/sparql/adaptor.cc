#include "sparql/adaptor.h"

#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "sparql/parser.h"

namespace halk::sparql {

namespace {

bool GroupMentions(const GroupPattern& group, const std::string& var) {
  for (const TriplePattern& t : group.triples) {
    if ((t.subject.is_variable() && t.subject.text == var) ||
        (t.object.is_variable() && t.object.text == var)) {
      return true;
    }
  }
  for (const GroupPattern& g : group.not_exists) {
    if (GroupMentions(g, var)) return true;
  }
  for (const GroupPattern& g : group.minus) {
    if (GroupMentions(g, var)) return true;
  }
  for (const auto& alts : group.unions) {
    for (const GroupPattern& g : alts) {
      if (GroupMentions(g, var)) return true;
    }
  }
  return false;
}

class Adaptor {
 public:
  Adaptor(const kg::KnowledgeGraph& kg) : kg_(kg) {}

  Result<query::QueryGraph> Build(const SelectQuery& select) {
    HALK_ASSIGN_OR_RETURN(
        int target, BuildVariable(select.target_variable, select.where));
    graph_.SetTarget(target);
    HALK_RETURN_NOT_OK(graph_.Validate(/*grounded=*/true));
    return std::move(graph_);
  }

 private:
  Result<int> AnchorFor(const std::string& iri) {
    HALK_ASSIGN_OR_RETURN(int64_t id, kg_.entities().Lookup(iri));
    return graph_.AddAnchor(id);
  }

  Result<int64_t> RelationFor(const std::string& iri) {
    return kg_.relations().Lookup(iri);
  }

  // Builds the node computing variable `var` within `group`.
  Result<int> BuildVariable(const std::string& var,
                            const GroupPattern& group) {
    if (!visiting_.insert(var).second) {
      return Status::InvalidArgument("cyclic variable dependency through ?" +
                                     var);
    }
    std::vector<int> branches;

    for (const TriplePattern& t : group.triples) {
      if (t.object.is_variable() && t.object.text == var) {
        // (s, p, ?var): forward projection.
        HALK_ASSIGN_OR_RETURN(int64_t rel, RelationFor(t.predicate.text));
        int source;
        if (t.subject.is_variable()) {
          HALK_ASSIGN_OR_RETURN(source,
                                BuildVariable(t.subject.text, group));
        } else {
          HALK_ASSIGN_OR_RETURN(source, AnchorFor(t.subject.text));
        }
        branches.push_back(graph_.AddProjection(source, rel));
      } else if (t.subject.is_variable() && t.subject.text == var) {
        // (?var, p, o): traverse p backwards via the inverse relation.
        // When o is a variable currently being resolved, this triple is
        // oriented the other way (it produces o from var, not var from o).
        if (t.object.is_variable() && visiting_.count(t.object.text)) {
          continue;
        }
        const std::string inv = t.predicate.text + "_inv";
        Result<int64_t> rel = RelationFor(inv);
        if (!rel.ok()) {
          // Only fatal if no other pattern produces this variable.
          deferred_error_ = "pattern (?" + var + " " + t.predicate.text +
                            " o) needs inverse relation '" + inv +
                            "' in the KG vocabulary";
          continue;
        }
        int source;
        if (t.object.is_variable()) {
          HALK_ASSIGN_OR_RETURN(source, BuildVariable(t.object.text, group));
        } else {
          HALK_ASSIGN_OR_RETURN(source, AnchorFor(t.object.text));
        }
        branches.push_back(graph_.AddProjection(source, *rel));
      }
    }

    for (const auto& alternatives : group.unions) {
      bool relevant = false;
      for (const GroupPattern& alt : alternatives) {
        relevant = relevant || GroupMentions(alt, var);
      }
      if (!relevant) continue;
      std::vector<int> alt_nodes;
      for (const GroupPattern& alt : alternatives) {
        HALK_ASSIGN_OR_RETURN(int node, BuildVariableScoped(var, alt));
        alt_nodes.push_back(node);
      }
      branches.push_back(graph_.AddUnion(std::move(alt_nodes)));
    }

    if (branches.empty()) {
      visiting_.erase(var);
      if (!deferred_error_.empty()) {
        return Status::InvalidArgument(deferred_error_);
      }
      return Status::InvalidArgument("variable ?" + var +
                                     " has no producing pattern");
    }
    int node = branches.size() == 1 ? branches[0]
                                    : graph_.AddIntersection(branches);

    // MINUS -> difference. Blocks attach to the variable they mention;
    // blocks about other variables are handled when those are built.
    std::vector<int> subtrahends;
    for (const GroupPattern& g : group.minus) {
      if (!GroupMentions(g, var)) continue;
      HALK_ASSIGN_OR_RETURN(int sub, BuildVariableScoped(var, g));
      subtrahends.push_back(sub);
    }
    if (!subtrahends.empty()) {
      std::vector<int> inputs = {node};
      inputs.insert(inputs.end(), subtrahends.begin(), subtrahends.end());
      node = graph_.AddDifference(std::move(inputs));
    }

    // FILTER NOT EXISTS -> negation + intersection.
    for (const GroupPattern& g : group.not_exists) {
      if (!GroupMentions(g, var)) continue;
      HALK_ASSIGN_OR_RETURN(int inner, BuildVariableScoped(var, g));
      node = graph_.AddIntersection({node, graph_.AddNegation(inner)});
    }

    visiting_.erase(var);
    return node;
  }

  // Builds `var` inside a nested group with a fresh visiting scope for it
  // (the nested group is an independent pattern over the same variable).
  Result<int> BuildVariableScoped(const std::string& var,
                                  const GroupPattern& group) {
    visiting_.erase(var);
    Result<int> out = BuildVariable(var, group);
    visiting_.insert(var);
    return out;
  }

  const kg::KnowledgeGraph& kg_;
  query::QueryGraph graph_;
  std::set<std::string> visiting_;
  std::string deferred_error_;
};

}  // namespace

Result<query::QueryGraph> ToQueryGraph(const SelectQuery& select,
                                       const kg::KnowledgeGraph& kg) {
  Adaptor adaptor(kg);
  return adaptor.Build(select);
}

Result<query::QueryGraph> CompileSparql(const std::string& text,
                                        const kg::KnowledgeGraph& kg) {
  HALK_ASSIGN_OR_RETURN(SelectQuery select, Parse(text));
  return ToQueryGraph(select, kg);
}

}  // namespace halk::sparql
