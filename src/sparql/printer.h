#ifndef HALK_SPARQL_PRINTER_H_
#define HALK_SPARQL_PRINTER_H_

#include <string>

#include "sparql/ast.h"

namespace halk::sparql {

/// Serializes an AST back to parseable SPARQL-subset text, the inverse of
/// Parse(). IRIs are emitted in angle form (`<name>`) because the lexer
/// normalizes every IRI to a local name that can never contain ':', '/',
/// '#', or '>' — the angle form therefore re-lexes to exactly the same
/// token even when the name holds spaces or punctuation a prefixed form
/// would split. Printing is canonical (triples, then unions, then
/// FILTER NOT EXISTS, then MINUS), so print -> parse -> print is a fixed
/// point; the fuzz suite leans on that to check round-trip stability.
std::string ToSparql(const SelectQuery& query);

/// Serializes one group (without the enclosing braces' leading keyword
/// context); exposed for tests.
std::string ToSparql(const GroupPattern& group);

}  // namespace halk::sparql

#endif  // HALK_SPARQL_PRINTER_H_
