#include "sparql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace halk::sparql {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {"SELECT", "WHERE",  "FILTER",
                                    "NOT",    "EXISTS", "MINUS",
                                    "UNION",  "PREFIX", "DISTINCT"};
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

// Local name of an IRI-ish string: text after the last ':', '/', or '#'.
std::string LocalName(const std::string& raw) {
  const size_t pos = raw.find_last_of(":/#");
  return pos == std::string::npos ? raw : raw.substr(pos + 1);
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const int pos = static_cast<int>(i);
    if (c == '#') {  // comment to end of line
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '{') {
      tokens.push_back({TokenType::kLBrace, "{", pos});
      ++i;
      continue;
    }
    if (c == '}') {
      tokens.push_back({TokenType::kRBrace, "}", pos});
      ++i;
      continue;
    }
    if (c == '.') {
      tokens.push_back({TokenType::kDot, ".", pos});
      ++i;
      continue;
    }
    if (c == '?' || c == '$') {
      ++i;
      std::string name;
      while (i < n && IsNameChar(input[i])) name += input[i++];
      if (name.empty()) {
        return Status::ParseError(
            StrFormat("empty variable name at offset %d", pos));
      }
      tokens.push_back({TokenType::kVariable, name, pos});
      continue;
    }
    if (c == '<') {
      ++i;
      std::string raw;
      while (i < n && input[i] != '>') raw += input[i++];
      if (i == n) {
        return Status::ParseError(
            StrFormat("unterminated IRI at offset %d", pos));
      }
      ++i;  // '>'
      tokens.push_back({TokenType::kIri, LocalName(raw), pos});
      continue;
    }
    if (IsNameChar(c) || c == ':') {
      std::string raw;
      while (i < n && (IsNameChar(input[i]) || input[i] == ':')) {
        raw += input[i++];
      }
      const std::string upper = [&raw] {
        std::string u = raw;
        for (char& ch : u) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        return u;
      }();
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, pos});
      } else {
        tokens.push_back({TokenType::kIri, LocalName(raw), pos});
      }
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %d", c, pos));
  }
  tokens.push_back({TokenType::kEnd, "", static_cast<int>(n)});
  return tokens;
}

}  // namespace halk::sparql
