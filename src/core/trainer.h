#ifndef HALK_CORE_TRAINER_H_
#define HALK_CORE_TRAINER_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/loss.h"
#include "core/query_model.h"
#include "kg/graph.h"
#include "query/sampler.h"

namespace halk::obs {
class TrainJournal;
}  // namespace halk::obs
namespace halk::serving {
class MetricsRegistry;
}  // namespace halk::serving

namespace halk::core {

/// Returns true when the model implements every operator occurring in the
/// structure's template (ConE/MLPMix cannot train on difference structures,
/// NewLook cannot train on negation ones — the '-' cells of Tables I-IV).
bool ModelSupportsStructure(const QueryModel& model,
                            query::StructureId structure);

struct TrainerOptions {
  int steps = 600;
  int batch_size = 32;
  int num_negatives = 16;  // m in Eq. (17); paper uses 128 at full scale
  float learning_rate = 1e-3f;
  /// Structures cycled through during training (Algorithm 1 trains batches
  /// of same-structure queries). Unsupported ones are skipped per model;
  /// repeated entries weight the mix toward a structure (pools are shared).
  std::vector<query::StructureId> structures;
  /// Pre-sampled pool size per structure.
  int queries_per_structure = 150;
  uint64_t seed = 7;
  /// Emit a progress line every `log_every` steps (0 = silent); lines go
  /// through common/logging (HALK_LOG), never raw stdio.
  int log_every = 0;

  // --- observability (all off by default, zero overhead when off) --------
  /// Structured JSONL journal receiving header/step/eval records
  /// (docs/observability.md has the schema). Null disables journaling.
  obs::TrainJournal* journal = nullptr;
  /// Registry receiving `train.*` counters/gauges with the tape op totals
  /// after Train() returns. Null disables the export.
  serving::MetricsRegistry* metrics = nullptr;
  /// Enables the global profiler for the duration of Train() and fills the
  /// TrainStats phase breakdown from it (restores the previous enabled
  /// state on return). The breakdown is also filled when the caller
  /// enabled the profiler beforehand.
  bool profile = false;
  /// Every `eval_every` steps, score a held-out query pool and journal an
  /// "eval" record with MRR / Hits@3 (0 = never). Requires `journal`.
  int eval_every = 0;
  /// Held-out queries sampled per active structure for periodic eval
  /// (disjoint seed from the training pools).
  int eval_queries_per_structure = 20;
};

/// Hex fingerprint of every hyperparameter that shapes a training run
/// (FNV-1a over the rendered options, observability sinks excluded).
/// Journals carry it next to the seed so two runs are diffable iff their
/// configurations match.
std::string TrainerOptionsFingerprint(const TrainerOptions& options);

struct TrainStats {
  double mean_loss = 0.0;
  double final_loss = 0.0;
  int64_t steps = 0;
  double seconds = 0.0;

  /// Phase breakdown from the profiler (zeros when profiling was off for
  /// the run). Phases are disjoint slices of each step, so their sum is
  /// at most `seconds`.
  double sample_seconds = 0.0;    // pool sampling + batch assembly
  double embed_seconds = 0.0;     // QueryModel::EmbedQueries
  double loss_seconds = 0.0;      // Eq. (17) loss graph construction
  double backward_seconds = 0.0;  // reverse-mode accumulation
  double adam_seconds = 0.0;      // optimizer update

  /// Tape accounting totals over the whole run (zeros unless a journal or
  /// metrics sink requested accounting).
  int64_t forward_ops = 0;
  int64_t backward_ops = 0;
  int64_t forward_flops = 0;
  int64_t backward_flops = 0;
  int64_t peak_graph_bytes = 0;

  /// Gradient / applied-update L2 norms of the final step.
  double grad_norm = 0.0;
  double update_norm = 0.0;
};

/// Algorithm 1: offline training of a query model against the training
/// graph. Query pools are sampled up front with exact answers from the
/// symbolic executor; each step embeds one batch of same-structure queries,
/// computes the Eq. (17) loss, and applies Adam.
class Trainer {
 public:
  /// `grouping` may be null (disables the ξ group penalty).
  Trainer(QueryModel* model, const kg::KnowledgeGraph* graph,
          const kg::NodeGrouping* grouping, const TrainerOptions& options);

  /// Runs the training loop; pools are materialized on the first call.
  [[nodiscard]] Result<TrainStats> Train();

  /// The pre-sampled training pool of a structure (after Train or
  /// BuildPools); empty if the structure is unsupported by the model.
  const std::vector<query::GroundedQuery>& Pool(
      query::StructureId structure) const;

  /// Materializes the query pools without training (idempotent).
  [[nodiscard]] Status BuildPools();

 private:
  /// Samples the held-out eval pool (idempotent; only when eval is on).
  [[nodiscard]] Status BuildEvalPool();

  std::vector<query::GroundedQuery> eval_pool_;
  QueryModel* model_;
  const kg::KnowledgeGraph* graph_;
  const kg::NodeGrouping* grouping_;
  TrainerOptions options_;
  Rng rng_;
  bool pools_built_ = false;
  std::vector<query::StructureId> active_structures_;
  std::map<query::StructureId, std::vector<query::GroundedQuery>> pools_;
  // Target-node group vector per pooled query, parallel to pools_.
  std::map<query::StructureId, std::vector<std::vector<float>>> pool_groups_;
};

}  // namespace halk::core

#endif  // HALK_CORE_TRAINER_H_

