#ifndef HALK_CORE_TRAINER_H_
#define HALK_CORE_TRAINER_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/loss.h"
#include "core/query_model.h"
#include "kg/graph.h"
#include "query/sampler.h"

namespace halk::core {

/// Returns true when the model implements every operator occurring in the
/// structure's template (ConE/MLPMix cannot train on difference structures,
/// NewLook cannot train on negation ones — the '-' cells of Tables I-IV).
bool ModelSupportsStructure(const QueryModel& model,
                            query::StructureId structure);

struct TrainerOptions {
  int steps = 600;
  int batch_size = 32;
  int num_negatives = 16;  // m in Eq. (17); paper uses 128 at full scale
  float learning_rate = 1e-3f;
  /// Structures cycled through during training (Algorithm 1 trains batches
  /// of same-structure queries). Unsupported ones are skipped per model;
  /// repeated entries weight the mix toward a structure (pools are shared).
  std::vector<query::StructureId> structures;
  /// Pre-sampled pool size per structure.
  int queries_per_structure = 150;
  uint64_t seed = 7;
  /// Emit a progress line every `log_every` steps (0 = silent).
  int log_every = 0;
};

struct TrainStats {
  double mean_loss = 0.0;
  double final_loss = 0.0;
  int64_t steps = 0;
  double seconds = 0.0;
};

/// Algorithm 1: offline training of a query model against the training
/// graph. Query pools are sampled up front with exact answers from the
/// symbolic executor; each step embeds one batch of same-structure queries,
/// computes the Eq. (17) loss, and applies Adam.
class Trainer {
 public:
  /// `grouping` may be null (disables the ξ group penalty).
  Trainer(QueryModel* model, const kg::KnowledgeGraph* graph,
          const kg::NodeGrouping* grouping, const TrainerOptions& options);

  /// Runs the training loop; pools are materialized on the first call.
  [[nodiscard]] Result<TrainStats> Train();

  /// The pre-sampled training pool of a structure (after Train or
  /// BuildPools); empty if the structure is unsupported by the model.
  const std::vector<query::GroundedQuery>& Pool(
      query::StructureId structure) const;

  /// Materializes the query pools without training (idempotent).
  [[nodiscard]] Status BuildPools();

 private:
  QueryModel* model_;
  const kg::KnowledgeGraph* graph_;
  const kg::NodeGrouping* grouping_;
  TrainerOptions options_;
  Rng rng_;
  bool pools_built_ = false;
  std::vector<query::StructureId> active_structures_;
  std::map<query::StructureId, std::vector<query::GroundedQuery>> pools_;
  // Target-node group vector per pooled query, parallel to pools_.
  std::map<query::StructureId, std::vector<std::vector<float>>> pool_groups_;
};

}  // namespace halk::core

#endif  // HALK_CORE_TRAINER_H_

