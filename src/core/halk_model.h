#ifndef HALK_CORE_HALK_MODEL_H_
#define HALK_CORE_HALK_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/arc.h"
#include "core/operator_model.h"
#include "core/query_model.h"
#include "nn/deepsets.h"
#include "nn/mlp.h"

namespace halk::core {

class EntityScanSource;

/// The HaLk model (Sec. III of the paper): entities are points on a circle,
/// query nodes are arc segments, and the five logical operators are
/// implemented per Eqs. (2)-(14):
///   * projection — relation rotation followed by a start/end-point MLP
///     producing center and arc angle through g(·);
///   * difference — attention over rectangular-coordinate semantic centers
///     with an asymmetry vector κ, and a DeepSets arclength bounded by the
///     minuend (cardinality constraint);
///   * intersection — the same semantic-average-center attention scaled by
///     group similarity z, with a min-bounded DeepSets arclength;
///   * negation — antipodal linear initialization refined by a non-linear
///     two-branch MLP;
///   * union — handled outside the model by the DNF rewrite (exact).
/// The operator methods are virtual so the Table V ablations (HaLk-V1/V2/V3)
/// can swap in degraded variants. The model also implements OperatorModel,
/// which lets the shared-graph executor (plan/executor.h) drive the same
/// virtual operators node by node over a deduplicated compute DAG.
class HalkModel : public QueryModel, public OperatorModel {
 public:
  /// `grouping` (optional, may be null) enables the group-similarity factor
  /// z_i in the intersection attention (Eq. 10).
  ///
  /// `entity_source` (optional) makes the model serve its entity table out
  /// of an external read-only source (e.g. the mmap-backed store) instead
  /// of an in-RAM tensor: no [N, d] allocation happens, anchor/distance
  /// lookups copy rows from the source, and top-k scans delegate to it.
  /// Store-backed models are serving-only — Parameters() excludes the
  /// entity table (it is not trainable through the source), so operator
  /// weights must be loaded from a snapshot params blob
  /// (store::OpenServingModel). The source must outlive the model.
  HalkModel(const ModelConfig& config, const kg::NodeGrouping* grouping,
            const EntityScanSource* entity_source = nullptr);

  std::string name() const override { return "HaLk"; }

  EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) override;

  tensor::Tensor Distance(const std::vector<int64_t>& entities,
                          const EmbeddingBatch& embedding) override;

  void DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                      std::vector<float>* out) const override;

  void DistancesToRange(const EmbeddingBatch& embedding, int64_t row,
                        int64_t begin, int64_t end,
                        std::vector<float>* out) const override;

  /// Bound-aware scan: the arc distance accumulates non-negative
  /// per-dimension terms, so an entity is abandoned the moment its partial
  /// sum exceeds the accumulator's admission bound. Exact — admitted
  /// entities carry the bit-identical full distance.
  void AccumulateTopKRange(const std::vector<BranchRef>& branches,
                           int64_t begin, int64_t end, TopKAccumulator* acc,
                           ScanStats* stats = nullptr) const override;

  /// Arc-membership threshold: an entity inside the arc on every dimension
  /// has d_o = 0 and d_i <= Σ_d half_width_d, so its distance is at most
  /// η·Σ_d 2ρ|sin(A_l/(4ρ))|. Anchors (zero-length arcs) get 0 — only the
  /// anchor entity itself is a member.
  double MembershipThreshold(const EmbeddingBatch& embedding,
                             int64_t row) const override;

  std::vector<tensor::Tensor> Parameters() const override;

  bool Supports(query::OpType) const override { return true; }

  OperatorModel* AsOperatorModel() override { return this; }

  // --- Operators (public for unit tests, ablations, the pruner, and the
  // --- shared-graph executor via OperatorModel). ---

  /// Anchor entities as zero-length arcs.
  ArcBatch EmbedAnchors(const std::vector<int64_t>& entities) override;

  /// Projection operator, Eqs. (2)-(3). `relations[i]` applies to row i.
  ArcBatch Projection(const ArcBatch& input,
                      const std::vector<int64_t>& relations) override;

  /// Difference operator, Eqs. (4)-(9); `inputs[0]` is the minuend.
  ArcBatch Difference(const std::vector<ArcBatch>& inputs) override;

  /// Intersection operator, Eqs. (10)-(12). `z` holds one [B, d] constant
  /// group-similarity tensor per input (empty = all ones).
  ArcBatch Intersection(const std::vector<ArcBatch>& inputs,
                        const std::vector<tensor::Tensor>& z) override;

  /// Negation operator, Eqs. (13)-(14).
  ArcBatch Negation(const ArcBatch& input) override;

  const kg::NodeGrouping* operator_grouping() const override {
    return grouping_;
  }

  /// Per-node arc embeddings of one grounded union-free query; index = node
  /// id (unreachable nodes undefined). Drives the pruning study (Sec. IV-D).
  std::vector<ArcBatch> EmbedAllNodes(const query::QueryGraph& query);

  const kg::NodeGrouping* grouping() const { return grouping_; }

  /// Raw entity angle table [N, d] (tests/diagnostics). Undefined in
  /// store-backed mode — check store_backed() first.
  const tensor::Tensor& entity_angles() const { return entity_angles_; }

  /// True when the entity table lives in an external EntityScanSource
  /// instead of entity_angles_.
  bool store_backed() const { return entity_source_ != nullptr; }
  const EntityScanSource* entity_source() const { return entity_source_; }

 protected:
  /// Entity rows as a [B, d] tensor: autograd Gather from the in-RAM table,
  /// or a plain bit-exact copy out of the external source.
  tensor::Tensor GatherEntityRows(const std::vector<int64_t>& entities) const;

  /// Semantic-average center via attention in rectangular coordinates:
  /// Eqs. (4)-(6) with per-input score tensors.
  tensor::Tensor SemanticAverageCenter(
      const std::vector<ArcBatch>& inputs,
      const std::vector<tensor::Tensor>& scores) const;

  const kg::NodeGrouping* grouping_;  // not owned, may be null
  const EntityScanSource* entity_source_;  // not owned, may be null
  Rng rng_;

  // Embedding tables.
  tensor::Tensor entity_angles_;  // [N, d]
  tensor::Tensor rel_center_;     // [M, d]
  tensor::Tensor rel_length_;     // [M, d]

  // Projection networks (Eq. 2).
  std::unique_ptr<nn::Mlp> proj_center_;
  std::unique_ptr<nn::Mlp> proj_length_;

  // Difference networks (Eqs. 7-9).
  std::unique_ptr<nn::Mlp> diff_att_;
  tensor::Tensor kappa_first_;  // [d] asymmetry weight for the minuend
  tensor::Tensor kappa_rest_;   // [d] shared weight for subtrahends
  std::unique_ptr<nn::DeepSets> diff_sets_;

  // Intersection networks (Eqs. 10-12).
  std::unique_ptr<nn::Mlp> inter_att_;
  std::unique_ptr<nn::DeepSets> inter_sets_;

  // Negation networks (Eq. 14).
  std::unique_ptr<nn::Mlp> neg_t1_;
  std::unique_ptr<nn::Mlp> neg_t2_;
  std::unique_ptr<nn::Mlp> neg_center_;
  std::unique_ptr<nn::Mlp> neg_length_;
};

}  // namespace halk::core

#endif  // HALK_CORE_HALK_MODEL_H_
