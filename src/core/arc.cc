#include "core/arc.h"

#include "common/logging.h"

namespace halk::core {

using tensor::Tensor;

Tensor StartPoint(const ArcBatch& arc, float rho) {
  return tensor::Sub(arc.center,
                     tensor::MulScalar(arc.length, 1.0f / (2.0f * rho)));
}

Tensor EndPoint(const ArcBatch& arc, float rho) {
  return tensor::Add(arc.center,
                     tensor::MulScalar(arc.length, 1.0f / (2.0f * rho)));
}

Tensor StartEndPair(const ArcBatch& arc, float rho) {
  return tensor::Concat({StartPoint(arc, rho), EndPoint(arc, rho)}, 1);
}

Tensor GFunction(const Tensor& x, float lambda) {
  constexpr float kPi = 3.14159265358979f;
  return tensor::AddScalar(
      tensor::MulScalar(tensor::Tanh(tensor::MulScalar(x, lambda)), kPi), kPi);
}

Tensor ChordLength(const Tensor& a, const Tensor& b, float rho) {
  return tensor::MulScalar(
      tensor::Abs(tensor::Sin(tensor::MulScalar(tensor::Sub(a, b), 0.5f))),
      2.0f * rho);
}

}  // namespace halk::core
