#ifndef HALK_CORE_PRUNER_H_
#define HALK_CORE_PRUNER_H_

#include <vector>

#include "core/halk_model.h"
#include "kg/graph.h"
#include "query/dag.h"

namespace halk::core {

/// HaLk as a pruning front-end for subgraph-matching engines (Sec. IV-D):
/// for every variable node of the query the trained model's top-k nearest
/// entities are collected into a node set S (anchors included), and the
/// data graph is restricted to its subgraph induced by S. A matcher then
/// runs on the (much smaller) induced graph.
struct PruneResult {
  /// Sorted node set S (top-k per variable node plus anchors).
  std::vector<int64_t> candidates;
  /// Subgraph of the data graph induced by S (shared vocabulary,
  /// finalized).
  kg::KnowledgeGraph induced;
};

class Pruner {
 public:
  explicit Pruner(HalkModel* model);

  /// Prunes `graph` for `query` using `top_k` candidates per variable node
  /// (the paper uses top-20).
  PruneResult Prune(const query::QueryGraph& query,
                    const kg::KnowledgeGraph& graph, int64_t top_k);

 private:
  HalkModel* model_;
};

}  // namespace halk::core

#endif  // HALK_CORE_PRUNER_H_
