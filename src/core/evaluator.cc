#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"
#include "core/topk.h"
#include "obs/profiler.h"
#include "query/dnf.h"

namespace halk::core {

Evaluator::Evaluator(QueryModel* model) : model_(model) {
  HALK_CHECK(model != nullptr);
}

std::vector<float> Evaluator::ScoreAllEntities(
    const query::QueryGraph& query) {
  HALK_PROFILE_SCOPE("eval/score_all");
  std::vector<float> best;
  for (const query::QueryGraph& branch : query::ToDnf(query)) {
    std::vector<const query::QueryGraph*> single = {&branch};
    EmbeddingBatch embedding = model_->EmbedQueries(single);
    std::vector<float> dist;
    model_->DistancesToAll(embedding, 0, &dist);
    if (best.empty()) {
      best = std::move(dist);
    } else {
      for (size_t i = 0; i < best.size(); ++i) {
        best[i] = std::min(best[i], dist[i]);
      }
    }
  }
  return best;
}

std::vector<int64_t> Evaluator::TopK(const query::QueryGraph& query,
                                     int64_t k) {
  HALK_PROFILE_SCOPE("eval/topk");
  std::vector<ScoredEntity> top = TopKFromDistances(ScoreAllEntities(query), k);
  std::vector<int64_t> ids;
  ids.reserve(top.size());
  for (const ScoredEntity& s : top) ids.push_back(s.entity);
  return ids;
}

Metrics Evaluator::Evaluate(const std::vector<query::GroundedQuery>& queries) {
  HALK_PROFILE_SCOPE("eval/evaluate");
  Metrics metrics;
  for (const query::GroundedQuery& q : queries) {
    const std::vector<int64_t>& hard =
        q.hard_answers.empty() && q.easy_answers.empty() ? q.answers
                                                         : q.hard_answers;
    if (hard.empty()) continue;
    std::vector<float> dist = ScoreAllEntities(q.graph);

    double mrr = 0.0;
    double h1 = 0.0;
    double h3 = 0.0;
    double h10 = 0.0;
    for (int64_t answer : hard) {
      const float d_answer = dist[static_cast<size_t>(answer)];
      // Filtered rank: other answers (easy or hard) never count as
      // competitors.
      int64_t rank = 1;
      for (int64_t e = 0; e < static_cast<int64_t>(dist.size()); ++e) {
        if (dist[static_cast<size_t>(e)] < d_answer &&
            !std::binary_search(q.answers.begin(), q.answers.end(), e)) {
          ++rank;
        }
      }
      mrr += 1.0 / static_cast<double>(rank);
      h1 += rank <= 1;
      h3 += rank <= 3;
      h10 += rank <= 10;
      ++metrics.num_answers;
    }
    const double n = static_cast<double>(hard.size());
    metrics.mrr += mrr / n;
    metrics.hits1 += h1 / n;
    metrics.hits3 += h3 / n;
    metrics.hits10 += h10 / n;
    ++metrics.num_queries;
  }
  if (metrics.num_queries > 0) {
    const double n = static_cast<double>(metrics.num_queries);
    metrics.mrr /= n;
    metrics.hits1 /= n;
    metrics.hits3 /= n;
    metrics.hits10 /= n;
  }
  return metrics;
}

}  // namespace halk::core
