#ifndef HALK_CORE_ARC_H_
#define HALK_CORE_ARC_H_

#include "tensor/ops.h"

namespace halk::core {

/// A batch of arc embeddings on the circle of radius ρ (Sec. II-A):
/// `center` holds polar center angles A_c (radians) and `length` holds
/// arclengths A_l ∈ [0, 2πρ]. Entities are arcs of length 0.
struct ArcBatch {
  tensor::Tensor center;  // [B, d] angles
  tensor::Tensor length;  // [B, d] arclengths
};

/// Definition 1: start point A_S = A_c − A_l / (2ρ).
tensor::Tensor StartPoint(const ArcBatch& arc, float rho);

/// Definition 2: end point A_E = A_c + A_l / (2ρ).
tensor::Tensor EndPoint(const ArcBatch& arc, float rho);

/// The coordinated information pair [A_S ‖ A_E] fed to every learned HaLk
/// operator — carrying both center and cardinality information so rotation
/// and scaling adjust cooperatively (Sec. III-B).
tensor::Tensor StartEndPair(const ArcBatch& arc, float rho);

/// Range regulator g(x) = π·tanh(λx) + π mapping activations into
/// [0, 2π) (Eq. 3).
tensor::Tensor GFunction(const tensor::Tensor& x, float lambda);

/// Chord length between two angle tensors: 2ρ·|sin((a − b)/2)| — the
/// periodicity-safe distance measurement the paper builds everything on.
tensor::Tensor ChordLength(const tensor::Tensor& a, const tensor::Tensor& b,
                           float rho);

}  // namespace halk::core

#endif  // HALK_CORE_ARC_H_
