#include "core/query_groups.h"

#include "common/logging.h"

namespace halk::core {

using kg::NodeGrouping;
using query::OpType;
using query::QueryGraph;
using query::QueryNode;

std::vector<std::vector<float>> NodeGroupVectors(
    const QueryGraph& query, const NodeGrouping& grouping) {
  std::vector<std::vector<float>> vectors(
      static_cast<size_t>(query.num_nodes()));
  for (int id : query.TopologicalOrder()) {
    const QueryNode& n = query.nodes()[static_cast<size_t>(id)];
    std::vector<float>& out = vectors[static_cast<size_t>(id)];
    switch (n.op) {
      case OpType::kAnchor:
        out = grouping.OneHot(n.anchor_entity);
        break;
      case OpType::kProjection:
        out = grouping.Project(vectors[static_cast<size_t>(n.inputs[0])],
                               n.relation);
        break;
      case OpType::kIntersection: {
        out = vectors[static_cast<size_t>(n.inputs[0])];
        for (size_t i = 1; i < n.inputs.size(); ++i) {
          out = NodeGrouping::Intersect(
              out, vectors[static_cast<size_t>(n.inputs[i])]);
        }
        break;
      }
      case OpType::kUnion: {
        out = vectors[static_cast<size_t>(n.inputs[0])];
        for (size_t i = 1; i < n.inputs.size(); ++i) {
          out = NodeGrouping::Union(out,
                                    vectors[static_cast<size_t>(n.inputs[i])]);
        }
        break;
      }
      case OpType::kDifference:
        out = vectors[static_cast<size_t>(n.inputs[0])];
        break;
      case OpType::kNegation:
        out = grouping.AllGroups();
        break;
    }
  }
  return vectors;
}

std::vector<float> QueryGroupVector(const QueryGraph& query,
                                    const NodeGrouping& grouping) {
  HALK_CHECK_GE(query.target(), 0);
  auto vectors = NodeGroupVectors(query, grouping);
  return vectors[static_cast<size_t>(query.target())];
}

float GroupPenalty(int64_t entity, const std::vector<float>& query_groups,
                   const NodeGrouping& grouping) {
  const int g = grouping.group_of(entity);
  HALK_CHECK_LT(static_cast<size_t>(g), query_groups.size());
  // ‖Relu(h_v − h_Uq)‖₁ with one-hot h_v: nonzero only at the entity's
  // group coordinate.
  const float diff = 1.0f - query_groups[static_cast<size_t>(g)];
  return diff > 0.0f ? diff : 0.0f;
}

}  // namespace halk::core
