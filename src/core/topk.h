#ifndef HALK_CORE_TOPK_H_
#define HALK_CORE_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace halk::core {

/// One ranked entity. Every top-k path in the system (brute-force
/// Evaluator::TopK, the serving engine, sharded scatter-gather) orders by
/// (distance, entity id): strictly ascending model distance with the lower
/// entity id winning ties, so rankings are bit-identical regardless of how
/// the entity table was partitioned or which code path scored it.
struct ScoredEntity {
  int64_t entity = 0;
  float distance = 0.0f;

  bool operator==(const ScoredEntity& other) const {
    return entity == other.entity && distance == other.distance;
  }
};

/// The canonical ranking order: (distance, entity) lexicographic.
inline bool ScoredBefore(const ScoredEntity& a, const ScoredEntity& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.entity < b.entity;
}

/// Bounded top-k accumulator: a max-heap of the k best (lowest-distance)
/// candidates seen so far. Push is O(1) for candidates that lose to the
/// current worst — the common case when streaming a large entity range —
/// and O(log k) otherwise. k <= 0 accepts nothing.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(int64_t k);

  void Push(int64_t entity, float distance);

  /// Drains the heap into an ascending (distance, entity) ranking and
  /// resets the accumulator. At most k entries; fewer when fewer
  /// candidates were pushed.
  std::vector<ScoredEntity> Take();

  int64_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// Admission bound: a candidate with distance strictly above it can never
  /// enter (one at the bound still can, on the entity-id tie-break). +inf
  /// while the heap is not yet full, so bound-aware scans prune nothing
  /// until k candidates are in.
  float bound() const {
    if (k_ <= 0) return -std::numeric_limits<float>::infinity();
    if (static_cast<int64_t>(heap_.size()) < k_) {
      return std::numeric_limits<float>::infinity();
    }
    return heap_.front().distance;
  }

 private:
  int64_t k_;
  std::vector<ScoredEntity> heap_;  // max-heap under ScoredBefore
};

/// Top-k over a dense distance vector where index i scores entity
/// `first_entity + i` (shards pass their range offset).
std::vector<ScoredEntity> TopKFromDistances(const std::vector<float>& dist,
                                            int64_t k,
                                            int64_t first_entity = 0);

/// K-way merge of partial rankings — each already ascending under
/// ScoredBefore, e.g. per-shard heaps — into one global ascending top-k.
/// Partials may be empty (an empty shard contributes nothing) and k may
/// exceed the total candidate count.
std::vector<ScoredEntity> MergeTopK(
    const std::vector<std::vector<ScoredEntity>>& partials, int64_t k);

}  // namespace halk::core

#endif  // HALK_CORE_TOPK_H_
