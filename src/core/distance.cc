#include "core/distance.h"

#include <cmath>

#include "common/logging.h"

namespace halk::core {

using tensor::Tensor;

Tensor ArcDistance(const Tensor& point, const ArcBatch& arc, float rho,
                   float eta) {
  HALK_CHECK(point.shape() == arc.center.shape())
      << point.shape().ToString() << " vs " << arc.center.shape().ToString();

  // Chord from the point to the closer arc endpoint.
  Tensor to_start = ChordLength(point, StartPoint(arc, rho), rho);
  Tensor to_end = ChordLength(point, EndPoint(arc, rho), rho);
  Tensor outside_raw = tensor::Minimum(to_start, to_end);

  // Chord to the center vs. the half-arc chord.
  Tensor to_center = ChordLength(point, arc.center, rho);
  // |sin((A_l / 2ρ) / 2)| scaled to a chord: the arc's half-width.
  Tensor half_width = tensor::MulScalar(
      tensor::Abs(tensor::Sin(
          tensor::MulScalar(arc.length, 1.0f / (4.0f * rho)))),
      2.0f * rho);

  // Inside mask: to_center <= half_width, per coordinate, as a constant.
  const int64_t n = point.numel();
  std::vector<float> mask(static_cast<size_t>(n));
  const float* c = to_center.data();
  const float* h = half_width.data();
  for (int64_t i = 0; i < n; ++i) mask[static_cast<size_t>(i)] = c[i] > h[i] ? 1.0f : 0.0f;
  Tensor outside_mask = Tensor::FromVector(point.shape(), std::move(mask));

  Tensor d_o = tensor::SumDim(tensor::Mul(outside_raw, outside_mask), 1);
  Tensor d_i = tensor::SumDim(tensor::Minimum(to_center, half_width), 1);
  return tensor::Add(d_o, tensor::MulScalar(d_i, eta));
}

float ArcPointDistance(const float* point_angles, const float* arc_center,
                       const float* arc_length, int64_t dim, float rho,
                       float eta) {
  float d_o = 0.0f;
  float d_i = 0.0f;
  for (int64_t i = 0; i < dim; ++i) {
    const float theta = point_angles[i];
    const float ac = arc_center[i];
    const float al = arc_length[i];
    const float a_s = ac - al / (2.0f * rho);
    const float a_e = ac + al / (2.0f * rho);
    const float to_start = 2.0f * rho * std::fabs(std::sin((theta - a_s) / 2.0f));
    const float to_end = 2.0f * rho * std::fabs(std::sin((theta - a_e) / 2.0f));
    const float to_center = 2.0f * rho * std::fabs(std::sin((theta - ac) / 2.0f));
    const float half_width =
        2.0f * rho * std::fabs(std::sin(al / (4.0f * rho)));
    if (to_center > half_width) {
      d_o += std::min(to_start, to_end);
    }
    d_i += std::min(to_center, half_width);
  }
  return d_o + eta * d_i;
}

ArcConstants MakeArcConstants(const float* arc_center,
                              const float* arc_length, int64_t dim, float rho,
                              float eta) {
  ArcConstants out;
  out.rho = rho;
  out.eta = eta;
  out.a_s.resize(static_cast<size_t>(dim));
  out.a_e.resize(static_cast<size_t>(dim));
  out.center.resize(static_cast<size_t>(dim));
  out.half_width.resize(static_cast<size_t>(dim));
  for (int64_t i = 0; i < dim; ++i) {
    const float ac = arc_center[i];
    const float al = arc_length[i];
    // Same float expressions as ArcPointDistance, for bit-identical scans.
    out.a_s[static_cast<size_t>(i)] = ac - al / (2.0f * rho);
    out.a_e[static_cast<size_t>(i)] = ac + al / (2.0f * rho);
    out.center[static_cast<size_t>(i)] = ac;
    out.half_width[static_cast<size_t>(i)] =
        2.0f * rho * std::fabs(std::sin(al / (4.0f * rho)));
  }
  return out;
}

float ArcPointDistanceBounded(const float* point_angles,
                              const ArcConstants& arc, float bound) {
  // Same accumulation order as ArcPointDistance, so a full scan returns the
  // bit-identical value; the partial d_o + eta*d_i is non-decreasing across
  // dimensions (rho > 0, eta >= 0), which makes the early exit exact for
  // pruning. Points inside the arc on a dimension cost one sine; only the
  // outside case needs the two endpoint chords.
  const int64_t dim = static_cast<int64_t>(arc.center.size());
  const float rho = arc.rho;
  float d_o = 0.0f;
  float d_i = 0.0f;
  for (int64_t i = 0; i < dim; ++i) {
    const float theta = point_angles[i];
    const float to_center =
        2.0f * rho * std::fabs(std::sin((theta - arc.center[i]) / 2.0f));
    const float half_width = arc.half_width[i];
    if (to_center > half_width) {
      const float to_start =
          2.0f * rho * std::fabs(std::sin((theta - arc.a_s[i]) / 2.0f));
      const float to_end =
          2.0f * rho * std::fabs(std::sin((theta - arc.a_e[i]) / 2.0f));
      d_o += std::min(to_start, to_end);
      d_i += half_width;
    } else {
      d_i += to_center;
    }
    const float partial = d_o + arc.eta * d_i;
    if (partial > bound) return partial;
  }
  return d_o + arc.eta * d_i;
}

}  // namespace halk::core
